"""Cannot-Pin Table (paper §5.1.5, §6.3).

A small per-core table of line addresses the core must not pin right now.
Lines arrive via ``Inv*`` (a starving writer's retry) and leave via
``Clear`` (the write finally succeeded).  If the table fills and an insert
fails, the core stops pinning loads until the table is half empty — the
paper's overflow rule (§6.3/§6.4).
"""

from __future__ import annotations

from collections import deque
from typing import Deque, Optional, Set

from repro.common.stats import StatSet


class CannotPinTable:
    """Bounded set of un-pinnable lines with overflow bookkeeping.

    With ``reservation_queue`` the §6.3 "more advanced design" is enabled:
    a writer whose ``Inv*`` found the table full is remembered in a small
    FIFO, and the next entry that frees up is *reserved* for it, so no
    writer can be shut out of the CPT indefinitely.
    """

    # "__dict__" stays in the slots: the opt-in invariant sanitizer
    # shadows ``insert``/``remove`` on the instance
    __slots__ = ("capacity", "ideal", "reservation_queue", "_lines",
                 "_waiting_writers", "_entitled_writers", "_overflowed",
                 "stats", "_occupancy_sum", "_samples", "max_occupancy",
                 "__dict__")

    def __init__(self, capacity: int = 4, ideal: bool = False,
                 reservation_queue: bool = False) -> None:
        if capacity < 1:
            raise ValueError("CPT capacity must be >= 1")
        self.capacity = capacity
        self.ideal = ideal
        self.reservation_queue = reservation_queue
        self._lines: Set[int] = set()
        self._waiting_writers: Deque[int] = deque()
        self._entitled_writers: Set[int] = set()
        self._overflowed = False
        self.stats = StatSet()
        self._occupancy_sum = 0
        self._samples = 0
        self.max_occupancy = 0

    def __contains__(self, line: int) -> bool:
        return line in self._lines

    def __len__(self) -> int:
        return len(self._lines)

    def _has_room_for(self, writer: Optional[int]) -> bool:
        if (self.reservation_queue and writer is not None
                and writer in self._entitled_writers):
            # a previously refused writer spends its reserved slot
            self._entitled_writers.discard(writer)
            self.stats.bump("reservations_used")
            return True
        # slots reserved for entitled writers are invisible to others
        reserved = len(self._entitled_writers) if self.reservation_queue \
            else 0
        return len(self._lines) + reserved < self.capacity

    def insert(self, line: int, writer: Optional[int] = None) -> bool:
        """Record an ``Inv*``; returns False on overflow (entry refused).

        ``writer`` identifies the starving writer core; with the
        reservation queue enabled a refused writer is queued and the next
        released entry is reserved for it (§6.3).
        """
        self.stats.bump("insert_attempts")
        if line in self._lines:
            self._sample()
            return True
        if not self.ideal and not self._has_room_for(writer):
            self.stats.bump("overflows")
            self._overflowed = True
            if (self.reservation_queue and writer is not None
                    and writer not in self._waiting_writers
                    and writer not in self._entitled_writers):
                self._waiting_writers.append(writer)
                self.stats.bump("writers_queued")
            self._sample()
            return False
        self._lines.add(line)
        self.max_occupancy = max(self.max_occupancy, len(self._lines))
        self._sample()
        return True

    def remove(self, line: int) -> None:
        """A ``Clear`` arrived: the starving write succeeded."""
        if line in self._lines:
            self._lines.discard(line)
            if self.reservation_queue and self._waiting_writers:
                # the freed entry is reserved for the head-of-queue writer
                self._entitled_writers.add(self._waiting_writers.popleft())
        if self._overflowed and len(self._lines) <= self.capacity // 2:
            self._overflowed = False
        self._sample()

    @property
    def pinning_blocked(self) -> bool:
        """After an overflow, pinning stays blocked until half empty."""
        return self._overflowed

    def _sample(self) -> None:
        self._occupancy_sum += len(self._lines)
        self._samples += 1

    @property
    def mean_occupancy(self) -> float:
        return self._occupancy_sum / self._samples if self._samples else 0.0

    @property
    def overflow_rate(self) -> float:
        """Overflows per insert attempt (paper reports < 0.0001)."""
        attempts = self.stats["insert_attempts"]
        return self.stats["overflows"] / attempts if attempts else 0.0
