"""Cache Shadow Table (paper §5.1.4, §6.2, Figure 6).

The CST is the Early Pinning structure that answers, *before* a load
issues, whether its line is guaranteed space in the target cache structure
given the already-pinned lines.  It is a hash table of N entries x M
records; an entry is selected by hashing the (set, slice) the line maps to,
and each record holds a hash of the line address plus the LQ ID of the
youngest pinned load reading that line.

Fidelity notes, all per the paper:

* Records are reclaimed lazily: a record whose LQ ID is no longer live is
  expunged only when a new pin needs the slot.
* Address-hash collisions are detected by reading back the LQ entry's line
  through the stored LQ ID; on mismatch the pin is denied (treated as "no
  space").
* Entry-index collisions merely under-count capacity — safe by design.
* An ``infinite`` CST (used by the §9.2.1 sensitivity study) never denies.
"""

from __future__ import annotations

from typing import Callable, Hashable, List, Optional

from repro.common.stats import StatSet

LiveLineFn = Callable[[int], Optional[int]]


class _Record:
    __slots__ = ("addr_hash", "lq_id", "valid")

    def __init__(self) -> None:
        self.addr_hash = 0
        self.lq_id = -1
        self.valid = False


def _hash_key(key: Hashable, buckets: int) -> int:
    """Map a placement key to a table entry.

    Integer keys (linear set/slice indices) are taken modulo the entry
    count: regular access patterns (strided/streaming) then rotate through
    the entries uniformly instead of birthday-colliding, which is what
    keeps the paper's false-positive rates tiny at 12/40 entries.
    """
    if isinstance(key, int):
        return key % buckets
    return (hash(key) * 0x9E3779B1) % buckets


#: Width of the per-record line-address hash.  12 bits reproduces the
#: paper's Table 1 storage: 12x8x(12+24+1) bits = 444 B for the L1 CST and
#: 40x2x(12+24+1) bits = 370 B for the directory/LLC CST.
ADDR_HASH_BITS = 12


def _hash_line(line: int) -> int:
    return ((line * 2654435761) >> 8) & ((1 << ADDR_HASH_BITS) - 1)


class CacheShadowTable:
    """One CST instance (a core has one for L1 and one for the dir/LLC)."""

    __slots__ = ("entries", "records_per_entry", "infinite",
                 "_live_line_of", "_table", "stats")

    def __init__(self, entries: int, records_per_entry: int,
                 live_line_of: LiveLineFn, infinite: bool = False) -> None:
        if entries < 1 or records_per_entry < 1:
            raise ValueError("CST geometry must be positive")
        self.entries = entries
        self.records_per_entry = records_per_entry
        self.infinite = infinite
        self._live_line_of = live_line_of
        self._table: List[List[_Record]] = [
            [_Record() for _ in range(records_per_entry)]
            for _ in range(entries)]
        self.stats = StatSet()

    def try_pin(self, line: int, placement: Hashable, lq_id: int) -> bool:
        """Attempt to account a new pinned load of ``line`` mapping to
        ``placement`` (an L1 set, or a (slice, set) pair).  Returns whether
        the pin is allowed; on success the table is updated."""
        self.stats.bump("attempts")
        if self.infinite:
            return True
        entry = self._table[_hash_key(placement, self.entries)]
        target_hash = _hash_line(line)
        free_slot: Optional[_Record] = None
        for record in entry:
            if not record.valid:
                free_slot = free_slot or record
                continue
            live_line = self._live_line_of(record.lq_id)
            if live_line is None:
                # stale record (its pinned load retired): expunge lazily
                record.valid = False
                free_slot = free_slot or record
                continue
            if record.addr_hash == target_hash:
                if live_line != line:
                    # address-hash collision: deny, as if out of space
                    self.stats.bump("hash_collision_denials")
                    self.stats.bump("denials")
                    return False
                # the line is already pinned by an older load: just take
                # over as the youngest pinned load of the line
                record.lq_id = lq_id
                self.stats.bump("merged_pins")
                return True
        if free_slot is None:
            self.stats.bump("denials")
            return False
        free_slot.valid = True
        free_slot.addr_hash = target_hash
        free_slot.lq_id = lq_id
        self.stats.bump("new_pins")
        return True

    def cancel(self, line: int, placement: Hashable, lq_id: int) -> None:
        """Roll back a ``try_pin`` that a later check vetoed (e.g. the L1
        CST accepted but the directory CST denied)."""
        entry = self._table[_hash_key(placement, self.entries)]
        for record in entry:
            if record.valid and record.lq_id == lq_id \
                    and record.addr_hash == _hash_line(line):
                record.valid = False
                return

    def clear(self) -> None:
        """Wholesale reset (LQ-ID wraparound drain, §6.2)."""
        for entry in self._table:
            for record in entry:
                record.valid = False

    @property
    def denial_rate(self) -> float:
        attempts = self.stats["attempts"]
        return self.stats["denials"] / attempts if attempts else 0.0

    def storage_bits(self, lq_id_tag_bits: int,
                     addr_hash_bits: int = ADDR_HASH_BITS) -> int:
        """Total storage of the table (for the Table 1 hardware numbers)."""
        record_bits = addr_hash_bits + lq_id_tag_bits + 1
        return self.entries * self.records_per_entry * record_bits
