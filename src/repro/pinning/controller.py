"""The Pinned Loads controller: Late and Early Pinning (paper §5).

The controller walks the load queue in program order each cycle and tries
to make the first not-yet-MCV-safe load safe.  A load becomes MCV-safe by:

* the oldest-load exemption — under the aggressive TSO implementation the
  oldest load in the ROB can never be MCV-squashed (§3.3), so it passes the
  VP downstream without consuming pin resources;
* **pinning** — guaranteeing its line can be neither invalidated (deferral,
  §5.1.1) nor evicted (denial, §5.1.3) until retirement.

A load may be pinned only if (paper invariants):

1. it has met every VP condition except no-MCV (branches resolved, no
   aliasing window, no exception risk, own address generated);
2. all older loads are already MCV-safe (strict program-order pinning);
3. no older MFENCE / LOCK / barrier is in flight;
4. the write buffer can hold every yet-to-complete older store (§5.1.2);
5. its line is not in the Cannot-Pin Table, and the CPT has not overflowed;
6. *Early Pinning only*: the L1 CST and the directory/LLC CST both grant
   space (§5.1.4) — then the load is pinned even before issuing;
7. *Late Pinning only*: the load's data response has arrived, proving the
   caches had space (§5.2.1).

LQ IDs are allocated from a wide tag (24 bits by default); on wraparound
the controller drains — stops pinning until every pinned load retires —
then clears the CSTs and restarts (§6.2).
"""

from __future__ import annotations

from typing import Dict, Optional, Set, Tuple

from repro.common.params import PinningMode
from repro.common.stats import StatSet
from repro.core.rob import FLAG_MCV_SAFE, ROBEntry
from repro.pinning.cpt import CannotPinTable
from repro.pinning.cst import CacheShadowTable
from repro.pinning.recording import L1TagPinRecord

#: "No live value" sentinel for hoisted LazyMinSet mins (above any index).
_NO_MIN = 1 << 62


class PinnedLoadsController:
    """Per-core pinning logic shared by the LP and EP designs.

    Quiet/wakeup contract (``Core.quiet_until``): ``tick`` is a pure
    function of state that only changes through event-mediated or
    flagged transitions — coherence messages (CPT inserts/clears,
    invalidations), fills (LP data arrival), retires and squashes
    (releases, write-buffer and serializing windows), and dispatches
    (LQ ID allocation).  Every one of those re-arms the core's
    ``_wake_pending`` flag, so the optimized run loop may skip the
    controller's tick whenever the flag is clear: rerunning the pin
    chain on unchanged state denies the same load for the same reason
    and pins nothing.  Denial statistics are therefore counted per
    *episode* — once per (load, reason) — never per retry tick, so they
    are identical whether the chain reruns every cycle (the reference
    loop) or only on wakeups (the optimized loop).
    """

    # "__dict__" stays in the slots: the opt-in invariant sanitizer
    # shadows ``_pin``/``_unpin`` on the instance
    __slots__ = (
        "core", "config", "params", "mode", "stats", "cpt",
        "l1_tag_record", "_lq_id_limit", "_next_lq_id", "_live_lq",
        "_draining", "_pinned_counts", "pinned_total", "_l1_set_lines",
        "_dir_set_lines", "_cst_denied_seen", "_denied_reasons",
        "l1_cst", "dir_cst", "__dict__",
    )

    def __init__(self, core) -> None:
        self.core = core
        self.config = core.config
        self.params = core.config.pinning
        self.mode: PinningMode = self.params.mode
        self.stats = StatSet()
        self.cpt = CannotPinTable(
            self.params.cpt_entries, ideal=self.params.ideal_cpt,
            reservation_queue=self.params.cpt_reservation_queue)
        self.l1_tag_record = (L1TagPinRecord()
                              if self.params.pin_record == "l1tag" else None)
        self._lq_id_limit = 1 << self.params.lq_id_tag_bits
        self._next_lq_id = 0
        self._live_lq: Dict[int, ROBEntry] = {}
        self._draining = False
        self._pinned_counts: Dict[int, int] = {}
        self.pinned_total = 0
        # ground truth for CST false-positive accounting (§9.2.1)
        self._l1_set_lines: Dict[int, Set[int]] = {}
        self._dir_set_lines: Dict[Tuple[int, int], Set[int]] = {}
        # loads whose CST denial was already counted (a denied pin retries
        # every cycle; stats count denial *episodes*, not retries)
        self._cst_denied_seen: Set[int] = set()
        # same episode rule for the pin-chain denial reasons, keyed by
        # LQ ID: retry counts would depend on how often the chain runs,
        # which the optimized loop deliberately reduces
        self._denied_reasons: Dict[int, Set[str]] = {}
        self.l1_cst = CacheShadowTable(
            self.params.l1_cst_entries, self.params.l1_cst_records,
            self._live_line_of, infinite=self.params.infinite_cst)
        self.dir_cst = CacheShadowTable(
            self.params.dir_cst_entries, self.params.dir_cst_records,
            self._live_line_of, infinite=self.params.infinite_cst)

    # ------------------------------------------------------------------
    # LQ ID management (wide tag + wraparound drain)
    # ------------------------------------------------------------------

    def _live_line_of(self, lq_id: int) -> Optional[int]:
        """CST staleness check: line pinned under this LQ ID, or None."""
        entry = self._live_lq.get(lq_id)
        if entry is None or not entry.pinned:
            return None
        return entry.line

    def on_load_dispatch(self, entry: ROBEntry) -> None:
        if self.mode is PinningMode.NONE:
            return
        if self._next_lq_id >= self._lq_id_limit:
            self._draining = True
            self.stats.bump("lq_id_wraparounds")
            self._next_lq_id = 0
        while self._next_lq_id in self._live_lq:
            self._next_lq_id += 1
        entry.lq_id = self._next_lq_id
        self._live_lq[self._next_lq_id] = entry
        self._next_lq_id += 1

    def _release(self, entry: ROBEntry) -> None:
        lq_id = entry.lq_id
        if lq_id is not None:
            self._live_lq.pop(lq_id, None)
            self._cst_denied_seen.discard(lq_id)
            self._denied_reasons.pop(lq_id, None)
        if entry.pinned:
            self._unpin(entry)

    def on_load_retire(self, entry: ROBEntry) -> None:
        self._release(entry)

    def on_load_squash(self, entry: ROBEntry) -> None:
        if entry.pinned:
            # a pinned load is unsquashable by construction; this counter
            # must stay at zero (asserted by the test suite)
            self.stats.bump("pinned_squashed")
        self._release(entry)

    # ------------------------------------------------------------------
    # Pin/unpin bookkeeping
    # ------------------------------------------------------------------

    def has_pinned(self, line: int) -> bool:
        return line in self._pinned_counts

    def _pin(self, entry: ROBEntry) -> None:
        line = entry.line
        entry.pinned = True
        entry.mcv_safe = True
        count = self._pinned_counts.get(line, 0)
        self._pinned_counts[line] = count + 1
        self.pinned_total += 1
        self.stats.bump("pins")
        if self.l1_tag_record is not None:
            in_l1 = self.core.mem.l1_hit(self.core.core_id, line)
            self.l1_tag_record.on_pin(line, entry.lq_id, line_in_l1=in_l1)
        if count == 0:
            mem = self.core.mem
            self._l1_set_lines.setdefault(mem.l1_set_of(line), set()).add(line)
            self._dir_set_lines.setdefault(mem.slice_and_set_of(line),
                                           set()).add(line)
        self.core.note_vp_reached(entry)

    def _unpin(self, entry: ROBEntry) -> None:
        line = entry.line
        entry.pinned = False
        if self.l1_tag_record is not None:
            self.l1_tag_record.on_unpin(line, entry.lq_id)
        remaining = self._pinned_counts.get(line, 0) - 1
        self.pinned_total -= 1
        if remaining <= 0:
            self._pinned_counts.pop(line, None)
            mem = self.core.mem
            lines = self._l1_set_lines.get(mem.l1_set_of(line))
            if lines is not None:
                lines.discard(line)
            lines = self._dir_set_lines.get(mem.slice_and_set_of(line))
            if lines is not None:
                lines.discard(line)
        else:
            self._pinned_counts[line] = remaining

    # ------------------------------------------------------------------
    # Per-cycle pin chain
    # ------------------------------------------------------------------

    def tick(self) -> None:
        if self.mode is PinningMode.NONE:
            return
        if self._draining:
            if self.pinned_total == 0:
                self._draining = False
                self.l1_cst.clear()
                self.dir_cst.clear()
            else:
                return
        lq = self.core.lq
        if lq._tail == lq._head:
            return
        # The pin chain never mutates the VP condition sets (it marks
        # ``mcv_safe``/``vp_cycle`` and touches CST/CPT state only), so
        # each set's min is read once per chain run instead of once per
        # ``none_below`` probe per load.  The pre-MCV conditions
        # (branches + alias + exception windows, per
        # ``conditions_before_mcv`` at the EXCEPT level) merge into one
        # bound: they are all side-effect-free index compares.
        vp = self.core.vp_state
        m = vp.unresolved_branches.min()
        bound = m if m is not None else _NO_MIN
        m = vp.unknown_addr_stores.min()
        if m is not None and m < bound:
            bound = m
        m = vp.unknown_addr_memops.min()
        if m is not None and m < bound:
            bound = m
        m = vp.serializing.min()
        ser_bound = m if m is not None else _NO_MIN
        m = vp.unretired_loads.min()
        url_bound = m if m is not None else _NO_MIN
        ring = lq._ring
        qmask = lq._qmask
        for pos in range(lq._head, lq._tail):
            load = ring[pos & qmask]
            if load.cols.flags[load.slot] & FLAG_MCV_SAFE:
                continue
            if not self._try_make_safe(load, bound, ser_bound, url_bound):
                break

    def _try_make_safe(self, load: ROBEntry, bound: int, ser_bound: int,
                       url_bound: int) -> bool:
        """Try to make the first non-safe load MCV-safe.  Returns True when
        the chain may continue to the next (younger) load this cycle.
        The bounds are the chain-constant set mins hoisted by ``tick``
        (``_NO_MIN`` when the set is empty)."""
        # forwarded loads never read a cache line: trivially MCV-safe
        if load.forwarded and load.performed:
            load.mcv_safe = True
            self.core.note_vp_reached(load)
            return True
        index = load.index
        if not load.addr_ready or bound < index:
            return False
        if ser_bound < index:
            self._deny(load, "pin_denied_serializing")
            return False
        # oldest-load exemption: no pin resources needed (§3.3)
        if self.params.aggressive_tso and url_bound >= index:
            load.mcv_safe = True
            self.stats.bump("oldest_exemptions")
            self.core.note_vp_reached(load)
            return True
        if self.cpt.pinning_blocked:
            self._deny(load, "pin_denied_cpt_blocked")
            return False
        if load.line in self.cpt:
            self._deny(load, "pin_denied_cpt")
            return False
        if not self._write_buffer_ok(load):
            self._deny(load, "pin_denied_wb")
            return False
        if self.mode is PinningMode.EARLY:
            return self._early_pin(load)
        return self._late_pin(load)

    def _deny(self, load: ROBEntry, reason: str) -> None:
        """Count a pin-chain denial once per (load, reason) episode.  A
        denied pin retries on every chain run; how often the chain runs
        is a property of the run *loop* (every cycle under the reference
        loop, wakeups only under the optimized one), so per-retry counts
        would not be loop-invariant."""
        reasons = self._denied_reasons.setdefault(load.lq_id, set())
        if reason not in reasons:
            reasons.add(reason)
            self.stats.bump(reason)

    def _write_buffer_ok(self, load: ROBEntry) -> bool:
        """§5.1.2: every yet-to-complete store older than the load must fit
        in the write buffer, or the Figure 4 deadlock becomes possible.
        The SQ is program-ordered, so the older-store count stops at the
        first younger store."""
        index = load.index
        older_sq_stores = 0
        for store in self.core.sq:
            if store.index >= index:
                break
            older_sq_stores += 1
        write_buffer = self.core.write_buffer
        return older_sq_stores + len(write_buffer._entries) \
            <= write_buffer.capacity

    # -- Early Pinning -------------------------------------------------

    def _early_pin(self, load: ROBEntry) -> bool:
        line = load.line
        mem = self.core.mem
        l1_set = mem.l1_set_of(line)
        slice_id, dir_set = mem.slice_and_set_of(line)
        # linear placement keys: regular set strides rotate uniformly
        # through the CST entries (see cst._hash_key)
        dir_key = dir_set * self.config.num_slices + slice_id
        if not self.l1_cst.try_pin(line, l1_set, load.lq_id):
            self._account_false_positive(
                load, "l1", self._l1_set_lines.get(l1_set, ()), line,
                self.config.l1d.ways)
            return False
        if not self.dir_cst.try_pin(line, dir_key, load.lq_id):
            self.l1_cst.cancel(line, l1_set, load.lq_id)
            self._account_false_positive(
                load, "dir", self._dir_set_lines.get((slice_id, dir_set),
                                                     ()),
                line, self.params.w_d)
            return False
        self._cst_denied_seen.discard(load.lq_id)
        self.stats.bump("cst_pin_episodes")
        self._pin(load)
        return True

    def _account_false_positive(self, load: ROBEntry, which: str,
                                pinned_lines, line: int,
                                capacity: int) -> None:
        """A CST denial is a false positive when the real structure still
        has room (or already holds the line) — §9.2.1's metric.  Counted
        once per denial episode (a denied pin retries every cycle)."""
        if load.lq_id in self._cst_denied_seen:
            return
        self._cst_denied_seen.add(load.lq_id)
        self.stats.bump(f"cst_{which}_denials")
        if line in pinned_lines or len(pinned_lines) < capacity:
            self.stats.bump(f"cst_{which}_false_positives")

    # -- Late Pinning ----------------------------------------------------

    def _late_pin(self, load: ROBEntry) -> bool:
        if load.performed:
            # e.g. the load already executed speculatively under DOM/STT;
            # its line is still resident (else it would have been squashed)
            self._pin(load)
            return True
        if load.parked:
            # data arrived but pinning failed then; retried in lp_retry()
            return False
        if load.outstanding:
            return False
        if not load.addr_ready or load.issued:
            return False
        # authorize the issue; the pin happens on data arrival
        self.core.issue_load_for_pinning(load)
        return False

    def on_pinned_fill(self, load: ROBEntry) -> None:
        """An already-pinned load's data arrived: in the §6.1.2 design the
        MSHR's Pinned bit is copied into the L1 tag."""
        if self.l1_tag_record is not None:
            self.l1_tag_record.on_fill(load.line)

    def lp_data_arrived(self, load: ROBEntry) -> bool:
        """A Late-Pinning-authorized load's data arrived.  Pin it if the
        CPT still allows; otherwise the core parks the load (the data is in
        the L1 but is not consumed until the pin succeeds)."""
        if self._draining or self.cpt.pinning_blocked \
                or load.line in self.cpt:
            self.stats.bump("lp_pin_deferred_on_arrival")
            return False
        self._pin(load)
        return True

    # ------------------------------------------------------------------
    # CorePort delegation
    # ------------------------------------------------------------------

    def cpt_insert(self, line: int, writer: Optional[int] = None) -> None:
        self.cpt.insert(line, writer=writer)

    def cpt_clear(self, line: int) -> None:
        self.cpt.remove(line)

    # ------------------------------------------------------------------
    # Reporting
    # ------------------------------------------------------------------

    def false_positive_rate(self, which: str) -> float:
        """False-positive denial episodes per pin episode (§9.2.1)."""
        episodes = (self.stats["cst_pin_episodes"]
                    + self.stats["cst_l1_denials"]
                    + self.stats["cst_dir_denials"])
        if not episodes:
            return 0.0
        return self.stats[f"cst_{which}_false_positives"] / episodes
