"""Alternative pinned-line recording: Pinned bits in the L1 tags (§6.1.2).

The paper's chosen design keeps one Pinned bit per LQ entry (§6.1.1),
which is what ``PinnedLoadsController`` models by default.  This module
implements the alternative it describes and argues against: a Pinned bit
per L1 line, plus a **Youngest Pinned Load (YPL)** bit per LQ entry so the
hardware knows which retirement must clear the cache bit.

Semantics implemented faithfully:

* When a load pins a line that no current load has pinned, the L1 tag
  (or, if the line is still in flight, the MSHR — Early Pinning can pin
  before the data arrives) gets its Pinned bit set, and the load's LQ
  entry gets the YPL bit.
* When a load pins a line that is already pinned, the YPL bit *passes*
  from the older LQ entry to the new youngest one; no L1 access is made.
* Only the retirement of the YPL holder accesses the L1 to clear the
  Pinned bit; other pinned loads of the line retire silently.

The paper rejects this design because pin/unpin operations are far more
frequent than invalidations/evictions, so pushing them through the L1
adds port pressure — the ``l1_bit_accesses`` counter this class keeps is
exactly that cost, and the included benchmark-level statistics let a user
reproduce the comparison.
"""

from __future__ import annotations

from typing import Dict, Optional

from repro.common.stats import StatSet


class _LineRecord:
    __slots__ = ("count", "ypl_lq_id", "in_mshr")

    def __init__(self, ypl_lq_id: int, in_mshr: bool) -> None:
        self.count = 1
        self.ypl_lq_id = ypl_lq_id
        self.in_mshr = in_mshr


class L1TagPinRecord:
    """Mirror of the L1-tag/MSHR Pinned bits and the LQ YPL bits."""

    __slots__ = ("_lines", "stats")

    def __init__(self) -> None:
        self._lines: Dict[int, _LineRecord] = {}
        self.stats = StatSet()

    def on_pin(self, line: int, lq_id: int, line_in_l1: bool) -> None:
        """A load of ``lq_id`` pinned ``line``.

        ``line_in_l1`` distinguishes the L1-tag bit from the MSHR bit
        (Early Pinning may pin before the fill arrives).
        """
        record = self._lines.get(line)
        if record is None:
            self._lines[line] = _LineRecord(lq_id, in_mshr=not line_in_l1)
            if line_in_l1:
                self.stats.bump("l1_bit_accesses")   # set Pinned bit
                self.stats.bump("l1_bits_set")
            else:
                self.stats.bump("mshr_bits_set")
            return
        # the line is already pinned: pass the YPL bit to the new,
        # younger load — an LQ-local operation, no L1 access (§6.1.2)
        record.count += 1
        record.ypl_lq_id = lq_id
        self.stats.bump("ypl_passes")

    def on_fill(self, line: int) -> None:
        """The data of an MSHR-pinned line arrived: the Pinned bit is
        copied from the MSHR into the L1 tag."""
        record = self._lines.get(line)
        if record is not None and record.in_mshr:
            record.in_mshr = False
            self.stats.bump("l1_bit_accesses")
            self.stats.bump("mshr_bits_copied")

    def on_unpin(self, line: int, lq_id: int) -> bool:
        """A pinned load retired (or was released).  Returns True when the
        retiring load held the YPL bit and therefore had to access the L1
        to clear the line's Pinned bit."""
        record = self._lines.get(line)
        if record is None:
            return False
        record.count -= 1
        if record.count <= 0:
            del self._lines[line]
            if not record.in_mshr:
                self.stats.bump("l1_bit_accesses")   # clear Pinned bit
            self.stats.bump("l1_bits_cleared")
            return record.ypl_lq_id == lq_id
        return False

    def is_pinned(self, line: int) -> bool:
        return line in self._lines

    def ypl_holder(self, line: int) -> Optional[int]:
        record = self._lines.get(line)
        return record.ypl_lq_id if record is not None else None

    @property
    def pinned_line_count(self) -> int:
        return len(self._lines)
