"""Pinned Loads: the paper's primary contribution (LP/EP, CST, CPT)."""

from repro.pinning.controller import PinnedLoadsController
from repro.pinning.cpt import CannotPinTable
from repro.pinning.cst import CacheShadowTable
from repro.pinning.recording import L1TagPinRecord

__all__ = ["CacheShadowTable", "CannotPinTable", "L1TagPinRecord",
           "PinnedLoadsController"]
