"""CACTI-lite: an analytical small-SRAM area/energy/leakage model.

The paper reports Table 1 hardware numbers for the CSTs using CACTI 7.0 at
22 nm: the L1 CST (444 B) costs 0.0008 mm^2, 0.6 pJ/read, 0.17 mW leakage;
the directory/LLC CST (370 B) costs 0.0005 mm^2, 0.4 pJ/read, 0.17 mW.  A
full CACTI is out of scope; for arrays this small the standard analytical
decomposition (bit-cell array + per-bit periphery + fixed decoder/sense
overhead) reproduces the reported magnitudes, with coefficients calibrated
at 22 nm against those two published points.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

# 22 nm calibration constants
_BITCELL_UM2 = 0.110          # 6T SRAM cell, dense variant
_PERIPHERY_FACTOR = 1.05      # per-bit wordline/bitline overhead
_FIXED_AREA_UM2 = 80.0        # decoder + sense amps + comparators
_READ_PJ_PER_WORD_BIT = 7.54e-4   # sense/mux energy per bit read out
_READ_PJ_PER_SQRT_BIT = 6.33e-3   # bitline precharge energy ~ array edge
_LEAK_UW_PER_BIT = 0.040      # bit-cell + periphery leakage
_LEAK_FIXED_UW = 30.0         # always-on periphery


@dataclass(frozen=True)
class SramEstimate:
    """Estimated physical cost of one small SRAM structure."""

    bits: int
    area_mm2: float
    read_energy_pj: float
    leakage_mw: float

    @property
    def bytes(self) -> int:
        return self.bits // 8


def estimate_sram(total_bits: int, word_bits: int) -> SramEstimate:
    """Estimate area, read energy, and leakage for a small SRAM array.

    ``word_bits`` is the number of bits driven per access (one record for a
    CST read).  Valid for the sub-kilobyte structures Pinned Loads adds;
    large-cache estimation needs a real CACTI.
    """
    if total_bits <= 0 or word_bits <= 0:
        raise ValueError("bit counts must be positive")
    area_um2 = (total_bits * _BITCELL_UM2 * _PERIPHERY_FACTOR
                + _FIXED_AREA_UM2)
    read_pj = (_READ_PJ_PER_WORD_BIT * word_bits
               + _READ_PJ_PER_SQRT_BIT * math.sqrt(total_bits))
    leak_mw = (_LEAK_UW_PER_BIT * total_bits + _LEAK_FIXED_UW) / 1000.0
    return SramEstimate(bits=total_bits, area_mm2=area_um2 / 1e6,
                        read_energy_pj=read_pj, leakage_mw=leak_mw)


def cst_hardware_table(l1_entries: int = 12, l1_records: int = 8,
                       dir_entries: int = 40, dir_records: int = 2,
                       lq_id_tag_bits: int = 24,
                       addr_hash_bits: int = 12) -> dict:
    """The Table 1 CST rows: storage, area, read energy, leakage.

    Returns a dict with ``l1_cst`` and ``dir_cst`` sub-dicts, each holding
    ``bytes``, ``area_mm2``, ``read_energy_pj``, and ``leakage_mw``.
    """
    record_bits = addr_hash_bits + lq_id_tag_bits + 1
    table = {}
    for name, entries, records in (("l1_cst", l1_entries, l1_records),
                                   ("dir_cst", dir_entries, dir_records)):
        bits = entries * records * record_bits
        estimate = estimate_sram(bits, word_bits=record_bits * records)
        table[name] = {
            "bytes": bits / 8.0,
            "area_mm2": estimate.area_mm2,
            "read_energy_pj": estimate.read_energy_pj,
            "leakage_mw": estimate.leakage_mw,
        }
    return table
