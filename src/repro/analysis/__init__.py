"""Evaluation analysis: overhead breakdowns, tables, hardware cost model."""

from repro.analysis.area import SramEstimate, cst_hardware_table, estimate_sram
from repro.analysis.breakdown import (CONDITION_LEVELS, geomean_stack,
                                      stacked_overheads, vp_condition_cycles)
from repro.analysis.tables import (format_breakdown_table,
                                   format_normalized_cpi_table,
                                   format_stat_table, geomean_overhead_pct)

__all__ = [
    "CONDITION_LEVELS", "SramEstimate", "cst_hardware_table",
    "estimate_sram", "format_breakdown_table",
    "format_normalized_cpi_table", "format_stat_table", "geomean_stack",
    "geomean_overhead_pct", "stacked_overheads", "vp_condition_cycles",
]
