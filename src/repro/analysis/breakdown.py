"""Execution-overhead breakdown by VP condition (Figures 1 and 9).

The paper's methodology: take a defense scheme and remove its protection of
a load at four successively later times — when no squash is possible due to
(i) branches, (ii) +aliasing, (iii) +exceptions, (iv) +MCVs.  The stacked
difference between successive environments attributes overhead to each
squash source.  We reproduce this by running the scheme at the four
cumulative ``ThreatModel`` levels.
"""

from __future__ import annotations

from typing import Callable, Dict, List, Mapping

from repro.common.params import (DefenseKind, PinningMode, SystemConfig,
                                 ThreatModel)
from repro.common.stats import geomean
from repro.sim.results import SimResult

#: Figure 1 legend order, bottom of the stack first.
CONDITION_LEVELS = [
    ("ctrl", ThreatModel.CTRL),
    ("alias", ThreatModel.ALIAS),
    ("exception", ThreatModel.EXCEPT),
    ("mcv", ThreatModel.MCV),
]


def vp_condition_cycles(base_config: SystemConfig, defense: DefenseKind,
                        run: Callable[[SystemConfig], SimResult],
                        ) -> Dict[str, int]:
    """Run ``defense`` at each cumulative VP-condition level plus Unsafe.

    ``run`` maps a config to a result (typically a cache-backed runner
    closure over one workload).  Returns cycles per level, including an
    ``unsafe`` entry.
    """
    cycles: Dict[str, int] = {}
    cycles["unsafe"] = run(base_config.with_defense(DefenseKind.UNSAFE,
                                                    ThreatModel.MCV)).cycles
    for label, level in CONDITION_LEVELS:
        config = base_config.with_defense(defense, level, PinningMode.NONE)
        cycles[label] = run(config).cycles
    return cycles


def stacked_overheads(cycles: Mapping[str, int]) -> Dict[str, float]:
    """Per-condition overhead contributions (%) from level cycle counts.

    The contribution of a condition is the overhead *added* by also waiting
    for it: e.g. ``mcv = overhead(MCV level) - overhead(EXCEPT level)``.
    Contributions are clamped at zero — level runs are independent
    simulations, so tiny negative diffs can appear from scheduling noise.
    """
    unsafe = cycles["unsafe"]
    if unsafe <= 0:
        raise ValueError("unsafe cycle count must be positive")
    overheads = {label: (cycles[label] - unsafe) / unsafe * 100.0
                 for label, _ in CONDITION_LEVELS}
    stack: Dict[str, float] = {}
    previous = 0.0
    for label, _ in CONDITION_LEVELS:
        stack[label] = max(overheads[label] - previous, 0.0)
        previous = overheads[label]
    return stack


def geomean_stack(per_app_cycles: List[Mapping[str, int]],
                  ) -> Dict[str, float]:
    """Suite-level Figure 1 bar: stack of the geomean normalized CPIs."""
    if not per_app_cycles:
        raise ValueError("no applications")
    labels = [label for label, _ in CONDITION_LEVELS]
    mean_cycles: Dict[str, float] = {}
    for key in ["unsafe"] + labels:
        mean_cycles[key] = geomean([app[key] / app["unsafe"]
                                    for app in per_app_cycles])
    # mean_cycles are now normalized CPIs (unsafe == 1.0)
    return stacked_overheads({k: v for k, v in mean_cycles.items()})
