"""Plain-text rendering of the paper's figures and tables.

The benchmark harnesses print these so that a run of
``pytest benchmarks/ --benchmark-only`` regenerates the same rows/series
the paper reports (normalized CPIs per app and geomean, stacked overhead
breakdowns, hardware-structure statistics).
"""

from __future__ import annotations

from typing import Dict, List, Mapping, Optional, Sequence

from repro.common.stats import geomean


def format_normalized_cpi_table(title: str, apps: Sequence[str],
                                columns: Sequence[str],
                                data: Mapping[str, Mapping[str, float]],
                                ) -> str:
    """One Figure 7/8 panel: rows = apps (+ geomean), cols = configs.

    ``data[app][column]`` is the normalized CPI.
    """
    width = max(len(app) for app in list(apps) + ["Geo.Mean"]) + 2
    lines = [title, "-" * len(title)]
    header = "".join(f"{col:>10}" for col in columns)
    lines.append(f"{'':{width}}{header}")
    for app in apps:
        row = "".join(f"{data[app][col]:>10.3f}" for col in columns)
        lines.append(f"{app:{width}}{row}")
    means = {col: geomean([data[app][col] for app in apps])
             for col in columns}
    row = "".join(f"{means[col]:>10.3f}" for col in columns)
    lines.append(f"{'Geo.Mean':{width}}{row}")
    return "\n".join(lines)


def format_breakdown_table(title: str,
                           stacks: Mapping[str, Mapping[str, float]],
                           extra: Optional[Mapping[str, Mapping[str, float]]]
                           = None,
                           ) -> str:
    """A Figure 1/9 panel: stacked per-condition overheads (%) per group,
    optionally followed by extra columns (e.g. LP/EP total overheads)."""
    condition_order = ["ctrl", "alias", "exception", "mcv"]
    lines = [title, "-" * len(title)]
    header = "".join(f"{c:>12}" for c in condition_order) + f"{'total':>12}"
    if extra:
        extra_cols = sorted(next(iter(extra.values())).keys())
        header += "".join(f"{c:>12}" for c in extra_cols)
    else:
        extra_cols = []
    group_width = max(len(g) for g in stacks) + 2
    lines.append(f"{'':{group_width}}{header}")
    for group, stack in stacks.items():
        total = sum(stack[c] for c in condition_order)
        row = "".join(f"{stack[c]:>11.1f}%" for c in condition_order)
        row += f"{total:>11.1f}%"
        for col in extra_cols:
            row += f"{extra[group][col]:>11.1f}%"
        lines.append(f"{group:{group_width}}{row}")
    return "\n".join(lines)


def format_stat_table(title: str, rows: Mapping[str, Mapping[str, float]],
                      float_format: str = "{:.4g}") -> str:
    """Generic named-rows/named-columns table for the §9.2 studies."""
    columns: List[str] = sorted({col for row in rows.values()
                                 for col in row})
    name_width = max(len(name) for name in rows) + 2
    lines = [title, "-" * len(title)]
    lines.append(f"{'':{name_width}}"
                 + "".join(f"{col:>16}" for col in columns))
    for name, row in rows.items():
        cells = "".join(
            f"{float_format.format(row[col]) if col in row else '-':>16}"
            for col in columns)
        lines.append(f"{name:{name_width}}{cells}")
    return "\n".join(lines)


def geomean_overhead_pct(normalized_cpis: Dict[str, float]) -> float:
    """Suite-level execution overhead (%) from per-app normalized CPIs."""
    return (geomean(list(normalized_cpis.values())) - 1.0) * 100.0
