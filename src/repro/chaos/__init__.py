"""Deterministic fault injection (``repro chaos``).

Chaos runs perturb the *timing* of the simulated machine — message
jitter, directory NACKs, forced evictions of unpinned lines, write-buffer
backpressure — from one seeded RNG, then assert that the architectural
outcome is unchanged and the invariant sanitizer stays silent.  See
``docs/resilience.md``.
"""

from repro.chaos.campaign import (architectural_fingerprint, format_report,
                                  run_campaign)
from repro.chaos.engine import ChaosEngine

__all__ = ["ChaosEngine", "architectural_fingerprint", "format_report",
           "run_campaign"]
