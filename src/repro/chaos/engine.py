"""The fault-injection engine behind ``SystemConfig.chaos``.

``ChaosEngine`` hooks into one ``System`` at three seams:

* ``MeshNetwork.send`` consults ``message_jitter`` — random extra
  latency on a fraction of messages, which also *reorders* same-cycle
  protocol messages within a bounded window;
* the directory entry points (``_dir_read``/``_dir_write``) consult
  ``nack_delay`` — a NACK-and-retry discipline with capped exponential
  backoff and a livelock escape hatch after ``max_nacks`` consecutive
  NACKs;
* self-rescheduling events on the simulation's own ``EventQueue`` drive
  forced evictions of *unpinned* lines and write-buffer backpressure
  spikes (scheduling on the queue keeps ``System.run``'s quiet-cycle
  fast-forward sound: a pending chaos event always bounds the skip).

Every random draw comes from one ``random.Random(config.seed)``, so a
chaos run is a pure function of (config, workload): same seed, same
faults, same cycle count.  Different seeds must still retire the same
instruction stream — the campaign (``repro.chaos.campaign``) asserts
exactly that.

The engine is part of the ``System`` object graph and pickles with it
(``repro.sim.checkpoint``): RNG state, backoff counters, and pending
chaos events all survive a checkpoint/resume.
"""

from __future__ import annotations

import os
import random
import signal
import time
from typing import Dict, Optional, Tuple

from repro.common.params import ChaosConfig


class ChaosEngine:
    """Seeded fault injector bound to one ``System``."""

    # the engine (RNG, backoff counters, eviction phase) is part of the
    # pickled System graph for chaos runs, so state lives in slots;
    # "__dict__" stays only for the sanitizer, which shadows the fault
    # methods with recording wrappers (sanitized systems are never
    # checkpointed — save_checkpoint refuses them)
    __slots__ = ("config", "system", "rng", "_nack_counts",
                 "_evict_l1_next", "__dict__")

    def __init__(self, config: ChaosConfig, system) -> None:
        config.validate()
        self.config = config
        self.system = system
        self.rng = random.Random(config.seed)
        #: consecutive-NACK count per (kind, core, line); cleared when a
        #: request is finally admitted so backoff restarts per episode
        self._nack_counts: Dict[Tuple[str, int, int], int] = {}
        self._evict_l1_next = True

    def install(self) -> None:
        """Attach to the system's memory/network hooks and schedule the
        first self-rescheduling fault events."""
        mem = self.system.mem
        mem.chaos = self
        mem.network.chaos = self
        events = self.system.events
        cfg = self.config
        if cfg.evict_interval:
            events.schedule_after(cfg.evict_interval, self._evict_tick)
        if cfg.wb_spike_interval:
            events.schedule_after(cfg.wb_spike_interval,
                                  self._wb_spike_start)
        if cfg.crash_at_cycle is not None:
            events.schedule(cfg.crash_at_cycle, self._maybe_crash)
        if cfg.stall_at_cycle is not None:
            events.schedule(cfg.stall_at_cycle, self._maybe_stall)
        if cfg.alloc_at_cycle is not None:
            events.schedule(cfg.alloc_at_cycle, self._maybe_alloc)

    # ------------------------------------------------------------------
    # Hooks consulted by the memory system
    # ------------------------------------------------------------------

    def message_jitter(self, src: int, dst: int, kind: str) -> int:
        """Extra cycles of latency for one network message (0 = none)."""
        cfg = self.config
        if cfg.msg_jitter and self.rng.random() < cfg.msg_jitter_prob:
            return self.rng.randint(1, cfg.msg_jitter)
        return 0

    def nack_delay(self, kind: str, core_id: int, line: int) -> int:
        """Cycles the directory NACKs this request for (0 = admitted).

        Consecutive NACKs of the same (kind, core, line) back off
        exponentially from ``nack_backoff`` up to ``nack_backoff_cap``;
        after ``max_nacks`` consecutive NACKs the request is admitted
        unconditionally, so retry storms cannot livelock the protocol.
        """
        cfg = self.config
        key = (kind, core_id, line)
        count = self._nack_counts.get(key, 0)
        if count >= cfg.max_nacks or self.rng.random() >= cfg.nack_prob:
            if count:
                del self._nack_counts[key]
            return 0
        self._nack_counts[key] = count + 1
        return min(cfg.nack_backoff << count, cfg.nack_backoff_cap)

    # ------------------------------------------------------------------
    # Self-rescheduling fault events
    # ------------------------------------------------------------------

    def _evict_tick(self) -> None:
        if self._evict_l1_next:
            self._force_l1_eviction()
        else:
            self._force_llc_eviction()
        self._evict_l1_next = not self._evict_l1_next
        self.system.events.schedule_after(self.config.evict_interval,
                                          self._evict_tick)

    def _force_l1_eviction(self) -> None:
        """Evict one random unpinned L1 line through the normal capacity
        eviction path (so the sanitizer observes it and the MCV-squash
        check fires, §2).  Lines mid-transaction are off limits: a busy
        line has a write completing and an MSHR line has a fill in
        flight — evicting either would desync directory and L1 in ways
        no real victim pick can.

        Under the ``evict-pinned`` mutation the filter is inverted —
        only *pinned* lines are targeted, which violates the paper's
        §5.1.3 guarantee and MUST be flagged by the sanitizer (campaign
        self-test).
        """
        mem = self.system.mem
        core_id = self.rng.randrange(len(mem.l1s))
        port = mem.ports[core_id]
        busy = mem._busy_lines
        mshrs = mem.mshrs[core_id]
        want_pinned = self.config.mutate == "evict-pinned"

        def evictable(line: int) -> bool:
            if line in busy or mshrs.outstanding(line) is not None:
                return False
            return port.has_pinned(line) == want_pinned

        victim = mem.l1s[core_id].sample_resident_line(self.rng, evictable)
        if victim is None:
            return
        mem.stats.bump("chaos_forced_evictions")
        mem._evict_l1(core_id, victim)

    def _force_llc_eviction(self) -> None:
        """Back-invalidate one random LLC line that nobody has pinned,
        exercising the inclusive-eviction path (§5.1.3) off the normal
        replacement schedule.  Skips busy lines and any line with an
        outstanding MSHR in *any* core: an in-flight fill expects the
        directory entry it was granted against to still exist.
        """
        mem = self.system.mem
        slice_id = self.rng.randrange(mem.num_slices)
        slice_array = mem.slices[slice_id]
        busy = mem._busy_lines

        def evictable(line: int) -> bool:
            if line in busy or mem._line_pinned_anywhere(line):
                return False
            return all(m.outstanding(line) is None for m in mem.mshrs)

        victim = slice_array.sample_resident_line(self.rng, evictable)
        if victim is None:
            return
        dir_entry = slice_array.lookup(victim, touch=False)
        for holder in sorted(dir_entry.holders()):
            if mem.l1s[holder].invalidate(victim):
                mem.network.send(slice_id, holder, "back_inv")
                mem.ports[holder].on_line_evicted(victim)
        slice_array.invalidate(victim)
        mem.stats.bump("llc_evictions")
        mem.stats.bump("chaos_forced_evictions")

    def _wb_spike_start(self) -> None:
        cfg = self.config
        cores = self.system.cores
        core = cores[self.rng.randrange(len(cores))]
        if not core.done:
            core.write_buffer.backpressure = True
            self.system.mem.stats.bump("chaos_wb_spikes")
            self.system.events.schedule_after(
                max(1, cfg.wb_spike_duration), self._wb_spike_end,
                core.core_id)
        self.system.events.schedule_after(cfg.wb_spike_interval,
                                          self._wb_spike_start)

    def _wb_spike_end(self, core_id: int) -> None:
        self.system.cores[core_id].write_buffer.backpressure = False

    # ------------------------------------------------------------------
    # Executor fault injection (tests for the self-healing executor)
    # ------------------------------------------------------------------

    def _worker_attempt(self) -> Optional[int]:
        """The current pool-worker attempt number, or ``None`` when not
        running inside an executor pool worker (serial runs and direct
        ``System.run`` calls never inject process faults)."""
        # deferred import: repro.sim.executor imports the sim stack
        from repro.sim import executor
        if not executor.IN_POOL_WORKER:
            return None
        return executor.CURRENT_ATTEMPT

    def _maybe_crash(self) -> None:
        attempt = self._worker_attempt()
        if attempt is None or attempt > self.config.crash_attempts:
            return
        os.kill(os.getpid(), signal.SIGKILL)

    def _maybe_stall(self) -> None:
        attempt = self._worker_attempt()
        if attempt is None or attempt > self.config.stall_attempts:
            return
        time.sleep(self.config.stall_seconds)

    def _maybe_alloc(self) -> None:
        """Model a runaway simulation: allocate ``alloc_mb`` MiB and keep
        it live.  Under an executor worker memory ceiling
        (``Executor(worker_memory_mb=...)``) this raises ``MemoryError``
        inside the worker, which the executor maps to a retryable "oom"
        task failure — the host is never the OOM victim."""
        attempt = self._worker_attempt()
        if attempt is None or attempt > self.config.alloc_attempts:
            return
        # the allocation is transient (never stored on the engine, so it
        # can never leak into a checkpoint pickle): address space must be
        # committed at construction, which is where RLIMIT_AS bites
        ballast = bytearray(self.config.alloc_mb << 20)
        del ballast
