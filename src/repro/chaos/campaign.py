"""The chaos campaign: N seeded fault-injection runs per cell, asserted
architecturally identical (``repro chaos``).

Chaos only perturbs *timing*, so for every (workload, scheme) cell and
every seed the run must retire exactly the same instruction stream as
the fault-free baseline, with the invariant sanitizer silent throughout.
The campaign compares an *architectural fingerprint* per run:

* per-core retired-instruction count and ``retire_sig`` — a running
  FNV-1a hash over retired uop indices, which catches dropped, doubled,
  or out-of-order retirement that a bare count would miss;
* per-core branch-squash count — timing-independent (each mispredicted
  branch squashes exactly once, at resolution);
* the total number of performed stores.

Deliberately excluded: cycle counts, MCV/alias squash counts, cache and
network statistics — those are *supposed* to move under fault injection.

The campaign also self-tests its own teeth: a deliberately broken
mutant (``mutate="evict-pinned"``, which lets forced evictions target
pinned lines in violation of §5.1.3) must be caught by the sanitizer,
and a mid-run checkpoint/restore of a chaos run must finish with
bit-identical results (``repro.sim.checkpoint``).
"""

from __future__ import annotations

import dataclasses
from typing import Callable, Dict, List, Optional, Tuple

from repro.common.errors import InvariantViolation, JobFailedError
from repro.common.params import ChaosConfig, SystemConfig
from repro.isa.trace import Workload
from repro.sim.results import SimResult
from repro.sim.runner import run_simulation

#: Campaign-wide chaos knobs layered over ``ChaosConfig`` defaults: the
#: write-buffer spike generator is off by default (interval 0) but the
#: campaign wants every fault class exercised.
CAMPAIGN_CHAOS_DEFAULTS = {"wb_spike_interval": 400}


def architectural_fingerprint(result: SimResult) -> Dict:
    """The timing-independent outcome of one run (see module docs)."""
    cores = {}
    for core_id in sorted(result.core_stats):
        stats = result.core_stats[core_id]
        cores[str(core_id)] = {
            "retired": stats.get("retired", 0.0),
            "retire_sig": stats.get("retire_sig", 0.0),
            "squashes_branch": stats.get("squashes_branch", 0.0),
        }
    return {
        "instructions": result.instructions,
        "stores": result.mem_stats.get("stores", 0.0),
        "cores": cores,
    }


def _fingerprint_diff(baseline: Dict, other: Dict) -> List[str]:
    """Human-readable field-level differences between two fingerprints."""
    diffs: List[str] = []
    for field in ("instructions", "stores"):
        if baseline[field] != other[field]:
            diffs.append(f"{field}: {baseline[field]} != {other[field]}")
    core_ids = sorted(set(baseline["cores"]) | set(other["cores"]))
    for core_id in core_ids:
        base_core = baseline["cores"].get(core_id, {})
        other_core = other["cores"].get(core_id, {})
        for field in sorted(set(base_core) | set(other_core)):
            a, b = base_core.get(field), other_core.get(field)
            if a != b:
                diffs.append(f"core {core_id} {field}: {a} != {b}")
    return diffs


def _chaos_config(seed: int, overrides: Optional[Dict]) -> ChaosConfig:
    knobs = dict(CAMPAIGN_CHAOS_DEFAULTS)
    if overrides:
        knobs.update(overrides)
    return ChaosConfig(seed=seed, **knobs)


#: A cell runner maps (workload, scheme, sanitize, chaos knobs or None)
#: to a ``SimResult``, raising ``InvariantViolation`` when the
#: sanitizer trips.  The local runner simulates in-process; the service
#: runner submits the same cell as a bulk-priority job to a running
#: ``repro serve`` instance.
CellRunner = Callable[[str, str, bool, Optional[Dict]], SimResult]


def _local_runner(instructions: int, threads: int) -> CellRunner:
    from repro.service.jobs import build_cell
    cells: Dict[Tuple[str, str], Tuple[SystemConfig, Workload]] = {}

    def run(name: str, scheme: str, sanitize: bool,
            chaos: Optional[Dict]) -> SimResult:
        cell = cells.get((name, scheme))
        if cell is None:
            cell = cells[(name, scheme)] = build_cell(
                name, instructions, threads, scheme)
        config, workload = cell
        replacements: Dict = {}
        if sanitize:
            replacements["sanitize"] = True
        if chaos is not None:
            replacements["chaos"] = ChaosConfig(**chaos)
        if replacements:
            config = dataclasses.replace(config, **replacements)
        return run_simulation(config, workload)

    return run


def _service_runner(service_url: str, instructions: int, threads: int,
                    timeout_s: float = 600.0) -> CellRunner:
    """Run campaign cells through a live job service.

    Exercises the whole stack — admission, journal, executor — with the
    campaign's own cells at bulk priority (interactive submissions keep
    overtaking them).  A sanitizer trip inside the service surfaces as
    a failed job whose message carries the ``InvariantViolation`` text;
    it is re-raised here so campaign accounting is identical either way.
    """
    from repro.service.client import ServiceClient
    from repro.service.jobs import PRIORITY_BULK, JobSpec
    client = ServiceClient(service_url)

    def run(name: str, scheme: str, sanitize: bool,
            chaos: Optional[Dict]) -> SimResult:
        spec = JobSpec(workload=name, scheme=scheme,
                       instructions=instructions, threads=threads,
                       sanitize=sanitize, chaos=chaos,
                       priority=PRIORITY_BULK)
        try:
            return client.run(spec, timeout_s=timeout_s)
        except JobFailedError as err:
            message = str(err)
            if "InvariantViolation" in message:
                raise InvariantViolation("service-cell", message)
            raise

    return run


def _run_cell(runner: CellRunner, name: str, scheme: str,
              seeds: int, overrides: Optional[Dict]) -> Dict:
    """One (workload, scheme) cell: sanitized baseline + N chaos seeds."""
    baseline = runner(name, scheme, True, None)
    expected = architectural_fingerprint(baseline)
    cell = {
        "workload": baseline.workload_name,
        "scheme": scheme,
        "baseline_cycles": baseline.cycles,
        "seed_runs": [],
        "divergences": [],
        "violations": [],
    }
    for seed in range(seeds):
        chaos_doc = dataclasses.asdict(_chaos_config(seed, overrides))
        try:
            result = runner(name, scheme, True, chaos_doc)
        except InvariantViolation as violation:
            cell["violations"].append(
                {"seed": seed, "violation": str(violation)[:500]})
            cell["seed_runs"].append({"seed": seed, "ok": False})
            continue
        fingerprint = architectural_fingerprint(result)
        diffs = _fingerprint_diff(expected, fingerprint)
        injected = (result.mem_stats.get("chaos_nacks", 0)
                    + result.mem_stats.get("chaos_forced_evictions", 0)
                    + result.mem_stats.get("chaos_wb_spikes", 0)
                    + result.network_stats.get("chaos_jitter_msgs", 0))
        cell["seed_runs"].append({
            "seed": seed, "ok": not diffs, "cycles": result.cycles,
            "faults_injected": int(injected),
        })
        if diffs:
            cell["divergences"].append({"seed": seed, "diffs": diffs})
    return cell


def _run_self_test(runner: CellRunner, name: str, scheme: str) -> Dict:
    """Campaign self-test: the ``evict-pinned`` mutant MUST be caught.

    Forced evictions are allowed (forced, even: every tick targets a
    pinned line, at an aggressive interval) to violate the §5.1.3
    pin-safety guarantee; if the sanitizer stays silent the campaign has
    no teeth and the self-test fails.
    """
    mutant = ChaosConfig(seed=0, evict_interval=5, msg_jitter=0,
                         msg_jitter_prob=0.0, nack_prob=0.0,
                         mutate="evict-pinned")
    try:
        runner(name, scheme, True, dataclasses.asdict(mutant))
    except InvariantViolation as violation:
        return {"scheme": scheme, "detected": True,
                "violation": str(violation)[:500]}
    return {"scheme": scheme, "detected": False}


def _checkpoint_equivalence(name: str, scheme: str, instructions: int,
                            threads: int,
                            overrides: Optional[Dict]) -> Dict:
    """Mid-run snapshot/restore of a chaos run must not change anything:
    the resumed run's full result document is compared bit-for-bit
    against an uninterrupted run of the same configuration.

    Always runs in-process (even when the campaign's cells go through a
    service): it needs live ``System`` objects to snapshot mid-run.
    """
    from repro.service.jobs import build_cell
    from repro.sim.checkpoint import restore_system, snapshot_system
    from repro.sim.runner import collect_result
    from repro.sim.system import System
    base, workload = build_cell(name, instructions, threads, scheme)
    config = dataclasses.replace(
        base, sanitize=False, chaos=_chaos_config(0, overrides))
    reference = System(config, workload)
    reference.mem.warm(workload)
    reference.run()
    expected = collect_result(reference).to_dict()
    interrupted = System(config, workload)
    interrupted.mem.warm(workload)
    stop = max(1, reference.cycles // 2)
    interrupted.run(stop_cycle=stop)
    resumed = restore_system(snapshot_system(interrupted))
    resumed.run()
    actual = collect_result(resumed).to_dict()
    return {"scheme": scheme, "stop_cycle": stop,
            "cycles": reference.cycles, "identical": actual == expected}


def run_campaign(workload_names: List[str], scheme_names: List[str],
                 seeds: int = 5, instructions: int = 3000,
                 threads: int = 4, chaos_overrides: Optional[Dict] = None,
                 self_test: bool = True,
                 checkpoint_check: bool = True,
                 service_url: Optional[str] = None) -> Dict:
    """Run the full campaign; returns a JSON-serializable report whose
    ``passed`` field is the overall verdict.

    With ``service_url`` the campaign's cells are submitted as
    bulk-priority jobs to a running ``repro serve`` instance instead of
    simulating in-process, exercising admission control, the journal,
    and the executor end to end.  The checkpoint-equivalence check still
    runs locally (it snapshots live ``System`` objects mid-run).
    """
    if seeds < 1:
        raise ValueError("seeds must be >= 1")
    if service_url:
        runner = _service_runner(service_url, instructions, threads)
    else:
        runner = _local_runner(instructions, threads)
    cells = []
    for name in workload_names:
        for scheme in scheme_names:
            cells.append(_run_cell(runner, name, scheme, seeds,
                                   chaos_overrides))
    report: Dict = {
        "seeds": seeds,
        "instructions": instructions,
        "workloads": list(workload_names),
        "schemes": list(scheme_names),
        "service_url": service_url,
        "cells": cells,
        "self_test": None,
        "checkpoint_check": None,
    }
    # the self-test needs a pinning scheme (only pinned lines make the
    # mutant meaningful) and prefers a single-threaded workload so every
    # forced-eviction tick lands on the one core doing the pinning
    pinning = [s for s in scheme_names if s.endswith(("-lp", "-ep"))]
    if self_test and pinning:
        report["self_test"] = _run_self_test(
            runner, workload_names[0], pinning[0])
    if checkpoint_check:
        scheme = pinning[0] if pinning else scheme_names[0]
        report["checkpoint_check"] = _checkpoint_equivalence(
            workload_names[0], scheme, instructions, threads,
            chaos_overrides)
    failures: List[str] = []
    for cell in cells:
        label = f"{cell['workload']}/{cell['scheme']}"
        if cell["divergences"]:
            failures.append(f"{label}: architectural divergence")
        if cell["violations"]:
            failures.append(f"{label}: invariant violation under chaos")
    if report["self_test"] is not None \
            and not report["self_test"]["detected"]:
        failures.append("self-test: evict-pinned mutant went undetected")
    if report["checkpoint_check"] is not None \
            and not report["checkpoint_check"]["identical"]:
        failures.append("checkpoint: resumed run diverged")
    report["failures"] = failures
    report["passed"] = not failures
    return report


def format_report(report: Dict) -> str:
    """Terminal-friendly campaign summary."""
    lines = [f"chaos campaign: {len(report['cells'])} cell(s) x "
             f"{report['seeds']} seed(s), "
             f"{report['instructions']} instructions"]
    for cell in report["cells"]:
        runs = cell["seed_runs"]
        ok = sum(1 for run in runs if run["ok"])
        faults = sum(run.get("faults_injected", 0) for run in runs)
        cycles = [run["cycles"] for run in runs if "cycles" in run]
        spread = (f"cycles {min(cycles)}..{max(cycles)}"
                  if cycles else "no completed runs")
        lines.append(f"  {cell['workload']:<16}{cell['scheme']:<12}"
                     f"{ok}/{len(runs)} seeds identical, "
                     f"{faults} faults injected, {spread} "
                     f"(baseline {cell['baseline_cycles']})")
        for divergence in cell["divergences"]:
            for diff in divergence["diffs"][:4]:
                lines.append(f"    seed {divergence['seed']} "
                             f"DIVERGED: {diff}")
        for violation in cell["violations"]:
            lines.append(f"    seed {violation['seed']} VIOLATION: "
                         f"{violation['violation'].splitlines()[0]}")
    self_test = report.get("self_test")
    if self_test is not None:
        verdict = ("mutant detected (sanitizer has teeth)"
                   if self_test["detected"] else "MUTANT NOT DETECTED")
        lines.append(f"  self-test ({self_test['scheme']}): {verdict}")
    checkpoint = report.get("checkpoint_check")
    if checkpoint is not None:
        verdict = ("bit-identical" if checkpoint["identical"]
                   else "DIVERGED")
        lines.append(f"  checkpoint/resume ({checkpoint['scheme']}, "
                     f"stop@{checkpoint['stop_cycle']}): {verdict}")
    lines.append("PASS" if report["passed"]
                 else "FAIL: " + "; ".join(report["failures"]))
    return "\n".join(lines)
