"""Command-line interface: ``python -m repro <command> ...``.

Commands:

* ``run``        — one workload on one configuration, printed as a row
* ``grid``       — the Tables 2/3 grid (Comp/LP/EP/Spectre per scheme)
* ``breakdown``  — the Figure 1 per-condition overhead stack
* ``workloads``  — list the available benchmark profiles
* ``hardware``   — the Table 1 CST cost rows from the analytical model
* ``bench``      — the executor/cache performance benchmark; writes
  ``BENCH_executor.json`` (see ``docs/performance.md``)
* ``verify``     — the verification passes (``model``, ``trace``,
  ``lint``, ``analyze``); see ``docs/verification.md``
* ``chaos``      — the seeded fault-injection campaign (N seeds per
  cell must be architecturally identical); see ``docs/resilience.md``
* ``attack``     — the adversarial leakage campaign (per-scheme,
  per-attack-class verdict matrix); see ``docs/security.md``
* ``serve``      — the crash-tolerant job service (durable journal,
  admission control, graceful drain); see ``docs/resilience.md``
* ``submit``     — submit one job to a running service and (optionally)
  wait for its result

Exit codes are part of the contract: every command returns 0 only on
full success and a nonzero status on any failure (divergence, lint
finding, failed job, unreachable service), so CI can gate on them.
"""

from __future__ import annotations

import argparse
import sys
from typing import List, Optional

from repro.analysis.area import cst_hardware_table
from repro.analysis.breakdown import stacked_overheads, vp_condition_cycles
from repro.analysis.tables import format_stat_table
from repro.common.params import DefenseKind, PinningMode, ThreatModel
from repro.sim.runner import ExperimentCache, scheme_grid
from repro.workloads import PARALLEL_NAMES, SPEC17_NAMES

_THREAT_NAMES = {"spectre": ThreatModel.CTRL, "ctrl": ThreatModel.CTRL,
                 "alias": ThreatModel.ALIAS, "except": ThreatModel.EXCEPT,
                 "comp": ThreatModel.MCV, "mcv": ThreatModel.MCV}
_PIN_NAMES = {"none": PinningMode.NONE, "lp": PinningMode.LATE,
              "ep": PinningMode.EARLY}


def _build_workload(name: str, instructions: int, threads: int):
    from repro.common.errors import BadRequestError
    from repro.service.jobs import build_cell
    try:
        return build_cell(name, instructions, threads, "unsafe")
    except BadRequestError as error:
        raise SystemExit(f"{error}; see `repro workloads`")


def _cmd_run(args) -> int:
    base, workload = _build_workload(args.workload, args.instructions,
                                     args.threads)
    cache = ExperimentCache()
    unsafe = cache.run(base, workload)
    config = base.with_defense(DefenseKind(args.defense),
                               _THREAT_NAMES[args.threat],
                               _PIN_NAMES[args.pinning])
    result = cache.run(config, workload)
    norm = result.cycles / unsafe.cycles
    print(f"workload      : {args.workload} "
          f"({workload.total_instructions} instructions, "
          f"{workload.num_threads} thread(s))")
    print(f"configuration : {args.defense} / {args.threat} / "
          f"{args.pinning}")
    print(f"cycles        : {result.cycles} (unsafe: {unsafe.cycles})")
    print(f"normalized CPI: {norm:.3f}  "
          f"(overhead {100 * (norm - 1):.1f}%)")
    squashes = result.squash_summary()
    print(f"squashes      : branch={squashes['branch']:.0f} "
          f"alias={squashes['alias']:.0f} "
          f"mcv={squashes['mcv_inval'] + squashes['mcv_evict']:.0f}")
    return 0


def _cmd_grid(args) -> int:
    base, workload = _build_workload(args.workload, args.instructions,
                                     args.threads)
    cache = ExperimentCache()
    unsafe = cache.run(base, workload)
    print(f"{args.workload}: normalized CPI vs Unsafe "
          f"({workload.total_instructions} instructions)")
    print(f"{'scheme':<8}{'comp':>9}{'lp':>9}{'ep':>9}{'spectre':>9}")
    grid = scheme_grid()
    for scheme in ("fence", "dom", "stt"):
        cells = []
        for ext in ("comp", "lp", "ep", "spectre"):
            defense, threat, pin = grid[f"{scheme}-{ext}"]
            result = cache.run(base.with_defense(defense, threat, pin),
                               workload)
            cells.append(result.cycles / unsafe.cycles)
        print(f"{scheme:<8}" + "".join(f"{c:>9.3f}" for c in cells))
    return 0


def _cmd_breakdown(args) -> int:
    base, workload = _build_workload(args.workload, args.instructions,
                                     args.threads)
    cache = ExperimentCache()
    cycles = vp_condition_cycles(
        base, DefenseKind(args.defense),
        run=lambda config: cache.run(config, workload))
    stack = stacked_overheads(cycles)
    print(f"{args.workload} / {args.defense}: overhead by VP condition")
    for condition in ("ctrl", "alias", "exception", "mcv"):
        print(f"  {condition:<10}{stack[condition]:>8.1f}%")
    print(f"  {'total':<10}{sum(stack.values()):>8.1f}%")
    return 0


def _cmd_workloads(_args) -> int:
    print("SPEC17 (single-threaded):")
    for name in SPEC17_NAMES:
        print(f"  {name}")
    print("SPLASH2 + PARSEC (multithreaded):")
    for name in PARALLEL_NAMES:
        print(f"  {name}")
    return 0


def _cmd_hardware(_args) -> int:
    table = cst_hardware_table()
    print(format_stat_table("Table 1: CST hardware cost at 22nm",
                            table))
    return 0


def _print_vs_baseline(vs) -> None:
    per_scheme = ", ".join(
        f"{label} {speedup}x"
        for label, speedup in vs["per_scheme"].items())
    print(f"vs baseline   : {vs['geomean_speedup']}x geomean "
          f"({per_scheme}; cycle counts identical)")
    if "defended_geomean_speedup" in vs:
        print(f"vs baseline   : {vs['defended_geomean_speedup']}x "
              f"defended geomean")


def _cmd_bench_compare(args) -> int:
    import json as _json
    from repro.sim.bench import compare_records
    old_path, new_path = args.compare
    with open(old_path, "r", encoding="utf-8") as fh:
        old = _json.load(fh)
    with open(new_path, "r", encoding="utf-8") as fh:
        new = _json.load(fh)
    try:
        comparison = compare_records(old, new, min_ratio=args.min_ratio)
    except ValueError as error:
        # exit 2 = the comparison itself is impossible (mismatched
        # sweeps, wrong record shape) — distinct from 1 = it ran and
        # found a regression, so CI can tell the two apart
        print(f"repro bench --compare: {error}", file=sys.stderr)
        return 2
    print(f"comparing     : {old_path} -> {new_path} "
          f"(min ratio {comparison['min_ratio']})")
    for label, row in comparison["schemes"].items():
        if row["ratio"] is None:
            print(f"  {label:<14} {row['status']}")
            continue
        print(f"  {label:<14} {row['old_speedup']}x -> "
              f"{row['new_speedup']}x  (ratio {row['ratio']}, "
              f"{row['status']})")
    if "defended_geomean" in comparison:
        geo = comparison["defended_geomean"]
        print(f"defended geo  : {geo['old']}x -> {geo['new']}x "
              f"(ratio {geo['ratio']})")
    if comparison["regressions"]:
        print(f"FAIL: regressed scheme(s): "
              f"{', '.join(comparison['regressions'])}")
        return 1
    print("no per-scheme regressions")
    return 0


def _cmd_bench(args) -> int:
    from repro.sim.bench import (run_bench, run_hotloop_bench,
                                 write_record)
    if args.compare:
        return _cmd_bench_compare(args)
    apps = [a.strip() for a in args.apps.split(",") if a.strip()]
    schemes = [s.strip() for s in args.schemes.split(",") if s.strip()]
    hot_apps = [a.strip() for a in args.hot_apps.split(",") if a.strip()]
    hot_schemes = [s.strip() for s in args.hot_schemes.split(",")
                   if s.strip()]
    if args.hot_only:
        try:
            record = run_hotloop_bench(hot_apps, hot_schemes,
                                       args.instructions,
                                       baseline_src=args.baseline_src)
        except (RuntimeError, AssertionError, ValueError) as error:
            raise SystemExit(f"repro bench: {error}")
        if args.out:
            write_record(record, args.out)
        hot = record["hot_loop"]
        per_scheme = ", ".join(
            f"{label} {entry['speedup']}x"
            for label, entry in hot["per_scheme"].items())
        print(f"hot loop      : {per_scheme}")
        if "defended_geomean_speedup" in hot:
            print(f"hot geomean   : {hot['defended_geomean_speedup']}x "
                  f"vs reference across defended schemes on "
                  f"{record['cpus']} cpu(s)")
        if "hot_loop_vs_baseline" in record:
            _print_vs_baseline(record["hot_loop_vs_baseline"])
        if args.out:
            print(f"record        : {args.out}")
        return 0
    try:
        record = run_bench(apps, schemes, args.instructions, args.jobs,
                           args.cache_dir, timeout_s=args.timeout,
                           run_serial=not args.no_serial,
                           baseline_src=args.baseline_src,
                           hot_apps=hot_apps, hot_schemes=hot_schemes,
                           profile=args.profile)
    except (RuntimeError, AssertionError, ValueError) as error:
        raise SystemExit(f"repro bench: {error}")
    if args.out:
        write_record(record, args.out)
    print(f"tasks         : {record['tasks']} "
          f"({len(apps)} apps x {len(schemes)} schemes, "
          f"{record['instructions_per_app']} instructions)")
    if "serial" in record:
        print(f"serial        : {record['serial']['seconds']}s")
        print(f"parallel x{args.jobs}   : "
              f"{record['parallel_cold']['seconds']}s "
              f"(speedup {record['parallel_speedup']}x on "
              f"{record['cpus']} cpu(s); results bit-identical)")
    else:
        print(f"parallel x{args.jobs}   : "
              f"{record['parallel_cold']['seconds']}s")
    warm = record["warm"]
    print(f"warm cache    : {warm['seconds']}s "
          f"({warm['simulated']} re-simulated, "
          f"{warm['cache_hits']} served from {args.cache_dir})")
    hot = record["hot_loop"]
    per_scheme = ", ".join(
        f"{label} {entry['speedup']}x"
        for label, entry in hot["per_scheme"].items())
    print(f"hot loop      : {per_scheme}")
    if "defended_geomean_speedup" in hot:
        print(f"hot geomean   : {hot['defended_geomean_speedup']}x "
              f"vs reference across defended schemes "
              f"(cycle counts + stats identical per cell)")
    if "hot_loop_vs_baseline" in record:
        _print_vs_baseline(record["hot_loop_vs_baseline"])
    if args.out:
        print(f"record        : {args.out}")
    if args.require_warm_reuse and warm["simulated"] != 0:
        print(f"FAIL: warm pass re-simulated {warm['simulated']} task(s); "
              f"expected full cache reuse")
        return 1
    return 0


def _cmd_verify_model(args) -> int:
    from repro.verify.explorer import EXPECTED_DEAD, explore
    from repro.verify.model import ModelConfig
    mutate = frozenset(args.mutate or ())
    try:
        config = ModelConfig(cores=args.cores, lines=args.lines,
                             max_pins_per_core=args.max_pins,
                             mutate=mutate)
    except ValueError as error:
        raise SystemExit(f"repro verify model: {error}")
    result = explore(config)
    print(f"explored {result.num_states} states / "
          f"{result.num_transitions} transitions "
          f"({config.cores} cores x {config.lines} lines)")
    for violation in result.violations:
        print(violation)
    if mutate:
        # checker self-test: an injected protocol bug MUST be detected
        if result.violations:
            print(f"mutation(s) {sorted(mutate)} detected; checker "
                  f"self-test passed")
            return 0
        print(f"no violation under mutation(s) {sorted(mutate)}; the "
              f"checker missed the injected bug")
        return 1
    status = 1 if result.violations else 0
    dead = set(result.dead_pairs())
    for state, kind in sorted(dead - EXPECTED_DEAD):
        print(f"[coverage] ({state}, {kind}) became unreachable but "
              f"is not expected-dead")
        status = 1
    for state, kind in sorted(EXPECTED_DEAD - dead):
        print(f"[coverage] ({state}, {kind}) is expected-dead but "
              f"was exercised")
        status = 1
    if status == 0:
        print("all invariants hold; transition coverage matches the "
              "expected-dead set")
    return status


def _cmd_verify_trace(args) -> int:
    import dataclasses

    from repro.common.errors import InvariantViolation
    from repro.sim.runner import run_simulation
    base, workload = _build_workload(args.workload, args.instructions,
                                     args.threads)
    config = base.with_defense(DefenseKind(args.defense),
                               _THREAT_NAMES[args.threat],
                               _PIN_NAMES[args.pinning])
    config = dataclasses.replace(config, sanitize=True)
    try:
        result = run_simulation(config, workload)
    except InvariantViolation as violation:
        print(violation)
        return 1
    print(f"sanitized run clean: {args.workload} / {args.defense} / "
          f"{args.threat} / {args.pinning}, {result.cycles} cycles")
    return 0


def _cmd_verify_lint(args) -> int:
    from pathlib import Path

    from repro.verify.lint import lint_paths
    paths = [Path(p) for p in args.paths] or [Path(__file__).parent]
    for path in paths:
        if not path.exists():
            raise SystemExit(f"repro verify lint: no such path: {path}")
    findings = lint_paths(paths)
    for finding in findings:
        print(finding)
    print(f"{len(findings)} finding(s) in "
          f"{', '.join(str(p) for p in paths)}")
    return 1 if findings else 0


def _cmd_verify_analyze(args) -> int:
    import json
    import sys
    from pathlib import Path

    paths = [Path(p) for p in args.paths] or [Path(__file__).parent]
    for path in paths:
        if not path.exists():
            raise SystemExit(
                f"repro verify analyze: no such path: {path}")
    passes = [p.strip() for p in args.passes.split(",")
              if p.strip()] or None
    try:
        from repro.verify.passes import (analyze_paths, write_baseline,
                                         write_manifest)
        from repro.verify.passes.base import load_sources
        if args.update_manifest:
            manifest_path = Path(args.manifest) if args.manifest \
                else None
            from repro.verify.passes.checkpoint_state import (
                MANIFEST_FILENAME)
            import repro.verify.passes as passes_pkg
            target = manifest_path or (
                Path(passes_pkg.__file__).parent / MANIFEST_FILENAME)
            write_manifest(load_sources([str(p) for p in paths]),
                           target)
            print(f"state manifest regenerated: {target}",
                  file=sys.stderr)
        report = analyze_paths(
            [str(p) for p in paths], passes=passes,
            baseline_path=args.baseline or None,
            manifest_path=args.manifest or None)
        if args.update_baseline:
            from repro.verify.passes import default_baseline_path
            target = Path(args.baseline) if args.baseline \
                else default_baseline_path()
            errors = [f for f in report.findings
                      if f.severity == "error"]
            write_baseline(errors, target)
            print(f"baseline updated: {target} "
                  f"({len(errors)} finding(s))", file=sys.stderr)
            return 0
    except SystemExit:
        raise
    except ValueError as err:
        # unknown pass names are usage errors, not internal failures
        raise SystemExit(f"repro verify analyze: {err}")
    except Exception as err:  # noqa: B902 - the distinct-exit contract
        print(f"repro verify analyze: internal error: "
              f"{type(err).__name__}: {err}", file=sys.stderr)
        return 2
    doc = report.to_doc()
    if args.out:
        Path(args.out).write_text(json.dumps(doc, indent=2) + "\n")
    if args.json:
        print(json.dumps(doc, indent=2))
    else:
        print(report.render_text())
    return 0 if report.clean else 1


def _cmd_chaos(args) -> int:
    import json

    from repro.chaos import format_report, run_campaign
    workloads = [w.strip() for w in args.workloads.split(",") if w.strip()]
    schemes = [s.strip() for s in args.schemes.split(",") if s.strip()]
    if not workloads or not schemes:
        raise SystemExit("repro chaos: need at least one workload and "
                         "one scheme")
    try:
        report = run_campaign(
            workloads, schemes, seeds=args.seeds,
            instructions=args.instructions, threads=args.threads,
            self_test=not args.no_self_test,
            checkpoint_check=not args.no_checkpoint_check,
            service_url=args.service or None)
    except ValueError as error:
        raise SystemExit(f"repro chaos: {error}")
    except (ConnectionError, TimeoutError) as error:
        raise SystemExit(f"repro chaos: service at {args.service} "
                         f"unreachable: {error}")
    if args.json:
        print(json.dumps(report, indent=2, sort_keys=True))
    else:
        print(format_report(report))
    if args.out:
        with open(args.out, "w", encoding="utf-8") as fh:
            json.dump(report, fh, indent=2, sort_keys=True)
        if not args.json:
            print(f"report        : {args.out}")
    return 0 if report["passed"] else 1


def _cmd_attack(args) -> int:
    import json

    from repro.security.campaign import (format_report, matrix_artifact,
                                         run_campaign)
    schemes = [s.strip() for s in args.schemes.split(",") if s.strip()] \
        if args.schemes else None
    classes = [c.strip() for c in args.classes.split(",") if c.strip()] \
        if args.classes else None
    try:
        report = run_campaign(
            scheme_names=schemes, attack_names=classes,
            seeds=args.seeds, jobs=args.jobs,
            self_test=not args.no_self_test,
            service_url=args.service or None)
    except ValueError as error:
        raise SystemExit(f"repro attack: {error}")
    except (ConnectionError, TimeoutError) as error:
        raise SystemExit(f"repro attack: service at {args.service} "
                         f"unreachable: {error}")
    except Exception as error:  # noqa: B902 - the distinct-exit contract
        print(f"repro attack: internal error: "
              f"{type(error).__name__}: {error}", file=sys.stderr)
        return 2
    if args.json:
        print(json.dumps(report, indent=2, sort_keys=True))
    else:
        print(format_report(report))
    if args.out:
        with open(args.out, "w", encoding="utf-8") as fh:
            json.dump(matrix_artifact(report), fh, indent=2,
                      sort_keys=True)
            fh.write("\n")
        if not args.json:
            print(f"matrix        : {args.out}")
    return 0 if report["passed"] else 1


def _cmd_serve(args) -> int:
    import logging

    from repro.service import Supervisor, serve
    logging.basicConfig(
        level=logging.DEBUG if args.verbose else logging.INFO,
        format="%(asctime)s %(name)s %(levelname)s %(message)s")
    fabric = None
    peers = None
    if args.ring:
        from repro.common.errors import BadRequestError
        from repro.service.fabric import HashRing, parse_ring
        try:
            members = parse_ring(args.ring)
            if args.shard_index is None:
                raise BadRequestError("--ring needs --shard-index "
                                      "(which member this process is)")
            if not 0 <= args.shard_index < len(members):
                raise BadRequestError(
                    f"--shard-index {args.shard_index} out of range "
                    f"for a {len(members)}-member ring")
            ring = HashRing(members)
        except BadRequestError as error:
            raise SystemExit(f"repro serve: {error}")
        peers = [url for index, url in enumerate(members)
                 if index != args.shard_index]
        fabric = {"ring": members,
                  "shard": members[args.shard_index],
                  "shard_index": args.shard_index,
                  "stats": ring.describe()}
    elif args.shard_index is not None:
        raise SystemExit("repro serve: --shard-index needs --ring")
    supervisor = Supervisor(
        args.root, jobs=args.jobs, queue_capacity=args.queue_capacity,
        timeout_s=args.timeout, retries=args.retries,
        worker_memory_mb=args.worker_memory_mb,
        checkpoint_interval=args.checkpoint_interval,
        fsync=not args.no_fsync,
        tenant_capacity=args.tenant_capacity,
        peers=peers)
    try:
        serve(supervisor, host=args.host, port=args.port, fabric=fabric)
    except OSError as error:
        raise SystemExit(f"repro serve: cannot listen on "
                         f"{args.host}:{args.port}: {error}")
    return 0


def _cmd_submit(args) -> int:
    import json

    from repro.common.errors import BadRequestError, ServiceError
    from repro.service import JobSpec, ServiceClient
    try:
        chaos = json.loads(args.chaos) if args.chaos else None
        spec = JobSpec(workload=args.workload, scheme=args.scheme,
                       instructions=args.instructions,
                       threads=args.threads, sanitize=args.sanitize,
                       chaos=chaos, priority=args.priority,
                       tenant=args.tenant)
        spec.resolve()  # reject bad cells before touching the network
    except ValueError as error:
        raise SystemExit(f"repro submit: {error}")
    if args.fabric:
        from repro.service.fabric import FederatedClient
        try:
            client = FederatedClient(args.fabric)
        except BadRequestError as error:
            raise SystemExit(f"repro submit: {error}")
    else:
        client = ServiceClient(args.url)
    try:
        if args.wait:
            result = client.run(spec, timeout_s=args.wait_timeout)
            print(json.dumps(result.to_dict(), indent=2, sort_keys=True))
        else:
            print(json.dumps(client.submit(spec), indent=2,
                             sort_keys=True))
    except (ServiceError, ConnectionError, TimeoutError) as error:
        print(f"repro submit: {error}", file=sys.stderr)
        return 1
    return 0


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Pinned Loads (ASPLOS 2022) reproduction toolkit")
    sub = parser.add_subparsers(dest="command", required=True)

    def common(p):
        p.add_argument("workload", help="benchmark name (see `workloads`)")
        p.add_argument("--instructions", type=int, default=4000,
                       help="instructions per thread (default 4000)")
        p.add_argument("--threads", type=int, default=8,
                       help="threads for parallel workloads (default 8)")

    run_p = sub.add_parser("run", help="run one configuration")
    common(run_p)
    run_p.add_argument("--defense", default="fence",
                       choices=[k.value for k in DefenseKind])
    run_p.add_argument("--threat", default="comp",
                       choices=sorted(_THREAT_NAMES))
    run_p.add_argument("--pinning", default="none",
                       choices=sorted(_PIN_NAMES))
    run_p.set_defaults(func=_cmd_run)

    grid_p = sub.add_parser("grid", help="the Tables 2/3 grid")
    common(grid_p)
    grid_p.set_defaults(func=_cmd_grid)

    breakdown_p = sub.add_parser("breakdown",
                                 help="Figure 1 per-condition stack")
    common(breakdown_p)
    breakdown_p.add_argument("--defense", default="fence",
                             choices=[k.value for k in DefenseKind])
    breakdown_p.set_defaults(func=_cmd_breakdown)

    workloads_p = sub.add_parser("workloads", help="list benchmarks")
    workloads_p.set_defaults(func=_cmd_workloads)

    hardware_p = sub.add_parser("hardware", help="Table 1 CST rows")
    hardware_p.set_defaults(func=_cmd_hardware)

    bench_p = sub.add_parser(
        "bench", help="executor/cache performance benchmark")
    bench_p.add_argument("--apps", default=",".join(
        ("leela_r", "bwaves_r", "mcf_r", "namd_r")),
        help="comma-separated SPEC17 app names")
    bench_p.add_argument("--schemes",
                         default="unsafe,fence-ep,dom-ep,stt-ep",
                         help="comma-separated scheme labels "
                         "(unsafe or scheme_grid cells)")
    bench_p.add_argument("--instructions", type=int, default=4000,
                         help="instructions per app (default 4000)")
    bench_p.add_argument("--jobs", type=int, default=4,
                         help="worker processes for the parallel phases")
    bench_p.add_argument("--cache-dir", default=".repro-cache",
                         help="persistent result store directory")
    bench_p.add_argument("--timeout", type=float, default=None,
                         help="per-task timeout in seconds")
    bench_p.add_argument("--out", default="BENCH_executor.json",
                         help="JSON record path ('' to skip writing)")
    bench_p.add_argument("--no-serial", action="store_true",
                         help="skip the serial baseline phase")
    bench_p.add_argument("--require-warm-reuse", action="store_true",
                         help="exit 1 unless the warm pass re-simulated "
                         "nothing")
    bench_p.add_argument("--baseline-src", default=None, metavar="SRC",
                         help="src/ directory of another checkout (e.g. "
                         "the pre-optimization seed) to time System.run "
                         "against, in fixed-hash-seed subprocesses")
    from repro.sim.bench import DEFAULT_HOT_APPS, DEFAULT_HOT_SCHEMES
    bench_p.add_argument("--hot-apps", default=",".join(DEFAULT_HOT_APPS),
                         help="comma-separated apps for the hot-loop "
                         "matrix (default: %(default)s)")
    bench_p.add_argument("--hot-schemes",
                         default=",".join(DEFAULT_HOT_SCHEMES),
                         help="comma-separated schemes for the hot-loop "
                         "matrix (default: %(default)s)")
    bench_p.add_argument("--profile", action="store_true",
                         help="cProfile each phase; top-20 cumulative "
                         "hotspots land in the JSON record")
    bench_p.add_argument("--hot-only", action="store_true",
                         help="skip the executor phases; record only the "
                         "hot-loop matrix (and --baseline-src cross-tree "
                         "comparison) as a 'hotloop' record")
    bench_p.add_argument("--compare", nargs=2, default=None,
                         metavar=("OLD", "NEW"),
                         help="diff two bench records' hot-loop "
                         "sections; exit 1 on per-scheme regressions, "
                         "2 when the records are not comparable "
                         "(disjoint scheme or app sets)")
    bench_p.add_argument("--min-ratio", type=float, default=0.9,
                         help="with --compare: a scheme regresses when "
                         "new/old engine speedup falls below this "
                         "(default 0.9)")
    bench_p.set_defaults(func=_cmd_bench)

    verify_p = sub.add_parser(
        "verify",
        help="protocol model check / sanitized run / lint / "
             "static contract analysis")
    verify_sub = verify_p.add_subparsers(dest="pass_name", required=True)

    model_p = verify_sub.add_parser(
        "model", help="exhaustively model-check the pinning protocol")
    model_p.add_argument("--cores", type=int, default=2)
    model_p.add_argument("--lines", type=int, default=2)
    model_p.add_argument("--max-pins", type=int, default=2,
                         help="max simultaneously pinned lines per core")
    model_p.add_argument("--mutate", action="append", default=None,
                         metavar="MUTATION",
                         help="inject a named protocol bug; the check "
                         "then must FAIL (checker self-test)")
    model_p.set_defaults(func=_cmd_verify_model)

    trace_p = verify_sub.add_parser(
        "trace", help="run one workload with the invariant sanitizer on")
    common(trace_p)
    trace_p.add_argument("--defense", default="fence",
                         choices=[k.value for k in DefenseKind])
    trace_p.add_argument("--threat", default="comp",
                         choices=sorted(_THREAT_NAMES))
    trace_p.add_argument("--pinning", default="ep",
                         choices=sorted(_PIN_NAMES))
    trace_p.set_defaults(func=_cmd_verify_trace)

    analyze_p = verify_sub.add_parser(
        "analyze",
        help="multi-pass static contract analysis (wakeup, checkpoint, "
             "determinism, service, event discipline)")
    analyze_p.add_argument("paths", nargs="*",
                           help="files/directories to analyze "
                                "(default: the repro package)")
    analyze_p.add_argument("--json", action="store_true",
                           help="emit the JSON report on stdout")
    analyze_p.add_argument("--out", default="",
                           help="also write the JSON report to this "
                                "file")
    analyze_p.add_argument("--passes", default="",
                           help="comma-separated pass subset "
                                "(default: all)")
    analyze_p.add_argument("--baseline", default="",
                           help="baseline file of accepted finding "
                                "fingerprints (default: the committed "
                                "one)")
    analyze_p.add_argument("--update-baseline", action="store_true",
                           help="accept all current findings into the "
                                "baseline and exit 0")
    analyze_p.add_argument("--manifest", default="",
                           help="state-shape manifest path (default: "
                                "the committed one)")
    analyze_p.add_argument("--update-manifest", action="store_true",
                           help="regenerate the checkpoint state-shape "
                                "manifest before analyzing")
    analyze_p.set_defaults(func=_cmd_verify_analyze)

    lint_p = verify_sub.add_parser(
        "lint", help="determinism/idiom lint over the sources "
                     "(compatible alias for the analyze framework's "
                     "lint pass)")
    lint_p.add_argument("paths", nargs="*",
                        help="files/directories (default: the installed "
                        "repro package)")
    lint_p.set_defaults(func=_cmd_verify_lint)

    chaos_p = sub.add_parser(
        "chaos", help="seeded fault-injection campaign (must be "
        "architecturally invisible)")
    chaos_p.add_argument("--seeds", type=int, default=5,
                         help="chaos seeds per (workload, scheme) cell")
    chaos_p.add_argument("--workloads", default="mcf_r,radix",
                         help="comma-separated workload names")
    chaos_p.add_argument("--schemes", default="unsafe,fence-lp,fence-ep",
                         help="comma-separated schemes (unsafe or "
                         "scheme_grid cells)")
    chaos_p.add_argument("--instructions", type=int, default=3000,
                         help="instructions per thread (default 3000)")
    chaos_p.add_argument("--threads", type=int, default=4,
                         help="threads for parallel workloads")
    chaos_p.add_argument("--out", default="",
                         help="write the JSON report here")
    chaos_p.add_argument("--no-self-test", action="store_true",
                         help="skip the evict-pinned mutant self-test")
    chaos_p.add_argument("--no-checkpoint-check", action="store_true",
                         help="skip the checkpoint/resume equivalence "
                         "check")
    chaos_p.add_argument("--json", action="store_true",
                         help="print the full JSON report to stdout "
                         "instead of the human-readable summary")
    chaos_p.add_argument("--service", default="", metavar="URL",
                         help="run campaign cells through a live "
                         "`repro serve` instance at URL")
    chaos_p.set_defaults(func=_cmd_chaos)

    attack_p = sub.add_parser(
        "attack", help="adversarial leakage campaign (per-scheme x "
        "per-attack-class verdict matrix)")
    attack_p.add_argument("--seeds", type=int, default=2,
                          help="address-randomization seeds per cell "
                          "(verdicts must agree across all of them)")
    attack_p.add_argument("--schemes", default="",
                          help="comma-separated schemes (default: unsafe "
                          "plus the full 12-cell defense grid)")
    attack_p.add_argument("--classes", default="",
                          help="comma-separated attack classes (default: "
                          "all four)")
    attack_p.add_argument("--jobs", type=int, default=1,
                          help="parallel workers (bit-identical to "
                          "--jobs 1)")
    attack_p.add_argument("--out", default="",
                          help="write the canonical leakage-matrix JSON "
                          "artifact here")
    attack_p.add_argument("--no-self-test", action="store_true",
                          help="skip the weakened-defense mutant "
                          "self-tests")
    attack_p.add_argument("--json", action="store_true",
                          help="print the full JSON report to stdout "
                          "instead of the human-readable summary")
    attack_p.add_argument("--service", default="", metavar="URL",
                          help="run oracle cells through a live "
                          "`repro serve` instance at URL (mutant "
                          "self-tests stay local)")
    attack_p.set_defaults(func=_cmd_attack)

    serve_p = sub.add_parser(
        "serve", help="crash-tolerant job service (journal + admission "
        "control + graceful drain)")
    serve_p.add_argument("--root", default=".repro-service",
                         help="service state directory: journal, result "
                         "store, checkpoints (default .repro-service)")
    serve_p.add_argument("--host", default="127.0.0.1")
    serve_p.add_argument("--port", type=int, default=8321)
    serve_p.add_argument("--jobs", type=int, default=2,
                         help="worker processes at the full level")
    serve_p.add_argument("--queue-capacity", type=int, default=64,
                         help="admission queue bound (backpressure above)")
    serve_p.add_argument("--timeout", type=float, default=None,
                         help="per-job wall-clock timeout in seconds")
    serve_p.add_argument("--retries", type=int, default=1,
                         help="retry budget per failed job")
    serve_p.add_argument("--worker-memory-mb", type=int, default=None,
                         help="RLIMIT_AS ceiling per worker process "
                         "(default: unlimited)")
    serve_p.add_argument("--checkpoint-interval", type=int, default=None,
                         help="cycles between rolling job checkpoints")
    serve_p.add_argument("--no-fsync", action="store_true",
                         help="skip fsync on journal appends (faster, "
                         "loses the last records on power failure)")
    serve_p.add_argument("--ring", default="", metavar="URL,URL,...",
                         help="federate: full shard URL list of the "
                         "consistent-hash ring this process belongs to "
                         "(peers get store read-through; /ring reports "
                         "the layout)")
    serve_p.add_argument("--shard-index", type=int, default=None,
                         help="this process's index into --ring")
    serve_p.add_argument("--tenant-capacity", type=int, default=None,
                         help="per-tenant admission quota (default: "
                         "no per-tenant bound)")
    serve_p.add_argument("--verbose", action="store_true")
    serve_p.set_defaults(func=_cmd_serve)

    submit_p = sub.add_parser(
        "submit", help="submit one job to a running `repro serve`")
    submit_p.add_argument("workload", help="benchmark name")
    submit_p.add_argument("--url", default="http://127.0.0.1:8321")
    submit_p.add_argument("--scheme", default="unsafe",
                          help="unsafe or a scheme_grid cell "
                          "(e.g. fence-ep)")
    submit_p.add_argument("--instructions", type=int, default=4000)
    submit_p.add_argument("--threads", type=int, default=8)
    submit_p.add_argument("--sanitize", action="store_true",
                          help="run with the invariant sanitizer on")
    submit_p.add_argument("--chaos", default="", metavar="JSON",
                          help="ChaosConfig fields as a JSON object")
    submit_p.add_argument("--priority", type=int, default=5,
                          help="0=interactive .. 10=bulk (default 5)")
    submit_p.add_argument("--fabric", default="", metavar="URL,URL,...",
                          help="submit through the federated ring of "
                          "shard URLs instead of a single --url "
                          "(consistent-hash routing + replica failover)")
    submit_p.add_argument("--tenant", default="default",
                          help="tenant name for fair-share accounting "
                          "(default 'default')")
    submit_p.add_argument("--wait", action="store_true",
                          help="block until the job finishes and print "
                          "its result document")
    submit_p.add_argument("--wait-timeout", type=float, default=600.0)
    submit_p.set_defaults(func=_cmd_submit)
    return parser


def main(argv: Optional[List[str]] = None) -> int:
    parser = build_parser()
    args = parser.parse_args(argv)
    return args.func(args)


if __name__ == "__main__":
    sys.exit(main())
