"""Pinned Loads (ASPLOS 2022) reproduction.

The public API re-exports the pieces a downstream user needs: system
configuration, workload construction, and the experiment runner.

Quickstart::

    from repro import (SystemConfig, DefenseKind, PinningMode,
                       spec17_workload, run_simulation)

    workload = spec17_workload("mcf_r", instructions=5000)
    unsafe = run_simulation(SystemConfig(), workload)
    fence_ep = run_simulation(
        SystemConfig().with_defense(DefenseKind.FENCE,
                                    pinning_mode=PinningMode.EARLY),
        workload)
    print(fence_ep.cycles / unsafe.cycles)   # normalized CPI
"""

from repro.chaos import run_campaign
from repro.common.errors import (CheckpointError, InvariantViolation,
                                 VerificationError)
from repro.common.params import (COMPREHENSIVE, SPECTRE, CacheParams,
                                 ChaosConfig, CoreParams, DefenseKind,
                                 NetworkParams, PinnedLoadsParams,
                                 PinningMode, SystemConfig, ThreatModel)
from repro.common.stats import geomean, overhead_pct
from repro.isa.trace import Trace, Workload
from repro.isa.uops import MicroOp, OpClass
from repro.isa.serialize import load_workload, save_workload
from repro.sim.checkpoint import (load_checkpoint, restore_system,
                                  run_with_checkpoints, save_checkpoint,
                                  snapshot_system)
from repro.sim.executor import Executor, ResultStore, Task, cache_key
from repro.sim.results import SimResult
from repro.sim.runner import ExperimentCache, run_simulation, scheme_grid
from repro.sim.sweep import Sweep
from repro.sim.system import System
from repro.workloads import (PARALLEL_NAMES, SPEC17_NAMES, WorkloadProfile,
                             build_workload, calibrate, parallel_workload,
                             spec17_workload)

__version__ = "1.0.0"

__all__ = [
    "COMPREHENSIVE", "SPECTRE", "CacheParams", "ChaosConfig",
    "CheckpointError", "CoreParams", "DefenseKind",
    "Executor", "ExperimentCache", "InvariantViolation", "MicroOp",
    "NetworkParams", "OpClass", "PARALLEL_NAMES", "ResultStore", "Task",
    "VerificationError",
    "PinnedLoadsParams", "PinningMode", "SPEC17_NAMES", "SimResult",
    "Sweep", "System", "SystemConfig", "ThreatModel", "Trace", "Workload",
    "WorkloadProfile", "build_workload", "cache_key", "calibrate",
    "geomean", "load_checkpoint",
    "load_workload", "overhead_pct", "parallel_workload", "restore_system",
    "run_campaign", "run_simulation", "run_with_checkpoints",
    "save_checkpoint", "save_workload", "scheme_grid", "snapshot_system",
    "spec17_workload", "__version__",
]
