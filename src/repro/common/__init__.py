"""Shared infrastructure: configuration, events, statistics, addressing."""

from repro.common.errors import (ConfigError, DeadlockError, ReproError,
                                 SimulationError)
from repro.common.events import EventQueue
from repro.common.params import (COMPREHENSIVE, LINE_BYTES, SPECTRE,
                                 CacheParams, CoreParams, DefenseKind,
                                 NetworkParams, PinnedLoadsParams,
                                 PinningMode, SystemConfig, ThreatModel)
from repro.common.stats import StatSet, geomean, normalized, overhead_pct

__all__ = [
    "ConfigError", "DeadlockError", "ReproError", "SimulationError",
    "EventQueue", "COMPREHENSIVE", "LINE_BYTES", "SPECTRE", "CacheParams",
    "CoreParams", "DefenseKind", "NetworkParams", "PinnedLoadsParams",
    "PinningMode", "SystemConfig", "ThreatModel", "StatSet", "geomean",
    "normalized", "overhead_pct",
]
