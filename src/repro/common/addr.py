"""Address arithmetic: cache lines, set indices, and LLC slice mapping.

All addresses in the simulator are integer byte addresses.  A *line* is the
address right-shifted by ``LINE_SHIFT`` — coherence, pinning, and the CST
all operate on line numbers, never byte addresses.
"""

from __future__ import annotations

from repro.common.params import LINE_BYTES, LINE_SHIFT


def line_of(addr: int) -> int:
    """Cache-line number containing byte address ``addr``."""
    return addr >> LINE_SHIFT


def line_addr(line: int) -> int:
    """First byte address of cache line ``line``."""
    return line << LINE_SHIFT


def set_index(line: int, num_sets: int) -> int:
    """Set index of ``line`` in a cache with ``num_sets`` sets."""
    return line & (num_sets - 1)


def slice_of(line: int, num_slices: int) -> int:
    """LLC slice holding ``line``.

    Real processors hash the address; we use a multiplicative hash so that
    consecutive lines spread across slices (a pure modulo would alias the
    strided synthetic workloads onto one slice).
    """
    return ((line * 0x9E3779B1) >> 16) % num_slices


def dir_set_index(line: int, num_sets: int) -> int:
    """Set index of ``line`` within its directory/LLC slice."""
    return (line // 1) & (num_sets - 1)


def offset_in_line(addr: int) -> int:
    return addr & (LINE_BYTES - 1)
