"""A minimal discrete-event kernel.

The simulator is cycle-stepped (each core ticks every cycle), but memory
responses, write-buffer retries, and protocol completions are scheduled as
events on this queue and delivered at the top of the owning cycle.

``schedule``/``schedule_after`` accept trailing positional arguments that
are passed through to the callback.  Hot paths use this instead of
wrapping the call in a lambda: binding arguments into the heap entry
avoids one closure allocation per scheduled event (see
``docs/performance.md``).

The queue doubles as the wakeup source for ``System.run``'s idle-cycle
fast-forward: pending events bound how far the loop may skip
(``next_time``), so a state transition is allowed to be "invisible" to
``Core.quiet_until`` exactly when it is scheduled here.  Do NOT add
no-op "wakeup" events to widen that contract — every schedule consumes
a tie-breaking sequence number, so an extra event perturbs the FIFO
order of same-cycle deliveries and changes simulated behaviour.  Cores
signal tick-time wakeups with the ``Core._wake_pending`` flag instead.
"""

from __future__ import annotations

import heapq
from heapq import heappop, heappush
from typing import Callable, List, Tuple


class EventQueue:
    """Time-ordered callback queue with stable FIFO ordering for ties.

    The tie-breaking sequence number is a plain integer (not an
    ``itertools.count``) so a mid-run queue — callbacks, bound arguments,
    and the counter itself — pickles into a simulation checkpoint
    (``repro.sim.checkpoint``) and resumes with identical ordering.
    """

    __slots__ = ("_heap", "_seq", "now")

    def __init__(self) -> None:
        self._heap: list = []
        self._seq = 0
        self.now = 0

    def schedule(self, when: int, callback: Callable[..., None],
                 *args) -> None:
        """Run ``callback(*args)`` at cycle ``when`` (not in the past)."""
        if when < self.now:
            raise ValueError(f"cannot schedule at {when}, now is {self.now}")
        seq = self._seq
        self._seq = seq + 1
        heappush(self._heap, (when, seq, callback, args))

    def schedule_after(self, delay: int, callback: Callable[..., None],
                       *args) -> None:
        self.schedule(self.now + delay, callback, *args)

    def run_until(self, cycle: int) -> None:
        """Advance time to ``cycle`` and fire every event due by then."""
        heap = self._heap
        while heap and heap[0][0] <= cycle:
            when, _, callback, args = heappop(heap)
            self.now = when
            callback(*args)
        self.now = cycle

    def __len__(self) -> int:
        return len(self._heap)

    @property
    def empty(self) -> bool:
        return not self._heap

    def next_time(self):
        """Cycle of the earliest pending event, or ``None`` if empty."""
        return self._heap[0][0] if self._heap else None

    def pending_summary(self, limit: int = 16) -> List[Tuple[int, str]]:
        """The earliest pending events as ``(cycle, callback name)`` pairs
        — diagnostic output for deadlock dumps, not simulation state."""
        entries = heapq.nsmallest(limit, self._heap)
        summary = []
        for when, _, callback, _args in entries:
            target = getattr(callback, "func", callback)   # unwrap partials
            name = getattr(target, "__qualname__", None) or repr(target)
            summary.append((when, name))
        return summary
