"""A minimal discrete-event kernel.

The simulator is cycle-stepped (each core ticks every cycle), but memory
responses, write-buffer retries, and protocol completions are scheduled as
events on this queue and delivered at the top of the owning cycle.

``schedule``/``schedule_after`` accept trailing positional arguments that
are passed through to the callback.  Hot paths use this instead of
wrapping the call in a lambda: binding arguments into the heap entry
avoids one closure allocation per scheduled event (see
``docs/performance.md``).
"""

from __future__ import annotations

import heapq
import itertools
from typing import Callable


class EventQueue:
    """Time-ordered callback queue with stable FIFO ordering for ties."""

    __slots__ = ("_heap", "_seq", "now")

    def __init__(self) -> None:
        self._heap: list = []
        self._seq = itertools.count()
        self.now = 0

    def schedule(self, when: int, callback: Callable[..., None],
                 *args) -> None:
        """Run ``callback(*args)`` at cycle ``when`` (not in the past)."""
        if when < self.now:
            raise ValueError(f"cannot schedule at {when}, now is {self.now}")
        heapq.heappush(self._heap, (when, next(self._seq), callback, args))

    def schedule_after(self, delay: int, callback: Callable[..., None],
                       *args) -> None:
        self.schedule(self.now + delay, callback, *args)

    def run_until(self, cycle: int) -> None:
        """Advance time to ``cycle`` and fire every event due by then."""
        heap = self._heap
        while heap and heap[0][0] <= cycle:
            when, _, callback, args = heapq.heappop(heap)
            self.now = when
            callback(*args)
        self.now = cycle

    def __len__(self) -> int:
        return len(self._heap)

    @property
    def empty(self) -> bool:
        return not self._heap

    def next_time(self):
        """Cycle of the earliest pending event, or ``None`` if empty."""
        return self._heap[0][0] if self._heap else None
