"""Statistics containers and aggregate math used by the evaluation."""

from __future__ import annotations

import math
from collections import defaultdict
from typing import Dict, Iterable, Mapping


class StatSet:
    """A named bag of integer counters with dict-like access.

    Counters spring into existence at zero, so simulator code can write
    ``stats.bump("mcv_squashes")`` without registration boilerplate.
    """

    __slots__ = ("_counters",)

    def __init__(self) -> None:
        self._counters: Dict[str, float] = defaultdict(float)

    def bump(self, name: str, amount: float = 1) -> None:
        self._counters[name] += amount

    def set(self, name: str, value: float) -> None:
        self._counters[name] = value

    def get(self, name: str) -> float:
        return self._counters.get(name, 0)

    def __getitem__(self, name: str) -> float:
        return self.get(name)

    def __contains__(self, name: str) -> bool:
        return name in self._counters

    def merge(self, other: "StatSet") -> None:
        for name, value in other._counters.items():
            self._counters[name] += value

    def as_dict(self) -> Dict[str, float]:
        return dict(self._counters)

    def __repr__(self) -> str:
        inner = ", ".join(f"{k}={v}" for k, v in sorted(self._counters.items()))
        return f"StatSet({inner})"


def geomean(values: Iterable[float]) -> float:
    """Geometric mean; the paper reports all suite aggregates this way."""
    values = list(values)
    if not values:
        raise ValueError("geomean of empty sequence")
    if any(v <= 0 for v in values):
        raise ValueError("geomean requires positive values")
    return math.exp(sum(math.log(v) for v in values) / len(values))


def overhead_pct(normalized_cpi: float) -> float:
    """Execution overhead (%) implied by a CPI normalized to Unsafe."""
    return (normalized_cpi - 1.0) * 100.0


def normalized(cycles: Mapping[str, float], baseline_key: str) -> Dict[str, float]:
    """Normalize a dict of cycle counts to one baseline entry."""
    base = cycles[baseline_key]
    if base <= 0:
        raise ValueError("baseline cycle count must be positive")
    return {key: value / base for key, value in cycles.items()}
