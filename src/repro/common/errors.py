"""Exception types used across the simulator."""


class ReproError(Exception):
    """Base class for all errors raised by this package."""


class ConfigError(ReproError):
    """A configuration value is invalid or inconsistent."""


class SimulationError(ReproError):
    """The simulator reached an internally inconsistent state."""


class VerificationError(ReproError):
    """A verification pass (``repro verify``) could not run to completion
    — e.g. the model checker's state budget was exhausted."""


class InvariantViolation(SimulationError):
    """The runtime sanitizer observed a broken simulator invariant.

    Carries the name of the violated invariant, a human-readable detail
    string, and the suffix of the sanitizer's event trace leading up to the
    violation (most recent last) for debugging.
    """

    def __init__(self, invariant, detail, cycle=0, trace=()):
        self.invariant = invariant
        self.detail = detail
        self.cycle = cycle
        self.trace = tuple(trace)
        message = f"[{invariant}] {detail} (cycle {cycle})"
        if self.trace:
            suffix = "\n  ".join(str(event) for event in self.trace[-12:])
            message = f"{message}\n  recent events:\n  {suffix}"
        super().__init__(message)


class CheckpointError(ReproError):
    """A simulation checkpoint could not be written, read, or applied —
    unsupported system state (e.g. an attached sanitizer), a format
    mismatch, or a corrupt/truncated checkpoint file."""


class DeadlockError(SimulationError):
    """Forward progress stopped: no core retired an instruction for too long.

    ``dump`` optionally carries the structured diagnostic state of the
    stuck system (``System.diagnostic_dump``): per-core ROB head, oldest
    load, pending events, and pin/CPT occupancy.
    """

    def __init__(self, cycle, detail="", dump=None):
        self.cycle = cycle
        self.detail = detail
        self.dump = dump
        message = f"no forward progress by cycle {cycle}"
        if detail:
            message = f"{message}: {detail}"
        super().__init__(message)
