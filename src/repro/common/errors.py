"""Exception types used across the simulator."""


class ReproError(Exception):
    """Base class for all errors raised by this package."""


class ConfigError(ReproError):
    """A configuration value is invalid or inconsistent."""


class SimulationError(ReproError):
    """The simulator reached an internally inconsistent state."""


class VerificationError(ReproError):
    """A verification pass (``repro verify``) could not run to completion
    — e.g. the model checker's state budget was exhausted."""


class InvariantViolation(SimulationError):
    """The runtime sanitizer observed a broken simulator invariant.

    Carries the name of the violated invariant, a human-readable detail
    string, and the suffix of the sanitizer's event trace leading up to the
    violation (most recent last) for debugging.
    """

    def __init__(self, invariant, detail, cycle=0, trace=()):
        self.invariant = invariant
        self.detail = detail
        self.cycle = cycle
        self.trace = tuple(trace)
        message = f"[{invariant}] {detail} (cycle {cycle})"
        if self.trace:
            suffix = "\n  ".join(str(event) for event in self.trace[-12:])
            message = f"{message}\n  recent events:\n  {suffix}"
        super().__init__(message)


class CheckpointError(ReproError):
    """A simulation checkpoint could not be written, read, or applied —
    unsupported system state (e.g. an attached sanitizer), a format
    mismatch, or a corrupt/truncated checkpoint file."""


class JournalError(ReproError):
    """The job service's write-ahead journal is unusable: a corrupt
    record *before* the final line (a torn final line is expected after
    ``kill -9`` and is tolerated), a bad checksum, or an unreadable
    file.  Replay refuses to guess — better to fail loudly than resume
    from reordered or partially-applied state."""


class ServiceError(ReproError):
    """Base class of the job service's structured error taxonomy.

    Every error that crosses the HTTP boundary is one of these; the
    server serializes ``to_doc()`` as the response body and the client
    re-raises the matching subclass from the wire form, so both sides
    agree on the taxonomy (documented in ``docs/resilience.md``):

    =====================  ======  ========================================
    ``code``               status  meaning
    =====================  ======  ========================================
    ``invalid-request``      400   malformed job spec / unknown field value
    ``not-found``            404   no such job id
    ``queue-full``           429   admission queue at capacity; retry later
    ``quota-exceeded``       429   this tenant's fair-share quota is full
    ``rejecting``            503   service degraded to reject-only
    ``draining``             503   service is draining; submissions refused
    ``shard-unavailable``    503   every replica of a job's ring slot is
                                   unreachable (federation only)
    ``job-failed``           500   the simulation itself failed (see detail)
    ``internal``             500   unexpected server-side error
    =====================  ======  ========================================

    ``retry_after_s`` is the server's backpressure hint (also sent as a
    ``Retry-After`` header); ``None`` means retrying is pointless.
    """

    code = "internal"
    http_status = 500

    def __init__(self, message, retry_after_s=None):
        self.retry_after_s = retry_after_s
        super().__init__(message)

    def to_doc(self):
        doc = {"code": self.code, "message": str(self)}
        if self.retry_after_s is not None:
            doc["retry_after_s"] = round(float(self.retry_after_s), 3)
        return doc

    @staticmethod
    def from_doc(doc):
        """Rebuild the matching subclass from a wire-form error doc."""
        code = doc.get("code", "internal")
        cls = _SERVICE_ERRORS.get(code, ServiceError)
        return cls(doc.get("message", code),
                   retry_after_s=doc.get("retry_after_s"))


class BadRequestError(ServiceError, ValueError):
    """The job spec is malformed (unknown workload/scheme, bad types).

    Also a ``ValueError`` so pre-service call sites that validated cell
    names with ``except ValueError`` keep working unchanged."""

    code = "invalid-request"
    http_status = 400


class JobNotFoundError(ServiceError):
    """No job with the requested id has ever been submitted here."""

    code = "not-found"
    http_status = 404


class QueueFullError(ServiceError):
    """The bounded admission queue is at capacity (backpressure): the
    submission was refused, not queued.  ``retry_after_s`` estimates
    when a slot should open."""

    code = "queue-full"
    http_status = 429


class QuotaExceededError(ServiceError):
    """This tenant's slice of the admission queue is full (per-tenant
    fair-share quota): the submission was refused even though the queue
    as a whole may have room, so one tenant's burst cannot crowd out
    everyone else.  ``retry_after_s`` estimates when the tenant's own
    backlog should drain a slot."""

    code = "quota-exceeded"
    http_status = 429


class RejectingError(ServiceError):
    """The service degraded to reject-only (the bottom rung of the
    degradation ladder) and is probing for recovery."""

    code = "rejecting"
    http_status = 503


class DrainingError(ServiceError):
    """The service is draining (SIGTERM/SIGINT): in-flight jobs are
    checkpointing and re-entering the queue; new work is refused."""

    code = "draining"
    http_status = 503


class ShardUnavailableError(ServiceError):
    """Every replica of a job's consistent-hash ring slot is
    unreachable: the ``FederatedClient`` walked the whole replica set
    and each shard failed with a connection-level error.  Raised
    client-side by ``repro.service.fabric`` (it never crosses the wire
    from a single shard) but part of the documented taxonomy so
    ``repro submit --fabric`` exit paths stay structured."""

    code = "shard-unavailable"
    http_status = 503


class JobFailedError(ServiceError):
    """The job ran and failed (simulation error, timeout after all
    retries, invariant violation).  Carries the failure kind/message."""

    code = "job-failed"
    http_status = 500


_SERVICE_ERRORS = {cls.code: cls for cls in (
    BadRequestError, JobNotFoundError, QueueFullError,
    QuotaExceededError, RejectingError, DrainingError,
    ShardUnavailableError, JobFailedError, ServiceError)}


class DeadlockError(SimulationError):
    """Forward progress stopped: no core retired an instruction for too long.

    ``dump`` optionally carries the structured diagnostic state of the
    stuck system (``System.diagnostic_dump``): per-core ROB head, oldest
    load, pending events, and pin/CPT occupancy.
    """

    def __init__(self, cycle, detail="", dump=None):
        self.cycle = cycle
        self.detail = detail
        self.dump = dump
        message = f"no forward progress by cycle {cycle}"
        if detail:
            message = f"{message}: {detail}"
        super().__init__(message)
