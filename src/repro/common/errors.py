"""Exception types used across the simulator."""


class ReproError(Exception):
    """Base class for all errors raised by this package."""


class ConfigError(ReproError):
    """A configuration value is invalid or inconsistent."""


class SimulationError(ReproError):
    """The simulator reached an internally inconsistent state."""


class DeadlockError(SimulationError):
    """Forward progress stopped: no core retired an instruction for too long."""

    def __init__(self, cycle, detail=""):
        self.cycle = cycle
        self.detail = detail
        message = f"no forward progress by cycle {cycle}"
        if detail:
            message = f"{message}: {detail}"
        super().__init__(message)
