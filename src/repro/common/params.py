"""Configuration dataclasses for the simulated system.

The defaults mirror Table 1 of the paper, scaled where noted so that the
synthetic workloads exercise the same behaviours at tractable trace lengths.
"""

from __future__ import annotations

import enum
from dataclasses import asdict, dataclass, field, replace
from typing import Any, Dict, Optional

from repro.common.errors import ConfigError

LINE_BYTES = 64
LINE_SHIFT = 6


class ThreatModel(enum.Enum):
    """Threat models (and intermediate VP-condition levels for breakdowns).

    The levels are cumulative: each includes all squash sources of the
    previous one.  ``SPECTRE`` is an alias of ``CTRL`` and ``COMPREHENSIVE``
    an alias of ``MCV`` — named members are provided because the paper uses
    both vocabularies (Figure 1 uses condition levels, the rest threat
    models).
    """

    CTRL = 1          # squashes due to branch mispredictions only (Spectre)
    ALIAS = 2         # + squashes due to memory-dependence aliasing
    EXCEPT = 3        # + squashes due to exceptions
    MCV = 4           # + squashes due to memory consistency violations

    @property
    def level(self) -> int:
        return self.value


SPECTRE = ThreatModel.CTRL
COMPREHENSIVE = ThreatModel.MCV


class PinningMode(enum.Enum):
    """Which Pinned Loads design extends the defense scheme (Table 3)."""

    NONE = "none"     # unmodified scheme (Comp / Spectre columns)
    LATE = "lp"       # Late Pinning
    EARLY = "ep"      # Early Pinning


class DefenseKind(enum.Enum):
    """Baseline hardware defense schemes (Table 2), plus the
    invisible-speculation class the paper's §4 lists as augmentable
    (InvisiSpec-like: pre-VP loads execute invisibly, then validate)."""

    UNSAFE = "unsafe"
    FENCE = "fence"
    DOM = "dom"
    STT = "stt"
    INVISI = "invisi"


@dataclass(frozen=True)
class CoreParams:
    """Out-of-order core parameters (Table 1, "Core" row)."""

    width: int = 8                 # fetch/dispatch/issue/retire width
    rob_entries: int = 192
    load_queue_entries: int = 62
    store_queue_entries: int = 32
    write_buffer_entries: int = 16
    branch_resolve_latency: int = 12   # mispredict redirect penalty, cycles
    branch_exec_latency: int = 6       # issue-to-resolution depth for branches
    int_latency: int = 1
    fp_latency: int = 3
    agen_latency: int = 1              # address-generation latency

    def validate(self) -> None:
        if self.width < 1:
            raise ConfigError("core width must be >= 1")
        if self.rob_entries < self.width:
            raise ConfigError("ROB must hold at least one dispatch group")
        for name in ("load_queue_entries", "store_queue_entries",
                     "write_buffer_entries"):
            if getattr(self, name) < 1:
                raise ConfigError(f"{name} must be >= 1")


@dataclass(frozen=True)
class CacheParams:
    """One cache level. Sizes follow Table 1; latencies are round trips."""

    size_bytes: int
    ways: int
    latency: int
    line_bytes: int = LINE_BYTES

    @property
    def sets(self) -> int:
        return self.size_bytes // (self.ways * self.line_bytes)

    def validate(self) -> None:
        if self.size_bytes % (self.ways * self.line_bytes) != 0:
            raise ConfigError("cache size not divisible into sets")
        if self.sets & (self.sets - 1):
            raise ConfigError("cache set count must be a power of two")


@dataclass(frozen=True)
class NetworkParams:
    """Ordered mesh interconnect (Table 1: 4x2 mesh, 1 cycle/hop)."""

    mesh_cols: int = 4
    mesh_rows: int = 2
    hop_latency: int = 1

    @property
    def node_count(self) -> int:
        return self.mesh_cols * self.mesh_rows


@dataclass(frozen=True)
class PinnedLoadsParams:
    """Pinned Loads hardware structures (Table 1, bottom rows)."""

    mode: PinningMode = PinningMode.NONE
    l1_cst_entries: int = 12
    l1_cst_records: int = 8
    dir_cst_entries: int = 40
    dir_cst_records: int = 2
    w_d: int = 2                   # reserved dir/LLC lines per slice-set/core
    cpt_entries: int = 4
    lq_id_tag_bits: int = 24
    #: where the pinned-line record lives: "lq" (one Pinned bit per LQ
    #: entry, the paper's chosen design, §6.1.1) or "l1tag" (Pinned bits
    #: in the L1 tags + YPL bits, the §6.1.2 alternative)
    pin_record: str = "lq"
    #: §6.3's advanced CPT: a FIFO of starving writer IDs that reserves
    #: freed CPT entries so a writer can never be shut out forever
    cpt_reservation_queue: bool = False
    # Ablation knobs (not in the paper's default configuration):
    infinite_cst: bool = False     # ideal CST (sensitivity study, §9.2.1)
    ideal_cpt: bool = False        # unbounded CPT (occupancy study, §9.2.2)
    aggressive_tso: bool = True    # oldest ROB load immune to MCV (§3.3)

    def validate(self) -> None:
        if self.w_d < 1:
            raise ConfigError("w_d must be >= 1")
        for name in ("l1_cst_entries", "l1_cst_records", "dir_cst_entries",
                     "dir_cst_records", "cpt_entries"):
            if getattr(self, name) < 1:
                raise ConfigError(f"{name} must be >= 1")
        if self.pin_record not in ("lq", "l1tag"):
            raise ConfigError(
                f"pin_record must be 'lq' or 'l1tag', not {self.pin_record!r}")


#: Chaos knobs whose mutation deliberately breaks a protocol invariant so
#: the campaign can prove it would catch a real bug (``repro chaos``).
CHAOS_MUTATIONS = ("evict-pinned",)

#: Test-only defense weakenings for the leakage oracle's mutant
#: self-test (``repro attack``): each one disables the very mechanism a
#: scheme relies on to block a covert channel, and a correct oracle MUST
#: flip that scheme's verdict to "leaks".
#:
#: * ``dom-leaky-miss`` — Delay-On-Miss stops delaying: pre-VP loads
#:   issue normally even on an L1 miss, re-opening the cache-fill
#:   channel DOM exists to close.
#: * ``stt-blind-taint`` — STT ignores its taint tracker: tainted-
#:   address loads issue pre-VP, re-opening the secret-dependent-address
#:   channel.
DEFENSE_MUTATIONS = ("dom-leaky-miss", "stt-blind-taint")


@dataclass(frozen=True)
class ChaosConfig:
    """Seeded, deterministic fault injection for the memory system.

    Attached as ``SystemConfig.chaos``, the chaos engine
    (``repro.chaos.engine``) perturbs *timing* — never architectural
    behaviour — so any run with any seed must retire the same
    instruction stream and keep every pin-safety invariant.  All
    randomness is drawn from one ``random.Random(seed)``; a run is a
    pure function of (config, workload) exactly as without chaos.

    * ``msg_jitter`` / ``msg_jitter_prob`` — extra per-message network
      latency of 1..msg_jitter cycles with the given probability, which
      also reorders same-cycle protocol messages (bounded reordering).
    * ``nack_prob`` — the directory NACKs an incoming read/write with
      this probability; the requestor retries after an exponential
      backoff of ``nack_backoff * 2^attempt`` capped at
      ``nack_backoff_cap``, and is always admitted after ``max_nacks``
      consecutive NACKs (no livelock).
    * ``evict_interval`` — every N cycles, force-evict one random
      resident *unpinned* line (alternating L1 victim / LLC
      back-invalidation paths, exactly the paths Pinned Loads must deny
      for pinned lines).
    * ``wb_spike_interval`` / ``wb_spike_duration`` — periodically make
      one core's write buffer report itself full, stalling store retire
      and shrinking the pinning precondition window (§5.1.2).
    * ``mutate`` — campaign self-test: "evict-pinned" lets the forced
      eviction target pinned lines, which a correct sanitizer/campaign
      MUST flag.
    * ``crash_at_cycle`` / ``stall_at_cycle`` — executor fault
      injection (tests): SIGKILL the worker process / sleep
      ``stall_seconds`` of wall-clock when the simulated clock reaches
      the cycle, on attempts below ``crash_attempts``/``stall_attempts``
      only, and only inside pool worker processes.
    * ``alloc_at_cycle`` / ``alloc_mb`` — executor fault injection
      (tests): model a runaway simulation by allocating ``alloc_mb``
      MiB when the simulated clock reaches the cycle, on attempts below
      ``alloc_attempts`` only, and only inside pool worker processes;
      under an executor worker memory ceiling this dies as a retryable
      ``MemoryError`` instead of OOMing the host.
    """

    seed: int = 0
    msg_jitter: int = 3
    msg_jitter_prob: float = 0.25
    nack_prob: float = 0.05
    nack_backoff: int = 8
    nack_backoff_cap: int = 256
    max_nacks: int = 6
    evict_interval: int = 200
    wb_spike_interval: int = 0
    wb_spike_duration: int = 50
    mutate: str = ""
    crash_at_cycle: Optional[int] = None
    crash_attempts: int = 1
    stall_at_cycle: Optional[int] = None
    stall_seconds: float = 0.0
    stall_attempts: int = 1
    alloc_at_cycle: Optional[int] = None
    alloc_mb: int = 512
    alloc_attempts: int = 1

    def validate(self) -> None:
        for name in ("msg_jitter_prob", "nack_prob"):
            value = getattr(self, name)
            if not 0.0 <= value <= 1.0:
                raise ConfigError(f"{name} must be in [0, 1], not {value}")
        for name in ("msg_jitter", "evict_interval", "wb_spike_interval",
                     "wb_spike_duration", "stall_seconds", "alloc_mb"):
            if getattr(self, name) < 0:
                raise ConfigError(f"{name} must be >= 0")
        for name in ("nack_backoff", "nack_backoff_cap", "max_nacks"):
            if getattr(self, name) < 1:
                raise ConfigError(f"{name} must be >= 1")
        if self.mutate and self.mutate not in CHAOS_MUTATIONS:
            raise ConfigError(
                f"unknown chaos mutation {self.mutate!r}; "
                f"choose from {CHAOS_MUTATIONS}")


@dataclass(frozen=True)
class SystemConfig:
    """Complete configuration of one simulated machine."""

    num_cores: int = 1
    core: CoreParams = field(default_factory=CoreParams)
    l1d: CacheParams = field(
        default_factory=lambda: CacheParams(size_bytes=32 * 1024, ways=8,
                                            latency=2))
    llc_slice: CacheParams = field(
        default_factory=lambda: CacheParams(size_bytes=2 * 1024 * 1024,
                                            ways=16, latency=8))
    network: NetworkParams = field(default_factory=NetworkParams)
    dram_latency: int = 100        # 50 ns RT at 2 GHz
    defense: DefenseKind = DefenseKind.UNSAFE
    threat_model: ThreatModel = COMPREHENSIVE
    pinning: PinnedLoadsParams = field(default_factory=PinnedLoadsParams)
    write_retry_latency: int = 20  # backoff before a deferred write retries
    l1_prefetch: bool = True       # next-line L1 prefetcher (Table 1)
    deadlock_cycles: int = 200_000
    #: Opt-in runtime invariant sanitizer (``repro.verify.sanitizer``).
    #: Instruments the memory system, cores, and pinning controllers and
    #: raises ``InvariantViolation`` on any broken invariant.  Costs
    #: simulation speed; must stay False for performance measurements.
    sanitize: bool = False
    #: Opt-in deterministic fault injection (``repro.chaos``).  ``None``
    #: leaves every hot path untouched; a ``ChaosConfig`` perturbs
    #: timing (jitter, NACKs, forced evictions, write-buffer spikes)
    #: without changing architectural outcomes.
    chaos: Optional[ChaosConfig] = None
    #: Test-only defense weakening (``DEFENSE_MUTATIONS``) for the
    #: leakage oracle's mutant self-test.  Empty in every real
    #: configuration; a mutated config is ineligible for the
    #: specialized engine so the weakened scheme hook is always honored.
    defense_mutation: str = ""

    @property
    def num_slices(self) -> int:
        return self.network.node_count

    def validate(self) -> None:
        if self.num_cores < 1:
            raise ConfigError("need at least one core")
        if self.num_cores > self.network.node_count:
            raise ConfigError("more cores than mesh nodes")
        self.core.validate()
        self.l1d.validate()
        self.llc_slice.validate()
        self.pinning.validate()
        if self.chaos is not None:
            self.chaos.validate()
        if self.defense_mutation \
                and self.defense_mutation not in DEFENSE_MUTATIONS:
            raise ConfigError(
                f"unknown defense mutation {self.defense_mutation!r}; "
                f"choose from {DEFENSE_MUTATIONS}")
        if (self.pinning.mode is not PinningMode.NONE
                and self.threat_model is not COMPREHENSIVE):
            raise ConfigError(
                "pinning only applies under the Comprehensive threat model")

    def with_defense(self, defense: DefenseKind,
                     threat_model: ThreatModel = COMPREHENSIVE,
                     pinning_mode: PinningMode = PinningMode.NONE,
                     ) -> "SystemConfig":
        """Return a copy configured for one (scheme, extension) cell of
        Tables 2/3 — e.g. ``cfg.with_defense(DefenseKind.STT,
        pinning_mode=PinningMode.EARLY)`` is the STT-EP configuration."""
        pinning = replace(self.pinning, mode=pinning_mode)
        return replace(self, defense=defense, threat_model=threat_model,
                       pinning=pinning)

    def to_dict(self) -> Dict[str, Any]:
        """JSON-serializable dict representation (see ``from_dict``).

        Enum members are flattened to their values/names so the dict is
        canonical: two equal configs always produce the same dict.  Used
        by the persistent experiment cache to key results on disk."""
        data = asdict(self)
        data["defense"] = self.defense.value
        data["threat_model"] = self.threat_model.name
        data["pinning"]["mode"] = self.pinning.mode.value
        if not data["defense_mutation"]:
            # dropped when unset so every pre-existing config keeps its
            # canonical dict (and therefore its experiment cache keys)
            del data["defense_mutation"]
        return data

    @classmethod
    def from_dict(cls, data: Dict[str, Any]) -> "SystemConfig":
        """Rebuild a config from ``to_dict`` output."""
        data = dict(data)
        data["core"] = CoreParams(**data["core"])
        data["l1d"] = CacheParams(**data["l1d"])
        data["llc_slice"] = CacheParams(**data["llc_slice"])
        data["network"] = NetworkParams(**data["network"])
        pinning = dict(data["pinning"])
        pinning["mode"] = PinningMode(pinning["mode"])
        data["pinning"] = PinnedLoadsParams(**pinning)
        data["defense"] = DefenseKind(data["defense"])
        data["threat_model"] = ThreatModel[data["threat_model"]]
        if data.get("chaos") is not None:
            data["chaos"] = ChaosConfig(**data["chaos"])
        data.setdefault("defense_mutation", "")
        return cls(**data)
