"""Memory substrate: caches, write buffer, directory, coherence, network."""

from repro.mem.cache import CacheArray, LineState, MSHRFile
from repro.mem.coherence import CoherentMemory, CorePort
from repro.mem.directory import DirEntry
from repro.mem.network import MeshNetwork
from repro.mem.replacement import LRUSet
from repro.mem.writebuffer import WriteBuffer

__all__ = ["CacheArray", "CoherentMemory", "CorePort", "DirEntry",
           "LRUSet", "LineState", "MSHRFile", "MeshNetwork", "WriteBuffer"]
