"""Set-associative cache arrays and MSHRs.

``CacheArray`` is used both for private L1 data caches and for the LLC
slices (whose tag array doubles as the directory — the hierarchy is
inclusive, as in the paper's MESI configuration).
"""

from __future__ import annotations

import enum
from typing import Callable, Dict, List, Optional

from repro.common.params import CacheParams
from repro.mem.replacement import LRUSet


class LineState(enum.Enum):
    """MESI stable states for a private-cache line."""

    MODIFIED = "M"
    EXCLUSIVE = "E"
    SHARED = "S"

    @property
    def writable(self) -> bool:
        return self is not LineState.SHARED


class CacheArray:
    """A physically-indexed, set-associative array with LRU replacement."""

    __slots__ = ("params", "num_sets", "_sets", "_mask")

    def __init__(self, params: CacheParams) -> None:
        params.validate()
        self.params = params
        self.num_sets = params.sets
        self._mask = self.num_sets - 1      # sets is a power of two
        self._sets: List[LRUSet] = [LRUSet(params.ways)
                                    for _ in range(self.num_sets)]

    def set_of(self, line: int) -> int:
        return line & self._mask

    def _set(self, line: int) -> LRUSet:
        return self._sets[line & self._mask]

    def lookup(self, line: int, touch: bool = True) -> Optional[LineState]:
        """State of ``line`` if resident (``None`` on miss).  Called on
        every load/store/probe, so the set index is computed inline."""
        cache_set = self._sets[line & self._mask]
        state = cache_set.get(line)
        if state is not None and touch:
            cache_set.touch(line)
        return state

    def set_state(self, line: int, state: LineState) -> None:
        cache_set = self._set(line)
        if line not in cache_set:
            raise KeyError(f"line {line:#x} not resident")
        cache_set.update(line, state)

    def fill(self, line: int, state: LineState) -> None:
        """Insert ``line``; the caller must already have made room."""
        self._set(line).insert(line, state)

    def invalidate(self, line: int) -> bool:
        """Drop ``line`` if resident; returns whether it was resident."""
        cache_set = self._set(line)
        if line in cache_set:
            cache_set.remove(line)
            return True
        return False

    def needs_victim(self, line: int) -> bool:
        cache_set = self._set(line)
        return line not in cache_set and cache_set.full

    def pick_victim(self, line: int,
                    evictable: Optional[Callable[[int], bool]] = None,
                    ) -> Optional[int]:
        """LRU victim in ``line``'s set, honoring the evictable filter."""
        return self._set(line).pick_victim(evictable)

    def resident_lines(self, set_index: int):
        return self._sets[set_index].lines()

    def sample_resident_line(self, rng,
                             evictable: Optional[Callable[[int], bool]] = None,
                             ) -> Optional[int]:
        """A uniformly random resident line passing ``evictable``, or
        ``None`` if nothing qualifies.  Used by the chaos engine
        (``repro.chaos``) to pick forced-eviction victims; candidates are
        sorted so the draw depends only on ``rng``'s seed, never on dict
        iteration order."""
        start = rng.randrange(self.num_sets)
        for offset in range(self.num_sets):
            cache_set = self._sets[(start + offset) & self._mask]
            lines = sorted(cache_set.lines())
            if evictable is not None:
                lines = [line for line in lines if evictable(line)]
            if lines:
                return rng.choice(lines)
        return None

    def occupancy(self) -> int:
        return sum(len(s) for s in self._sets)

    # -- checkpoint shape (format v3) ----------------------------------
    #
    # A tag array is mostly empty sets: pickling one ``LRUSet`` object
    # per set made cache state the bulk of every checkpoint (tens of
    # thousands of objects for an LLC).  Serialize only the occupied
    # sets as ``(set_index, [(line, state), ...])`` rows — the item
    # order of each row is the set's LRU->MRU order, so a restored
    # array replays identical victim choices.

    def __getstate__(self):
        return {"params": self.params,
                "occupied": [(index, list(s._lines.items()))
                             for index, s in enumerate(self._sets)
                             if s._lines]}

    def __setstate__(self, state) -> None:
        params = state["params"]
        self.params = params
        self.num_sets = params.sets
        self._mask = self.num_sets - 1
        ways = params.ways
        self._sets = [LRUSet(ways) for _ in range(self.num_sets)]
        for index, items in state["occupied"]:
            lines = self._sets[index]._lines
            for line, value in items:
                lines[line] = value


class MSHR:
    """A miss-status holding register: one outstanding line fill.

    Secondary misses to the same line merge their completion callbacks; the
    Early Pinning design also parks a Pinned bit here (paper §6.1.2), which
    we model by letting the pinning controller observe outstanding lines.
    """

    __slots__ = ("line", "callbacks", "issued_cycle")

    def __init__(self, line: int, issued_cycle: int) -> None:
        self.line = line
        self.issued_cycle = issued_cycle
        self.callbacks: List[Callable[[int], None]] = []


class MSHRFile:
    """The set of outstanding fills for one L1 cache."""

    __slots__ = ("_entries",)

    def __init__(self) -> None:
        self._entries: Dict[int, MSHR] = {}

    def outstanding(self, line: int) -> Optional[MSHR]:
        return self._entries.get(line)

    def allocate(self, line: int, cycle: int) -> MSHR:
        if line in self._entries:
            raise ValueError(f"MSHR for line {line:#x} already allocated")
        entry = MSHR(line, cycle)
        self._entries[line] = entry
        return entry

    def retire(self, line: int) -> MSHR:
        return self._entries.pop(line)

    def __len__(self) -> int:
        return len(self._entries)

    def lines(self):
        return self._entries.keys()
