"""Transaction-level MESI coherence with the Pinned Loads extensions.

This module is the substitute for the paper's gem5/Ruby protocol.  Protocol
*decisions* are faithful to §5 of the paper:

* An invalidation aimed at a line pinned by the receiving core is denied:
  the sharer answers ``Defer``, the writer ``Abort``s and retries
  (Figure 3b).
* Retries after a deferral use ``GetX*``; the directory then sends ``Inv*``,
  which inserts the line into every sharer's Cannot-Pin Table; when the
  write finally succeeds, ``Clear`` removes it (Figure 5, §5.1.5).
* Evictions — L1 victim picks and LLC back-invalidating victim picks — skip
  pinned lines; if every candidate is pinned the operation retries later
  (§5.1.3).  Retried writes and retried evictions are counted (§9.1.3).

Timing is transaction-level: a request is processed at the directory after
its network latency, makes all protocol decisions there against *current*
state, and completes after the remaining message latencies.  A per-line busy
set stands in for the directory's transient states.
"""

from __future__ import annotations

from typing import Callable, Dict, List, Optional, Set, Tuple

from repro.common.addr import slice_of
from repro.common.events import EventQueue
from repro.common.params import SystemConfig
from repro.common.stats import StatSet
from repro.mem.cache import CacheArray, LineState, MSHRFile
from repro.mem.directory import DirEntry
from repro.mem.network import MeshNetwork

Callback = Callable[[int], None]


class CorePort:
    """What the memory system needs from each core.

    The real core (``repro.core.pipeline.Core``) implements this; unit tests
    use this default implementation directly as a passive stub.
    """

    __slots__ = ()

    def has_pinned(self, line: int) -> bool:
        """Is ``line`` currently pinned by a load of this core? (§5.1.1)"""
        return False

    def on_invalidation(self, line: int) -> None:
        """L1 copy invalidated by a remote write: MCV-squash check (§2)."""

    def on_line_evicted(self, line: int) -> None:
        """L1 copy evicted (self or back-invalidation): MCV-squash check."""

    def cpt_insert(self, line: int, writer: Optional[int] = None) -> None:
        """Received ``Inv*``: record that the line cannot be pinned.
        ``writer`` is the starving writer core (used by the §6.3 advanced
        CPT's reservation queue)."""

    def cpt_clear(self, line: int) -> None:
        """Received ``Clear``: the starving write succeeded."""


class _WriteTxn:
    """State of one in-flight (possibly retrying) write transaction."""

    __slots__ = ("attempts", "inv_star_recipients")

    def __init__(self) -> None:
        self.attempts = 0
        self.inv_star_recipients: Set[int] = set()


class CoherentMemory:
    """The full shared-memory system: per-core L1s, sliced LLC+directory,
    mesh network, and DRAM behind the LLC."""

    # "__dict__" stays in the slots so the opt-in invariant sanitizer can
    # shadow instance methods (repro.verify.sanitizer)
    __slots__ = (
        "config", "events", "network", "stats", "num_slices", "l1s",
        "mshrs", "slices", "ports", "_busy_lines", "_write_txns",
        "_retry_backoff", "chaos", "__dict__",
    )

    def __init__(self, config: SystemConfig, events: EventQueue) -> None:
        self.config = config
        self.events = events
        self.network = MeshNetwork(config.network)
        self.stats = StatSet()
        #: optional fault-injection hook (``repro.chaos.ChaosEngine``);
        #: ``None`` in normal runs
        self.chaos = None
        self.num_slices = config.num_slices
        self.l1s: List[CacheArray] = [CacheArray(config.l1d)
                                      for _ in range(config.num_cores)]
        self.mshrs: List[MSHRFile] = [MSHRFile()
                                      for _ in range(config.num_cores)]
        self.slices: List[CacheArray] = [CacheArray(config.llc_slice)
                                         for _ in range(self.num_slices)]
        self.ports: List[CorePort] = [CorePort()
                                      for _ in range(config.num_cores)]
        self._busy_lines: Set[int] = set()
        self._write_txns: Dict[Tuple[int, int], _WriteTxn] = {}
        self._retry_backoff = config.write_retry_latency

    def attach_port(self, core_id: int, port: CorePort) -> None:
        self.ports[core_id] = port

    # ------------------------------------------------------------------
    # Functional warm-up
    # ------------------------------------------------------------------

    def warm(self, workload) -> None:
        """Functionally pre-touch every memory access of the workload.

        Stands in for the paper's warm-up phase (1M instructions before
        each SimPoint / full-system ROI entry): caches and directory start
        the timed run in their steady state instead of cold.  Protocol
        state is mirrored (sharers, owners, inclusive back-invalidation)
        but no timing, squash, or pinning effects apply.

        Only *reused* lines (accessed more than once across the workload)
        are warmed: a line touched exactly once is a compulsory miss and
        must stay cold — streaming workloads pay DRAM latency for it, as
        they would on real hardware.

        Transient (guarded) uops are skipped: they exist only on the
        wrong path, so warming from them would make the *starting* cache
        state depend on wrong-path (secret-dependent) addresses — the
        leakage oracle requires any such perturbation to come from the
        timed run itself, never from warm-up.
        """
        counts: Dict[int, int] = {}
        for trace in workload.traces:
            for uop in trace:
                if uop.addr is not None and uop.guard is None:
                    line = uop.addr >> 6
                    counts[line] = counts.get(line, 0) + 1
        for core_id, trace in enumerate(workload.traces):
            l1 = self.l1s[core_id]
            for uop in trace:
                if uop.addr is None or uop.guard is not None:
                    continue
                line = uop.addr >> 6
                if counts[line] > 1:
                    self._warm_touch(core_id, l1, line)

    def _warm_touch(self, core_id: int, l1: CacheArray, line: int) -> None:
        slice_id = slice_of(line, self.num_slices)
        slice_array = self.slices[slice_id]
        dir_entry: Optional[DirEntry] = slice_array.lookup(line)
        if dir_entry is None:
            if slice_array.needs_victim(line):
                victim = slice_array.pick_victim(line)
                victim_entry: DirEntry = slice_array.lookup(victim,
                                                            touch=False)
                for holder in sorted(victim_entry.holders()):
                    self.l1s[holder].invalidate(victim)
                slice_array.invalidate(victim)
            dir_entry = DirEntry()
            slice_array.fill(line, dir_entry)
        if l1.lookup(line) is not None:
            return
        if dir_entry.owner is not None and dir_entry.owner != core_id:
            owner_l1 = self.l1s[dir_entry.owner]
            if owner_l1.lookup(line, touch=False) is not None:
                owner_l1.set_state(line, LineState.SHARED)
            dir_entry.downgrade_owner()
        if l1.needs_victim(line):
            victim = l1.pick_victim(line)
            l1.invalidate(victim)
            victim_dir = self.slices[slice_of(victim, self.num_slices)] \
                .lookup(victim, touch=False)
            if victim_dir is not None:
                victim_dir.drop(core_id)
        if dir_entry.holders():
            l1.fill(line, LineState.SHARED)
            dir_entry.add_sharer(core_id)
        else:
            l1.fill(line, LineState.EXCLUSIVE)
            dir_entry.make_owner(core_id)

    # ------------------------------------------------------------------
    # Queries used by defenses and the pinning controller
    # ------------------------------------------------------------------

    def l1_hit(self, core_id: int, line: int) -> bool:
        """Non-destructive L1 presence probe (Delay-On-Miss's test)."""
        return self.l1s[core_id].lookup(line, touch=False) is not None

    def l1_set_of(self, line: int) -> int:
        return self.l1s[0].set_of(line)

    def slice_and_set_of(self, line: int) -> Tuple[int, int]:
        slice_id = slice_of(line, self.num_slices)
        return slice_id, self.slices[slice_id].set_of(line)

    def _line_pinned_anywhere(self, line: int) -> bool:
        return any(port.has_pinned(line) for port in self.ports)

    # ------------------------------------------------------------------
    # Load path
    # ------------------------------------------------------------------

    def load(self, core_id: int, line: int, on_complete: Callback) -> None:
        """Fetch ``line`` for a load of ``core_id``; fire ``on_complete``
        with the completion cycle once the data is in the L1."""
        self.stats.bump("loads")
        l1 = self.l1s[core_id]
        if l1.lookup(line) is not None:
            self.stats.bump("l1_load_hits")
            done = self.events.now + self.config.l1d.latency
            self.events.schedule(done, on_complete, done)
            return
        self.stats.bump("l1_load_misses")
        mshr_file = self.mshrs[core_id]
        pending = mshr_file.outstanding(line)
        if pending is not None:
            pending.callbacks.append(on_complete)
            return
        entry = mshr_file.allocate(line, self.events.now)
        entry.callbacks.append(on_complete)
        slice_id = slice_of(line, self.num_slices)
        lat = self.config.l1d.latency + self.network.send(core_id, slice_id,
                                                          "getS")
        self.events.schedule_after(
            lat, self._dir_read, core_id, line, slice_id)
        if self.config.l1_prefetch:
            self._maybe_prefetch(core_id, line + 1)

    def _maybe_prefetch(self, core_id: int, line: int) -> None:
        """Next-line L1 prefetch on a demand miss (Table 1's "1 hardware
        prefetcher").  A later demand load to the line merges into the
        prefetch's MSHR."""
        if self.l1s[core_id].lookup(line, touch=False) is not None:
            return
        if self.mshrs[core_id].outstanding(line) is not None:
            return
        self.mshrs[core_id].allocate(line, self.events.now)
        self.stats.bump("prefetches")
        slice_id = slice_of(line, self.num_slices)
        lat = self.config.l1d.latency + self.network.send(core_id, slice_id,
                                                          "getS_pf")
        self.events.schedule_after(
            lat, self._dir_read, core_id, line, slice_id)

    def load_invisible(self, core_id: int, line: int,
                       on_complete: Callback) -> None:
        """Fetch ``line`` *invisibly*: the data's latency is computed from
        the current cache/coherence state, but nothing is filled, touched,
        or recorded — the access leaves no microarchitectural trace
        (InvisiSpec-class defenses).  ``on_complete`` fires with the
        completion cycle."""
        self.stats.bump("invisible_loads")
        if self.l1s[core_id].lookup(line, touch=False) is not None:
            lat = self.config.l1d.latency
        else:
            slice_id = slice_of(line, self.num_slices)
            lat = (self.config.l1d.latency
                   + self.network.latency(core_id, slice_id))
            dir_entry: Optional[DirEntry] = \
                self.slices[slice_id].lookup(line, touch=False)
            if dir_entry is None:
                lat += (self.config.llc_slice.latency
                        + self.config.dram_latency
                        + self.network.latency(slice_id, core_id))
            elif dir_entry.owner is not None and dir_entry.owner != core_id:
                lat += (self.network.latency(slice_id, dir_entry.owner)
                        + self.config.l1d.latency
                        + self.network.latency(dir_entry.owner, core_id))
            else:
                lat += (self.config.llc_slice.latency
                        + self.network.latency(slice_id, core_id))
        self.stats.bump("invisible_load_cycles", lat)
        done = self.events.now + lat
        self.events.schedule(done, on_complete, done)

    def _dir_read(self, core_id: int, line: int, slice_id: int) -> None:
        if self.chaos is not None:
            nack = self.chaos.nack_delay("read", core_id, line)
            if nack:
                self.stats.bump("chaos_nacks")
                self.events.schedule_after(
                    nack, self._dir_read, core_id, line, slice_id)
                return
        if line in self._busy_lines:
            self.events.schedule_after(
                self._retry_backoff, self._dir_read, core_id, line, slice_id)
            return
        slice_array = self.slices[slice_id]
        dir_entry: Optional[DirEntry] = slice_array.lookup(line)
        lat = self.config.llc_slice.latency
        if dir_entry is None:
            made_room = self._allocate_llc(slice_id, line)
            if not made_room:
                # every candidate victim is pinned; retry the fill later
                self.stats.bump("eviction_retries")
                self.events.schedule_after(
                    self._retry_backoff, self._dir_read,
                    core_id, line, slice_id)
                return
            dir_entry = DirEntry()
            slice_array.fill(line, dir_entry)
            lat += self.config.dram_latency
            self.stats.bump("llc_misses")
        elif dir_entry.owner is not None and dir_entry.owner != core_id:
            # three-hop: forward from the owning core, which downgrades
            owner = dir_entry.owner
            lat += self.network.send(slice_id, owner, "fwd")
            lat += self.config.l1d.latency
            lat += self.network.send(owner, core_id, "data")
            owner_l1 = self.l1s[owner]
            if owner_l1.lookup(line, touch=False) is not None:
                owner_l1.set_state(line, LineState.SHARED)
            dir_entry.downgrade_owner()
            dir_entry.add_sharer(core_id)
            self._finish_load(core_id, line, lat, LineState.SHARED)
            return
        lat += self.network.send(slice_id, core_id, "data")
        exclusive = not dir_entry.holders()
        if exclusive:
            dir_entry.make_owner(core_id)
        else:
            dir_entry.add_sharer(core_id)
        state = LineState.EXCLUSIVE if exclusive else LineState.SHARED
        self._finish_load(core_id, line, lat, state)

    def _finish_load(self, core_id: int, line: int, extra_lat: int,
                     state: LineState) -> None:
        self.events.schedule_after(
            extra_lat, self._l1_fill, core_id, line, state)

    def _l1_fill(self, core_id: int, line: int, state: LineState) -> None:
        l1 = self.l1s[core_id]
        port = self.ports[core_id]
        if l1.lookup(line, touch=False) is None:
            if l1.needs_victim(line):
                victim = l1.pick_victim(line, evictable=lambda v:
                                        not port.has_pinned(v))
                if victim is None:
                    # whole set pinned (possible under Late Pinning): the
                    # fill waits for a pinned load to retire
                    self.stats.bump("eviction_retries")
                    self.events.schedule_after(
                        self._retry_backoff, self._l1_fill,
                        core_id, line, state)
                    return
                self._evict_l1(core_id, victim)
            l1.fill(line, state)
        mshr = self.mshrs[core_id].outstanding(line)
        if mshr is not None:
            self.mshrs[core_id].retire(line)
            now = self.events.now
            for callback in mshr.callbacks:
                callback(now)

    def _evict_l1(self, core_id: int, victim: int) -> None:
        """Evict ``victim`` from ``core_id``'s L1 (capacity eviction)."""
        l1 = self.l1s[core_id]
        state = l1.lookup(victim, touch=False)
        l1.invalidate(victim)
        if state is LineState.MODIFIED:
            slice_id = slice_of(victim, self.num_slices)
            self.network.send(core_id, slice_id, "wb")
        slice_id = slice_of(victim, self.num_slices)
        dir_entry = self.slices[slice_id].lookup(victim, touch=False)
        if dir_entry is not None:
            dir_entry.drop(core_id)
        self.stats.bump("l1_evictions")
        self.ports[core_id].on_line_evicted(victim)

    def _allocate_llc(self, slice_id: int, line: int) -> bool:
        """Make room for ``line`` in its LLC slice set.  Returns False when
        every victim candidate is pinned by some core."""
        slice_array = self.slices[slice_id]
        if not slice_array.needs_victim(line):
            return True
        victim = slice_array.pick_victim(
            line, evictable=lambda v: not self._line_pinned_anywhere(v))
        if victim is None:
            return False
        dir_entry: DirEntry = slice_array.lookup(victim, touch=False)
        # inclusive hierarchy: back-invalidate every private copy
        for holder in sorted(dir_entry.holders()):
            holder_l1 = self.l1s[holder]
            if holder_l1.invalidate(victim):
                self.network.send(slice_id, holder, "back_inv")
                self.ports[holder].on_line_evicted(victim)
        slice_array.invalidate(victim)
        self.stats.bump("llc_evictions")
        return True

    # ------------------------------------------------------------------
    # Write path (write-buffer drains and atomics)
    # ------------------------------------------------------------------

    def store(self, core_id: int, line: int, on_complete: Callback) -> None:
        """Perform a retired store to ``line`` (drained from the write
        buffer).  Completes when the data is merged into the cache in M."""
        self.stats.bump("stores")
        l1 = self.l1s[core_id]
        state = l1.lookup(line)
        if state is not None and state.writable:
            l1.set_state(line, LineState.MODIFIED)
            done = self.events.now + self.config.l1d.latency
            self.events.schedule(done, on_complete, done)
            return
        slice_id = slice_of(line, self.num_slices)
        lat = self.config.l1d.latency + self.network.send(core_id, slice_id,
                                                          "getX")
        key = (core_id, line)
        if key not in self._write_txns:
            self._write_txns[key] = _WriteTxn()
        self.events.schedule_after(
            lat, self._dir_write, core_id, line, slice_id, on_complete)

    def _dir_write(self, core_id: int, line: int, slice_id: int,
                   on_complete: Callback) -> None:
        if self.chaos is not None:
            nack = self.chaos.nack_delay("write", core_id, line)
            if nack:
                self.stats.bump("chaos_nacks")
                self.events.schedule_after(
                    nack, self._dir_write,
                    core_id, line, slice_id, on_complete)
                return
        if line in self._busy_lines:
            self.events.schedule_after(
                self._retry_backoff, self._dir_write,
                core_id, line, slice_id, on_complete)
            return
        txn = self._write_txns[(core_id, line)]
        txn.attempts += 1
        slice_array = self.slices[slice_id]
        dir_entry: Optional[DirEntry] = slice_array.lookup(line)
        lat = self.config.llc_slice.latency
        if dir_entry is None:
            if not self._allocate_llc(slice_id, line):
                self.stats.bump("eviction_retries")
                self.events.schedule_after(
                    self._retry_backoff, self._dir_write,
                    core_id, line, slice_id, on_complete)
                return
            dir_entry = DirEntry()
            slice_array.fill(line, dir_entry)
            lat += self.config.dram_latency
            self.stats.bump("llc_misses")
        others = dir_entry.holders() - {core_id}
        use_inv_star = txn.attempts > 1
        deferred = False
        inv_lat = 0
        for other in sorted(others):
            kind = "inv_star" if use_inv_star else "inv"
            inv_lat = max(inv_lat, 2 * self.network.send(slice_id, other,
                                                         kind))
            if use_inv_star:
                self.ports[other].cpt_insert(line, writer=core_id)
                txn.inv_star_recipients.add(other)
            if self.ports[other].has_pinned(line):
                # sharer answers Defer: keep the copy, deny the invalidation
                self.network.send(other, core_id, "defer")
                deferred = True
            elif use_inv_star:
                # Inv* recipients without a pin invalidate immediately
                self._remote_invalidate(other, line, dir_entry)
        if deferred:
            # writer aborts; directory state is unchanged (Figure 3b/5a)
            self.network.send(core_id, slice_id, "abort")
            self.stats.bump("write_retries")
            self.events.schedule_after(
                self._retry_backoff + inv_lat, self._dir_write,
                core_id, line, slice_id, on_complete)
            return
        # success: invalidate remaining plain-Inv sharers, grant M
        if not use_inv_star:
            for other in sorted(others):
                self._remote_invalidate(other, line, dir_entry)
        if txn.inv_star_recipients:
            for recipient in sorted(txn.inv_star_recipients):
                self.network.send(slice_id, recipient, "clear")
                self.ports[recipient].cpt_clear(line)
        del self._write_txns[(core_id, line)]
        dir_entry.make_owner(core_id)
        lat += inv_lat + self.network.send(slice_id, core_id, "data")
        self._busy_lines.add(line)
        done = self.events.now + lat
        self.events.schedule(
            done, self._finish_write, core_id, line, on_complete)

    def _remote_invalidate(self, core_id: int, line: int,
                           dir_entry: DirEntry) -> None:
        """Invalidate a sharer's L1 copy; triggers its MCV-squash check."""
        l1 = self.l1s[core_id]
        if l1.invalidate(line):
            self.stats.bump("invalidations")
            self.ports[core_id].on_invalidation(line)
        dir_entry.drop(core_id)

    def _finish_write(self, core_id: int, line: int,
                      on_complete: Callback) -> None:
        self._busy_lines.discard(line)
        l1 = self.l1s[core_id]
        port = self.ports[core_id]
        if l1.lookup(line, touch=False) is None:
            if l1.needs_victim(line):
                victim = l1.pick_victim(line, evictable=lambda v:
                                        not port.has_pinned(v))
                if victim is None:
                    self.stats.bump("eviction_retries")
                    self.events.schedule_after(
                        self._retry_backoff, self._finish_write,
                        core_id, line, on_complete)
                    return
                self._evict_l1(core_id, victim)
            l1.fill(line, LineState.MODIFIED)
        else:
            l1.set_state(line, LineState.MODIFIED)
        on_complete(self.events.now)
