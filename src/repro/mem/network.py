"""Ordered mesh interconnect model (Table 1: 4x2 mesh, 1 cycle/hop).

We model latency and traffic, not link contention: every protocol message
contributes Manhattan-distance hop latency and bumps a per-type traffic
counter.  Cores and LLC/directory slices are co-located one per mesh node,
as in the simulated machine.
"""

from __future__ import annotations

from typing import Optional

from repro.common.params import NetworkParams
from repro.common.stats import StatSet


class MeshNetwork:
    """Latency/traffic model of the on-chip network."""

    __slots__ = ("params", "stats", "chaos")

    def __init__(self, params: NetworkParams) -> None:
        self.params = params
        self.stats = StatSet()
        #: optional fault-injection hook (``repro.chaos.ChaosEngine``);
        #: ``None`` in normal runs so ``send`` stays one attribute test
        self.chaos = None

    def _coords(self, node: int):
        return node % self.params.mesh_cols, node // self.params.mesh_cols

    def hops(self, src: int, dst: int) -> int:
        """Manhattan hop count between two mesh nodes."""
        sx, sy = self._coords(src)
        dx, dy = self._coords(dst)
        return abs(sx - dx) + abs(sy - dy)

    def latency(self, src: int, dst: int) -> int:
        return self.hops(src, dst) * self.params.hop_latency

    def send(self, src: int, dst: int, kind: str) -> int:
        """Account one message and return its latency."""
        self.stats.bump("messages")
        self.stats.bump(f"msg_{kind}")
        lat = self.latency(src, dst)
        if self.chaos is not None:
            jitter = self.chaos.message_jitter(src, dst, kind)
            if jitter:
                lat += jitter
                self.stats.bump("chaos_jitter_msgs")
                self.stats.bump("chaos_jitter_cycles", jitter)
        self.stats.bump("hop_cycles", lat)
        return lat

    def message_count(self, kind: Optional[str] = None) -> float:
        if kind is None:
            return self.stats["messages"]
        return self.stats[f"msg_{kind}"]
