"""Per-core FIFO write buffer.

TSO forbids store→store reordering, so retired stores drain to the coherent
memory system strictly in order (paper §2).  The buffer's *free capacity* is
also a pinning precondition: a load may only be pinned if every
yet-to-complete older store fits in the buffer (paper §5.1.2, Figure 4's
deadlock).
"""

from __future__ import annotations

from collections import deque
from typing import Deque, Dict, Optional


class WriteBufferEntry:
    __slots__ = ("line", "draining")

    def __init__(self, line: int) -> None:
        self.line = line
        self.draining = False


class WriteBuffer:
    """A bounded FIFO of retired-but-unperformed stores (line granularity).

    ``backpressure`` is a chaos-injection hook (``repro.chaos``): while
    set, the buffer *reports* itself full — store retire stalls and the
    pinning precondition window shrinks — without changing its actual
    occupancy or the drain path, so a bounded spike only perturbs timing.
    """

    __slots__ = ("capacity", "_entries", "_line_counts", "backpressure")

    def __init__(self, capacity: int) -> None:
        if capacity < 1:
            raise ValueError("write buffer capacity must be >= 1")
        self.capacity = capacity
        self._entries: Deque[WriteBufferEntry] = deque()
        #: refcount per line, so ``contains_line`` (on the load-issue
        #: path, called several times per cycle) is one dict probe
        self._line_counts: Dict[int, int] = {}
        self.backpressure = False

    def __len__(self) -> int:
        return len(self._entries)

    @property
    def full(self) -> bool:
        return self.backpressure or len(self._entries) >= self.capacity

    @property
    def free(self) -> int:
        if self.backpressure:
            return 0
        return self.capacity - len(self._entries)

    def push(self, line: int) -> WriteBufferEntry:
        """Deposit a retiring store.  Caller must check ``full`` first.
        Only real occupancy overflows; chaos backpressure gates retire
        upstream but never corrupts the buffer itself."""
        if len(self._entries) >= self.capacity:
            raise OverflowError("write buffer full")
        entry = WriteBufferEntry(line)
        self._entries.append(entry)
        counts = self._line_counts
        counts[line] = counts.get(line, 0) + 1
        return entry

    def head(self) -> Optional[WriteBufferEntry]:
        return self._entries[0] if self._entries else None

    def contains_line(self, line: int) -> bool:
        """Is a retired-but-unperformed store to ``line`` buffered?  Used
        for store-to-load forwarding from the write buffer."""
        return line in self._line_counts

    def pop(self) -> WriteBufferEntry:
        """Remove the head entry once its write has performed."""
        entry = self._entries.popleft()
        counts = self._line_counts
        remaining = counts[entry.line] - 1
        if remaining:
            counts[entry.line] = remaining
        else:
            del counts[entry.line]
        return entry

    @property
    def empty(self) -> bool:
        return not self._entries
