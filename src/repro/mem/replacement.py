"""Replacement policies for the set-associative cache arrays.

Only the interface matters to the rest of the simulator: a policy orders the
resident lines of one set from most- to least-attractive victim, and the
cache asks for victims *subject to a pinned-line filter* — Pinned Loads'
eviction-denial rule (paper §5.1.3) is "skip pinned victims and update the
replacement state as if the pinned line had been accessed".
"""

from __future__ import annotations

from typing import Callable, Dict, Iterable, Optional


class LRUSet:
    """One cache set tracked in least-recently-used order.

    Keys are line numbers; values are caller-owned state objects.  The
    iteration order of the underlying dict runs from LRU to MRU: plain
    dicts preserve insertion order, and "recently used" is re-insertion
    at the end (``pop`` + assign).  A plain dict is preferred over
    ``collections.OrderedDict`` because checkpoints pickle thousands of
    sets per system and the C ``OrderedDict.__reduce__`` re-derives
    ``copyreg._slotnames`` per *instance* (uncacheable on extension
    types), which made checkpoint saves ~100x more expensive than the
    equivalent dict state.
    """

    __slots__ = ("_lines", "ways")

    def __init__(self, ways: int) -> None:
        self.ways = ways
        self._lines: Dict[int, object] = {}

    def __contains__(self, line: int) -> bool:
        return line in self._lines

    def __len__(self) -> int:
        return len(self._lines)

    def get(self, line: int):
        return self._lines.get(line)

    def touch(self, line: int) -> None:
        lines = self._lines
        lines[line] = lines.pop(line)

    def insert(self, line: int, state) -> None:
        if len(self._lines) >= self.ways:
            raise ValueError("set full; evict first")
        self._lines[line] = state

    def update(self, line: int, state) -> None:
        self._lines.pop(line, None)
        self._lines[line] = state

    def remove(self, line: int) -> None:
        del self._lines[line]

    @property
    def full(self) -> bool:
        return len(self._lines) >= self.ways

    def lines(self) -> Iterable[int]:
        return self._lines.keys()

    def pick_victim(self, evictable: Optional[Callable[[int], bool]] = None,
                    ) -> Optional[int]:
        """Return the LRU line for which ``evictable`` holds.

        Pinned (non-evictable) lines that are skipped get promoted to MRU,
        matching the paper's "update the replacement algorithm state as if
        the line had been accessed".  Returns ``None`` when every resident
        line is pinned.
        """
        lines = self._lines
        skipped = []
        victim = None
        for line in lines:
            if evictable is None or evictable(line):
                victim = line
                break
            skipped.append(line)
        for line in skipped:
            lines[line] = lines.pop(line)
        return victim
