"""Directory state co-located with the inclusive LLC (Table 1: MESI).

Each resident LLC line carries a ``DirEntry`` recording its sharers and, if
some core holds it writable (M/E), the owner.  The hierarchy is inclusive:
evicting an LLC line back-invalidates every private copy, which is exactly
the eviction path that Pinned Loads must be able to deny (paper §5.1.3).
"""

from __future__ import annotations

from typing import Optional, Set


class DirEntry:
    """Sharer/owner bookkeeping for one cached line."""

    __slots__ = ("sharers", "owner")

    def __init__(self) -> None:
        self.sharers: Set[int] = set()
        self.owner: Optional[int] = None

    def holders(self) -> Set[int]:
        """Every core that may hold a private copy of the line."""
        holders = set(self.sharers)
        if self.owner is not None:
            holders.add(self.owner)
        return holders

    def add_sharer(self, core_id: int) -> None:
        self.sharers.add(core_id)

    def make_owner(self, core_id: int) -> None:
        self.owner = core_id
        self.sharers.clear()

    def downgrade_owner(self) -> None:
        """Owner loses exclusivity (a read hit an M/E line): M/E -> S."""
        if self.owner is not None:
            self.sharers.add(self.owner)
            self.owner = None

    def drop(self, core_id: int) -> None:
        self.sharers.discard(core_id)
        if self.owner == core_id:
            self.owner = None

    def __repr__(self) -> str:
        return f"DirEntry(sharers={sorted(self.sharers)}, owner={self.owner})"
