"""The attack campaign: the full scheme x attack-class leakage matrix
with an asserted expected-verdict table (``repro attack``).

For every (scheme, attack class) cell the campaign runs the leakage
oracle — both secret variants, sanitized, diffed channel by channel —
across N seeds, and asserts three properties:

* the observed verdict matches the *expected verdict table* below
  (``unsafe`` leaks on every class; Fence blocks every class; DOM leaks
  exactly on the LRU-reorder channel it architecturally permits; STT
  leaks exactly on the untainted-register-address channel its taint
  tracker cannot see);
* the verdict is identical across every seed — address randomization
  must never flip a cell;
* the oracle itself has teeth: under a test-only defense weakening
  (``DEFENSE_MUTATIONS``) the weakened scheme's cell MUST flip to
  ``leaks``.  A mutant that goes undetected means the oracle could not
  catch a real defense regression either.

Cells are resolved through the executor (``--jobs``) or a running
``repro serve`` instance (``--service``) exactly like chaos campaign
cells: each variant is one content-addressed experiment, so re-runs,
parallel runs, and service-routed runs produce bit-identical matrices.
"""

from __future__ import annotations

import dataclasses
from typing import Any, Callable, Dict, List, Optional, Tuple

from repro.security.attacks import ATTACK_CLASSES, attack_cell
from repro.security.oracle import CHANNELS, compare_variants
from repro.sim.results import SimResult

#: Matrix-order scheme names: the unsafe baseline plus the full
#: (defense x extension) grid of Tables 2/3.
def all_scheme_names() -> List[str]:
    from repro.sim.runner import scheme_grid
    return ["unsafe"] + list(scheme_grid())


def expected_verdict(attack: str, scheme: str) -> str:
    """The asserted verdict table (rationale: ``docs/security.md``).

    * ``unsafe`` leaks on every class — no issue gating at all.
    * ``secret_reg`` leaks under every STT variant: the transient
      address carries no load-derived taint, so STT has nothing to
      stall (the residual channel of taint-tracking defenses).
    * ``lru_probe`` leaks under every DOM variant: DOM deliberately
      permits pre-VP L1 *hits*, and a hit reorders replacement state
      (the residual channel of delay-on-miss defenses).
    * Everything else blocks.  The LP/EP/Spectre extensions never
      change a verdict: pinning only moves the *MCV* visibility
      condition, while every attack here hides behind an unresolved
      branch — a condition all threat models share.
    """
    if scheme == "unsafe":
        return "leaks"
    defense = scheme.split("-", 1)[0]
    if attack == "secret_reg" and defense == "stt":
        return "leaks"
    if attack == "lru_probe" and defense == "dom":
        return "leaks"
    return "blocks"


#: The mutant self-tests: (mutation, defense family it weakens, attack
#: class whose blocked cell the mutation must flip to ``leaks``).
MUTANT_CHECKS: Tuple[Tuple[str, str, str], ...] = (
    ("dom-leaky-miss", "dom", "prime_probe"),
    ("stt-blind-taint", "stt", "prime_probe"),
)

#: Maps one attack variant to its result: (attack, secret, seed,
#: scheme, mutation) -> SimResult.
VariantRunner = Callable[[str, int, int, str, str], SimResult]

_VariantKey = Tuple[str, int, int, str, str]


def _variant_label(key: _VariantKey) -> str:
    attack, secret, seed, scheme, mutation = key
    label = f"attack:{attack}:s{secret}:seed{seed}/{scheme}"
    if mutation:
        label += f"/{mutation}"
    return label


def _executor_runner(keys: List[_VariantKey], jobs: int) -> VariantRunner:
    """Resolve every variant up front through the self-healing executor
    (one content-addressed task per variant), then serve from the
    result map.  ``--jobs 1`` and ``--jobs N`` are bit-identical by
    construction: tasks are pure (config, workload) functions."""
    from repro.sim.executor import Executor, Task
    tasks = []
    for key in keys:
        attack, secret, seed, scheme, mutation = key
        config, workload = attack_cell(attack, secret, seed, scheme)
        config = dataclasses.replace(config, sanitize=True,
                                     defense_mutation=mutation)
        tasks.append(Task(_variant_label(key), config, workload))
    outcome = Executor(jobs=jobs).run_tasks(tasks)
    if outcome.failures:
        failure = outcome.failures[0]
        raise RuntimeError(
            f"attack variant {failure.label} failed: {failure.message}")
    results = {key: outcome.results[_variant_label(key)] for key in keys}

    def run(attack: str, secret: int, seed: int, scheme: str,
            mutation: str) -> SimResult:
        return results[(attack, secret, seed, scheme, mutation)]

    return run


def _service_runner(service_url: str,
                    timeout_s: float = 600.0) -> VariantRunner:
    """Run oracle variants as bulk-priority jobs on a live ``repro
    serve`` instance.  Attack cells are ordinary content-addressed jobs
    (``build_cell`` resolves ``attack:...`` workload names), so the two
    variants of a pair deduplicate, journal, and cache like any other
    experiment.  Mutation cells never cross the service boundary — the
    mutant self-test always runs locally."""
    from repro.service.client import ServiceClient
    from repro.service.jobs import PRIORITY_BULK, JobSpec
    from repro.security.oracle import run_variant
    client = ServiceClient(service_url)

    def run(attack: str, secret: int, seed: int, scheme: str,
            mutation: str) -> SimResult:
        if mutation:
            return run_variant(attack, secret, seed, scheme, mutation)
        spec = JobSpec(workload=f"attack:{attack}:s{secret}:seed{seed}",
                       scheme=scheme, sanitize=True,
                       priority=PRIORITY_BULK)
        return client.run(spec, timeout_s=timeout_s)

    return run


def _oracle_cell(runner: VariantRunner, attack: str, scheme: str,
                 seeds: int) -> Dict[str, Any]:
    """One matrix cell: the oracle across every seed, plus stability."""
    expected = expected_verdict(attack, scheme)
    seed_reports = []
    for seed in range(seeds):
        r0 = runner(attack, 0, seed, scheme, "")
        r1 = runner(attack, 1, seed, scheme, "")
        diff = compare_variants(r0, r1)
        seed_reports.append({
            "seed": seed,
            "verdict": diff["verdict"],
            "leaked_bits": diff["leaked_bits"],
            "leaking_channels": diff["leaking_channels"],
        })
    verdicts = {report["verdict"] for report in seed_reports}
    verdict = seed_reports[0]["verdict"] if len(verdicts) == 1 \
        else "unstable"
    return {
        "attack": attack,
        "scheme": scheme,
        "expected": expected,
        "verdict": verdict,
        "match": verdict == expected,
        "seed_runs": seed_reports,
    }


def _run_self_test(runner: VariantRunner, scheme_names: List[str],
                   attack_names: List[str]) -> List[Dict[str, Any]]:
    """Weaken each defense behind its test-only mutation and assert the
    oracle flips that scheme's blocked cell to ``leaks``."""
    checks = []
    for mutation, family, attack in MUTANT_CHECKS:
        schemes = [name for name in scheme_names
                   if name.split("-", 1)[0] == family]
        if not schemes or attack not in attack_names:
            continue
        scheme = schemes[0]
        r0 = runner(attack, 0, 0, scheme, mutation)
        r1 = runner(attack, 1, 0, scheme, mutation)
        diff = compare_variants(r0, r1)
        checks.append({
            "mutation": mutation,
            "scheme": scheme,
            "attack": attack,
            "verdict": diff["verdict"],
            "detected": diff["verdict"] == "leaks",
        })
    return checks


def run_campaign(scheme_names: Optional[List[str]] = None,
                 attack_names: Optional[List[str]] = None,
                 seeds: int = 2, jobs: int = 1,
                 self_test: bool = True,
                 service_url: Optional[str] = None) -> Dict[str, Any]:
    """Run the leakage campaign; returns a JSON-serializable report
    whose ``passed`` field is the overall verdict (see module docs)."""
    if seeds < 1:
        raise ValueError("seeds must be >= 1")
    if jobs < 1:
        raise ValueError("jobs must be >= 1")
    schemes = list(scheme_names) if scheme_names else all_scheme_names()
    attacks = list(attack_names) if attack_names else list(ATTACK_CLASSES)
    known = set(all_scheme_names())
    for scheme in schemes:
        if scheme not in known:
            raise ValueError(f"unknown scheme {scheme!r}; choose from "
                             f"{all_scheme_names()}")
    for attack in attacks:
        if attack not in ATTACK_CLASSES:
            raise ValueError(f"unknown attack class {attack!r}; choose "
                             f"from {ATTACK_CLASSES}")
    keys: List[_VariantKey] = []
    for attack in attacks:
        for scheme in schemes:
            for seed in range(seeds):
                for secret in (0, 1):
                    keys.append((attack, secret, seed, scheme, ""))
    self_test_keys: List[_VariantKey] = []
    if self_test:
        for mutation, family, attack in MUTANT_CHECKS:
            family_schemes = [name for name in schemes
                              if name.split("-", 1)[0] == family]
            if family_schemes and attack in attacks:
                for secret in (0, 1):
                    self_test_keys.append(
                        (attack, secret, 0, family_schemes[0], mutation))
    if service_url:
        runner = _service_runner(service_url)
        if self_test_keys:
            local = _executor_runner(self_test_keys, jobs=1)
            base_runner = runner

            def runner(attack, secret, seed, scheme, mutation,
                       _local=local, _remote=base_runner):
                if mutation:
                    return _local(attack, secret, seed, scheme, mutation)
                return _remote(attack, secret, seed, scheme, mutation)
    else:
        runner = _executor_runner(keys + self_test_keys, jobs)
    cells = [_oracle_cell(runner, attack, scheme, seeds)
             for attack in attacks for scheme in schemes]
    report: Dict[str, Any] = {
        "seeds": seeds,
        "schemes": schemes,
        "attacks": attacks,
        "service_url": service_url,
        "cells": cells,
        "self_test": (_run_self_test(runner, schemes, attacks)
                      if self_test else None),
        "channels": list(CHANNELS),
    }
    failures: List[str] = []
    for cell in cells:
        label = f"{cell['attack']}/{cell['scheme']}"
        if cell["verdict"] == "unstable":
            failures.append(f"{label}: verdict differs across seeds")
        elif not cell["match"]:
            failures.append(
                f"{label}: expected {cell['expected']}, observed "
                f"{cell['verdict']}")
    if report["self_test"] is not None:
        for check in report["self_test"]:
            if not check["detected"]:
                failures.append(
                    f"self-test: {check['mutation']} mutant on "
                    f"{check['scheme']} went undetected")
    report["failures"] = failures
    report["passed"] = not failures
    return report


def matrix_artifact(report: Dict[str, Any]) -> Dict[str, Any]:
    """The canonical committed form of the leakage matrix.

    Verdicts only — per-channel deltas and raw timings may legitimately
    vary across seeds, but the verdict table is asserted bit-identical
    across seeds, ``--jobs`` settings, and service-routed runs, so this
    document is reproducible byte for byte.
    """
    matrix: Dict[str, Dict[str, str]] = {}
    for cell in report["cells"]:
        matrix.setdefault(cell["attack"], {})[cell["scheme"]] = \
            cell["verdict"]
    return {
        "format": 1,
        "attacks": report["attacks"],
        "schemes": report["schemes"],
        "matrix": matrix,
        "expected": {
            attack: {scheme: expected_verdict(attack, scheme)
                     for scheme in report["schemes"]}
            for attack in report["attacks"]},
        "passed": report["passed"],
    }


def format_report(report: Dict[str, Any]) -> str:
    """Terminal-friendly campaign summary: the matrix plus verdicts."""
    schemes = report["schemes"]
    lines = [f"attack campaign: {len(report['attacks'])} class(es) x "
             f"{len(schemes)} scheme(s), {report['seeds']} seed(s)"]
    width = max(len(s) for s in schemes) + 2
    header = " " * 14 + "".join(f"{s:<{width}}" for s in schemes)
    lines.append(header)
    by_attack: Dict[str, Dict[str, Dict[str, Any]]] = {}
    for cell in report["cells"]:
        by_attack.setdefault(cell["attack"], {})[cell["scheme"]] = cell
    for attack in report["attacks"]:
        row = f"{attack:<14}"
        for scheme in schemes:
            cell = by_attack[attack][scheme]
            mark = cell["verdict"]
            if not cell["match"]:
                mark = f"{mark}(!={cell['expected']})"
            row += f"{mark:<{width}}"
        lines.append(row)
    for cell in report["cells"]:
        if cell["verdict"] == "leaks" and cell["match"]:
            channels = cell["seed_runs"][0]["leaking_channels"]
            lines.append(f"  {cell['attack']}/{cell['scheme']}: leaks "
                         f"via {', '.join(channels)} (expected)")
    if report["self_test"] is not None:
        for check in report["self_test"]:
            verdict = ("mutant detected (oracle has teeth)"
                       if check["detected"] else "MUTANT NOT DETECTED")
            lines.append(f"  self-test {check['mutation']} on "
                         f"{check['scheme']}: {verdict}")
    lines.append("PASS" if report["passed"]
                 else "FAIL: " + "; ".join(report["failures"]))
    return "\n".join(lines)
