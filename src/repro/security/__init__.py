"""Threat models, taint tracking, and the hardware defense schemes."""

from repro.common.params import DefenseKind
from repro.security.dom import DelayOnMissScheme
from repro.security.fence import FenceScheme
from repro.security.invisi import InvisibleSpecScheme
from repro.security.scheme import DefenseScheme, IssueMode
from repro.security.stt import STTScheme
from repro.security.taint import TaintTracker
from repro.security.threat import (VPState, conditions_before_mcv,
                                   first_blocking_condition, vp_reached)
from repro.security.unsafe import UnsafeScheme

SCHEME_CLASSES = {
    DefenseKind.UNSAFE: UnsafeScheme,
    DefenseKind.FENCE: FenceScheme,
    DefenseKind.DOM: DelayOnMissScheme,
    DefenseKind.STT: STTScheme,
    DefenseKind.INVISI: InvisibleSpecScheme,
}


def make_scheme(kind: DefenseKind, core) -> DefenseScheme:
    """Instantiate the defense scheme for one core."""
    return SCHEME_CLASSES[kind](core)


__all__ = [
    "DefenseScheme", "DelayOnMissScheme", "FenceScheme", "IssueMode",
    "InvisibleSpecScheme", "STTScheme",
    "TaintTracker", "UnsafeScheme", "VPState", "conditions_before_mcv",
    "first_blocking_condition", "make_scheme", "vp_reached",
    "SCHEME_CLASSES",
]
