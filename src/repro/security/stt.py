"""Speculative Taint Tracking: stall loads whose addresses are tainted."""

from __future__ import annotations

from repro.core.rob import ROBEntry
from repro.security.scheme import DefenseScheme


class STTScheme(DefenseScheme):
    """Pre-VP loads execute freely unless their address operands are derived
    from transiently-read data (a pre-VP load's output).  Untainting happens
    when the producing load reaches its VP — which is exactly the event
    Pinned Loads accelerates (paper §3.1)."""

    __slots__ = ("_blind",)

    name = "stt"

    def __init__(self, core) -> None:
        super().__init__(core)
        # leakage-oracle mutant (DEFENSE_MUTATIONS): taint queries are
        # ignored, so the attack campaign's self-test can assert the
        # oracle flips STT's verdict to "leaks"
        self._blind = core.config.defense_mutation == "stt-blind-taint"

    def may_issue_pre_vp(self, entry: ROBEntry) -> bool:
        if self._blind:
            return True
        return not self.core.taint.addr_tainted(entry)
