"""Invisible speculation: an InvisiSpec-class defense scheme.

Pre-VP loads execute *invisibly* — the data is fetched without changing
any cache or directory state, so the access leaves no microarchitectural
trace an attacker could observe.  The cost is a second access: when the
load reaches its Visibility Point it must be **validated** with an
ordinary (visible) access, and it cannot retire until the validation
completes (Yan et al., MICRO'18; the paper's §1/§4 cite this class of
defense as one Pinned Loads can augment).

Fidelity simplifications (documented in DESIGN.md):

* no speculative buffer — every invisible load pays the full memory
  latency rather than hitting a peer's in-flight fetch;
* validation mismatches are not value-compared; instead, invisible
  performed loads remain subject to the TSO invalidation/eviction squash,
  which fires in exactly the situations where a validation would fail.

Pinned Loads helps this scheme the same way it helps the others: the VP
arrives sooner, so validations start (and retirement unblocks) earlier.
"""

from __future__ import annotations

from repro.core.rob import ROBEntry
from repro.security.scheme import DefenseScheme, IssueMode


class InvisibleSpecScheme(DefenseScheme):
    """Pre-VP loads issue invisibly and validate at their VP."""

    __slots__ = ()

    name = "invisi"

    def may_issue_pre_vp(self, entry: ROBEntry) -> bool:
        return True

    def pre_vp_issue_mode(self, entry: ROBEntry) -> IssueMode:
        return IssueMode.INVISIBLE

    def on_load_vp(self, entry: ROBEntry) -> None:
        """The load is no longer squashable: expose it.  A load that
        performed invisibly needs its validation access; one that never
        issued will simply issue normally now."""
        if entry.invisible and not entry.validated \
                and not entry.squashed:
            self.core.issue_validation(entry)
