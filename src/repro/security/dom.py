"""Delay-On-Miss: speculative loads may only execute if they hit in L1."""

from __future__ import annotations

from repro.core.rob import ROBEntry
from repro.security.scheme import DefenseScheme


class DelayOnMissScheme(DefenseScheme):
    """Pre-VP loads probe the L1: a hit proceeds (it leaves no new cache
    state), a miss stalls the load until its VP (Sakalis et al. / Li et al.,
    paper Table 2).  Applications with poor L1 hit rates therefore pay the
    full VP wait — the behaviour the paper highlights for bwaves/fotonik3d.
    """

    __slots__ = ("_leaky",)

    name = "dom"

    def __init__(self, core) -> None:
        super().__init__(core)
        # leakage-oracle mutant (DEFENSE_MUTATIONS): pre-VP misses stop
        # being delayed, so the attack campaign's self-test can assert
        # the oracle flips DOM's verdict to "leaks"
        self._leaky = core.config.defense_mutation == "dom-leaky-miss"

    def may_issue_pre_vp(self, entry: ROBEntry) -> bool:
        if self._leaky:
            return True
        core = self.core
        return core.mem.l1_hit(core.core_id, entry.line)
