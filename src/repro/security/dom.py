"""Delay-On-Miss: speculative loads may only execute if they hit in L1."""

from __future__ import annotations

from repro.core.rob import ROBEntry
from repro.security.scheme import DefenseScheme


class DelayOnMissScheme(DefenseScheme):
    """Pre-VP loads probe the L1: a hit proceeds (it leaves no new cache
    state), a miss stalls the load until its VP (Sakalis et al. / Li et al.,
    paper Table 2).  Applications with poor L1 hit rates therefore pay the
    full VP wait — the behaviour the paper highlights for bwaves/fotonik3d.
    """

    __slots__ = ()

    name = "dom"

    def may_issue_pre_vp(self, entry: ROBEntry) -> bool:
        core = self.core
        return core.mem.l1_hit(core.core_id, entry.line)
