"""The Fence defense: stall every speculative load until its VP."""

from __future__ import annotations

from repro.core.rob import ROBEntry
from repro.security.scheme import DefenseScheme


class FenceScheme(DefenseScheme):
    """Equivalent to inserting a load-stalling fence before each load; the
    fence is removed when the load reaches its VP (paper §3.1).  This is the
    highest-overhead baseline of Table 2."""

    __slots__ = ()

    name = "fence"

    def may_issue_pre_vp(self, entry: ROBEntry) -> bool:
        return False
