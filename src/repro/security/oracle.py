"""The leakage oracle: differential analysis of an attack pair.

An attack class (``repro.security.attacks``) yields two workloads that
differ only in a secret bit carried by a transient load's address.  The
oracle runs both variants under one scheme — with the invariant
sanitizer on, so a run that leaks is still a *correct* run — and diffs
every timing-observable channel of the two result documents:

* ``probe_timing`` — per-probe dispatch/complete cycles
  (``SimResult.probes``), the attacker's per-line stopwatch;
* ``cache_state`` — the memory-system counters (hits, misses, LLC
  misses, prefetches): aggregate cache-footprint observables;
* ``retire_timing`` — total cycles plus the per-core pipeline counters
  (retire/done cycles, squash counts): frontend-visible timing;
* ``traffic`` — the interconnect counters: what a bus/mesh observer
  sees.

The verdict is ``leaks`` iff *any* channel differs: the secret is one
bit, so any reproducible difference transfers it completely
(``leaked_bits`` = 1).  A scheme blocks the attack only when the two
runs are bit-identical on every channel — the strongest possible
non-interference statement this simulator can make.

Deliberately excluded: the pinning controller's internal statistics
(CST/CPT occupancy and false-positive rates).  Those structures are not
architecturally observable — an attacker cannot read them — and any
*timing* consequence they have necessarily shows up in the four
channels above.
"""

from __future__ import annotations

import dataclasses
from typing import Any, Callable, Dict, Optional

from repro.security.attacks import attack_cell
from repro.sim.results import SimResult

#: Channel names, in report order.
CHANNELS = ("probe_timing", "cache_state", "retire_timing", "traffic")

#: Maps one attack variant to its result: (attack, secret, seed, scheme,
#: mutation) -> SimResult.  The campaign injects executor- or
#: service-backed runners; the default simulates in-process.
VariantRunner = Callable[[str, int, int, str, str], SimResult]


def run_variant(attack: str, secret: int, seed: int, scheme: str,
                mutation: str = "") -> SimResult:
    """Default in-process runner: one sanitized attack-variant run."""
    from repro.sim.runner import run_simulation
    config, workload = attack_cell(attack, secret, seed, scheme)
    config = dataclasses.replace(config, sanitize=True,
                                 defense_mutation=mutation)
    return run_simulation(config, workload)


def _dict_delta(a: Dict[str, Any], b: Dict[str, Any]) -> Dict[str, Any]:
    """Differing keys of two flat stat dicts, with both values."""
    delta = {}
    for key in sorted(set(a) | set(b)):
        if a.get(key) != b.get(key):
            delta[key] = [a.get(key), b.get(key)]
    return delta


def _probe_delta(r0: SimResult, r1: SimResult) -> Dict[str, Any]:
    """Per-probe timing differences between the two variants."""
    delta: Dict[str, Any] = {}
    probes0 = r0.probes or {}
    probes1 = r1.probes or {}
    for core_id in sorted(set(probes0) | set(probes1)):
        for p0, p1 in zip(probes0.get(core_id, ()),
                          probes1.get(core_id, ())):
            if p0 == p1:
                continue
            lat0 = p0["complete"] - p0["dispatch"]
            lat1 = p1["complete"] - p1["dispatch"]
            delta[f"core{core_id}:line{p0['line']:#x}"] = {
                "latency": [lat0, lat1],
                "dispatch": [p0["dispatch"], p1["dispatch"]],
                "complete": [p0["complete"], p1["complete"]],
            }
    return delta


def compare_variants(r0: SimResult, r1: SimResult) -> Dict[str, Any]:
    """Diff the two runs of an attack pair; see the module docstring.

    Returns a JSON-serializable report: per-channel ``differs`` flags
    with observable deltas, the ``verdict``, and ``leaked_bits``.
    """
    probe_delta = _probe_delta(r0, r1)
    cache_delta = _dict_delta(r0.mem_stats, r1.mem_stats)
    retire0 = {"cycles": r0.cycles}
    retire1 = {"cycles": r1.cycles}
    for core_id, stats in r0.core_stats.items():
        for key, value in stats.items():
            retire0[f"core{core_id}:{key}"] = value
    for core_id, stats in r1.core_stats.items():
        for key, value in stats.items():
            retire1[f"core{core_id}:{key}"] = value
    retire_delta = _dict_delta(retire0, retire1)
    traffic_delta = _dict_delta(r0.network_stats, r1.network_stats)
    channels = {
        "probe_timing": {"differs": bool(probe_delta),
                         "delta": probe_delta},
        "cache_state": {"differs": bool(cache_delta),
                        "delta": cache_delta},
        "retire_timing": {"differs": bool(retire_delta),
                          "delta": retire_delta},
        "traffic": {"differs": bool(traffic_delta),
                    "delta": traffic_delta},
    }
    leaks = any(channel["differs"] for channel in channels.values())
    return {
        "verdict": "leaks" if leaks else "blocks",
        "leaked_bits": 1 if leaks else 0,
        "channels": channels,
        "leaking_channels": [name for name in CHANNELS
                             if channels[name]["differs"]],
    }


def leakage_probe(attack: str, scheme: str, seed: int = 0,
                  mutation: str = "",
                  runner: Optional[VariantRunner] = None) -> Dict[str, Any]:
    """Run one oracle cell: both secret variants, then the diff."""
    if runner is None:
        runner = run_variant
    r0 = runner(attack, 0, seed, scheme, mutation)
    r1 = runner(attack, 1, seed, scheme, mutation)
    report = compare_variants(r0, r1)
    report.update({"attack": attack, "scheme": scheme, "seed": seed})
    if mutation:
        report["mutation"] = mutation
    return report
