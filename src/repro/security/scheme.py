"""Defense-scheme interface.

A defense scheme answers one question for the pipeline: *may this pre-VP
load issue to the memory system right now?*  Loads at or past their VP
always issue unprotected; Pinned Loads never changes a scheme's answer, it
only moves the VP earlier (paper §4).
"""

from __future__ import annotations

import enum

from repro.core.rob import ROBEntry


class IssueMode(enum.Enum):
    """How a pre-VP load may execute right now."""

    STALL = "stall"          # not at all (Fence; DOM on a miss; STT taint)
    NORMAL = "normal"        # unprotected (post-VP, or the scheme allows)
    INVISIBLE = "invisible"  # without changing cache state; must validate
    #                          at the VP (invisible-speculation schemes)


class DefenseScheme:
    """Base class; the default is fully permissive (no protection)."""

    __slots__ = ("core",)

    name = "base"
    #: If False, the core skips VP bookkeeping for issue decisions entirely
    #: (the Unsafe baseline issues loads whenever their operands are ready).
    gates_issue = True

    def __init__(self, core) -> None:
        self.core = core

    def may_issue_pre_vp(self, entry: ROBEntry) -> bool:
        """May this load, which has NOT reached its VP, execute now?"""
        raise NotImplementedError

    def pre_vp_issue_mode(self, entry: ROBEntry) -> IssueMode:
        """Richer form of ``may_issue_pre_vp``; schemes that execute loads
        invisibly override this to return ``IssueMode.INVISIBLE``."""
        return (IssueMode.NORMAL if self.may_issue_pre_vp(entry)
                else IssueMode.STALL)

    def on_load_vp(self, entry: ROBEntry) -> None:
        """Hook invoked once when a load reaches its VP (for bookkeeping)."""
