"""The Unsafe baseline: an unmodified out-of-order TSO processor."""

from __future__ import annotations

from repro.core.rob import ROBEntry
from repro.security.scheme import DefenseScheme


class UnsafeScheme(DefenseScheme):
    """No protection: loads issue as soon as their operands are ready.

    The Unsafe machine still obeys TSO, so it still suffers MCV squashes on
    invalidations and evictions — it just never *stalls* a speculative load.
    """

    __slots__ = ()

    name = "unsafe"
    gates_issue = False

    def may_issue_pre_vp(self, entry: ROBEntry) -> bool:
        return True
