"""Visibility-Point condition evaluation.

A load reaches its VP when it is no longer vulnerable to any squash the
threat model considers (paper §1).  The conditions are cumulative across
``ThreatModel`` levels; the same evaluator therefore serves the Spectre
model (level CTRL), the Comprehensive model (level MCV), and the two
intermediate levels used by the Figure 1 / Figure 9 breakdowns.
"""

from __future__ import annotations

from typing import Optional

from repro.common.params import PinningMode, ThreatModel
from repro.core.rob import ReorderBuffer, ROBEntry
from repro.core.tracking import LazyMinSet


class VPState:
    """The per-core order-tracking sets the VP conditions read.

    Maintained incrementally by the pipeline:

    * ``unresolved_branches`` — dispatched branches not yet executed.
    * ``unknown_addr_stores`` — stores whose address is not yet generated
      (the aliasing window).
    * ``unknown_addr_memops`` — loads *and* stores without a translated
      address (the exception window).
    * ``unretired_loads`` — loads still in the ROB (the MCV window).
    * ``serializing`` — in-flight MFENCE/LOCK/barrier uops; no younger load
      may be pinned past one (paper §5).
    """

    __slots__ = ("unresolved_branches", "unknown_addr_stores",
                 "unknown_addr_memops", "unretired_loads", "serializing")

    def __init__(self) -> None:
        self.unresolved_branches = LazyMinSet()
        self.unknown_addr_stores = LazyMinSet()
        self.unknown_addr_memops = LazyMinSet()
        self.unretired_loads = LazyMinSet()
        self.serializing = LazyMinSet()

    def clear(self) -> None:
        for tracker in (self.unresolved_branches, self.unknown_addr_stores,
                        self.unknown_addr_memops, self.unretired_loads,
                        self.serializing):
            tracker.clear()


def conditions_before_mcv(entry: ROBEntry, level: int, vp: VPState) -> bool:
    """Check the VP conditions below the MCV one, up to ``level``.

    Level numbering follows ``ThreatModel``: 1 = branches only, 2 = +alias,
    3 = +exceptions.  A load must additionally have generated its own
    address before any level is satisfied (it could fault in translation).
    """
    index = entry.index
    if not entry.addr_ready:
        return False
    if not vp.unresolved_branches.none_below(index):
        return False
    if level >= ThreatModel.ALIAS.level \
            and not vp.unknown_addr_stores.none_below(index):
        return False
    if level >= ThreatModel.EXCEPT.level \
            and not vp.unknown_addr_memops.none_below(index):
        return False
    return True


def vp_reached(entry: ROBEntry, model: ThreatModel, pinning: PinningMode,
               vp: VPState, rob: ReorderBuffer,
               aggressive_tso: bool = True) -> bool:
    """Has ``entry`` (a load) reached its Visibility Point?

    For the MCV condition: without pinning, a load is only guaranteed free
    of MCV squashes when it is the oldest load in the ROB (aggressive TSO,
    §3.3) — or at the very head of the ROB under the conservative rule.
    With pinning, the pinning controller sets ``entry.mcv_safe`` and that
    flag *is* the condition.
    """
    if not conditions_before_mcv(entry, model.level, vp):
        return False
    if model.level < ThreatModel.MCV.level:
        return True
    if pinning is not PinningMode.NONE:
        return entry.mcv_safe
    if aggressive_tso:
        # oldest load in the ROB: invalidations/evictions never squash it
        return vp.unretired_loads.none_below(entry.index)
    return rob.is_head(entry)


def first_blocking_condition(entry: ROBEntry, vp: VPState) -> Optional[str]:
    """Diagnostic: which VP condition currently blocks this load (if any)."""
    index = entry.index
    if not entry.addr_ready:
        return "addr"
    if not vp.unresolved_branches.none_below(index):
        return "ctrl"
    if not vp.unknown_addr_stores.none_below(index):
        return "alias"
    if not vp.unknown_addr_memops.none_below(index):
        return "exception"
    if not vp.unretired_loads.none_below(index):
        return "mcv"
    return None
