"""Adversarial attack-trace generator for the leakage oracle.

Each attack class builds a *pair* of workloads that are identical except
for one secret bit: the address of a single transient (wrong-path) load.
The leakage oracle (``repro.security.oracle``) runs both variants under
one scheme and diffs every timing-observable channel; a defense blocks
the attack exactly when the two runs are bit-identical.

The four classes map to the covert channels the Pinned Loads threat
model (paper §2) and the speculative-interference literature care about:

* ``prime_probe`` — the classic transient cache-fill channel: a guarded
  load whose address is secret-dependent misses in L1, and the fill is
  installed even though the load is squashed.  An architectural probe of
  the candidate line afterwards reads the secret as hit-vs-miss latency.
  The transient address is *tainted* (derived from a transient root
  load) and *cold*, so every defense scheme blocks it: Fence stalls all
  pre-VP loads, Delay-On-Miss stalls the miss, STT stalls the tainted
  address.
* ``secret_reg`` — the same fill channel, but the transient address is
  computed by a pure register (INT_ALU) chain carrying no load-derived
  data.  STT's taint tracker sees nothing to stall, so STT *leaks by
  design* here — the residual channel the paper's Table 2 footnotes and
  the speculative-interference work exploit.  DOM still stalls the miss
  and Fence stalls everything.
* ``lru_probe`` — a replacement-state channel with deliberately
  symmetric hit/miss *counts*: the transient load touches one of two
  already-resident lines in a full L1 set, reordering LRU only.  An
  architectural eviction afterwards picks a secret-dependent victim,
  which only the per-probe timing channel can see.  Delay-On-Miss
  permits pre-VP *hits* — and a hit updates LRU — so DOM leaks here;
  STT stalls the tainted address, Fence stalls everything.
* ``xcore_covert`` — a cross-core covert channel: the transient fill on
  the transmitter core changes directory/LLC state that a receiver core
  observes through its own architectural probe latency and network
  traffic.  Tainted and cold, so every defense blocks it.

All randomness comes from one ``random.Random`` seeded by (attack
class, seed): a generated workload is a pure function of its name.
Cache-set choices are restricted to *even* L1 set indices so that no
two lines of interest are ever numerically adjacent — the next-line
prefetcher can then never install one candidate while fetching another.
"""

from __future__ import annotations

import random
from typing import List, Optional, Tuple

from repro.common.params import LINE_SHIFT, SystemConfig
from repro.isa.trace import Trace, Workload
from repro.isa.uops import MicroOp, OpClass

#: The attack classes of the leakage campaign, in matrix order.
ATTACK_CLASSES = ("prime_probe", "secret_reg", "lru_probe", "xcore_covert")

_L1_SETS = 64          # 32 KiB / 8 ways / 64 B lines (Table 1)
_L1_WAYS = 8
#: Architectural delay chain between guard resolution and the probes:
#: long enough that an in-flight transient fill has landed before any
#: probe issues, short enough to keep traces tiny.
_DELAY_CHAIN = 20
#: Receiver-side delay (dependent INT uops) for the cross-core channel:
#: must exceed the transmitter's transient-fill latency (~125 cycles).
_RECEIVER_DELAY = 260


class _AttackTraceBuilder:
    """Explicit-index uop assembly, mirroring ``repro.workloads``."""

    __slots__ = ("uops",)

    def __init__(self) -> None:
        self.uops: List[MicroOp] = []

    def _add(self, opclass: OpClass, deps: Tuple[int, ...] = (),
             addr: Optional[int] = None, mispredicted: bool = False,
             guard: Optional[int] = None, probe: bool = False) -> int:
        index = len(self.uops)
        self.uops.append(MicroOp(index, opclass, deps=deps, addr=addr,
                                 mispredicted=mispredicted, guard=guard,
                                 probe=probe))
        return index

    def load(self, line: int, deps: Tuple[int, ...] = (),
             guard: Optional[int] = None, probe: bool = False) -> int:
        return self._add(OpClass.LOAD, deps=deps, addr=line << LINE_SHIFT,
                         guard=guard, probe=probe)

    def int_alu(self, deps: Tuple[int, ...] = (),
                guard: Optional[int] = None) -> int:
        return self._add(OpClass.INT_ALU, deps=deps, guard=guard)

    def mispredicted_branch(self, deps: Tuple[int, ...]) -> int:
        return self._add(OpClass.BRANCH, deps=deps, mispredicted=True)

    def int_chain(self, length: int, first_dep: int) -> int:
        """A dependent INT chain; returns the index of its last uop."""
        last = self.int_alu(deps=(first_dep,))
        for _ in range(length - 1):
            last = self.int_alu(deps=(last,))
        return last


def _pick_lines(rng: random.Random, count: int) -> List[int]:
    """``count`` cache lines in distinct even L1 sets.

    Distinct sets keep the lines from conflicting in the L1; even sets
    keep any two lines' numbers at an even distance, so neither is ever
    the other's next-line prefetch target.
    """
    sets = rng.sample(range(2, _L1_SETS, 2), count)
    return [s + _L1_SETS * rng.randrange(1, 4) for s in sets]


def _prime_probe(rng: random.Random, secret: int) -> List[MicroOp]:
    # hot (root), guard source, probed candidate, decoy candidate
    hot, guard_line, candidate, decoy = _pick_lines(rng, 4)
    b = _AttackTraceBuilder()
    b.load(hot)                       # makes `hot` warm (re-read by probe)
    guard_src = b.load(guard_line)    # cold: opens a ~120-cycle window
    guard = b.mispredicted_branch(deps=(guard_src,))
    root = b.load(hot, guard=guard)   # transient root: L1 hit, completes fast
    # the secret-dependent transient access: tainted (address derived
    # from the root load) and cold either way, so every scheme stalls it
    b.load(candidate if secret else decoy, deps=(root,), guard=guard)
    chain = b.int_chain(_DELAY_CHAIN, first_dep=guard)
    b.load(candidate, deps=(chain,), probe=True)
    b.load(hot, deps=(chain,), probe=True)      # control probe: always hits
    return b.uops


def _secret_reg(rng: random.Random, secret: int) -> List[MicroOp]:
    hot, guard_line, candidate, decoy = _pick_lines(rng, 4)
    b = _AttackTraceBuilder()
    b.load(hot)
    guard_src = b.load(guard_line)
    guard = b.mispredicted_branch(deps=(guard_src,))
    # the address comes from a pure INT chain: no load in its backward
    # slice, so STT's taint tracker has nothing to stall
    reg = b.int_alu(guard=guard)
    b.load(candidate if secret else decoy, deps=(reg,), guard=guard)
    chain = b.int_chain(_DELAY_CHAIN, first_dep=guard)
    b.load(candidate, deps=(chain,), probe=True)
    b.load(hot, deps=(chain,), probe=True)
    return b.uops


def _lru_probe(rng: random.Random, secret: int) -> List[MicroOp]:
    attack_set, hot_set, guard_set = rng.sample(range(2, _L1_SETS, 2), 3)
    resident = [attack_set + _L1_SETS * k for k in range(_L1_WAYS)]
    evictor = attack_set + _L1_SETS * _L1_WAYS
    hot = hot_set + _L1_SETS * rng.randrange(1, 4)
    guard_line = guard_set + _L1_SETS * rng.randrange(1, 4)
    b = _AttackTraceBuilder()
    # prime: fill the attack set completely.  resident[0]/resident[1]
    # are re-read by the probes, so warm-up makes them hit immediately
    # and establishes them as the two LRU-oldest lines of the set.
    for line in resident:
        b.load(line)
    b.load(hot)
    guard_src = b.load(guard_line)
    guard = b.mispredicted_branch(deps=(guard_src,))
    root = b.load(hot, guard=guard)
    # the transient touch: an L1 *hit* on one of the two oldest lines.
    # No fill, no miss — only the set's LRU order changes.  DOM permits
    # pre-VP hits, so this is exactly DOM's residual channel.
    b.load(resident[secret], deps=(root,), guard=guard)
    chain = b.int_chain(_DELAY_CHAIN, first_dep=guard)
    # architectural eviction: a ninth line in the full set evicts the
    # current LRU victim — resident[1] if the transient touch refreshed
    # resident[0], resident[0] otherwise
    evict = b.load(evictor, deps=(chain,))
    b.load(resident[0], deps=(evict,), probe=True)
    b.load(resident[1], deps=(evict,), probe=True)
    b.load(hot, deps=(evict,), probe=True)      # control probe
    return b.uops


def _xcore_covert(rng: random.Random,
                  secret: int) -> Tuple[List[MicroOp], List[MicroOp]]:
    hot, guard_line, shared, decoy = _pick_lines(rng, 4)
    tx = _AttackTraceBuilder()
    tx.load(hot)
    guard_src = tx.load(guard_line)
    guard = tx.mispredicted_branch(deps=(guard_src,))
    root = tx.load(hot, guard=guard)
    tx.load(shared if secret else decoy, deps=(root,), guard=guard)
    tx.load(hot, deps=(guard,), probe=True)
    rx = _AttackTraceBuilder()
    # the receiver idles through a dependent INT chain long enough for
    # the transmitter's transient fill to land, then probes the shared
    # line: owner-forward latency if it was filled, DRAM if not
    first = rx.int_alu()
    last = rx.int_chain(_RECEIVER_DELAY, first_dep=first)
    rx.load(shared, deps=(last,), probe=True)
    return tx.uops, rx.uops


def attack_workload(attack: str, secret: int, seed: int = 0) -> Workload:
    """Build one variant of an attack pair.

    The workload *name* deliberately omits the secret — the two variants
    of a pair produce directly comparable result documents, and their
    experiment-cache identities differ through the content fingerprint
    alone.
    """
    if attack not in ATTACK_CLASSES:
        raise ValueError(f"unknown attack class {attack!r}; choose from "
                         f"{ATTACK_CLASSES}")
    if secret not in (0, 1):
        raise ValueError(f"secret must be 0 or 1, not {secret!r}")
    if seed < 0:
        raise ValueError(f"seed must be >= 0, not {seed}")
    rng = random.Random((seed << 4) ^ ATTACK_CLASSES.index(attack))
    name = f"attack:{attack}:seed{seed}"
    if attack == "xcore_covert":
        tx, rx = _xcore_covert(rng, secret)
        traces = [Trace(tx, name=f"{name}:tx"),
                  Trace(rx, name=f"{name}:rx")]
    else:
        builders = {"prime_probe": _prime_probe, "secret_reg": _secret_reg,
                    "lru_probe": _lru_probe}
        traces = [Trace(builders[attack](rng, secret), name=name)]
    return Workload(traces, name=name)


def attack_cores(attack: str) -> int:
    return 2 if attack == "xcore_covert" else 1


def attack_cell(attack: str, secret: int, seed: int,
                scheme: str) -> Tuple[SystemConfig, Workload]:
    """The (config, workload) cell for one attack variant under one
    scheme — the attack-side analogue of ``repro.service.jobs.build_cell``
    (which routes ``attack:...`` workload names here)."""
    from repro.sim.runner import scheme_grid
    workload = attack_workload(attack, secret, seed)
    base = SystemConfig(num_cores=attack_cores(attack))
    if scheme == "unsafe":
        return base, workload
    grid = scheme_grid()
    if scheme not in grid:
        raise ValueError(f"unknown scheme {scheme!r}; choose 'unsafe' or "
                         f"one of {sorted(grid)}")
    defense, threat, pin = grid[scheme]
    return base.with_defense(defense, threat, pin), workload
