"""Speculative taint tracking for the STT defense scheme.

STT (Yu et al., MICRO'19) lets loads execute speculatively *unless* their
address operands are tainted, i.e. derived from a load that has not yet
reached its Visibility Point.  When a load reaches its VP, its output —
and transitively everything computed from it — becomes untainted.

We track, per uop, the set of *root loads* in its dataflow backward slice
(``output_roots``).  A value is currently tainted iff any of its root loads
is still in flight and pre-VP, so untaint-on-VP is a O(roots) liveness check
at query time instead of an eager broadcast.

With the column ROB layout a root's liveness probe is pure integer
arithmetic: live means "inside the contiguous window ``[head, next)``",
and pre-VP means "the VP column at ``root & mask`` is still -1" — no
dict lookup, no entry object.

Quiet/wakeup contract (``Core.quiet_until``): taint has no per-cycle
machinery of its own — ``addr_tainted`` is a pure function of the root
maps and of each root's (vp_cycle, ROB residency) state.  Roots are
written at dispatch and their liveness flips only at VP marking, retire,
or squash; each of those re-arms the core's ``_wake_pending`` flag, and
taint-driven untainting *propagates* through the VP frontier walk the
marking triggers.  A quiet STT core therefore needs no taint ticks: the
answer to every ``addr_tainted`` query is frozen until the next flagged
mutation or event.
"""

from __future__ import annotations

from typing import Dict, FrozenSet

from repro.core.rob import ReorderBuffer, ROBEntry
from repro.isa.uops import MicroOp

_EMPTY: FrozenSet[int] = frozenset()


class TaintTracker:
    """Per-core STT taint state."""

    __slots__ = ("_rob", "_output_roots")

    def __init__(self, rob: ReorderBuffer) -> None:
        self._rob = rob
        self._output_roots: Dict[int, FrozenSet[int]] = {}

    def on_dispatch(self, uop: MicroOp) -> None:
        """Record the taint roots of this uop's output.

        A load's output is rooted at the load itself; any other uop's output
        unions its operands' roots.  Re-dispatch after a squash overwrites
        the stale entry.
        """
        if uop.is_load:
            self._output_roots[uop.index] = frozenset((uop.index,))
            return
        output_roots = self._output_roots
        roots = _EMPTY
        for dep in uop.deps:
            dep_roots = output_roots.get(dep)
            if dep_roots:
                roots = roots | self._live_subset(dep_roots)
        output_roots[uop.index] = roots

    def _live_subset(self, roots: FrozenSet[int]) -> FrozenSet[int]:
        """Drop roots that are already architectural (retired / post-VP).
        The all-live case (by far the most common) allocates nothing."""
        rob = self._rob
        head = rob._head
        nxt = rob._next
        vp = rob.cols.vp
        mask = rob._mask
        # order-insensitive probe: any dead root takes the same fallback
        for root in roots:  # repro: allow-set-iteration
            if root < head or root >= nxt or vp[root & mask] >= 0:
                break
        else:
            return roots
        return frozenset(
            r for r in roots
            if head <= r < nxt and vp[r & mask] < 0)

    def _is_live_pre_vp(self, root_index: int) -> bool:
        rob = self._rob
        return rob._head <= root_index < rob._next \
            and rob.cols.vp[root_index & rob._mask] < 0

    def addr_tainted(self, entry: ROBEntry) -> bool:
        """Is the load's address derived from a pre-VP speculative load?"""
        output_roots = self._output_roots
        rob = self._rob
        head = rob._head
        nxt = rob._next
        vp = rob.cols.vp
        mask = rob._mask
        for dep in entry.uop.deps:
            roots = output_roots.get(dep)
            if roots:
                for root in roots:
                    if head <= root < nxt and vp[root & mask] < 0:
                        return True
        return False

    def output_roots(self, index: int) -> FrozenSet[int]:
        return self._output_roots.get(index, _EMPTY)
