"""Speculative taint tracking for the STT defense scheme.

STT (Yu et al., MICRO'19) lets loads execute speculatively *unless* their
address operands are tainted, i.e. derived from a load that has not yet
reached its Visibility Point.  When a load reaches its VP, its output —
and transitively everything computed from it — becomes untainted.

We track, per uop, the set of *root loads* in its dataflow backward slice
(``output_roots``).  A value is currently tainted iff any of its root loads
is still in flight and pre-VP, so untaint-on-VP is a O(roots) liveness check
at query time instead of an eager broadcast.

Quiet/wakeup contract (``Core.quiet_until``): taint has no per-cycle
machinery of its own — ``addr_tainted`` is a pure function of the root
maps and of each root's (vp_cycle, ROB residency) state.  Roots are
written at dispatch and their liveness flips only at VP marking, retire,
or squash; each of those re-arms the core's ``_wake_pending`` flag, and
taint-driven untainting *propagates* through the VP frontier walk the
marking triggers.  A quiet STT core therefore needs no taint ticks: the
answer to every ``addr_tainted`` query is frozen until the next flagged
mutation or event.
"""

from __future__ import annotations

from typing import Dict, FrozenSet, Optional

from repro.core.rob import ReorderBuffer, ROBEntry
from repro.isa.uops import MicroOp

_EMPTY: FrozenSet[int] = frozenset()


class TaintTracker:
    """Per-core STT taint state."""

    __slots__ = ("_rob", "_output_roots")

    def __init__(self, rob: ReorderBuffer) -> None:
        self._rob = rob
        self._output_roots: Dict[int, FrozenSet[int]] = {}

    def on_dispatch(self, uop: MicroOp) -> None:
        """Record the taint roots of this uop's output.

        A load's output is rooted at the load itself; any other uop's output
        unions its operands' roots.  Re-dispatch after a squash overwrites
        the stale entry.
        """
        if uop.is_load:
            self._output_roots[uop.index] = frozenset((uop.index,))
            return
        output_roots = self._output_roots
        roots = _EMPTY
        for dep in uop.deps:
            dep_roots = output_roots.get(dep)
            if dep_roots:
                roots = roots | self._live_subset(dep_roots)
        output_roots[uop.index] = roots

    def _live_subset(self, roots: FrozenSet[int]) -> FrozenSet[int]:
        """Drop roots that are already architectural (retired / post-VP).
        The all-live case (by far the most common) allocates nothing."""
        find = self._rob._by_index.get
        # order-insensitive probe: any dead root takes the same fallback
        for root in roots:  # repro: allow-set-iteration
            producer = find(root)
            if producer is None or producer.vp_cycle is not None:
                break
        else:
            return roots
        return frozenset(
            r for r in roots
            if (p := find(r)) is not None and p.vp_cycle is None)

    def _is_live_pre_vp(self, root_index: int) -> bool:
        entry: Optional[ROBEntry] = self._rob.find(root_index)
        return entry is not None and entry.vp_cycle is None

    def addr_tainted(self, entry: ROBEntry) -> bool:
        """Is the load's address derived from a pre-VP speculative load?"""
        output_roots = self._output_roots
        find = self._rob._by_index.get
        for dep in entry.uop.deps:
            roots = output_roots.get(dep)
            if roots:
                for root in roots:
                    producer = find(root)
                    if producer is not None and producer.vp_cycle is None:
                        return True
        return False

    def output_roots(self, index: int) -> FrozenSet[int]:
        return self._output_roots.get(index, _EMPTY)
