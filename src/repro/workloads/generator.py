"""Synthetic trace generation from workload profiles.

Traces are deterministic functions of (profile, seed, thread layout), so a
benchmark's Unsafe baseline and every defended configuration execute the
*identical* instruction stream — normalized CPI is then purely a hardware
effect, as in the paper's methodology.

Address-space layout (line numbers):

* hot / warm / stream pools are private per thread (offset by thread id);
* the shared read/write pool and the lock pool live at a common base so
  that every thread touches the same lines (coherence traffic).
"""

from __future__ import annotations

import random
from typing import List, Optional

from repro.common.params import LINE_BYTES
from repro.isa.trace import Trace, Workload
from repro.isa.uops import MicroOp, OpClass
from repro.workloads.profiles import WorkloadProfile

_HOT_BASE = 0x0000_0000
_WARM_BASE = 0x1000_0000
_STREAM_BASE = 0x2000_0000
_SHARED_BASE = 0x4000_0000
_LOCK_BASE = 0x5000_0000
_THREAD_STRIDE = 0x1_0000_0000
_LOCK_POOL = 8


class _TraceBuilder:
    """Builds one thread's trace from a profile."""

    def __init__(self, profile: WorkloadProfile, seed: int, thread_id: int,
                 num_threads: int, instructions: int) -> None:
        profile.validate()
        self.profile = profile
        self.rng = random.Random((seed << 8) ^ thread_id)
        self.thread_id = thread_id
        self.num_threads = num_threads
        self.instructions = instructions
        self.uops: List[MicroOp] = []
        self.producers: List[int] = []      # recent value-producing uops
        self.last_load: Optional[int] = None
        self.stream_next = 0
        self.cs_remaining = 0               # uops left in a critical section
        self.cs_lock_addr: Optional[int] = None

    # -- address pools -------------------------------------------------

    def _private(self, base: int) -> int:
        return base + self.thread_id * _THREAD_STRIDE

    def _hot_addr(self) -> int:
        line = self.rng.randrange(self.profile.hot_lines)
        return self._private(_HOT_BASE) + line * LINE_BYTES

    def _warm_addr(self) -> int:
        line = self.rng.randrange(self.profile.warm_lines)
        return self._private(_WARM_BASE) + line * LINE_BYTES

    def _stream_addr(self) -> int:
        line = self.stream_next
        self.stream_next += 1
        return self._private(_STREAM_BASE) + line * LINE_BYTES

    def _shared_addr(self) -> int:
        line = self.rng.randrange(self.profile.shared_lines)
        return _SHARED_BASE + line * LINE_BYTES

    def _lock_addr(self) -> int:
        line = self.rng.randrange(_LOCK_POOL)
        return _LOCK_BASE + line * LINE_BYTES

    def _memory_addr(self, shared_frac: float) -> int:
        roll = self.rng.random()
        if self.num_threads > 1 and roll < shared_frac:
            return self._shared_addr()
        roll = self.rng.random()
        if roll < self.profile.stream_frac:
            return self._stream_addr()
        if roll < self.profile.stream_frac + self.profile.warm_frac:
            return self._warm_addr()
        return self._hot_addr()

    # -- dependence structure --------------------------------------------

    def _pick_deps(self, count: int) -> tuple:
        if not self.producers or count == 0:
            return ()
        window = self.producers[-self.profile.dep_window:]
        picked = {self.rng.choice(window)
                  for _ in range(min(count, len(window)))}
        return tuple(sorted(picked))

    # -- uop emitters ------------------------------------------------------

    def _emit(self, uop: MicroOp, produces_value: bool) -> None:
        self.uops.append(uop)
        if produces_value:
            self.producers.append(uop.index)

    def _emit_load(self, index: int, shared: bool) -> None:
        profile = self.profile
        shared_frac = profile.read_shared_frac if shared else 0.0
        if (self.last_load is not None
                and self.rng.random() < profile.dependent_load_frac):
            deps = (self.last_load,)    # pointer chase: address from a load
        elif self.rng.random() < profile.addr_dep_frac:
            deps = self._pick_deps(1)   # address from an in-flight value
        else:
            deps = ()                   # address from ready registers
        addr = self._memory_addr(shared_frac)
        uop = MicroOp(index, OpClass.LOAD, deps=deps, addr=addr)
        self._emit(uop, produces_value=True)
        self.last_load = index

    def _emit_store(self, index: int) -> None:
        addr = self._memory_addr(self.profile.write_shared_frac)
        if self.rng.random() < self.profile.addr_dep_frac:
            addr_deps = self._pick_deps(1)
        else:
            addr_deps = ()
        data_deps = self._pick_deps(1)
        self._emit(MicroOp(index, OpClass.STORE, deps=addr_deps, addr=addr,
                           data_deps=data_deps), produces_value=False)

    def _emit_branch(self, index: int) -> None:
        mispredicted = self.rng.random() < self.profile.mispredict_rate
        deps = self._pick_deps(1)
        self._emit(MicroOp(index, OpClass.BRANCH, deps=deps,
                           mispredicted=mispredicted), produces_value=False)

    def _emit_alu(self, index: int) -> None:
        opclass = (OpClass.FP_ALU
                   if self.rng.random() < self.profile.fp_frac
                   else OpClass.INT_ALU)
        deps = self._pick_deps(2)
        self._emit(MicroOp(index, opclass, deps=deps), produces_value=True)

    def _emit_atomic(self, index: int, addr: int) -> None:
        self._emit(MicroOp(index, OpClass.ATOMIC, deps=(), addr=addr),
                   produces_value=True)

    # -- main loop -----------------------------------------------------

    def build(self) -> Trace:
        profile = self.profile
        barrier_every = (self.instructions // (profile.barriers + 1)
                         if profile.barriers else 0)
        barriers_emitted = 0
        index = 0
        body = 0
        while body < self.instructions:
            # global barriers at fixed points in each thread's trace
            if (barrier_every and barriers_emitted < profile.barriers
                    and body >= (barriers_emitted + 1) * barrier_every):
                self._emit(MicroOp(index, OpClass.BARRIER,
                                   barrier_id=barriers_emitted),
                           produces_value=False)
                barriers_emitted += 1
                index += 1
                continue
            # critical sections: ATOMIC acquire ... body ... STORE release
            if self.cs_remaining > 0:
                self.cs_remaining -= 1
                if self.cs_remaining == 0:
                    self._emit(MicroOp(index, OpClass.STORE, deps=(),
                                       addr=self.cs_lock_addr),
                               produces_value=False)
                    self.cs_lock_addr = None
                    index += 1
                    body += 1
                    continue
            elif (self.num_threads > 1 and profile.lock_frac > 0
                    and self.rng.random() < profile.lock_frac):
                self.cs_lock_addr = self._lock_addr()
                self.cs_remaining = profile.cs_length
                self._emit_atomic(index, self.cs_lock_addr)
                index += 1
                body += 1
                continue
            roll = self.rng.random()
            if roll < profile.load_frac:
                self._emit_load(index, shared=True)
            elif roll < profile.load_frac + profile.store_frac:
                self._emit_store(index)
            elif roll < (profile.load_frac + profile.store_frac
                         + profile.branch_frac):
                self._emit_branch(index)
            else:
                self._emit_alu(index)
            index += 1
            body += 1
        return Trace(self.uops, name=f"{profile.name}.t{self.thread_id}")


def build_trace(profile: WorkloadProfile, seed: int = 1, thread_id: int = 0,
                num_threads: int = 1,
                instructions: Optional[int] = None) -> Trace:
    """Generate one thread's deterministic trace for ``profile``."""
    count = instructions or profile.default_instructions
    builder = _TraceBuilder(profile, seed, thread_id, num_threads, count)
    return builder.build()


def build_workload(profile: WorkloadProfile, num_threads: int = 1,
                   seed: int = 1,
                   instructions_per_thread: Optional[int] = None) -> Workload:
    """Generate a complete (possibly multithreaded) workload."""
    traces = [build_trace(profile, seed, thread_id, num_threads,
                          instructions_per_thread)
              for thread_id in range(num_threads)]
    return Workload(traces, name=profile.name)
