"""PARSEC benchmark profiles (8-thread, Figure 8 right half).

Following the paper's artifact, dedup, streamcluster, ocean_ncp, and the
PARSEC raytrace are excluded (simulation issues in the original); the ten
remaining applications are modeled.  ``canneal`` is the miss-heavy pointer
chaser; ``x264`` carries the load-dependence chains the paper blames for
its residual EP overhead; ``fluidanimate`` is the lock-heavy one.
"""

from __future__ import annotations

from typing import Dict, List

from repro.workloads.profiles import WorkloadProfile


def _p(name: str, **kw) -> WorkloadProfile:
    defaults = dict(shared_lines=256, read_shared_frac=0.06,
                    write_shared_frac=0.04, lock_frac=0.001, barriers=3)
    defaults.update(kw)
    return WorkloadProfile(name=name, **defaults)


PARSEC_PROFILES: Dict[str, WorkloadProfile] = {p.name: p for p in [
    _p("blackscholes", load_frac=0.27, store_frac=0.08, branch_frac=0.08,
       fp_frac=0.75, mispredict_rate=0.008, warm_frac=0.004,
       read_shared_frac=0.02, write_shared_frac=0.01, barriers=2),
    _p("bodytrack", load_frac=0.27, store_frac=0.09, branch_frac=0.14,
       fp_frac=0.45, mispredict_rate=0.03, warm_frac=0.016,
       lock_frac=0.002),
    _p("canneal", load_frac=0.30, store_frac=0.08, branch_frac=0.14,
       fp_frac=0.05, mispredict_rate=0.04, warm_frac=0.10,
       stream_frac=0.025, dependent_load_frac=0.35,
       read_shared_frac=0.12, write_shared_frac=0.06),
    _p("facesim", load_frac=0.30, store_frac=0.11, branch_frac=0.08,
       fp_frac=0.70, mispredict_rate=0.012, warm_frac=0.035, barriers=4),
    _p("ferret", load_frac=0.28, store_frac=0.09, branch_frac=0.14,
       fp_frac=0.35, mispredict_rate=0.03, warm_frac=0.024,
       dependent_load_frac=0.15, lock_frac=0.002),
    _p("fluidanimate", load_frac=0.29, store_frac=0.11, branch_frac=0.10,
       fp_frac=0.55, mispredict_rate=0.02, warm_frac=0.024,
       lock_frac=0.006, barriers=4),
    _p("freqmine", load_frac=0.29, store_frac=0.10, branch_frac=0.16,
       fp_frac=0.05, mispredict_rate=0.035, warm_frac=0.028,
       dependent_load_frac=0.22),
    _p("swaptions", load_frac=0.27, store_frac=0.09, branch_frac=0.10,
       fp_frac=0.70, mispredict_rate=0.012, warm_frac=0.006,
       read_shared_frac=0.02, write_shared_frac=0.01),
    _p("vips", load_frac=0.28, store_frac=0.11, branch_frac=0.12,
       fp_frac=0.40, mispredict_rate=0.025, warm_frac=0.02,
       lock_frac=0.002),
    _p("x264", load_frac=0.29, store_frac=0.10, branch_frac=0.10,
       fp_frac=0.15, mispredict_rate=0.03, warm_frac=0.028,
       dependent_load_frac=0.45, lock_frac=0.002),
]}

PARSEC_NAMES: List[str] = sorted(PARSEC_PROFILES)
