"""Workload profiles and deterministic synthetic trace generation."""

from repro.workloads.calibrate import CalibrationReport, calibrate
from repro.workloads.generator import build_trace, build_workload
from repro.workloads.parallel import (PARALLEL_NAMES, PARALLEL_PROFILES,
                                      parallel_profile, parallel_workload)
from repro.workloads.parsec import PARSEC_NAMES, PARSEC_PROFILES
from repro.workloads.profiles import WorkloadProfile
from repro.workloads.spec17 import (SPEC17_NAMES, SPEC17_PROFILES,
                                    spec17_profile, spec17_workload)
from repro.workloads.splash2 import SPLASH2_NAMES, SPLASH2_PROFILES

__all__ = [
    "CalibrationReport", "calibrate",
    "PARALLEL_NAMES", "PARALLEL_PROFILES", "PARSEC_NAMES",
    "PARSEC_PROFILES", "SPEC17_NAMES", "SPEC17_PROFILES", "SPLASH2_NAMES",
    "SPLASH2_PROFILES", "WorkloadProfile", "build_trace", "build_workload",
    "parallel_profile", "parallel_workload", "spec17_profile",
    "spec17_workload",
]
