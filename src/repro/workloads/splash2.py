"""SPLASH2 benchmark profiles (8-thread, Figure 8 left half).

Sharing/synchronization intensity follows the suite's published character:
``lu_ncb`` has a high miss rate but quickly-resolving branches (the paper
calls this out: Spectre performs well, Comp does not, EP recovers most of
it); ``raytrace`` also misses a lot but with slow branches; ``radiosity``
and ``raytrace`` are lock-heavy; ``ocean_cp``/``fft``/``radix`` are
barrier-structured data-parallel codes.
"""

from __future__ import annotations

from typing import Dict, List

from repro.workloads.profiles import WorkloadProfile


def _p(name: str, **kw) -> WorkloadProfile:
    defaults = dict(shared_lines=256, read_shared_frac=0.10,
                    write_shared_frac=0.08, lock_frac=0.001, barriers=4)
    defaults.update(kw)
    return WorkloadProfile(name=name, **defaults)


SPLASH2_PROFILES: Dict[str, WorkloadProfile] = {p.name: p for p in [
    _p("barnes", load_frac=0.28, store_frac=0.10, branch_frac=0.13,
       fp_frac=0.50, mispredict_rate=0.025, warm_frac=0.02,
       dependent_load_frac=0.20, lock_frac=0.002),
    _p("cholesky", load_frac=0.29, store_frac=0.10, branch_frac=0.10,
       fp_frac=0.60, mispredict_rate=0.02, warm_frac=0.03,
       lock_frac=0.002),
    _p("fft", load_frac=0.30, store_frac=0.12, branch_frac=0.06,
       fp_frac=0.70, mispredict_rate=0.008, warm_frac=0.05,
       stream_frac=0.015, barriers=6),
    _p("fmm", load_frac=0.28, store_frac=0.09, branch_frac=0.12,
       fp_frac=0.55, mispredict_rate=0.02, warm_frac=0.016,
       dependent_load_frac=0.15, lock_frac=0.002),
    _p("lu_cb", load_frac=0.30, store_frac=0.10, branch_frac=0.08,
       fp_frac=0.70, mispredict_rate=0.01, warm_frac=0.024, barriers=6),
    _p("lu_ncb", load_frac=0.31, store_frac=0.10, branch_frac=0.08,
       fp_frac=0.70, mispredict_rate=0.005, warm_frac=0.09,
       stream_frac=0.04, barriers=6),
    _p("ocean_cp", load_frac=0.32, store_frac=0.11, branch_frac=0.07,
       fp_frac=0.70, mispredict_rate=0.01, warm_frac=0.07,
       stream_frac=0.025, barriers=8),
    _p("radiosity", load_frac=0.27, store_frac=0.10, branch_frac=0.15,
       fp_frac=0.40, mispredict_rate=0.04, warm_frac=0.012,
       dependent_load_frac=0.18, lock_frac=0.004),
    _p("radix", load_frac=0.28, store_frac=0.14, branch_frac=0.05,
       fp_frac=0.05, mispredict_rate=0.005, warm_frac=0.06,
       stream_frac=0.04, barriers=6),
    _p("raytrace", load_frac=0.30, store_frac=0.08, branch_frac=0.16,
       fp_frac=0.45, mispredict_rate=0.055, warm_frac=0.08,
       stream_frac=0.02, dependent_load_frac=0.25, lock_frac=0.004),
    _p("volrend", load_frac=0.28, store_frac=0.08, branch_frac=0.16,
       fp_frac=0.30, mispredict_rate=0.04, warm_frac=0.016,
       dependent_load_frac=0.15, lock_frac=0.003),
    _p("water_nsquared", load_frac=0.28, store_frac=0.10, branch_frac=0.10,
       fp_frac=0.65, mispredict_rate=0.015, warm_frac=0.012,
       lock_frac=0.003),
    _p("water_spatial", load_frac=0.28, store_frac=0.10, branch_frac=0.10,
       fp_frac=0.65, mispredict_rate=0.015, warm_frac=0.012,
       lock_frac=0.002),
]}

SPLASH2_NAMES: List[str] = sorted(SPLASH2_PROFILES)
