"""Workload calibration: measure what a profile actually produces.

The synthetic suites stand in for SPEC17/SPLASH2/PARSEC, so it matters
that a profile's *intent* (miss fractions, branch behaviour, dependence
structure) survives trace generation and simulation.  This module runs a
workload on the Unsafe machine and reports the achieved characteristics
next to the profile's targets — the evidence behind DESIGN.md's
substitution argument, and a tuning tool for new profiles.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from repro.common.params import SystemConfig
from repro.isa.uops import OpClass
from repro.sim.results import SimResult
from repro.sim.runner import run_simulation
from repro.workloads.generator import build_workload
from repro.workloads.profiles import WorkloadProfile


@dataclass(frozen=True)
class CalibrationReport:
    """Achieved workload characteristics vs. the profile's targets."""

    profile: WorkloadProfile
    unsafe_cpi: float
    load_mix: float                 # fraction of uops that are loads
    branch_mix: float
    l1_load_miss_rate: float        # misses / memory loads issued
    mispredict_per_branch: float
    load_dependence_frac: float     # loads addressed by an older load

    def mix_error(self) -> float:
        """Largest absolute deviation of the instruction mix."""
        return max(abs(self.load_mix - self.profile.load_frac),
                   abs(self.branch_mix - self.profile.branch_frac))

    def miss_rate_error(self) -> float:
        """Deviation of the achieved L1 load miss rate from the target.

        The achieved rate includes conflict/eviction misses on top of the
        profile's warm/stream fractions, so modest positive error is
        expected."""
        return self.l1_load_miss_rate - self.profile.l1_miss_frac

    def summary(self) -> str:
        p = self.profile
        return (
            f"{p.name}: CPI={self.unsafe_cpi:.2f}  "
            f"loads {self.load_mix:.3f} (target {p.load_frac:.3f})  "
            f"branches {self.branch_mix:.3f} (target {p.branch_frac:.3f})  "
            f"L1 load miss {self.l1_load_miss_rate:.3f} "
            f"(target {p.l1_miss_frac:.3f})  "
            f"mispredict/branch {self.mispredict_per_branch:.3f} "
            f"(target {p.mispredict_rate:.3f})")


def calibrate(profile: WorkloadProfile, instructions: int = 4000,
              num_threads: int = 1, seed: int = 1,
              config: Optional[SystemConfig] = None) -> CalibrationReport:
    """Generate, simulate (Unsafe), and measure one profile."""
    workload = build_workload(profile, num_threads=num_threads, seed=seed,
                              instructions_per_thread=instructions)
    if config is None:
        config = SystemConfig(num_cores=num_threads)
    result: SimResult = run_simulation(config, workload)
    total = workload.total_instructions
    loads = sum(trace.count(OpClass.LOAD) for trace in workload.traces)
    branches = sum(trace.count(OpClass.BRANCH)
                   for trace in workload.traces)
    mispredicted = sum(
        sum(1 for uop in trace if uop.is_branch and uop.mispredicted)
        for trace in workload.traces)
    dependent = 0
    for trace in workload.traces:
        load_indices = {uop.index for uop in trace if uop.is_load}
        dependent += sum(1 for uop in trace if uop.is_load
                         and any(d in load_indices for d in uop.deps))
    issued = max(result.mem_stats.get("loads", 0), 1)
    return CalibrationReport(
        profile=profile,
        unsafe_cpi=result.cpi,
        load_mix=loads / total,
        branch_mix=branches / total,
        l1_load_miss_rate=result.mem_stats.get("l1_load_misses", 0)
        / issued,
        mispredict_per_branch=mispredicted / max(branches, 1),
        load_dependence_frac=dependent / max(loads, 1),
    )
