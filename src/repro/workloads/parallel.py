"""Multithreaded workload construction (SPLASH2 + PARSEC, 8 threads)."""

from __future__ import annotations

from typing import Dict, List, Optional

from repro.isa.trace import Workload
from repro.workloads.generator import build_workload
from repro.workloads.parsec import PARSEC_PROFILES
from repro.workloads.profiles import WorkloadProfile
from repro.workloads.splash2 import SPLASH2_PROFILES

PARALLEL_PROFILES: Dict[str, WorkloadProfile] = {}
PARALLEL_PROFILES.update(SPLASH2_PROFILES)
PARALLEL_PROFILES.update(PARSEC_PROFILES)

#: Presentation order of Figure 8: SPLASH2 first, then PARSEC.
PARALLEL_NAMES: List[str] = (sorted(SPLASH2_PROFILES)
                             + sorted(PARSEC_PROFILES))

DEFAULT_THREADS = 8


def parallel_profile(name: str) -> WorkloadProfile:
    try:
        return PARALLEL_PROFILES[name]
    except KeyError:
        raise KeyError(f"unknown parallel benchmark {name!r}; "
                       f"choose from {PARALLEL_NAMES}") from None


def parallel_workload(name: str, num_threads: int = DEFAULT_THREADS,
                      instructions_per_thread: Optional[int] = None,
                      seed: int = 1) -> Workload:
    """An N-thread workload for one SPLASH2/PARSEC benchmark."""
    return build_workload(parallel_profile(name), num_threads=num_threads,
                          seed=seed,
                          instructions_per_thread=instructions_per_thread)
