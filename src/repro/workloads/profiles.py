"""Workload profiles.

A profile is the statistical fingerprint of one benchmark: instruction mix,
branch predictability, working-set/miss structure, load-dependence
structure, and (for multithreaded workloads) sharing and synchronization
intensity.  The SPEC17/SPLASH2/PARSEC tables in ``spec17.py`` /
``splash2.py`` / ``parsec.py`` instantiate one profile per benchmark,
calibrated qualitatively to its published character — this is the
substitution for running the real suites (see DESIGN.md §2).

The four axes that drive the paper's results map to profile fields:

* **L1 miss rate** (DOM's overhead; LP vs EP gap) — ``warm_frac`` +
  ``stream_frac`` of memory accesses miss the L1.
* **Branch resolution stalls** (the Spectre-model floor) —
  ``branch_frac`` x ``mispredict_rate``.
* **Load dependences** (EP's Figure 2(g) limitation) —
  ``dependent_load_frac``.
* **Sharing/synchronization** (invalidations, write deferrals, CPT
  pressure) — ``read_shared_frac``, ``write_shared_frac``, ``lock_frac``,
  ``barriers``.
"""

from __future__ import annotations

from dataclasses import dataclass, replace

from repro.common.errors import ConfigError


@dataclass(frozen=True)
class WorkloadProfile:
    """Statistical description of one benchmark."""

    name: str
    # instruction mix (fractions of all uops; the rest are ALU ops)
    load_frac: float = 0.25
    store_frac: float = 0.10
    branch_frac: float = 0.15
    fp_frac: float = 0.30          # fraction of ALU ops that are FP
    # control flow
    mispredict_rate: float = 0.04  # per executed branch
    # memory behaviour (fractions of memory accesses)
    hot_lines: int = 256           # L1-resident working set
    warm_lines: int = 4096         # LLC-resident working set (L1 misses)
    warm_frac: float = 0.05
    stream_frac: float = 0.00      # fresh lines (DRAM misses)
    # dataflow structure
    dependent_load_frac: float = 0.10   # loads addressed by a prior load
    addr_dep_frac: float = 0.05         # memory ops whose address operand
    #                                     is an in-flight value (the rest
    #                                     use ready base/index registers)
    dep_window: int = 16                # producer window for operand picks
    # multithreaded-only knobs
    shared_lines: int = 256
    read_shared_frac: float = 0.0  # loads that read shared lines
    write_shared_frac: float = 0.0  # stores that write shared lines
    lock_frac: float = 0.0         # probability a uop slot opens a critical
    cs_length: int = 6             # uops inside a critical section
    barriers: int = 0              # global barriers across the trace
    default_instructions: int = 20_000

    def validate(self) -> None:
        mix = self.load_frac + self.store_frac + self.branch_frac
        if not 0.0 < mix < 1.0:
            raise ConfigError(f"{self.name}: instruction mix sums to {mix}")
        for field_name in ("mispredict_rate", "warm_frac", "stream_frac",
                           "dependent_load_frac", "addr_dep_frac",
                           "read_shared_frac", "write_shared_frac",
                           "lock_frac", "fp_frac"):
            value = getattr(self, field_name)
            if not 0.0 <= value <= 1.0:
                raise ConfigError(
                    f"{self.name}: {field_name}={value} out of [0, 1]")
        if self.warm_frac + self.stream_frac > 1.0:
            raise ConfigError(f"{self.name}: miss fractions exceed 1")

    @property
    def l1_miss_frac(self) -> float:
        """Approximate fraction of memory accesses missing the L1."""
        return self.warm_frac + self.stream_frac

    def scaled(self, **overrides) -> "WorkloadProfile":
        """A copy with some fields replaced (used by sweeps/tests)."""
        return replace(self, **overrides)
