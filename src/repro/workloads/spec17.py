"""SPEC CPU2017 rate benchmark profiles (single-threaded, Figure 7).

The paper runs 21 SPEC17 applications (omnetpp and imagick are excluded for
gem5 issues; we mirror the published list).  Each profile is calibrated
qualitatively to the benchmark's published microarchitectural character:
memory-bound codes (bwaves, fotonik3d, lbm, mcf, roms, cactuBSSN) get high
miss fractions; branchy integer codes (leela, deepsjeng, exchange2,
perlbench, xz) get high branch density and misprediction rates; pointer
chasers (mcf, xalancbmk, xz, x264) get high dependent-load fractions.
"""

from __future__ import annotations

from typing import Dict, List, Optional

from repro.isa.trace import Workload
from repro.workloads.generator import build_workload
from repro.workloads.profiles import WorkloadProfile


def _p(name: str, **kw) -> WorkloadProfile:
    return WorkloadProfile(name=name, **kw)


SPEC17_PROFILES: Dict[str, WorkloadProfile] = {p.name: p for p in [
    _p("blender_r", load_frac=0.26, store_frac=0.10, branch_frac=0.13,
       fp_frac=0.55, mispredict_rate=0.03, warm_frac=0.015),
    _p("bwaves_r", load_frac=0.34, store_frac=0.08, branch_frac=0.06,
       fp_frac=0.80, mispredict_rate=0.006, warm_frac=0.10,
       stream_frac=0.05, dependent_load_frac=0.02),
    _p("cactuBSSN_r", load_frac=0.32, store_frac=0.12, branch_frac=0.05,
       fp_frac=0.80, mispredict_rate=0.006, warm_frac=0.06,
       stream_frac=0.03, dependent_load_frac=0.02),
    _p("cam4_r", load_frac=0.27, store_frac=0.11, branch_frac=0.12,
       fp_frac=0.60, mispredict_rate=0.02, warm_frac=0.025),
    _p("deepsjeng_r", load_frac=0.24, store_frac=0.09, branch_frac=0.18,
       fp_frac=0.02, mispredict_rate=0.07, warm_frac=0.008),
    _p("exchange2_r", load_frac=0.22, store_frac=0.12, branch_frac=0.21,
       fp_frac=0.01, mispredict_rate=0.08, warm_frac=0.002),
    _p("fotonik3d_r", load_frac=0.35, store_frac=0.09, branch_frac=0.05,
       fp_frac=0.80, mispredict_rate=0.005, warm_frac=0.10,
       stream_frac=0.06, dependent_load_frac=0.02),
    _p("gcc_r", load_frac=0.26, store_frac=0.12, branch_frac=0.20,
       fp_frac=0.02, mispredict_rate=0.05, warm_frac=0.02,
       dependent_load_frac=0.18),
    _p("lbm_r", load_frac=0.31, store_frac=0.15, branch_frac=0.03,
       fp_frac=0.85, mispredict_rate=0.003, warm_frac=0.07,
       stream_frac=0.08, dependent_load_frac=0.02),
    _p("leela_r", load_frac=0.25, store_frac=0.09, branch_frac=0.17,
       fp_frac=0.05, mispredict_rate=0.09, warm_frac=0.006),
    _p("mcf_r", load_frac=0.30, store_frac=0.09, branch_frac=0.19,
       fp_frac=0.02, mispredict_rate=0.07, warm_frac=0.12,
       stream_frac=0.03, dependent_load_frac=0.35),
    _p("nab_r", load_frac=0.28, store_frac=0.09, branch_frac=0.10,
       fp_frac=0.70, mispredict_rate=0.015, warm_frac=0.02),
    _p("namd_r", load_frac=0.29, store_frac=0.08, branch_frac=0.08,
       fp_frac=0.75, mispredict_rate=0.01, warm_frac=0.008),
    _p("parest_r", load_frac=0.30, store_frac=0.09, branch_frac=0.10,
       fp_frac=0.65, mispredict_rate=0.015, warm_frac=0.035,
       dependent_load_frac=0.12),
    _p("perlbench_r", load_frac=0.26, store_frac=0.12, branch_frac=0.19,
       fp_frac=0.02, mispredict_rate=0.05, warm_frac=0.008,
       dependent_load_frac=0.16),
    _p("povray_r", load_frac=0.28, store_frac=0.11, branch_frac=0.15,
       fp_frac=0.45, mispredict_rate=0.04, warm_frac=0.004),
    _p("roms_r", load_frac=0.32, store_frac=0.09, branch_frac=0.07,
       fp_frac=0.75, mispredict_rate=0.008, warm_frac=0.06,
       stream_frac=0.04, dependent_load_frac=0.02),
    _p("wrf_r", load_frac=0.28, store_frac=0.09, branch_frac=0.11,
       fp_frac=0.65, mispredict_rate=0.02, warm_frac=0.03),
    _p("x264_r", load_frac=0.28, store_frac=0.11, branch_frac=0.09,
       fp_frac=0.10, mispredict_rate=0.03, warm_frac=0.02,
       dependent_load_frac=0.40),
    _p("xalancbmk_r", load_frac=0.30, store_frac=0.09, branch_frac=0.20,
       fp_frac=0.02, mispredict_rate=0.04, warm_frac=0.03,
       dependent_load_frac=0.28),
    _p("xz_r", load_frac=0.25, store_frac=0.08, branch_frac=0.17,
       fp_frac=0.02, mispredict_rate=0.08, warm_frac=0.04,
       dependent_load_frac=0.25),
]}

SPEC17_NAMES: List[str] = sorted(SPEC17_PROFILES)


def spec17_profile(name: str) -> WorkloadProfile:
    try:
        return SPEC17_PROFILES[name]
    except KeyError:
        raise KeyError(f"unknown SPEC17 benchmark {name!r}; "
                       f"choose from {SPEC17_NAMES}") from None


def spec17_workload(name: str, instructions: Optional[int] = None,
                    seed: int = 1) -> Workload:
    """Single-threaded workload for one SPEC17 benchmark."""
    return build_workload(spec17_profile(name), num_threads=1, seed=seed,
                          instructions_per_thread=instructions)
