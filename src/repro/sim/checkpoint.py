"""Checkpoint/resume for whole simulations.

A checkpoint is the pickled ``System`` object graph — cores (ROB, LSQ,
write buffers, pinning controller), caches, directory, network, pending
events, and, for chaos runs, the fault injector's RNG and backoff state.
Everything the next cycle depends on lives in that graph, so a resumed
run is *bit-identical* to an uninterrupted one (asserted per scheme by
``tests/test_checkpoint.py``).

Format 3 splits the payload into an *immutable* part and a *run-state*
part.  The trace graph — ``Workload``, its ``Trace`` objects, and every
``MicroOp`` — dominates the old deep pickle but never changes after
construction, so the writer serializes it once per workload (memoized
weakly) and replaces every reference from run state with a persistent
id ``(thread, index)`` into that graph.  A rolling checkpoint then
re-serializes only the mutable machine state (ROB entries, queues,
cache tags, pending events): near-free snapshots whose cost scales with
the in-flight window, not the trace length.  The specialized engine's
derived arrays (``repro.isa.compiled``) are never checkpoint state —
``System.__getstate__`` drops the engine and it is rebuilt lazily after
a restore.

Format 4 keeps that split but snapshots the struct-of-arrays core
state: per-uop status is ``ColumnState`` array columns (which pickle as
flat buffers, not per-entry object graphs), the ROB window and the
LQ/SQ are handle rings, and the work-lists are plain index lists.
Run-state snapshots are both smaller and faster to take/restore than
v3's (measured per scheme in ``BENCH_hotloop.json``).

Two deliberate restrictions:

* A sanitized system (``config.sanitize``) cannot be checkpointed: the
  sanitizer shadows instance methods with closures and keys state by
  object identity, neither of which survives a pickle round trip.
  ``save_checkpoint`` raises ``CheckpointError`` instead of writing a
  checkpoint that would silently drop invariant checking on resume.
* Checkpoint files carry ``CHECKPOINT_FORMAT_VERSION``; a mismatch (or a
  truncated/corrupt file) raises ``CheckpointError`` rather than
  resuming from state the current simulator no longer understands.

Writes are atomic (temp file + ``os.replace``): a worker killed
mid-write leaves the previous checkpoint intact, which is exactly the
property the self-healing executor (``repro.sim.executor``) relies on to
resume SIGKILLed or timed-out tasks.
"""

from __future__ import annotations

import io
import os
import pickle
import tempfile
import weakref
from typing import Dict, Optional, Tuple

from repro.common.errors import CheckpointError
from repro.isa.trace import Workload

#: Bump whenever simulator state layout changes incompatibly; resuming
#: from an old checkpoint then fails loudly instead of corrupting a run.
#: 2: the core grew event-driven wakeup state (``_wake_pending``,
#: ``_waiting_stalled``, the VP frontier) and the pinning controller
#: its episode-denial map.
#: 3: split immutable trace graph / mutable run state (persistent-id
#: externalization above); v2 whole-graph checkpoints no longer restore.
#: 4: struct-of-arrays core state — per-uop status lives in
#: ``ColumnState`` array columns, the ROB/LQ/SQ are handle rings, the
#: work-lists are index lists, and the VP frontier dict became a flag
#: column plus counter.  v3 object-per-entry checkpoints no longer
#: restore (no silent migration; re-run from the trace instead).
#: 5: adversarial-trace support — ``MicroOp`` grew ``guard``/``probe``
#: slots, ``Trace`` its NOP-twin table (twins join the externalized
#: immutable graph below), and the DOM/STT schemes their mutation
#: flags.  v4 checkpoints no longer restore.
CHECKPOINT_FORMAT_VERSION = 5

#: Per-workload memo of the serialized immutable part and the
#: ``id(object) -> persistent id`` table.  Weak keys: the memo must not
#: keep finished workloads alive.  The id-keyed table is safe because
#: the (strongly referenced) workload pins every trace and uop for at
#: least as long as its memo entry exists.
_IMMUTABLE_MEMO: "weakref.WeakKeyDictionary[Workload, Tuple[bytes, Dict[int, tuple]]]" = \
    weakref.WeakKeyDictionary()


def _immutable_part(workload: Workload) -> Tuple[bytes, Dict[int, tuple]]:
    memo = _IMMUTABLE_MEMO.get(workload)
    if memo is None:
        table: Dict[int, tuple] = {
            id(workload): ("workload",)}  # repro: allow-id-ordering
        for t, trace in enumerate(workload.traces):
            table[id(trace)] = ("trace", t)  # repro: allow-id-ordering
            for i, uop in enumerate(trace):
                table[id(uop)] = ("uop", t, i)  # repro: allow-id-ordering
            for i, twin in trace.twins.items():
                table[id(twin)] = ("twin", t, i)  # repro: allow-id-ordering
        blob = pickle.dumps(workload, protocol=pickle.HIGHEST_PROTOCOL)
        memo = (blob, table)
        _IMMUTABLE_MEMO[workload] = memo
    return memo


class _StatePickler(pickle.Pickler):
    """Pickles run state, externalizing the immutable trace graph."""

    def __init__(self, file, table: Dict[int, tuple]) -> None:
        super().__init__(file, protocol=pickle.HIGHEST_PROTOCOL)
        self._table = table

    def persistent_id(self, obj):
        return self._table.get(id(obj))  # repro: allow-id-ordering


class _StateUnpickler(pickle.Unpickler):
    """Resolves persistent ids against a freshly restored workload."""

    def __init__(self, file, workload: Workload) -> None:
        super().__init__(file)
        self._workload = workload

    def persistent_load(self, pid):
        kind = pid[0]
        if kind == "uop":
            return self._workload.traces[pid[1]][pid[2]]
        if kind == "twin":
            return self._workload.traces[pid[1]].twins[pid[2]]
        if kind == "trace":
            return self._workload.traces[pid[1]]
        if kind == "workload":
            return self._workload
        raise CheckpointError(f"unknown persistent id {pid!r}")


def snapshot_system(system) -> bytes:
    """In-memory checkpoint: the serialized system, ready to restore."""
    if system.sanitizer is not None:
        raise CheckpointError(
            "cannot checkpoint a sanitized system: the sanitizer wraps "
            "instance methods with closures that do not survive "
            "pickling; run with sanitize=False to checkpoint")
    workload_blob, table = _immutable_part(system.workload)
    buffer = io.BytesIO()
    try:
        _StatePickler(buffer, table).dump(system)
    except Exception as err:
        raise CheckpointError(
            f"system state is not serializable: "
            f"{type(err).__name__}: {err}") from err
    payload = {"format": CHECKPOINT_FORMAT_VERSION,
               "cycle": system.cycles,
               "workload": workload_blob,
               "state": buffer.getvalue()}
    return pickle.dumps(payload, protocol=pickle.HIGHEST_PROTOCOL)


def restore_system(blob: bytes):
    """Rebuild a ``System`` from ``snapshot_system`` output."""
    try:
        payload = pickle.loads(blob)
    except Exception as err:
        raise CheckpointError(
            f"corrupt checkpoint: {type(err).__name__}: {err}") from err
    if not isinstance(payload, dict) \
            or payload.get("format") != CHECKPOINT_FORMAT_VERSION:
        found = payload.get("format") if isinstance(payload, dict) \
            else type(payload).__name__
        raise CheckpointError(
            f"checkpoint format {found!r} does not match "
            f"{CHECKPOINT_FORMAT_VERSION}")
    try:
        workload = pickle.loads(payload["workload"])
        return _StateUnpickler(io.BytesIO(payload["state"]),
                               workload).load()
    except CheckpointError:
        raise
    except Exception as err:
        raise CheckpointError(
            f"corrupt checkpoint: {type(err).__name__}: {err}") from err


def save_checkpoint(system, path: str) -> None:
    """Atomically write ``system``'s checkpoint to ``path``."""
    blob = snapshot_system(system)
    directory = os.path.dirname(os.path.abspath(path))
    os.makedirs(directory, exist_ok=True)
    fd, tmp = tempfile.mkstemp(dir=directory, suffix=".ckpt.tmp")
    try:
        with os.fdopen(fd, "wb") as fh:
            fh.write(blob)
        os.replace(tmp, path)
    except BaseException:
        try:
            os.unlink(tmp)
        except OSError:
            pass
        raise


def load_checkpoint(path: str):
    """Load a checkpoint written by ``save_checkpoint``."""
    try:
        with open(path, "rb") as fh:
            blob = fh.read()
    except OSError as err:
        raise CheckpointError(f"cannot read checkpoint {path}: "
                              f"{err}") from err
    return restore_system(blob)


def run_with_checkpoints(system, path: str, interval: int,
                         max_cycles: int = 50_000_000,
                         stop_flag: Optional[str] = None) -> int:
    """Run ``system`` to completion, refreshing a rolling checkpoint at
    ``path`` every ``interval`` simulated cycles; returns total cycles.

    The checkpoint always reflects a clean cycle boundary, so a process
    killed at any wall-clock moment can resume from ``path`` and finish
    with bit-identical statistics.

    ``stop_flag`` is the cooperative-drain hook used by the job service
    (``repro.service``): when a file exists at that path, the loop
    returns at the next checkpoint boundary *after* writing the rolling
    checkpoint, leaving ``system.done`` false.  The caller decides what
    a drained, checkpointed, unfinished system means — the service
    re-queues the job and a later attempt (possibly in a fresh process)
    resumes from ``path`` bit-identically.
    """
    if interval < 1:
        raise CheckpointError(f"checkpoint interval must be >= 1, "
                              f"not {interval}")
    while not system.done:
        system.run(max_cycles, stop_cycle=system.cycles + interval)
        if not system.done:
            save_checkpoint(system, path)
            if stop_flag is not None and os.path.exists(stop_flag):
                break
    return system.cycles
