"""Run experiments: one (config, workload) simulation at a time, with a
process-wide memo so the benchmark harnesses can share baseline runs."""

from __future__ import annotations

from typing import Dict, Optional, Tuple

from repro.common.params import (COMPREHENSIVE, DefenseKind, PinningMode,
                                 SystemConfig, ThreatModel)
from repro.isa.trace import Workload
from repro.sim.results import SimResult
from repro.sim.system import System


def run_simulation(config: SystemConfig, workload: Workload,
                   warm: bool = True) -> SimResult:
    """Build a system, run the workload to completion, collect results.

    ``warm`` functionally pre-touches the workload's footprint so the timed
    run starts from cache steady state (the paper warms up 1M instructions
    before measuring each interval).
    """
    system = System(config, workload)
    if warm:
        system.mem.warm(workload)
    cycles = system.run()
    result = SimResult(
        workload_name=workload.name,
        config=config,
        cycles=cycles,
        instructions=workload.total_instructions,
        core_stats={core.core_id: core.stats.as_dict()
                    for core in system.cores},
        mem_stats=system.mem.stats.as_dict(),
        network_stats=system.mem.network.stats.as_dict(),
        pinning_stats={core.core_id: core.controller.stats.as_dict()
                       for core in system.cores},
    )
    # pull CST/CPT summary metrics up into the per-core pinning stats
    for core in system.cores:
        stats = result.pinning_stats[core.core_id]
        controller = core.controller
        stats["cst_l1_fp_rate"] = controller.false_positive_rate("l1")
        stats["cst_dir_fp_rate"] = controller.false_positive_rate("dir")
        stats["cpt_mean_occupancy"] = controller.cpt.mean_occupancy
        stats["cpt_max_occupancy"] = controller.cpt.max_occupancy
        stats["cpt_overflow_rate"] = controller.cpt.overflow_rate
    return result


class ExperimentCache:
    """Memoizes runs by (workload factory key, config key).

    Workloads are deterministic functions of their profile + seed, and
    configs are frozen dataclasses, so results are safely shareable across
    benchmark files (e.g. Figure 9 reuses every Figure 7/8 run).
    """

    def __init__(self) -> None:
        self._results: Dict[Tuple, SimResult] = {}

    def run(self, config: SystemConfig, workload: Workload,
            key: Optional[str] = None) -> SimResult:
        # SystemConfig is a frozen dataclass tree, hence hashable
        cache_key = (key or workload.name, config)
        result = self._results.get(cache_key)
        if result is None:
            result = run_simulation(config, workload)
            self._results[cache_key] = result
        return result

    def clear(self) -> None:
        self._results.clear()


#: Shared cache for the benchmark harnesses.
GLOBAL_CACHE = ExperimentCache()


def scheme_grid() -> Dict[str, Tuple[DefenseKind, ThreatModel, PinningMode]]:
    """The (defense x extension) grid of Tables 2/3: for each of Fence,
    DOM, and STT, the Comp / LP / EP / Spectre configurations."""
    grid: Dict[str, Tuple[DefenseKind, ThreatModel, PinningMode]] = {}
    for defense in (DefenseKind.FENCE, DefenseKind.DOM, DefenseKind.STT):
        name = defense.value
        grid[f"{name}-comp"] = (defense, COMPREHENSIVE, PinningMode.NONE)
        grid[f"{name}-lp"] = (defense, COMPREHENSIVE, PinningMode.LATE)
        grid[f"{name}-ep"] = (defense, COMPREHENSIVE, PinningMode.EARLY)
        grid[f"{name}-spectre"] = (defense, ThreatModel.CTRL,
                                   PinningMode.NONE)
    return grid
