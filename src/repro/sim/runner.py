"""Run experiments: one (config, workload) simulation at a time, with a
process-wide memo so the benchmark harnesses can share baseline runs."""

from __future__ import annotations

import os
from typing import Dict, Optional, Tuple

from repro.common.params import (COMPREHENSIVE, DefenseKind, PinningMode,
                                 SystemConfig, ThreatModel)
from repro.isa.trace import Workload
from repro.sim.executor import ResultStore, cache_key
from repro.sim.results import SimResult
from repro.sim.system import System


def run_simulation(config: SystemConfig, workload: Workload,
                   warm: bool = True) -> SimResult:
    """Build a system, run the workload to completion, collect results.

    ``warm`` functionally pre-touches the workload's footprint so the timed
    run starts from cache steady state (the paper warms up 1M instructions
    before measuring each interval).
    """
    system = System(config, workload)
    if warm:
        system.mem.warm(workload)
    system.run()
    return collect_result(system)


def collect_result(system: System) -> SimResult:
    """Assemble the ``SimResult`` of a completed system.

    Split from ``run_simulation`` so a run resumed from a checkpoint
    (``repro.sim.checkpoint``) collects its results through exactly the
    same code as an uninterrupted one — the bit-identity the resume
    tests assert is of *this* function's output.
    """
    config = system.config
    workload = system.workload
    result = SimResult(
        workload_name=workload.name,
        config=config,
        cycles=system.cycles,
        instructions=workload.total_instructions,
        core_stats={core.core_id: core.stats.as_dict()
                    for core in system.cores},
        mem_stats=system.mem.stats.as_dict(),
        network_stats=system.mem.network.stats.as_dict(),
        pinning_stats={core.core_id: core.controller.stats.as_dict()
                       for core in system.cores},
    )
    # pull CST/CPT summary metrics up into the per-core pinning stats
    for core in system.cores:
        stats = result.pinning_stats[core.core_id]
        controller = core.controller
        stats["cst_l1_fp_rate"] = controller.false_positive_rate("l1")
        stats["cst_dir_fp_rate"] = controller.false_positive_rate("dir")
        stats["cpt_mean_occupancy"] = controller.cpt.mean_occupancy
        stats["cpt_max_occupancy"] = controller.cpt.max_occupancy
        stats["cpt_overflow_rate"] = controller.cpt.overflow_rate
    # probe timing for adversarial traces: each probe load's dispatch
    # and completion cycles read from the ROB columns.  Attack traces
    # place probes in the final ROB window (asserted here), where the
    # column slots can no longer have been overwritten by younger uops.
    if any(trace.probe_indices for trace in workload.traces):
        probes: Dict[int, list] = {}
        for core in system.cores:
            cols = core.rob.cols
            mask = core.rob._mask
            records = []
            for index in core.trace.probe_indices:
                if index + core.rob.capacity < len(core.trace):
                    raise ValueError(
                        f"probe {index} outside the final ROB window of "
                        f"trace {core.trace.name!r}; its timing columns "
                        f"were recycled")
                slot = index & mask
                uop = core.trace[index]
                records.append({
                    "index": index,
                    "line": uop.addr >> 6,
                    "dispatch": cols.dispatch_cycle[slot],
                    "complete": cols.complete_cycle[slot],
                })
            probes[core.core_id] = records
        result.probes = probes
    return result


class ExperimentCache:
    """Memoizes runs by experiment *content*, optionally backed by a
    persistent on-disk ``ResultStore``.

    The in-process memo key is ``(workload.fingerprint, config)`` — the
    actual trace content, never the workload's display name, so two
    same-named workloads with different traces cannot alias (and configs
    are frozen dataclass trees, hence hashable).  With a store attached,
    misses fall through to disk before simulating, and fresh results are
    written back — so results survive across processes and runs
    (e.g. Figure 9 reuses every Figure 7/8 run, even from a previous
    invocation).
    """

    def __init__(self, store: Optional[ResultStore] = None,
                 cache_dir: Optional[str] = None) -> None:
        if store is None and cache_dir:
            store = ResultStore(cache_dir)
        self.store = store
        self._results: Dict[Tuple, SimResult] = {}
        self.memo_hits = 0
        self.store_hits = 0
        self.simulations = 0

    def _memo_key(self, config: SystemConfig,
                  workload: Workload) -> Tuple:
        return (workload.fingerprint, config)

    def peek(self, config: SystemConfig,
             workload: Workload) -> Optional[SimResult]:
        """Cached result if one exists (memo, then store); no simulation.
        A store hit is promoted into the memo."""
        memo_key = self._memo_key(config, workload)
        result = self._results.get(memo_key)
        if result is not None:
            self.memo_hits += 1
            return result
        if self.store is not None:
            result = self.store.get(cache_key(config, workload))
            if result is not None:
                self.store_hits += 1
                self._results[memo_key] = result
                return result
        return None

    def insert(self, config: SystemConfig, workload: Workload,
               result: SimResult) -> None:
        """Deposit an externally-computed result (executor workers)."""
        self._results[self._memo_key(config, workload)] = result
        if self.store is not None:
            self.store.put(cache_key(config, workload), result)

    def run(self, config: SystemConfig, workload: Workload,
            key: Optional[str] = None) -> SimResult:
        """Result for (config, workload), simulating on a miss.

        ``key`` is accepted for backward compatibility but no longer
        participates in the cache identity (it used to alias same-named
        workloads with different content).
        """
        result = self.peek(config, workload)
        if result is None:
            result = run_simulation(config, workload)
            self.simulations += 1
            self.insert(config, workload, result)
        return result

    def clear(self) -> None:
        """Drop the in-process memo (the persistent store is kept)."""
        self._results.clear()


#: Shared cache for the benchmark harnesses.  Set ``REPRO_CACHE_DIR`` to
#: back it with a persistent on-disk store.
# the env var picks the cache *location* only; entries are keyed by a
# content hash of (config, workload), so results cannot depend on it
GLOBAL_CACHE = ExperimentCache(
    cache_dir=os.environ.get("REPRO_CACHE_DIR"))  # repro: allow-env-read


def scheme_grid() -> Dict[str, Tuple[DefenseKind, ThreatModel, PinningMode]]:
    """The (defense x extension) grid of Tables 2/3: for each of Fence,
    DOM, and STT, the Comp / LP / EP / Spectre configurations."""
    grid: Dict[str, Tuple[DefenseKind, ThreatModel, PinningMode]] = {}
    for defense in (DefenseKind.FENCE, DefenseKind.DOM, DefenseKind.STT):
        name = defense.value
        grid[f"{name}-comp"] = (defense, COMPREHENSIVE, PinningMode.NONE)
        grid[f"{name}-lp"] = (defense, COMPREHENSIVE, PinningMode.LATE)
        grid[f"{name}-ep"] = (defense, COMPREHENSIVE, PinningMode.EARLY)
        grid[f"{name}-spectre"] = (defense, ThreatModel.CTRL,
                                   PinningMode.NONE)
    return grid
