"""Parallel experiment execution and the persistent result store.

Sweeps are embarrassingly parallel: every (config, workload) cell is an
independent, deterministic simulation.  This module provides

* ``cache_key`` — a content-addressed identity for one experiment:
  sha256 over the canonical config dict, the workload *content*
  fingerprint (not its name), and the cache format version;
* ``ResultStore`` — an on-disk, content-addressed store of ``SimResult``
  JSON documents, shared between processes and across runs;
* ``Executor`` — a process-pool engine that fans a batch of ``Task``s
  over N workers with per-task timeouts and failure isolation.

Determinism: simulations are pure functions of (config, workload), so
results are bit-identical whatever ``jobs`` is — the executor only
changes *when* each cell is computed, never *what* it computes.  The
test suite asserts this (``tests/test_executor.py``).
"""

from __future__ import annotations

import hashlib
import json
import os
import signal
import tempfile
from concurrent.futures import ProcessPoolExecutor
from typing import Dict, Iterable, List, Optional, Tuple

from repro.common.params import SystemConfig
from repro.isa.trace import Workload
from repro.sim.results import SimResult

#: Bump when the on-disk payload or the simulator's observable behaviour
#: changes; old entries become unreachable (different keys) not corrupt.
CACHE_FORMAT_VERSION = 1

# canonical config JSON is memoized per config object: sweeps reuse a
# handful of configs across hundreds of workload cells
_config_json_memo: Dict[int, Tuple[SystemConfig, str]] = {}


def _config_json(config: SystemConfig) -> str:
    memo = _config_json_memo.get(id(config))
    if memo is not None and memo[0] is config:
        return memo[1]
    text = json.dumps(config.to_dict(), sort_keys=True)
    _config_json_memo[id(config)] = (config, text)
    return text


def cache_key(config: SystemConfig, workload: Workload) -> str:
    """Content-addressed identity of one experiment.

    Keyed on what the simulation *consumes* — the full config and the
    actual trace content — never on the workload's display name, so two
    same-named workloads with different traces can never alias (and two
    identically-generated workloads always share a cache entry).
    """
    h = hashlib.sha256()
    h.update(f"repro-cache-v{CACHE_FORMAT_VERSION}\n".encode())
    h.update(_config_json(config).encode())
    h.update(b"\n")
    h.update(workload.fingerprint.encode())
    return h.hexdigest()


class ResultStore:
    """Persistent content-addressed store of simulation results.

    Layout: ``<root>/v<FORMAT>/<key[:2]>/<key>.json`` — two-level fanout
    keeps directories small on big sweeps.  Writes go through a temp
    file + ``os.replace`` so concurrent writers (pool workers, parallel
    CI jobs) can only ever produce complete entries.
    """

    def __init__(self, root: str) -> None:
        self.root = os.fspath(root)
        self._dir = os.path.join(self.root, f"v{CACHE_FORMAT_VERSION}")

    def _path(self, key: str) -> str:
        return os.path.join(self._dir, key[:2], f"{key}.json")

    def __contains__(self, key: str) -> bool:
        return os.path.exists(self._path(key))

    def get(self, key: str) -> Optional[SimResult]:
        """Load the stored result for ``key``; ``None`` when absent or
        unreadable (a corrupt entry behaves like a miss)."""
        try:
            with open(self._path(key), "r", encoding="utf-8") as fh:
                payload = json.load(fh)
        except (OSError, ValueError):
            return None
        if payload.get("format") != CACHE_FORMAT_VERSION:
            return None
        return SimResult.from_dict(payload["result"])

    def put(self, key: str, result: SimResult) -> None:
        directory = os.path.dirname(self._path(key))
        os.makedirs(directory, exist_ok=True)
        payload = {"format": CACHE_FORMAT_VERSION, "key": key,
                   "result": result.to_dict()}
        fd, tmp = tempfile.mkstemp(dir=directory, suffix=".tmp")
        try:
            with os.fdopen(fd, "w", encoding="utf-8") as fh:
                json.dump(payload, fh, sort_keys=True)
            os.replace(tmp, self._path(key))
        except BaseException:
            try:
                os.unlink(tmp)
            except OSError:
                pass
            raise

    def keys(self) -> List[str]:
        found = []
        if not os.path.isdir(self._dir):
            return found
        for sub in sorted(os.listdir(self._dir)):
            subdir = os.path.join(self._dir, sub)
            if not os.path.isdir(subdir):
                continue
            for name in sorted(os.listdir(subdir)):
                if name.endswith(".json"):
                    found.append(name[:-len(".json")])
        return found

    def __len__(self) -> int:
        return len(self.keys())


class Task:
    """One sweep cell: run ``workload`` under ``config``."""

    __slots__ = ("label", "config", "workload", "timeout_s")

    def __init__(self, label: str, config: SystemConfig,
                 workload: Workload,
                 timeout_s: Optional[float] = None) -> None:
        self.label = label
        self.config = config
        self.workload = workload
        self.timeout_s = timeout_s


class TaskFailure:
    """An isolated task failure: the batch continues without it."""

    __slots__ = ("label", "kind", "message")

    def __init__(self, label: str, kind: str, message: str) -> None:
        self.label = label
        self.kind = kind          # "error" | "timeout"
        self.message = message

    def __repr__(self) -> str:
        return f"TaskFailure({self.label!r}, {self.kind}: {self.message})"


class ExecutorOutcome:
    """Results and failures of one ``Executor.run_tasks`` batch."""

    __slots__ = ("results", "failures", "stats")

    def __init__(self, results: Dict[str, SimResult],
                 failures: List[TaskFailure],
                 stats: Dict[str, int]) -> None:
        self.results = results
        self.failures = failures
        self.stats = stats

    def result(self, label: str) -> SimResult:
        for failure in self.failures:
            if failure.label == label:
                raise RuntimeError(
                    f"task {label!r} failed ({failure.kind}): "
                    f"{failure.message}")
        return self.results[label]


class _TaskTimeout(Exception):
    pass


def _alarm_handler(_signum, _frame):
    raise _TaskTimeout()


def _run_task(label: str, config: SystemConfig, workload: Workload,
              timeout_s: Optional[float]) -> Tuple[str, str, object]:
    """Worker entry point (also the serial path, for identical
    semantics at ``jobs=1``).  Never raises: failures are reported as
    ('error'|'timeout', message) so one bad cell cannot take down the
    batch or the pool."""
    # deferred import: repro.sim.runner imports this module
    from repro.sim.runner import run_simulation
    use_alarm = timeout_s is not None and hasattr(signal, "SIGALRM")
    previous = None
    if use_alarm:
        previous = signal.signal(signal.SIGALRM, _alarm_handler)
        signal.alarm(max(1, int(timeout_s)))
    try:
        result = run_simulation(config, workload)
        return (label, "ok", result)
    except _TaskTimeout:
        return (label, "timeout", f"exceeded {timeout_s}s")
    except Exception as err:  # noqa: BLE001 - isolation boundary
        return (label, "error", f"{type(err).__name__}: {err}")
    finally:
        if use_alarm:
            signal.alarm(0)
            signal.signal(signal.SIGALRM, previous)


class Executor:
    """Fans batches of sweep tasks over a process pool.

    * deduplicates by ``cache_key`` — a batch naming the same
      experiment twice simulates it once;
    * consults/feeds an ``ExperimentCache`` (in-process memo + optional
      persistent ``ResultStore``) before and after simulating;
    * isolates failures: a raising or deadlocked worker yields a
      ``TaskFailure``, never an exception out of ``run_tasks``;
    * is deterministic: the returned mapping depends only on the tasks,
      never on ``jobs`` or completion order.
    """

    def __init__(self, jobs: int = 1, timeout_s: Optional[float] = None,
                 cache: Optional["ExperimentCache"] = None) -> None:
        if jobs < 1:
            raise ValueError("jobs must be >= 1")
        self.jobs = jobs
        self.timeout_s = timeout_s
        self.cache = cache

    def run_tasks(self, tasks: Iterable[Task],
                  cache: Optional["ExperimentCache"] = None,
                  ) -> ExecutorOutcome:
        tasks = list(tasks)
        cache = cache if cache is not None else self.cache
        stats = {"tasks": len(tasks), "cache_hits": 0, "simulated": 0,
                 "deduplicated": 0, "failed": 0}
        results: Dict[str, SimResult] = {}
        failures: List[TaskFailure] = []
        # resolve cache hits and deduplicate identical experiments
        pending: Dict[str, Task] = {}       # key -> representative task
        by_key: Dict[str, List[Task]] = {}  # key -> every task wanting it
        for task in tasks:
            key = cache_key(task.config, task.workload)
            by_key.setdefault(key, []).append(task)
            if key in pending:
                stats["deduplicated"] += 1
                continue
            hit = cache.peek(task.config, task.workload) \
                if cache is not None else None
            if hit is not None:
                stats["cache_hits"] += 1
                for waiting in by_key[key]:
                    results[waiting.label] = hit
                continue
            pending[key] = task
        # simulate the misses
        for key, outcome in self._execute(pending):
            label, status, payload = outcome
            if status == "ok":
                stats["simulated"] += 1
                result = payload
                if cache is not None:
                    task = pending[key]
                    cache.insert(task.config, task.workload, result)
                for waiting in by_key[key]:
                    results[waiting.label] = result
            else:
                stats["failed"] += 1
                for waiting in by_key[key]:
                    failures.append(
                        TaskFailure(waiting.label, status, payload))
        return ExecutorOutcome(results, failures, stats)

    def _execute(self, pending: Dict[str, Task]):
        """Yield (key, worker outcome) for every pending task."""
        if not pending:
            return
        def timeout_of(task: Task) -> Optional[float]:
            return task.timeout_s if task.timeout_s is not None \
                else self.timeout_s
        if self.jobs == 1:
            for key, task in pending.items():
                yield key, _run_task(task.label, task.config,
                                     task.workload, timeout_of(task))
            return
        with ProcessPoolExecutor(max_workers=self.jobs) as pool:
            futures = {
                key: pool.submit(_run_task, task.label, task.config,
                                 task.workload, timeout_of(task))
                for key, task in pending.items()}
            for key, future in futures.items():
                yield key, future.result()
