"""Parallel experiment execution and the persistent result store.

Sweeps are embarrassingly parallel: every (config, workload) cell is an
independent, deterministic simulation.  This module provides

* ``cache_key`` — a content-addressed identity for one experiment:
  sha256 over the canonical config dict, the workload *content*
  fingerprint (not its name), and the cache format version;
* ``ResultStore`` — an on-disk, content-addressed store of ``SimResult``
  JSON documents, shared between processes and across runs, with a
  per-entry integrity checksum (corrupt entries are quarantined, not
  silently re-simulated forever);
* ``Executor`` — a *self-healing* process-pool engine: per-task
  timeouts, failure isolation, retry of transient failures with capped
  exponential backoff, resume of interrupted/timed-out tasks from
  periodic simulation checkpoints (``repro.sim.checkpoint``), recovery
  from killed workers by rebuilding the pool, and graceful degradation
  to serial execution when the pool keeps breaking.

Determinism: simulations are pure functions of (config, workload), so
results are bit-identical whatever ``jobs`` is — the executor only
changes *when* each cell is computed, never *what* it computes.  The
test suite asserts this (``tests/test_executor.py``), including across
worker crashes and checkpoint resumes (``docs/resilience.md``).
"""

from __future__ import annotations

import hashlib
import json
import logging
import os
import signal
import tempfile
import threading
import time
from concurrent.futures import BrokenExecutor, ProcessPoolExecutor
from contextlib import contextmanager
from typing import Callable, Dict, Iterable, List, Optional, Tuple

try:
    import fcntl
except ImportError:  # pragma: no cover - non-POSIX platforms
    fcntl = None

from repro.common.errors import CheckpointError, DeadlockError
from repro.common.params import SystemConfig
from repro.isa.trace import Workload
from repro.sim.results import SimResult

_log = logging.getLogger(__name__)

#: Bump when the on-disk payload or the simulator's observable behaviour
#: changes; old entries become unreachable (different keys) not corrupt.
#: v2: entries carry an integrity ``checksum`` over the result document.
CACHE_FORMAT_VERSION = 2

#: Simulated cycles between rolling checkpoints when the executor runs
#: with a ``checkpoint_dir`` and the caller gave no explicit interval.
DEFAULT_CHECKPOINT_INTERVAL = 2_000

#: Simulated cycles each member of a lockstep batch advances per slice.
#: Large enough to amortize the slice bookkeeping, small enough that a
#: batch's members stay interleaved (and a shared wall-clock budget is
#: checked often) rather than running to completion one after another.
LOCKSTEP_QUANTUM = 5_000

#: True only inside a process-pool worker (set by the pool initializer).
#: The chaos engine's process-fault injection (``crash_at_cycle`` /
#: ``stall_at_cycle``) is gated on this so a degraded-to-serial executor
#: — or any direct ``System.run`` — never kills the caller's process.
IN_POOL_WORKER = False

#: Attempt number (1-based) of the task currently running in this
#: process; threaded through ``_run_task`` because environment changes
#: do not reach already-forked pool workers.
CURRENT_ATTEMPT = 1


def _mark_pool_worker() -> None:
    global IN_POOL_WORKER
    IN_POOL_WORKER = True


def _init_pool_worker(memory_mb: Optional[int] = None) -> None:
    """Pool-worker initializer: mark the process and, when a ceiling is
    configured, cap its address space with ``RLIMIT_AS`` so a runaway
    simulation dies as a ``MemoryError`` inside the worker (a retryable
    "oom" task failure) instead of inviting the kernel OOM killer to
    shoot the host.  Only ever applied inside pool workers — the serial
    path shares the caller's process, where a ceiling would be a
    landmine for the embedding application."""
    _mark_pool_worker()
    if memory_mb is None:
        return
    try:
        import resource
    except ImportError:  # pragma: no cover - non-POSIX platforms
        return
    limit = int(memory_mb) << 20
    try:
        resource.setrlimit(resource.RLIMIT_AS, (limit, limit))
    except (OSError, ValueError):  # pragma: no cover - platform refusal
        _log.warning("executor: cannot apply RLIMIT_AS of %d MiB in "
                     "worker %d", memory_mb, os.getpid())


# canonical config JSON is memoized per config object: sweeps reuse a
# handful of configs across hundreds of workload cells
_config_json_memo: Dict[int, Tuple[SystemConfig, str]] = {}


def _config_json(config: SystemConfig) -> str:
    # pure identity memo: the id() key is validated with an `is` check
    # and never ordered, persisted, or exposed, so address reuse across
    # runs cannot change any result
    memo = _config_json_memo.get(id(config))  # repro: allow-id-ordering
    if memo is not None and memo[0] is config:
        return memo[1]
    text = json.dumps(config.to_dict(), sort_keys=True)
    _config_json_memo[id(config)] = (config, text)  # repro: allow-id-ordering
    return text


def cache_key(config: SystemConfig, workload: Workload) -> str:
    """Content-addressed identity of one experiment.

    Keyed on what the simulation *consumes* — the full config and the
    actual trace content — never on the workload's display name, so two
    same-named workloads with different traces can never alias (and two
    identically-generated workloads always share a cache entry).
    """
    h = hashlib.sha256()
    h.update(f"repro-cache-v{CACHE_FORMAT_VERSION}\n".encode())
    h.update(_config_json(config).encode())
    h.update(b"\n")
    h.update(workload.fingerprint.encode())
    return h.hexdigest()


def result_checksum(result_doc: Dict) -> str:
    """Integrity checksum over the canonical result document.

    Public because store federation peers (``repro.service.fabric``)
    re-verify fetched payloads with the same checksum before filling
    their local store.
    """
    text = json.dumps(result_doc, sort_keys=True)
    return hashlib.sha256(text.encode()).hexdigest()


_result_checksum = result_checksum  # backwards-compatible alias


class ResultStore:
    """Persistent content-addressed store of simulation results.

    Layout: ``<root>/v<FORMAT>/<key[:2]>/<key>.json`` — two-level fanout
    keeps directories small on big sweeps.  Writes go through a temp
    file + ``os.replace`` so concurrent writers (pool workers, parallel
    CI jobs) can only ever produce complete entries.

    Every entry carries a sha256 checksum of its result document.  A
    corrupt entry (unparseable, wrong format marker, checksum mismatch,
    undecodable result) behaves like a miss, and the damaged file is
    moved — once — to ``<root>/quarantine/`` for postmortems instead of
    being re-read and re-rejected on every future lookup.

    **Federation (read-through peers).**  An optional ``peer_fetch``
    callable turns a local miss into a peer lookup: ``get`` calls
    ``peer_fetch(key)`` (which must return a *validated* ``SimResult``
    or ``None`` — ``repro.service.fabric.store.peer_fetcher`` builds
    one over the shards' ``GET /store/<key>`` endpoints) and fills the
    local store through the ordinary ``put`` path, i.e. under the same
    advisory flock + atomic-rename discipline as any local writer, so
    a peer fill can never race a concurrent quarantine or writer.
    ``payload`` is the serving side: a local-only read of the raw
    wire document that never consults peers, which is what makes
    A→B→A fetch loops impossible by construction.
    """

    def __init__(self, root: str,
                 peer_fetch: Optional[
                     Callable[[str], Optional[SimResult]]] = None) -> None:
        self.root = os.fspath(root)
        self._dir = os.path.join(self.root, f"v{CACHE_FORMAT_VERSION}")
        self.peer_fetch = peer_fetch
        self.peer_fills = 0

    def _path(self, key: str) -> str:
        return os.path.join(self._dir, key[:2], f"{key}.json")

    @contextmanager
    def _write_lock(self):
        """Advisory ``flock`` serializing mutations to this store.

        Readers never lock (atomic renames guarantee they only ever see
        complete entries), but two *processes* sharing one
        ``REPRO_CACHE_DIR`` can otherwise interleave a ``put`` with a
        concurrent ``_quarantine`` of the same key: writer A replaces a
        fresh entry at the exact moment writer B, holding a stale
        corrupt read, renames that fresh file into ``quarantine/``.
        Holding the store lock across the read-verdict-to-rename window
        closes that race.  Falls back to lock-free (pure atomic-rename
        discipline, still crash-safe) where ``fcntl`` is unavailable.
        """
        if fcntl is None:
            yield
            return
        os.makedirs(self.root, exist_ok=True)
        fd = os.open(os.path.join(self.root, ".lock"),
                     os.O_CREAT | os.O_RDWR, 0o644)
        try:
            fcntl.flock(fd, fcntl.LOCK_EX)
            yield
        finally:
            os.close(fd)  # closing releases the flock

    def __contains__(self, key: str) -> bool:
        return os.path.exists(self._path(key))

    def _read_entry(self, key: str
                    ) -> Tuple[Optional[SimResult], Optional[str]]:
        """Read + validate ``key``'s entry: ``(result, corrupt_reason)``.
        ``(None, None)`` is a plain miss (no file)."""
        path = self._path(key)
        try:
            with open(path, "r", encoding="utf-8") as fh:
                payload = json.load(fh)
        except OSError:
            return None, None
        except ValueError:
            return None, "unparseable JSON"
        if not isinstance(payload, dict) \
                or payload.get("format") != CACHE_FORMAT_VERSION:
            return None, "format marker mismatch"
        if payload.get("checksum") != _result_checksum(
                payload.get("result", {})):
            return None, "checksum mismatch"
        try:
            return SimResult.from_dict(payload["result"]), None
        except Exception as err:  # noqa: BLE001 - corrupt data boundary
            return None, f"undecodable result ({type(err).__name__})"

    def _quarantine(self, key: str, reason: str) -> None:
        """Move ``key``'s damaged file into ``<root>/quarantine/``.

        Runs under the store write lock and *re-validates* first: with
        two processes sharing a store, the corrupt bytes this process
        read may have been atomically replaced by a concurrent writer's
        good entry between read and rename — quarantining that would
        evict a valid result.  Re-checking under the lock (which every
        ``put`` also holds across its rename) makes the rename hit only
        entries that are still corrupt.
        """
        with self._write_lock():
            _result, still_corrupt = self._read_entry(key)
            if still_corrupt is None:
                return  # replaced by a good entry (or already gone)
            src = self._path(key)
            quarantine_dir = os.path.join(self.root, "quarantine")
            dst = os.path.join(quarantine_dir, os.path.basename(src))
            try:
                os.makedirs(quarantine_dir, exist_ok=True)
                os.replace(src, dst)
            except OSError:
                return
        _log.warning("result store: quarantined corrupt entry %s -> %s "
                     "(%s)", src, dst, reason)

    def get(self, key: str) -> Optional[SimResult]:
        """Load the stored result for ``key``; ``None`` when absent or
        corrupt.  Corrupt entries are quarantined (see class docs).
        With ``peer_fetch`` configured, a local miss falls through to
        the peers and a hit is filled into the local store."""
        result, corrupt_reason = self._read_entry(key)
        if corrupt_reason is not None:
            self._quarantine(key, corrupt_reason)
        if result is not None or self.peer_fetch is None:
            return result
        fetched = self.peer_fetch(key)
        if fetched is not None:
            self.put(key, fetched)  # local fill, flock'd like any write
            self.peer_fills += 1
        return fetched

    def payload(self, key: str) -> Optional[Dict]:
        """The raw wire payload (format marker + result + checksum) of a
        *locally* stored entry, or ``None``.  Never consults peers —
        this is what ``GET /store/<key>`` serves, so a fetch chain
        always terminates at local disk."""
        path = self._path(key)
        try:
            with open(path, "r", encoding="utf-8") as fh:
                payload = json.load(fh)
        except (OSError, ValueError):
            return None
        if not isinstance(payload, dict) \
                or payload.get("format") != CACHE_FORMAT_VERSION \
                or payload.get("checksum") != result_checksum(
                    payload.get("result", {})):
            return None
        return payload

    def put(self, key: str, result: SimResult) -> None:
        directory = os.path.dirname(self._path(key))
        os.makedirs(directory, exist_ok=True)
        doc = result.to_dict()
        payload = {"format": CACHE_FORMAT_VERSION, "key": key,
                   "result": doc, "checksum": _result_checksum(doc)}
        fd, tmp = tempfile.mkstemp(dir=directory, suffix=".tmp")
        try:
            with os.fdopen(fd, "w", encoding="utf-8") as fh:
                json.dump(payload, fh, sort_keys=True)
            with self._write_lock():
                os.replace(tmp, self._path(key))
        except BaseException:
            try:
                os.unlink(tmp)
            except OSError:
                pass
            raise

    def keys(self) -> List[str]:
        found = []
        if not os.path.isdir(self._dir):
            return found
        for sub in sorted(os.listdir(self._dir)):
            subdir = os.path.join(self._dir, sub)
            if not os.path.isdir(subdir):
                continue
            for name in sorted(os.listdir(subdir)):
                if name.endswith(".json"):
                    found.append(name[:-len(".json")])
        return found

    def __len__(self) -> int:
        return len(self.keys())


class Task:
    """One sweep cell: run ``workload`` under ``config``.

    ``resume=True`` asks the very first attempt to resume from an
    existing rolling checkpoint (when the executor has a
    ``checkpoint_dir`` and one is present) instead of starting at cycle
    zero — the job service sets it when replaying jobs that a previous
    service incarnation journaled as running or drained.  Without it
    only retry attempts consult checkpoints, preserving the historical
    fresh-start semantics of batch sweeps.
    """

    __slots__ = ("label", "config", "workload", "timeout_s", "resume")

    def __init__(self, label: str, config: SystemConfig,
                 workload: Workload,
                 timeout_s: Optional[float] = None,
                 resume: bool = False) -> None:
        self.label = label
        self.config = config
        self.workload = workload
        self.timeout_s = timeout_s
        self.resume = resume


class TaskFailure:
    """An isolated task failure: the batch continues without it.

    ``attempts`` is how many times the executor tried the task before
    giving up; ``dump`` carries the structured deadlock diagnostic
    (``System.diagnostic_dump``) when the failure was a ``DeadlockError``.
    """

    __slots__ = ("label", "kind", "message", "attempts", "dump")

    def __init__(self, label: str, kind: str, message: str,
                 attempts: int = 1, dump: Optional[Dict] = None) -> None:
        self.label = label
        self.kind = kind          # "error"|"timeout"|"interrupted"|"oom"
        self.message = message
        self.attempts = attempts
        self.dump = dump

    def __repr__(self) -> str:
        return f"TaskFailure({self.label!r}, {self.kind}: {self.message})"


class ExecutorOutcome:
    """Results and failures of one ``Executor.run_tasks`` batch.

    ``drained`` maps the label of every task that was *paused* by a
    cooperative drain (``Executor(drain_flag=...)``) to the simulated
    cycle its rolling checkpoint covers — those tasks neither succeeded
    nor failed; resubmitting them with ``Task(resume=True)`` continues
    from the checkpoint bit-identically.
    """

    __slots__ = ("results", "failures", "stats", "drained")

    def __init__(self, results: Dict[str, SimResult],
                 failures: List[TaskFailure],
                 stats: Dict[str, int],
                 drained: Optional[Dict[str, int]] = None) -> None:
        self.results = results
        self.failures = failures
        self.stats = stats
        self.drained = drained if drained is not None else {}

    def result(self, label: str) -> SimResult:
        for failure in self.failures:
            if failure.label == label:
                raise RuntimeError(
                    f"task {label!r} failed ({failure.kind}): "
                    f"{failure.message}")
        if label in self.drained:
            raise RuntimeError(
                f"task {label!r} was drained at cycle "
                f"{self.drained[label]}; resubmit with resume=True")
        return self.results[label]


class _TaskTimeout(BaseException):
    """Raised by the SIGALRM handler when a task's wall-clock budget is
    spent.  Derives from ``BaseException`` so the broad ``except
    Exception`` isolation layers the alarm may interrupt — e.g. the
    pickle wrapper in ``snapshot_system``, whose checkpoint can be
    mid-write when the alarm fires — cannot swallow it into a
    non-retryable error; only ``_run_task`` catches it, as a timeout."""


class _TaskDrained(BaseException):
    """Raised by ``_simulate`` when a cooperative drain paused the task
    at a checkpoint boundary.  ``BaseException`` for the same reason as
    ``_TaskTimeout``: no isolation layer may swallow it — only
    ``_run_task`` catches it, as a "drained" outcome."""

    def __init__(self, cycle: int) -> None:
        self.cycle = cycle
        super().__init__(f"drained at cycle {cycle}")


def _alarm_handler(_signum, _frame):
    raise _TaskTimeout()


@contextmanager
def _task_alarm(timeout_s: Optional[float]):
    """SIGALRM-backed wall-clock budget for one task.

    The teardown order is load-bearing: the pending alarm is cancelled
    *before* the previous handler is restored.  Restoring first leaves a
    window where a still-armed alarm fires into the restored handler —
    for back-to-back serial tasks that would abort the *next* task (or
    kill the process outright under the default disposition).

    ``signal.signal`` only works from the main thread; when the serial
    path runs inside a worker *thread* (the job service's supervisor),
    the alarm is skipped and stuck-task protection falls to the
    supervisor's heartbeat watchdog instead.  Pool workers are
    unaffected — their tasks run on the worker process's main thread.
    """
    if timeout_s is None or not hasattr(signal, "SIGALRM") \
            or threading.current_thread() is not threading.main_thread():
        yield
        return
    previous = signal.signal(signal.SIGALRM, _alarm_handler)
    signal.alarm(max(1, int(timeout_s)))
    try:
        yield
    finally:
        signal.alarm(0)
        signal.signal(signal.SIGALRM, previous)


def _simulate(config: SystemConfig, workload: Workload, meta: Dict,
              checkpoint_path: Optional[str],
              checkpoint_interval: Optional[int],
              resume: bool = False,
              drain_flag: Optional[str] = None) -> SimResult:
    """Run one cell, through the checkpointing path when enabled.

    On a retry (``meta["attempt"] > 1``) — or on a first attempt with
    ``resume=True`` (journal replay after a service restart) — a valid
    rolling checkpoint left by a previous attempt/incarnation is resumed
    instead of restarting from cycle zero; a missing or corrupt
    checkpoint falls back to a fresh run.  Sanitized configs always run
    fresh — they cannot be checkpointed (``repro.sim.checkpoint``).

    With a ``drain_flag``, the checkpoint loop pauses at the first
    checkpoint boundary after the flag file appears and this raises
    ``_TaskDrained`` — the rolling checkpoint is deliberately *kept* so
    a later attempt resumes it.
    """
    # deferred import: repro.sim.runner imports this module
    from repro.sim.runner import collect_result, run_simulation
    if checkpoint_path is None or config.sanitize:
        return run_simulation(config, workload)
    from repro.sim.checkpoint import load_checkpoint, run_with_checkpoints
    from repro.sim.system import System
    system = None
    if (meta["attempt"] > 1 or resume) and os.path.exists(checkpoint_path):
        try:
            system = load_checkpoint(checkpoint_path)
            meta["resumed_from"] = system.cycles
        except CheckpointError as err:
            _log.warning("executor: discarding unusable checkpoint %s "
                         "(%s); restarting task from cycle 0",
                         checkpoint_path, err)
            system = None
    if system is None:
        system = System(config, workload)
        system.mem.warm(workload)
    run_with_checkpoints(
        system, checkpoint_path,
        checkpoint_interval or DEFAULT_CHECKPOINT_INTERVAL,
        stop_flag=drain_flag)
    if not system.done:
        raise _TaskDrained(system.cycles)
    try:
        os.unlink(checkpoint_path)
    except OSError:
        pass
    return collect_result(system)


def _run_task(label: str, config: SystemConfig, workload: Workload,
              timeout_s: Optional[float], attempt: int = 1,
              checkpoint_path: Optional[str] = None,
              checkpoint_interval: Optional[int] = None,
              resume: bool = False,
              drain_flag: Optional[str] = None,
              ) -> Tuple[str, str, object, Dict]:
    """Worker entry point (also the serial path, for identical
    semantics at ``jobs=1``).  Never raises: failures are reported as
    ('error'|'timeout'|'oom'|'drained', message) so one bad cell cannot
    take down the batch or the pool.  The fourth element is attempt
    metadata: ``attempt`` (1-based), ``resumed_from`` (checkpoint cycle
    or None), ``checkpoint_cycle`` for drained tasks and, for
    deadlocks, the diagnostic ``dump``."""
    global CURRENT_ATTEMPT
    CURRENT_ATTEMPT = attempt
    meta: Dict = {"attempt": attempt, "resumed_from": None}
    try:
        with _task_alarm(timeout_s):
            result = _simulate(config, workload, meta,
                               checkpoint_path, checkpoint_interval,
                               resume, drain_flag)
        return (label, "ok", result, meta)
    except _TaskTimeout:
        return (label, "timeout", f"exceeded {timeout_s}s", meta)
    except _TaskDrained as drained:
        meta["checkpoint_cycle"] = drained.cycle
        return (label, "drained",
                f"paused by drain at cycle {drained.cycle}", meta)
    except MemoryError:
        return (label, "oom",
                "worker exhausted its memory ceiling (RLIMIT_AS)", meta)
    except DeadlockError as err:
        meta["dump"] = err.dump
        return (label, "error", f"DeadlockError: {err}", meta)
    except Exception as err:  # noqa: BLE001 - isolation boundary
        return (label, "error", f"{type(err).__name__}: {err}", meta)


def _run_lockstep_batch(items: List[Tuple[str, SystemConfig, Workload,
                                          int]],
                        quantum: int,
                        timeout_s: Optional[float],
                        ) -> List[Tuple[str, str, object, Dict]]:
    """Run several sweep cells of one workload interleaved in-process.

    ``items`` is ``[(label, config, workload, attempt), ...]`` — every
    member shares the same workload object, so the systems share one
    warmed footprint computation pattern and (for specialized configs)
    one compiled trace (``repro.isa.compiled`` memoizes per ``Trace``).
    The batch advances round-robin, ``quantum`` simulated cycles per
    member per slice, amortizing interpreter dispatch and keeping the
    shared trace arrays hot in cache.  Interleaving cannot change any
    result: each ``System`` is advanced through the same ``run`` entry
    point an uninterrupted run uses, just in stop-cycle slices (the
    same mechanism checkpointing relies on for bit-identity).

    Failures are isolated per member, exactly like ``_run_task``: one
    deadlocked cell yields its own failure outcome while its batch
    siblings finish.  The wall-clock budget is shared — when it expires,
    every *unfinished* member reports a timeout.
    """
    from repro.sim.runner import collect_result
    from repro.sim.system import System
    outcomes: Dict[str, Tuple[str, str, object, Dict]] = {}
    live: List[Tuple[str, "System", Dict]] = []
    for label, config, workload, attempt in items:
        meta: Dict = {"attempt": attempt, "resumed_from": None,
                      "lockstep": len(items)}
        try:
            system = System(config, workload)
            system.mem.warm(workload)
            live.append((label, system, meta))
        except Exception as err:  # noqa: BLE001 - isolation boundary
            outcomes[label] = (label, "error",
                               f"{type(err).__name__}: {err}", meta)
    # host-level budget enforcement, not simulated time: the batch
    # shares one wall-clock deadline (max of the members' timeouts)
    deadline = None if timeout_s is None \
        else time.monotonic() + timeout_s  # repro: allow-wall-clock
    while live:
        still_running: List[Tuple[str, "System", Dict]] = []
        for label, system, meta in live:
            if deadline is not None \
                    and time.monotonic() >= deadline:  # repro: allow-wall-clock
                outcomes[label] = (label, "timeout",
                                   f"exceeded {timeout_s}s "
                                   f"(shared lockstep budget)", meta)
                continue
            try:
                system.run(stop_cycle=system.cycles + quantum)
            except DeadlockError as err:
                meta["dump"] = err.dump
                outcomes[label] = (label, "error",
                                   f"DeadlockError: {err}", meta)
                continue
            except MemoryError:
                outcomes[label] = (
                    label, "oom",
                    "worker exhausted its memory ceiling (RLIMIT_AS)",
                    meta)
                continue
            except Exception as err:  # noqa: BLE001 - isolation
                outcomes[label] = (label, "error",
                                   f"{type(err).__name__}: {err}", meta)
                continue
            if system.done:
                try:
                    outcomes[label] = (label, "ok",
                                       collect_result(system), meta)
                except Exception as err:  # noqa: BLE001 - isolation
                    outcomes[label] = (label, "error",
                                       f"{type(err).__name__}: {err}",
                                       meta)
            else:
                still_running.append((label, system, meta))
        live = still_running
    return [outcomes[label] for label, _cfg, _wl, _att in items]


class Executor:
    """Fans batches of sweep tasks over a process pool, self-healing.

    * deduplicates by ``cache_key`` — a batch naming the same
      experiment twice simulates it once;
    * consults/feeds an ``ExperimentCache`` (in-process memo + optional
      persistent ``ResultStore``) before and after simulating;
    * isolates failures: a raising or deadlocked worker yields a
      ``TaskFailure``, never an exception out of ``run_tasks``;
    * retries transient failures: timed-out tasks up to ``retries``
      extra attempts, and tasks interrupted by a dying worker (SIGKILL,
      OOM) at least once, with capped exponential backoff between retry
      rounds — resuming from the task's rolling checkpoint when a
      ``checkpoint_dir`` is configured;
    * recovers from a broken process pool by building a fresh pool for
      the next round, and degrades to in-process serial execution after
      ``pool_failure_limit`` consecutive breaks;
    * batches same-workload cells into lockstep groups
      (``lockstep=N``): up to N configs/seeds of one sweep cell run
      interleaved in a single process, sharing the workload's compiled
      trace and amortizing interpreter dispatch (see
      ``_run_lockstep_batch``); checkpointed or drainable batches fall
      back to per-task execution, where rolling checkpoints work;
    * is deterministic: the returned mapping depends only on the tasks,
      never on ``jobs``, ``lockstep``, completion order, or how many
      faults were healed along the way (a resumed run is bit-identical
      to a fresh one — see ``repro.sim.checkpoint``).
    """

    def __init__(self, jobs: int = 1, timeout_s: Optional[float] = None,
                 cache: Optional["ExperimentCache"] = None,
                 retries: int = 0, backoff_s: float = 0.05,
                 backoff_cap_s: float = 2.0,
                 pool_failure_limit: int = 3,
                 checkpoint_dir: Optional[str] = None,
                 checkpoint_interval: Optional[int] = None,
                 worker_memory_mb: Optional[int] = None,
                 drain_flag: Optional[str] = None,
                 lockstep: int = 1,
                 lockstep_quantum: int = LOCKSTEP_QUANTUM) -> None:
        if jobs < 1:
            raise ValueError("jobs must be >= 1")
        if retries < 0:
            raise ValueError("retries must be >= 0")
        if pool_failure_limit < 1:
            raise ValueError("pool_failure_limit must be >= 1")
        if worker_memory_mb is not None and worker_memory_mb < 1:
            raise ValueError("worker_memory_mb must be >= 1")
        if lockstep < 1:
            raise ValueError("lockstep must be >= 1")
        if lockstep_quantum < 1:
            raise ValueError("lockstep_quantum must be >= 1")
        self.jobs = jobs
        self.lockstep = lockstep
        self.lockstep_quantum = lockstep_quantum
        self.timeout_s = timeout_s
        self.cache = cache
        self.retries = retries
        self.backoff_s = backoff_s
        self.backoff_cap_s = backoff_cap_s
        self.pool_failure_limit = pool_failure_limit
        self.checkpoint_dir = checkpoint_dir
        self.checkpoint_interval = checkpoint_interval
        #: Off by default.  Applied as RLIMIT_AS inside pool workers
        #: only; the serial path never caps the embedding process.
        self.worker_memory_mb = worker_memory_mb
        #: Cooperative-drain flag file: when it exists, checkpointing
        #: tasks pause at the next checkpoint boundary ("drained").
        self.drain_flag = drain_flag
        self._pool_breaks = 0
        self._degraded = False

    def _retry_budget(self, status: str) -> int:
        """Extra attempts allowed after a failure of ``status``.

        An interruption (the worker died under the task) is always worth
        one retry even at ``retries=0``: the task itself did nothing
        wrong, and a checkpoint may make the retry nearly free.  An OOM
        under a worker memory ceiling is treated the same way — the
        ceiling is an environmental policy, and a retry resuming from a
        checkpoint taken before the blow-up can finish within it.  Plain
        errors are deterministic — retrying replays the same exception.
        """
        if status in ("interrupted", "oom"):
            return max(self.retries, 1)
        if status == "timeout":
            return self.retries
        return 0

    def _backoff_delay(self, round_index: int) -> float:
        return min(self.backoff_cap_s,
                   self.backoff_s * (2 ** (round_index - 1)))

    def _lockstep_groups(self, pending: Dict[str, Task]
                         ) -> Tuple[List[List[Tuple[str, Task]]],
                                    Dict[str, Task]]:
        """Split pending tasks into lockstep batches and singletons.

        Tasks sharing a workload *content* fingerprint are chunked into
        groups of up to ``lockstep`` members.  Checkpointing and
        cooperative drain are per-task mechanisms, so an executor
        configured with either runs everything on the per-task path.
        """
        if self.lockstep <= 1 or self.checkpoint_dir is not None \
                or self.drain_flag is not None:
            return [], dict(pending)
        by_workload: Dict[str, List[Tuple[str, Task]]] = {}
        for key, task in pending.items():
            by_workload.setdefault(task.workload.fingerprint,
                                   []).append((key, task))
        batches: List[List[Tuple[str, Task]]] = []
        singles: Dict[str, Task] = {}
        for members in by_workload.values():
            for start in range(0, len(members), self.lockstep):
                chunk = members[start:start + self.lockstep]
                if len(chunk) == 1:
                    singles[chunk[0][0]] = chunk[0][1]
                else:
                    batches.append(chunk)
        return batches, singles

    def _checkpoint_args(self, key: str
                         ) -> Tuple[Optional[str], Optional[int]]:
        if self.checkpoint_dir is None:
            return None, None
        path = os.path.join(self.checkpoint_dir, f"{key}.ckpt")
        return path, self.checkpoint_interval

    def run_tasks(self, tasks: Iterable[Task],
                  cache: Optional["ExperimentCache"] = None,
                  ) -> ExecutorOutcome:
        tasks = list(tasks)
        cache = cache if cache is not None else self.cache
        stats = {"tasks": len(tasks), "cache_hits": 0, "simulated": 0,
                 "deduplicated": 0, "failed": 0, "retries": 0,
                 "resumed": 0, "pool_rebuilds": 0, "degraded_serial": 0,
                 "drained": 0, "lockstep_batches": 0}
        results: Dict[str, SimResult] = {}
        failures: List[TaskFailure] = []
        drained: Dict[str, int] = {}
        # resolve cache hits and deduplicate identical experiments
        pending: Dict[str, Task] = {}       # key -> representative task
        by_key: Dict[str, List[Task]] = {}  # key -> every task wanting it
        for task in tasks:
            key = cache_key(task.config, task.workload)
            by_key.setdefault(key, []).append(task)
            if key in pending:
                stats["deduplicated"] += 1
                continue
            hit = cache.peek(task.config, task.workload) \
                if cache is not None else None
            if hit is not None:
                stats["cache_hits"] += 1
                for waiting in by_key[key]:
                    results[waiting.label] = hit
                continue
            pending[key] = task
        # simulate the misses; failed-but-retryable tasks roll into the
        # next round with an incremented attempt number
        attempt: Dict[str, int] = {key: 1 for key in pending}
        remaining = dict(pending)
        round_index = 0
        while remaining:
            if round_index:
                delay = self._backoff_delay(round_index)
                if delay > 0:
                    time.sleep(delay)
            round_index += 1
            retry_round: Dict[str, Task] = {}
            for key, outcome in self._execute(remaining, attempt, stats):
                label, status, payload, meta = outcome
                if meta.get("resumed_from") is not None:
                    stats["resumed"] += 1
                if status == "ok":
                    stats["simulated"] += 1
                    if cache is not None:
                        task = pending[key]
                        cache.insert(task.config, task.workload, payload)
                    for waiting in by_key[key]:
                        results[waiting.label] = payload
                elif status == "drained":
                    # not a failure: the task paused at a checkpoint
                    # boundary because a drain was requested; the caller
                    # resubmits it with resume=True
                    stats["drained"] += 1
                    cycle = meta.get("checkpoint_cycle", 0)
                    for waiting in by_key[key]:
                        drained[waiting.label] = cycle
                elif attempt[key] <= self._retry_budget(status):
                    stats["retries"] += 1
                    attempt[key] += 1
                    retry_round[key] = pending[key]
                    _log.warning("executor: task %r attempt %d %s (%s); "
                                 "retrying", label, meta.get("attempt", 1),
                                 status, payload)
                else:
                    stats["failed"] += 1
                    for waiting in by_key[key]:
                        failures.append(TaskFailure(
                            waiting.label, status, payload,
                            attempts=attempt[key],
                            dump=meta.get("dump")))
            remaining = retry_round
        return ExecutorOutcome(results, failures, stats, drained)

    def _execute(self, pending: Dict[str, Task],
                 attempt: Dict[str, int], stats: Dict[str, int]):
        """Yield (key, worker outcome) for every pending task.

        Pool-worker deaths surface as synthetic ``interrupted`` outcomes
        (``concurrent.futures`` fails *every* unfinished future when a
        worker dies, so siblings of the killed task are interrupted,
        not failed).  Each broken pool counts toward degradation; past
        ``pool_failure_limit`` breaks, execution continues serially
        in-process — slower, but immune to pool-level faults.
        """
        if not pending:
            return

        def timeout_of(task: Task) -> Optional[float]:
            return task.timeout_s if task.timeout_s is not None \
                else self.timeout_s

        batches, singles = self._lockstep_groups(pending)
        stats["lockstep_batches"] += len(batches)

        def batch_args(members: List[Tuple[str, Task]]):
            items = [(task.label, task.config, task.workload,
                      attempt[key]) for key, task in members]
            budget = [timeout_of(task) for _key, task in members
                      if timeout_of(task) is not None]
            return items, (max(budget) if budget else None)

        if self.jobs == 1 or self._degraded:
            for members in batches:
                items, budget = batch_args(members)
                outcomes = _run_lockstep_batch(
                    items, self.lockstep_quantum, budget)
                for (key, _task), outcome in zip(members, outcomes):
                    yield key, outcome
            for key, task in singles.items():
                path, interval = self._checkpoint_args(key)
                yield key, _run_task(task.label, task.config,
                                     task.workload, timeout_of(task),
                                     attempt[key], path, interval,
                                     task.resume, self.drain_flag)
            return
        broken = False
        with ProcessPoolExecutor(max_workers=self.jobs,
                                 initializer=_init_pool_worker,
                                 initargs=(self.worker_memory_mb,)) as pool:
            batch_futures = []
            for members in batches:
                items, budget = batch_args(members)
                batch_futures.append((members, pool.submit(
                    _run_lockstep_batch, items,
                    self.lockstep_quantum, budget)))
            futures = {}
            for key, task in singles.items():
                path, interval = self._checkpoint_args(key)
                futures[key] = pool.submit(
                    _run_task, task.label, task.config, task.workload,
                    timeout_of(task), attempt[key], path, interval,
                    task.resume, self.drain_flag)
            for members, future in batch_futures:
                try:
                    outcomes = future.result()
                except BrokenExecutor:
                    broken = True
                    for key, task in members:
                        yield key, (task.label, "interrupted",
                                    "worker process died before the "
                                    "task completed",
                                    {"attempt": attempt[key]})
                    continue
                except Exception as err:  # noqa: BLE001 - isolation
                    for key, task in members:
                        yield key, (task.label, "error",
                                    f"{type(err).__name__}: {err}",
                                    {"attempt": attempt[key]})
                    continue
                for (key, _task), outcome in zip(members, outcomes):
                    yield key, outcome
            for key, future in futures.items():
                task = singles[key]
                try:
                    yield key, future.result()
                except BrokenExecutor:
                    broken = True
                    yield key, (task.label, "interrupted",
                                "worker process died before the task "
                                "completed", {"attempt": attempt[key]})
                except Exception as err:  # noqa: BLE001 - isolation
                    yield key, (task.label, "error",
                                f"{type(err).__name__}: {err}",
                                {"attempt": attempt[key]})
        if broken:
            stats["pool_rebuilds"] += 1
            self._pool_breaks += 1
            if not self._degraded \
                    and self._pool_breaks >= self.pool_failure_limit:
                self._degraded = True
                stats["degraded_serial"] = 1
                _log.warning("executor: process pool broke %d time(s); "
                             "degrading to serial execution",
                             self._pool_breaks)
