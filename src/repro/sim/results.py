"""Result containers for simulation runs."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional

from repro.common.params import SystemConfig


@dataclass
class SimResult:
    """Everything the evaluation harness needs from one run."""

    workload_name: str
    config: SystemConfig
    cycles: int
    instructions: int
    core_stats: Dict[int, Dict[str, float]] = field(default_factory=dict)
    mem_stats: Dict[str, float] = field(default_factory=dict)
    network_stats: Dict[str, float] = field(default_factory=dict)
    pinning_stats: Dict[int, Dict[str, float]] = field(default_factory=dict)
    #: Per-core timing of the trace's probe loads (``MicroOp.probe``):
    #: ``{core_id: [{"index", "line", "dispatch", "complete"}, ...]}``.
    #: ``None`` (a plain default, NOT a factory, so records pickled
    #: before this field existed still unpickle — the class attribute
    #: fills in) for ordinary traces without probes.
    probes: Optional[Dict[int, List[Dict[str, int]]]] = None

    @property
    def cpi(self) -> float:
        return self.cycles / max(self.instructions, 1)

    def normalized_cpi(self, baseline: "SimResult") -> float:
        """Normalized CPI relative to a baseline run of the *same* workload
        (the paper normalizes everything to the Unsafe machine)."""
        if baseline.workload_name != self.workload_name:
            raise ValueError("normalizing against a different workload")
        return self.cycles / baseline.cycles

    def total(self, stat: str) -> float:
        """Sum of a per-core statistic across cores."""
        return sum(stats.get(stat, 0.0) for stats in self.core_stats.values())

    def per_million_insns(self, value: float) -> float:
        return value * 1e6 / max(self.instructions, 1)

    def squash_summary(self) -> Dict[str, float]:
        return {
            "branch": self.total("squashes_branch"),
            "alias": self.total("squashes_alias"),
            "mcv_inval": self.total("squashes_mcv_inval"),
            "mcv_evict": self.total("squashes_mcv_evict"),
        }

    def to_dict(self) -> Dict[str, Any]:
        """JSON-serializable dict (see ``from_dict``); used by the
        persistent experiment cache (``repro.sim.executor``)."""
        doc = {
            "workload_name": self.workload_name,
            "config": self.config.to_dict(),
            "cycles": self.cycles,
            "instructions": self.instructions,
            "core_stats": {str(k): v for k, v in self.core_stats.items()},
            "mem_stats": self.mem_stats,
            "network_stats": self.network_stats,
            "pinning_stats": {str(k): v
                              for k, v in self.pinning_stats.items()},
        }
        if self.probes is not None:
            # emitted only for probing (attack) traces, so every
            # pre-existing stored document keeps its checksum
            doc["probes"] = {str(k): v for k, v in self.probes.items()}
        return doc

    @classmethod
    def from_dict(cls, data: Dict[str, Any]) -> "SimResult":
        """Rebuild a result from ``to_dict`` output (JSON stringifies the
        integer core-id keys; they are converted back here)."""
        return cls(
            workload_name=data["workload_name"],
            config=SystemConfig.from_dict(data["config"]),
            cycles=data["cycles"],
            instructions=data["instructions"],
            core_stats={int(k): v for k, v in data["core_stats"].items()},
            mem_stats=data["mem_stats"],
            network_stats=data["network_stats"],
            pinning_stats={int(k): v
                           for k, v in data["pinning_stats"].items()},
            probes=({int(k): v for k, v in data["probes"].items()}
                    if data.get("probes") is not None else None),
        )

    def describe(self) -> str:
        pin = self.config.pinning.mode.value
        return (f"{self.workload_name}: {self.config.defense.value}"
                f"/{self.config.threat_model.name}/{pin} "
                f"cycles={self.cycles} CPI={self.cpi:.3f}")
