"""The executor/cache performance benchmark (``python -m repro bench``).

Measures, on a small but representative sweep (4 SPEC apps x 4 schemes
by default):

* **parallel speedup** — the same task batch through ``Executor`` at
  ``--jobs 1`` vs ``--jobs N`` (no result cache), asserting the result
  tables are bit-identical;
* **warm-cache reuse** — a second pass against the persistent
  ``ResultStore`` must re-simulate *nothing*;
* **hot-loop throughput** — ``System.run`` (guarded tick, incremental
  deadlock scan) vs ``System.run_reference`` (the original loop),
  asserting equal cycle counts.

The record is written as JSON (``BENCH_executor.json``) and includes
the machine's CPU count: parallel speedup is bounded by physical
parallelism, so a 1-CPU container honestly reports ~1x there while the
hot-loop and warm-reuse numbers remain meaningful.

This module reads the wall clock by design — it measures the simulator,
it is not part of a simulation — hence the ``# repro: allow-wall-clock``
waivers on the timing lines.
"""

from __future__ import annotations

import cProfile
import json
import os
import pstats
import subprocess
import sys
import time
from typing import Callable, Dict, List, Optional, Tuple

from repro.common.params import DefenseKind, SystemConfig, ThreatModel
from repro.common.stats import geomean
from repro.sim.executor import Executor, ResultStore, Task
from repro.sim.runner import ExperimentCache, scheme_grid
from repro.sim.system import System
from repro.workloads import spec17_workload

DEFAULT_APPS = ("leela_r", "bwaves_r", "mcf_r", "namd_r")
DEFAULT_SCHEMES = ("unsafe", "fence-ep", "dom-ep", "stt-ep")

#: Default hot-loop matrix: the schemes the paper actually measures —
#: the three defenses under the comprehensive model, plus Late/Early
#: Pinning, plus the unsafe baseline as the floor.  The defended
#: geomean in the record covers every label except ``unsafe``.
DEFAULT_HOT_SCHEMES = ("unsafe", "fence-comp", "dom-comp", "stt-comp",
                       "fence-lp", "fence-ep")
#: Two pressure profiles: ``mcf_r`` is the load-heavy pointer chaser
#: the paper centers on; ``xz_r`` is branchier with a deeper dependent
#: chain, so the engine's quiet-region batching sees shorter runs.
DEFAULT_HOT_APPS = ("mcf_r", "xz_r")


def scheme_config(label: str, base: Optional[SystemConfig] = None,
                  ) -> SystemConfig:
    """Config for a scheme label: ``unsafe`` or a ``scheme_grid`` cell
    (``fence-ep``, ``dom-comp``, ``stt-spectre``...)."""
    base = base or SystemConfig()
    if label == "unsafe":
        return base.with_defense(DefenseKind.UNSAFE, ThreatModel.MCV)
    grid = scheme_grid()
    if label not in grid:
        known = ", ".join(["unsafe"] + sorted(grid))
        raise ValueError(f"unknown scheme {label!r}; known: {known}")
    defense, threat, pinning = grid[label]
    return base.with_defense(defense, threat, pinning)


def _assert_identical(a: Dict[str, object], b: Dict[str, object],
                      what: str) -> None:
    if sorted(a) != sorted(b):
        raise AssertionError(f"{what}: task sets differ")
    for label in a:
        ra, rb = a[label], b[label]
        if (ra.cycles, ra.core_stats, ra.mem_stats, ra.pinning_stats) \
                != (rb.cycles, rb.core_stats, rb.mem_stats,
                    rb.pinning_stats):
            raise AssertionError(f"{what}: results diverge at {label!r}")


def _time_loop(config: SystemConfig, workload, reference: bool,
               repeats: int) -> float:
    """Best-of-``repeats`` wall time of one run loop (a fresh ``System``
    per repeat; min-of-N rejects scheduler/GC noise)."""
    best = float("inf")
    for _ in range(repeats):
        system = System(config, workload)
        system.mem.warm(workload)
        run = system.run_reference if reference else system.run
        t0 = time.perf_counter()     # repro: allow-wall-clock
        run()
        seconds = time.perf_counter() - t0  # repro: allow-wall-clock
        best = min(best, seconds)
    return best


def _assert_loop_parity(ref: System, opt: System, what: str) -> None:
    """Optimized/reference runs must agree on cycles *and* every
    per-core statistic (pipeline and pinning): the fast-forward is only
    allowed to skip provably dead cycles."""
    if opt.cycles != ref.cycles:
        raise AssertionError(
            f"{what}: optimized loop diverged: "
            f"{opt.cycles} != {ref.cycles}")
    for rc, oc in zip(ref.cores, opt.cores):
        if oc.stats.as_dict() != rc.stats.as_dict():
            raise AssertionError(
                f"{what}: core {oc.core_id} stats diverge")
        if oc.controller.stats.as_dict() != rc.controller.stats.as_dict():
            raise AssertionError(
                f"{what}: core {oc.core_id} pinning stats diverge")


def _hot_loop_phase(config: SystemConfig, workload,
                    repeats: int = 3,
                    what: str = "hot_loop") -> Dict[str, object]:
    """Time the optimized run loop against the reference loop."""
    ref = System(config, workload)
    ref.mem.warm(workload)
    ref_cycles = ref.run_reference()
    opt = System(config, workload)
    opt.mem.warm(workload)
    opt_cycles = opt.run()
    _assert_loop_parity(ref, opt, what)
    # interleave the timed repeats so drift hits both loops equally
    ref_seconds = opt_seconds = float("inf")
    for _ in range(repeats):
        ref_seconds = min(ref_seconds,
                          _time_loop(config, workload, True, 1))
        opt_seconds = min(opt_seconds,
                          _time_loop(config, workload, False, 1))
    return {
        "workload": workload.name,
        "cycles": opt_cycles,
        "reference_cycles": ref_cycles,
        "repeats": repeats,
        "reference_seconds": round(ref_seconds, 4),
        "optimized_seconds": round(opt_seconds, 4),
        "speedup": round(ref_seconds / max(opt_seconds, 1e-9), 3),
        "cycles_per_second": round(opt_cycles / max(opt_seconds, 1e-9)),
    }


def hot_loop_matrix(hot_apps: List[str], hot_schemes: List[str],
                    instructions: int,
                    repeats: int = 3) -> Dict[str, object]:
    """Time ``System.run`` against ``System.run_reference`` for every
    (scheme, app) cell, asserting bit-identical cycle counts and
    per-core stats per cell, and summarize per-scheme + defended-scheme
    geomean speedups.  ``unsafe`` is reported but excluded from the
    defended geomean."""
    workloads = {app: spec17_workload(app, instructions=instructions)
                 for app in hot_apps}
    per_scheme: Dict[str, object] = {}
    defended_speedups: List[float] = []
    for label in hot_schemes:
        config = scheme_config(label)
        cells = {app: _hot_loop_phase(config, workloads[app], repeats,
                                      what=f"hot_loop[{label}:{app}]")
                 for app in hot_apps}
        speedup = round(geomean(cell["speedup"]
                               for cell in cells.values()), 3)
        per_scheme[label] = {"apps": cells, "speedup": speedup}
        if label != "unsafe":
            defended_speedups.append(speedup)
    matrix: Dict[str, object] = {
        "apps": list(hot_apps),
        "schemes": list(hot_schemes),
        "instructions_per_app": instructions,
        "parity": "cycles+core_stats+pinning_stats",
        "per_scheme": per_scheme,
    }
    if defended_speedups:
        matrix["defended_geomean_speedup"] = round(
            geomean(defended_speedups), 3)
    return matrix


def _top_hotspots(profile: cProfile.Profile,
                  limit: int = 20) -> List[Dict[str, object]]:
    """The ``limit`` hottest functions by cumulative time, JSON-ready."""
    stats = pstats.Stats(profile)
    rows: List[Tuple[float, Dict[str, object]]] = []
    for (path, line, func), (cc, nc, tt, ct, _callers) in \
            stats.stats.items():    # type: ignore[attr-defined]
        rows.append((ct, {
            "function": f"{os.path.basename(path)}:{line}:{func}",
            "calls": nc,
            "tottime": round(tt, 4),
            "cumtime": round(ct, 4),
        }))
    rows.sort(key=lambda row: (-row[0], row[1]["function"]))
    return [row[1] for row in rows[:limit]]


def _run_phase(name: str, fn: Callable[[], object],
               profiles: Optional[Dict[str, object]]) -> object:
    """Run one bench phase, under cProfile when ``profiles`` is given
    (``--profile``); the top-20 cumulative hotspots land in the record
    so future perf work starts from measurements, not guesses."""
    if profiles is None:
        return fn()
    profile = cProfile.Profile()
    profile.enable()
    try:
        result = fn()
    finally:
        profile.disable()
    profiles[name] = _top_hotspots(profile)
    return result


#: Timed in a subprocess against each source tree by ``--baseline-src``;
#: kept as data so both trees run byte-identical measurement code.  The
#: probe imports only API that both trees share (``scheme_config`` has
#: been stable since the scheme grid landed), so one string measures
#: any (scheme, app) cell under either checkout.
_BASELINE_PROBE = """
import json, sys, time
from repro.sim.bench import scheme_config
from repro.sim.system import System
from repro.workloads import spec17_workload

apps = sys.argv[1].split(",")
instructions = int(sys.argv[2])
schemes = sys.argv[3].split(",")
results = {}
for app in apps:
    wl = spec17_workload(app, instructions=instructions)
    for label in schemes:
        config = scheme_config(label)
        best, cycles = float("inf"), None
        for _ in range(3):
            system = System(config, wl)
            system.mem.warm(wl)
            t0 = time.perf_counter()
            cycles = system.run()
            best = min(best, time.perf_counter() - t0)
        results[label + ":" + app] = {"seconds": round(best, 4),
                                      "cycles": cycles}
print(json.dumps(results))
"""


def _probe_tree(src: str, apps: List[str], instructions: int,
                schemes: List[str]) -> Dict[str, Dict[str, object]]:
    # constructing a *subprocess* environment, not reading config: the
    # probe pins PYTHONPATH/PYTHONHASHSEED, inheriting the rest verbatim
    env = dict(os.environ,  # repro: allow-env-read
               PYTHONPATH=src, PYTHONHASHSEED="0")
    proc = subprocess.run(
        [sys.executable, "-c", _BASELINE_PROBE, ",".join(apps),
         str(instructions), ",".join(schemes)],
        capture_output=True, text=True, env=env)
    if proc.returncode:
        raise RuntimeError(
            f"baseline probe failed under {src}: {proc.stderr[-1000:]}")
    return json.loads(proc.stdout)


#: Mid-run snapshot/restore probe, cross-tree safe like
#: ``_BASELINE_PROBE`` (``snapshot_system``/``restore_system`` have
#: been stable API since checkpoints landed), so the same measurement
#: code prices format v4 under this tree and v3 under a pre-column
#: checkout.
_CHECKPOINT_PROBE = """
import json, sys, time
from repro.sim.bench import scheme_config
from repro.sim.checkpoint import (CHECKPOINT_FORMAT_VERSION,
                                  restore_system, snapshot_system)
from repro.sim.system import System
from repro.workloads import spec17_workload

app = sys.argv[1]
instructions = int(sys.argv[2])
schemes = sys.argv[3].split(",")
repeats = int(sys.argv[4])
wl = spec17_workload(app, instructions=instructions)
out = {"format": CHECKPOINT_FORMAT_VERSION, "per_scheme": {}}
for label in schemes:
    config = scheme_config(label)
    full = System(config, wl)
    full.mem.warm(wl)
    total = full.run()
    paused = System(config, wl)
    paused.mem.warm(wl)
    paused.run(stop_cycle=max(1, total // 2))
    snap_best = restore_best = float("inf")
    blob = b""
    for _ in range(repeats):
        t0 = time.perf_counter()
        blob = snapshot_system(paused)
        t1 = time.perf_counter()
        restore_system(blob)
        t2 = time.perf_counter()
        snap_best = min(snap_best, t1 - t0)
        restore_best = min(restore_best, t2 - t1)
    out["per_scheme"][label] = {
        "bytes": len(blob),
        "snapshot_ms": round(snap_best * 1e3, 3),
        "restore_ms": round(restore_best * 1e3, 3),
        "cycle": paused.cycles,
        "total_cycles": total,
    }
print(json.dumps(out))
"""


def _probe_checkpoint_tree(src: str, app: str, instructions: int,
                           schemes: List[str],
                           repeats: int) -> Dict[str, object]:
    env = dict(os.environ,  # repro: allow-env-read
               PYTHONPATH=src, PYTHONHASHSEED="0")
    proc = subprocess.run(
        [sys.executable, "-c", _CHECKPOINT_PROBE, app, str(instructions),
         ",".join(schemes), str(repeats)],
        capture_output=True, text=True, env=env)
    if proc.returncode:
        raise RuntimeError(
            f"checkpoint probe failed under {src}: {proc.stderr[-1000:]}")
    return json.loads(proc.stdout)


#: Checkpoint-phase scheme sample: the unprotected floor plus one cell
#: per defense family — enough to price the format without running the
#: full grid through the snapshot path.
DEFAULT_CHECKPOINT_SCHEMES = ("unsafe", "fence-comp", "dom-ep", "stt-lp")


def checkpoint_phase(schemes: Optional[List[str]] = None,
                     instructions: int = 4000, app: str = "mcf_r",
                     repeats: int = 5,
                     baseline_src: Optional[str] = None,
                     ) -> Dict[str, object]:
    """Mid-run snapshot size and snapshot/restore wall time per scheme
    (best of ``repeats``), for the bench record's ``checkpoint``
    section.  With ``baseline_src`` pointing at a pre-column checkout,
    the same probe prices that tree's format (v3) beside this one, so
    the record shows the columns' serialization win, not just its
    absolute cost."""
    schemes = list(schemes) if schemes else list(DEFAULT_CHECKPOINT_SCHEMES)
    here = os.path.dirname(os.path.dirname(os.path.dirname(
        os.path.abspath(__file__))))
    section: Dict[str, object] = {
        "app": app,
        "instructions": instructions,
        "repeats": repeats,
    }
    section.update(_probe_checkpoint_tree(here, app, instructions,
                                          schemes, repeats))
    if baseline_src is not None:
        baseline = _probe_checkpoint_tree(baseline_src, app, instructions,
                                          schemes, repeats)
        baseline["src"] = baseline_src
        section["baseline"] = baseline
    return section


def baseline_comparison(baseline_src: str, apps: List[str],
                        instructions: int,
                        schemes: Optional[List[str]] = None,
                        ) -> Dict[str, object]:
    """Time ``System.run`` under another source tree (e.g. the pre-PR
    seed checkout) against this tree, on identical workloads, in
    separate fixed-hash-seed subprocesses.  Asserts cycle counts agree
    per (scheme, app) cell — the optimization must not change simulated
    behaviour across versions either.  Defaults to the unsafe baseline
    scheme; pass defended labels to measure the specialized loops."""
    schemes = list(schemes) if schemes else ["unsafe"]
    here = os.path.dirname(os.path.dirname(os.path.dirname(
        os.path.abspath(__file__))))
    baseline = _probe_tree(baseline_src, apps, instructions, schemes)
    current = _probe_tree(here, apps, instructions, schemes)
    cells: Dict[str, object] = {}
    per_scheme: Dict[str, float] = {}
    defended: List[float] = []
    for label in schemes:
        speedups: List[float] = []
        for app in apps:
            key = f"{label}:{app}"
            base, cur = baseline[key], current[key]
            if base["cycles"] != cur["cycles"]:
                raise AssertionError(
                    f"{key}: cycle count changed vs baseline "
                    f"({base['cycles']} != {cur['cycles']})")
            speedup = round(base["seconds"]
                            / max(cur["seconds"], 1e-9), 3)
            cells[key] = {
                "baseline_seconds": base["seconds"],
                "optimized_seconds": cur["seconds"],
                "cycles": cur["cycles"],
                "speedup": speedup,
            }
            speedups.append(speedup)
        per_scheme[label] = round(geomean(speedups), 3)
        if label != "unsafe":
            defended.append(per_scheme[label])
    comparison: Dict[str, object] = {
        "baseline_src": baseline_src,
        "instructions_per_app": instructions,
        "schemes": list(schemes),
        "cells": cells,
        "per_scheme": per_scheme,
        "geomean_speedup": round(
            geomean(cell["speedup"] for cell in cells.values()), 3),
    }
    if defended:
        comparison["defended_geomean_speedup"] = round(
            geomean(defended), 3)
    return comparison


def run_bench(apps: List[str], schemes: List[str], instructions: int,
              jobs: int, cache_dir: str,
              timeout_s: Optional[float] = None,
              run_serial: bool = True,
              baseline_src: Optional[str] = None,
              hot_apps: Optional[List[str]] = None,
              hot_schemes: Optional[List[str]] = None,
              profile: bool = False) -> Dict[str, object]:
    """Run every benchmark phase; returns the JSON-ready record.

    ``hot_apps``/``hot_schemes`` select the hot-loop matrix (defaults:
    ``DEFAULT_HOT_APPS`` x ``DEFAULT_HOT_SCHEMES``) — the workload and
    scheme sets are recorded in the output so the speedup numbers are
    self-describing.  ``profile`` wraps each phase in ``cProfile`` and
    stores the top-20 cumulative hotspots under ``record["profile"]``.
    """
    hot_apps = list(hot_apps if hot_apps is not None else DEFAULT_HOT_APPS)
    hot_schemes = list(hot_schemes if hot_schemes is not None
                       else DEFAULT_HOT_SCHEMES)
    workloads = {app: spec17_workload(app, instructions=instructions)
                 for app in apps}
    configs = {label: scheme_config(label) for label in schemes}
    tasks = [Task(f"{app}:{label}", config, workload)
             for app, workload in workloads.items()
             for label, config in configs.items()]
    record: Dict[str, object] = {
        "bench": "executor",
        "cpus": os.cpu_count(),
        "jobs": jobs,
        "apps": list(apps),
        "schemes": list(schemes),
        "instructions_per_app": instructions,
        "tasks": len(tasks),
    }
    profiles: Optional[Dict[str, object]] = {} if profile else None

    serial_results = None
    if run_serial:
        t0 = time.perf_counter()     # repro: allow-wall-clock
        serial = _run_phase(
            "serial",
            lambda: Executor(jobs=1, timeout_s=timeout_s).run_tasks(
                tasks, cache=ExperimentCache()),
            profiles)
        seconds = time.perf_counter() - t0     # repro: allow-wall-clock
        if serial.failures:
            raise RuntimeError(f"serial phase failed: {serial.failures}")
        serial_results = serial.results
        record["serial"] = {"seconds": round(seconds, 3),
                            "simulated": serial.stats["simulated"]}

    store = ResultStore(cache_dir)
    cold_cache = ExperimentCache(store=store)
    t0 = time.perf_counter()     # repro: allow-wall-clock
    cold = _run_phase(
        "parallel_cold",
        lambda: Executor(jobs=jobs, timeout_s=timeout_s).run_tasks(
            tasks, cache=cold_cache),
        profiles)
    seconds = time.perf_counter() - t0     # repro: allow-wall-clock
    if cold.failures:
        raise RuntimeError(f"parallel phase failed: {cold.failures}")
    record["parallel_cold"] = {"seconds": round(seconds, 3),
                               "simulated": cold.stats["simulated"],
                               "cache_hits": cold.stats["cache_hits"]}
    if serial_results is not None:
        _assert_identical(serial_results, cold.results,
                          "serial vs parallel")
        record["parallel_speedup"] = round(
            record["serial"]["seconds"]
            / max(record["parallel_cold"]["seconds"], 1e-9), 3)
        record["results_match"] = True

    warm_cache = ExperimentCache(store=store)   # fresh memo, same disk
    t0 = time.perf_counter()     # repro: allow-wall-clock
    warm = _run_phase(
        "warm",
        lambda: Executor(jobs=jobs, timeout_s=timeout_s).run_tasks(
            tasks, cache=warm_cache),
        profiles)
    seconds = time.perf_counter() - t0     # repro: allow-wall-clock
    if warm.failures:
        raise RuntimeError(f"warm phase failed: {warm.failures}")
    record["warm"] = {"seconds": round(seconds, 3),
                      "simulated": warm.stats["simulated"],
                      "cache_hits": warm.stats["cache_hits"],
                      "store_hits": warm_cache.store_hits}
    _assert_identical(cold.results, warm.results, "cold vs warm")

    record["hot_loop"] = _run_phase(
        "hot_loop",
        lambda: hot_loop_matrix(hot_apps, hot_schemes, instructions),
        profiles)
    if baseline_src is not None:
        record["hot_loop_vs_baseline"] = baseline_comparison(
            baseline_src, list(apps), instructions)
    if profiles is not None:
        record["profile"] = profiles
    return record


def run_hotloop_bench(hot_apps: List[str], hot_schemes: List[str],
                      instructions: int, repeats: int = 3,
                      baseline_src: Optional[str] = None,
                      ) -> Dict[str, object]:
    """The hot-loop-only record (``repro bench --hot-only``, committed
    as ``BENCH_hotloop.json``): the specialized-engine vs reference
    matrix, plus — when ``baseline_src`` points at another checkout —
    the same scheme set timed cross-tree.  No executor phases, so the
    record isolates single-process engine throughput; ``cpus`` is
    still recorded because wall-clock numbers are machine-bound."""
    record: Dict[str, object] = {
        "bench": "hotloop",
        "cpus": os.cpu_count(),
        "hot_loop": hot_loop_matrix(hot_apps, hot_schemes, instructions,
                                    repeats=repeats),
    }
    record["checkpoint"] = checkpoint_phase(
        [s for s in DEFAULT_CHECKPOINT_SCHEMES if s in hot_schemes]
        or list(DEFAULT_CHECKPOINT_SCHEMES),
        instructions=instructions, baseline_src=baseline_src)
    if baseline_src is not None:
        record["hot_loop_vs_baseline"] = baseline_comparison(
            baseline_src, list(hot_apps), instructions,
            schemes=list(hot_schemes))
    return record


def run_fabric_sweep(urls: List[str], apps: List[str],
                     schemes: List[str], instructions: int = 2000,
                     threads: int = 1, timeout_s: float = 600.0,
                     jitter_seed: int = 0,
                     tenant: str = "default") -> Dict[str, object]:
    """Run an apps x schemes sweep through a federated shard ring.

    The fabric-side sweep entry point (used by the CI ``fabric-smoke``
    job): builds the ``JobSpec`` grid, routes it through a
    ``FederatedClient`` (consistent-hash primaries, replica failover,
    idempotent resubmission), and returns a record with per-cell cycle
    counts plus ring/failover statistics.  Cycle counts are
    bit-identical to a local ``Executor`` sweep of the same grid —
    federation changes *where* cells run, never what they compute.
    """
    from repro.service import PRIORITY_BULK, JobSpec
    from repro.service.fabric import FederatedClient

    specs = [JobSpec(workload=app, scheme=scheme,
                     instructions=instructions, threads=threads,
                     priority=PRIORITY_BULK, tenant=tenant)
             for app in apps for scheme in schemes]
    fabric = FederatedClient(urls, jitter_seed=jitter_seed)
    results = fabric.run_all(specs, timeout_s=timeout_s)
    cells = {f"{spec.workload}/{spec.scheme}":
             {"job": spec.job_id(),
              "cycles": results[spec.job_id()].cycles}
             for spec in specs}
    return {
        "bench": "fabric-sweep",
        "cells": cells,
        "fabric": fabric.stats(),
    }


def compare_records(old: Dict[str, object], new: Dict[str, object],
                    min_ratio: float = 0.9) -> Dict[str, object]:
    """Diff two bench records' hot-loop matrices (``repro bench
    --compare OLD NEW``).

    Wall-clock seconds are machine-bound, so the comparison uses the
    machine-independent quantity both records carry: each scheme's
    engine-vs-reference speedup (a ratio of two runs on the *same*
    machine).  A scheme regresses when ``new/old`` falls below
    ``min_ratio``; schemes present in only one record are listed but
    never counted as regressions.  Records with *no* scheme or app in
    common cannot be compared at all — that is a usage error
    (mismatched ``--hot-schemes``/``--hot-apps`` sweeps), not a clean
    bill of health, so it raises instead of reporting zero
    regressions."""
    old_schemes = old.get("hot_loop", {}).get("per_scheme", {})
    new_schemes = new.get("hot_loop", {}).get("per_scheme", {})
    if not old_schemes or not new_schemes:
        raise ValueError(
            "both records need a hot_loop.per_scheme section "
            "(produced by `repro bench` / `repro bench --hot-only`)")
    if not set(old_schemes) & set(new_schemes):
        raise ValueError(
            "records share no hot-loop scheme: old measures "
            f"[{', '.join(sorted(old_schemes))}], new measures "
            f"[{', '.join(sorted(new_schemes))}]; re-run both sweeps "
            "with the same --hot-schemes list")
    old_apps = list(old.get("hot_loop", {}).get("apps") or ())
    new_apps = set(new.get("hot_loop", {}).get("apps") or ())
    if old_apps and new_apps and not set(old_apps) & new_apps:
        raise ValueError(
            "records share no hot-loop app: old measures "
            f"[{', '.join(sorted(old_apps))}], new measures "
            f"[{', '.join(sorted(new_apps))}]; per-scheme speedups "
            "averaged over disjoint apps are not comparable — re-run "
            "both sweeps with the same --hot-apps list")
    # When the app sets differ but overlap, a recorded per-scheme
    # speedup is a geomean over *different* app mixes — comparing them
    # raw manufactures phantom regressions (or hides real ones).  The
    # per-scheme comparison therefore restricts to the shared apps,
    # recomputed from the per-app cells, mirroring how schemes present
    # in only one record are excluded from the regression check.
    shared_apps = [a for a in old_apps if a in new_apps]
    restrict_apps = bool(shared_apps) and set(old_apps) != new_apps

    def cell_speedup(entry: Dict[str, object]) -> float:
        cells = entry.get("apps") if restrict_apps else None
        if cells and all(a in cells for a in shared_apps):
            return round(geomean(cells[a]["speedup"]
                                 for a in shared_apps), 3)
        return entry["speedup"]

    rows: Dict[str, object] = {}
    regressions: List[str] = []
    for label in sorted(set(old_schemes) | set(new_schemes)):
        old_entry = old_schemes.get(label)
        new_entry = new_schemes.get(label)
        if old_entry is None or new_entry is None:
            rows[label] = {
                "old_speedup": old_entry and cell_speedup(old_entry),
                "new_speedup": new_entry and cell_speedup(new_entry),
                "ratio": None,
                "status": "only-old" if new_entry is None else "only-new",
            }
            continue
        old_speedup = cell_speedup(old_entry)
        new_speedup = cell_speedup(new_entry)
        ratio = round(new_speedup / max(old_speedup, 1e-9), 3)
        regressed = ratio < min_ratio
        rows[label] = {
            "old_speedup": old_speedup,
            "new_speedup": new_speedup,
            "ratio": ratio,
            "status": "regressed" if regressed else "ok",
        }
        if regressed:
            regressions.append(label)
    comparison: Dict[str, object] = {
        "min_ratio": min_ratio,
        "schemes": rows,
        "regressions": regressions,
    }
    if restrict_apps:
        comparison["apps"] = {
            "old": sorted(old_apps), "new": sorted(new_apps),
            "compared": shared_apps,
        }
        # the recorded defended geomeans cover different app mixes too:
        # recompute both over the shared (defended, app) cells
        defended = [label for label, row in rows.items()
                    if label != "unsafe" and row["ratio"] is not None]
        if defended:
            old_geo = round(geomean(rows[label]["old_speedup"]
                                    for label in defended), 3)
            new_geo = round(geomean(rows[label]["new_speedup"]
                                    for label in defended), 3)
            comparison["defended_geomean"] = {
                "old": old_geo, "new": new_geo,
                "ratio": round(new_geo / max(old_geo, 1e-9), 3),
                "apps": shared_apps,
            }
        return comparison
    old_geo = old.get("hot_loop", {}).get("defended_geomean_speedup")
    new_geo = new.get("hot_loop", {}).get("defended_geomean_speedup")
    if old_geo and new_geo:
        comparison["defended_geomean"] = {
            "old": old_geo, "new": new_geo,
            "ratio": round(new_geo / max(old_geo, 1e-9), 3),
        }
    return comparison


def write_record(record: Dict[str, object], out: str) -> None:
    directory = os.path.dirname(os.path.abspath(out))
    os.makedirs(directory, exist_ok=True)
    with open(out, "w", encoding="utf-8") as fh:
        json.dump(record, fh, indent=2, sort_keys=True)
        fh.write("\n")
