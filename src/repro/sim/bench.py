"""The executor/cache performance benchmark (``python -m repro bench``).

Measures, on a small but representative sweep (4 SPEC apps x 4 schemes
by default):

* **parallel speedup** — the same task batch through ``Executor`` at
  ``--jobs 1`` vs ``--jobs N`` (no result cache), asserting the result
  tables are bit-identical;
* **warm-cache reuse** — a second pass against the persistent
  ``ResultStore`` must re-simulate *nothing*;
* **hot-loop throughput** — ``System.run`` (guarded tick, incremental
  deadlock scan) vs ``System.run_reference`` (the original loop),
  asserting equal cycle counts.

The record is written as JSON (``BENCH_executor.json``) and includes
the machine's CPU count: parallel speedup is bounded by physical
parallelism, so a 1-CPU container honestly reports ~1x there while the
hot-loop and warm-reuse numbers remain meaningful.

This module reads the wall clock by design — it measures the simulator,
it is not part of a simulation — hence the ``# repro: allow-wall-clock``
waivers on the timing lines.
"""

from __future__ import annotations

import json
import os
import subprocess
import sys
import time
from typing import Dict, List, Optional

from repro.common.params import DefenseKind, SystemConfig, ThreatModel
from repro.sim.executor import Executor, ResultStore, Task
from repro.sim.runner import ExperimentCache, scheme_grid
from repro.sim.system import System
from repro.workloads import spec17_workload

DEFAULT_APPS = ("leela_r", "bwaves_r", "mcf_r", "namd_r")
DEFAULT_SCHEMES = ("unsafe", "fence-ep", "dom-ep", "stt-ep")


def scheme_config(label: str, base: Optional[SystemConfig] = None,
                  ) -> SystemConfig:
    """Config for a scheme label: ``unsafe`` or a ``scheme_grid`` cell
    (``fence-ep``, ``dom-comp``, ``stt-spectre``...)."""
    base = base or SystemConfig()
    if label == "unsafe":
        return base.with_defense(DefenseKind.UNSAFE, ThreatModel.MCV)
    grid = scheme_grid()
    if label not in grid:
        known = ", ".join(["unsafe"] + sorted(grid))
        raise ValueError(f"unknown scheme {label!r}; known: {known}")
    defense, threat, pinning = grid[label]
    return base.with_defense(defense, threat, pinning)


def _assert_identical(a: Dict[str, object], b: Dict[str, object],
                      what: str) -> None:
    if sorted(a) != sorted(b):
        raise AssertionError(f"{what}: task sets differ")
    for label in a:
        ra, rb = a[label], b[label]
        if (ra.cycles, ra.core_stats, ra.mem_stats, ra.pinning_stats) \
                != (rb.cycles, rb.core_stats, rb.mem_stats,
                    rb.pinning_stats):
            raise AssertionError(f"{what}: results diverge at {label!r}")


def _time_loop(config: SystemConfig, workload, reference: bool,
               repeats: int) -> float:
    """Best-of-``repeats`` wall time of one run loop (a fresh ``System``
    per repeat; min-of-N rejects scheduler/GC noise)."""
    best = float("inf")
    for _ in range(repeats):
        system = System(config, workload)
        system.mem.warm(workload)
        run = system.run_reference if reference else system.run
        t0 = time.perf_counter()     # repro: allow-wall-clock
        run()
        seconds = time.perf_counter() - t0  # repro: allow-wall-clock
        best = min(best, seconds)
    return best


def _hot_loop_phase(config: SystemConfig, workload,
                    repeats: int = 3) -> Dict[str, object]:
    """Time the optimized run loop against the reference loop."""
    ref = System(config, workload)
    ref.mem.warm(workload)
    ref_cycles = ref.run_reference()
    opt = System(config, workload)
    opt.mem.warm(workload)
    opt_cycles = opt.run()
    if opt_cycles != ref_cycles:
        raise AssertionError(
            f"optimized loop diverged: {opt_cycles} != {ref_cycles}")
    # interleave the timed repeats so drift hits both loops equally
    ref_seconds = opt_seconds = float("inf")
    for _ in range(repeats):
        ref_seconds = min(ref_seconds,
                          _time_loop(config, workload, True, 1))
        opt_seconds = min(opt_seconds,
                          _time_loop(config, workload, False, 1))
    return {
        "workload": workload.name,
        "cycles": opt_cycles,
        "repeats": repeats,
        "reference_seconds": round(ref_seconds, 4),
        "optimized_seconds": round(opt_seconds, 4),
        "speedup": round(ref_seconds / max(opt_seconds, 1e-9), 3),
        "cycles_per_second": round(opt_cycles / max(opt_seconds, 1e-9)),
    }


#: Timed in a subprocess against each source tree by ``--baseline-src``;
#: kept as data so both trees run byte-identical measurement code.
_BASELINE_PROBE = """
import json, sys, time
from repro.common.params import SystemConfig
from repro.sim.system import System
from repro.workloads import spec17_workload

apps = sys.argv[1].split(",")
instructions = int(sys.argv[2])
results = {}
for app in apps:
    wl = spec17_workload(app, instructions=instructions)
    best, cycles = float("inf"), None
    for _ in range(3):
        system = System(SystemConfig(), wl)
        system.mem.warm(wl)
        t0 = time.perf_counter()
        cycles = system.run()
        best = min(best, time.perf_counter() - t0)
    results[app] = {"seconds": round(best, 4), "cycles": cycles}
print(json.dumps(results))
"""


def _probe_tree(src: str, apps: List[str],
                instructions: int) -> Dict[str, Dict[str, object]]:
    env = dict(os.environ, PYTHONPATH=src, PYTHONHASHSEED="0")
    proc = subprocess.run(
        [sys.executable, "-c", _BASELINE_PROBE, ",".join(apps),
         str(instructions)],
        capture_output=True, text=True, env=env)
    if proc.returncode:
        raise RuntimeError(
            f"baseline probe failed under {src}: {proc.stderr[-1000:]}")
    return json.loads(proc.stdout)


def baseline_comparison(baseline_src: str, apps: List[str],
                        instructions: int) -> Dict[str, object]:
    """Time ``System.run`` under another source tree (e.g. the pre-PR
    seed checkout) against this tree, on identical workloads, in
    separate fixed-hash-seed subprocesses.  Asserts cycle counts agree
    — the optimization must not change simulated behaviour across
    versions either."""
    here = os.path.dirname(os.path.dirname(os.path.dirname(
        os.path.abspath(__file__))))
    baseline = _probe_tree(baseline_src, apps, instructions)
    current = _probe_tree(here, apps, instructions)
    per_app: Dict[str, object] = {}
    for app in apps:
        base, cur = baseline[app], current[app]
        if base["cycles"] != cur["cycles"]:
            raise AssertionError(
                f"{app}: cycle count changed vs baseline "
                f"({base['cycles']} != {cur['cycles']})")
        per_app[app] = {
            "baseline_seconds": base["seconds"],
            "optimized_seconds": cur["seconds"],
            "cycles": cur["cycles"],
            "speedup": round(base["seconds"]
                             / max(cur["seconds"], 1e-9), 3),
        }
    speedups = [per_app[app]["speedup"] for app in apps]
    product = 1.0
    for s in speedups:
        product *= s
    return {
        "baseline_src": baseline_src,
        "instructions_per_app": instructions,
        "apps": per_app,
        "geomean_speedup": round(product ** (1.0 / len(speedups)), 3),
    }


def run_bench(apps: List[str], schemes: List[str], instructions: int,
              jobs: int, cache_dir: str,
              timeout_s: Optional[float] = None,
              run_serial: bool = True,
              baseline_src: Optional[str] = None) -> Dict[str, object]:
    """Run every benchmark phase; returns the JSON-ready record."""
    workloads = {app: spec17_workload(app, instructions=instructions)
                 for app in apps}
    configs = {label: scheme_config(label) for label in schemes}
    tasks = [Task(f"{app}:{label}", config, workload)
             for app, workload in workloads.items()
             for label, config in configs.items()]
    record: Dict[str, object] = {
        "bench": "executor",
        "cpus": os.cpu_count(),
        "jobs": jobs,
        "apps": list(apps),
        "schemes": list(schemes),
        "instructions_per_app": instructions,
        "tasks": len(tasks),
    }

    serial_results = None
    if run_serial:
        t0 = time.perf_counter()     # repro: allow-wall-clock
        serial = Executor(jobs=1, timeout_s=timeout_s).run_tasks(
            tasks, cache=ExperimentCache())
        seconds = time.perf_counter() - t0     # repro: allow-wall-clock
        if serial.failures:
            raise RuntimeError(f"serial phase failed: {serial.failures}")
        serial_results = serial.results
        record["serial"] = {"seconds": round(seconds, 3),
                            "simulated": serial.stats["simulated"]}

    store = ResultStore(cache_dir)
    cold_cache = ExperimentCache(store=store)
    t0 = time.perf_counter()     # repro: allow-wall-clock
    cold = Executor(jobs=jobs, timeout_s=timeout_s).run_tasks(
        tasks, cache=cold_cache)
    seconds = time.perf_counter() - t0     # repro: allow-wall-clock
    if cold.failures:
        raise RuntimeError(f"parallel phase failed: {cold.failures}")
    record["parallel_cold"] = {"seconds": round(seconds, 3),
                               "simulated": cold.stats["simulated"],
                               "cache_hits": cold.stats["cache_hits"]}
    if serial_results is not None:
        _assert_identical(serial_results, cold.results,
                          "serial vs parallel")
        record["parallel_speedup"] = round(
            record["serial"]["seconds"]
            / max(record["parallel_cold"]["seconds"], 1e-9), 3)
        record["results_match"] = True

    warm_cache = ExperimentCache(store=store)   # fresh memo, same disk
    t0 = time.perf_counter()     # repro: allow-wall-clock
    warm = Executor(jobs=jobs, timeout_s=timeout_s).run_tasks(
        tasks, cache=warm_cache)
    seconds = time.perf_counter() - t0     # repro: allow-wall-clock
    if warm.failures:
        raise RuntimeError(f"warm phase failed: {warm.failures}")
    record["warm"] = {"seconds": round(seconds, 3),
                      "simulated": warm.stats["simulated"],
                      "cache_hits": warm.stats["cache_hits"],
                      "store_hits": warm_cache.store_hits}
    _assert_identical(cold.results, warm.results, "cold vs warm")

    # the memory-bound app is where idle-cycle skipping matters; fall
    # back to the first app if the default pick isn't in the batch
    hot_app = "mcf_r" if "mcf_r" in workloads else apps[0]
    record["hot_loop"] = _hot_loop_phase(configs[schemes[0]],
                                         workloads[hot_app])
    if baseline_src is not None:
        record["hot_loop_vs_baseline"] = baseline_comparison(
            baseline_src, list(apps), instructions)
    return record


def write_record(record: Dict[str, object], out: str) -> None:
    directory = os.path.dirname(os.path.abspath(out))
    os.makedirs(directory, exist_ok=True)
    with open(out, "w", encoding="utf-8") as fh:
        json.dump(record, fh, indent=2, sort_keys=True)
        fh.write("\n")
