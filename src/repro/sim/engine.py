"""Per-scheme specialized run loops over struct-of-arrays core state.

``System.run`` delegates here when the configured defense belongs to one
of the specialized families (unsafe / fence / DOM / STT — the 13-scheme
paper grid) and no sanitizer is attached.  ``build_engine`` compiles each
core's trace once (``repro.isa.compiled``) and closes a dedicated
``tick``/``quiet_until`` pair over the core's hot state:

* every scheme flag, threat-model level, latency, and capacity that the
  generic ``Core.tick`` re-reads through attribute/property chains each
  cycle is bound once as a closure constant, so the inner loop carries
  no per-cycle scheme dispatch;
* the mutable core state the closures chase is struct-of-arrays too
  (``repro.core.rob.ColumnState``): status/deps/VP state are ``array``
  columns indexed by ``index & mask``, the ROB window and the LQ/SQ are
  rings with O(1) head/tail arithmetic, and the ready/waiting work-lists
  are plain index lists — native int sorts, flags-read skip tests, and
  no entry-object dereference until a uop actually issues;
* the per-uop object probes on the dispatch and quiet paths
  (``uop.is_load`` property calls, ``OpClass`` identity ladders) become
  single byte-array reads indexed by the cursor the core already keeps;
* store-to-load forwarding scans the SQ ring *backward* from the tail,
  so the youngest matching store is the first hit, and the VP frontier
  is a candidate-flag column scan over the LQ ring gated by a counter;
* the pre-VP issue-mode test is inlined per defense family: fence
  (post-VP only), DOM (post-VP or L1 hit), STT (post-VP or untainted
  address), unsafe (always), instead of two virtual calls per load per
  scan — with the STT root-liveness probe reduced to window-bounds
  integer compares against the VP column.

Behaviour is bit-exact against ``Core.tick`` / ``System.run_ticked`` and
against the seed ``run_reference`` oracle: same event schedule (the tie
break is the queue's insertion sequence, so the engine issues exactly
the calls the generic path would), same statistics, same retire
signatures.  Parity is asserted per grid cell by ``repro bench`` and by
``tests/test_soa_parity.py``, chaos on and off.

Two refinements beyond the generic tick:

* the stalled-scan skip: when every waiting load was stalled by its
  scheme (``_waiting_stalled``) and nothing re-armed the core's
  ``_wake_pending`` flag, the scan is provably a no-op (the
  ``Core.quiet_until`` fixpoint contract — issue modes only flip via
  flagged mutations or events) and is skipped even while other stages
  stay busy;
* batched quiet-region stepping in the multi-core loop: each core
  caches its last ``quiet_until`` bound, and a core whose bound still
  covers this cycle is skipped entirely when no event fired and nothing
  re-armed its wake flag — sound because every cross-core mutation
  either arrives through the event queue (caught by the fired test) or
  re-arms the flag synchronously (coherence hooks, CPT traffic, and
  barrier releases via ``BarrierManager``).  Because all per-slot
  timing state is stored as absolute cycles in the columns, skipped
  regions need no per-slot catch-up: the clock advances in one
  arithmetic step and every column value stays valid.  This composes
  with the existing all-quiet jump (and with ``Executor`` lockstep
  batching above it).

The engine holds no simulated state of its own: everything lives in the
ordinary object model, so checkpoints, diagnostics, and the reference
loops see one world.  Engines are rebuilt lazily after a checkpoint
restore (``System.__getstate__`` drops them).
"""

from __future__ import annotations

import gc
from functools import partial
from heapq import heappop, heappush
from typing import Callable, List, Optional, Tuple

from repro.common.errors import DeadlockError
from repro.common.params import DefenseKind, PinningMode, ThreatModel
from repro.core.pipeline import L1_PORTS, QUIET_FOREVER, Core
from repro.core.rob import (FLAG_ADDR_READY, FLAG_COMPLETE, FLAG_FORWARDED,
                            FLAG_INVISIBLE, FLAG_ISSUED, FLAG_MCV_SAFE,
                            FLAG_OUTSTANDING, FLAG_PARKED, FLAG_PERFORMED,
                            FLAG_VP_CAND, ROBEntry)
from repro.isa.compiled import (OP_ATOMIC, OP_BARRIER, OP_BRANCH, OP_FENCE,
                                OP_LOAD, OP_STORE, CompiledTrace,
                                compile_trace)

#: Defense families with a specialized inner loop.  Anything else (e.g.
#: invisible speculation, which is outside the paper's 13-scheme grid)
#: falls back to the generic guarded tick loop.
SPECIALIZED_DEFENSES = frozenset({
    DefenseKind.UNSAFE, DefenseKind.FENCE, DefenseKind.DOM, DefenseKind.STT,
})

#: Sentinel for "no live value" when a LazyMinSet min is hoisted into a
#: plain integer compare (safely above any uop index).
_NO_MIN = 1 << 62

# Several closures below push heap entries directly instead of calling
# ``EventQueue.schedule_after``.  The entry layout ``(when, seq,
# callback, args)`` and the plain-int ``_seq`` post-increment replicate
# ``EventQueue.schedule`` exactly (same tie-break order, same pickled
# shape); the not-in-the-past guard is dropped because every inlined
# site schedules at ``now + latency`` with a non-negative latency.  The
# callbacks stay bound core methods / partials — never engine closures —
# so a mid-run checkpoint still pickles the heap.


def _make_issue_ready(core: Core, compiled: CompiledTrace) -> Callable[[], None]:
    """Specialized ready-uop issue: the ``_begin_execution`` opclass
    ladder collapses to one byte read, with the event callbacks and
    latencies bound as closure constants.  The ready list holds plain
    indices (squash purges its dead suffix), so the sort is a native
    int sort and the issued prefix is one slice delete."""
    cp = core.config.core
    width = cp.width
    int_lat = cp.int_latency
    fp_lat = cp.fp_latency
    branch_lat = cp.branch_exec_latency
    agen_lat = cp.agen_latency
    events = core.events
    heap = events._heap
    complete = core._complete
    on_branch = core._on_branch_resolved
    on_addr = core._on_addr_ready
    opcodes = compiled.opcodes
    handles = core._handles
    mask = core._slot_mask
    flags = core._flags

    def issue_ready() -> None:  # repro: hot
        ready = core._ready
        ready.sort()
        now = events.now       # constant within one tick
        take = width if width < len(ready) else len(ready)
        for i in range(take):
            index = ready[i]
            slot = index & mask
            entry = handles[slot]
            code = opcodes[index]
            if code <= OP_BRANCH:
                flags[slot] |= FLAG_ISSUED
                if code == OP_BRANCH:
                    when = now + branch_lat
                    callback = on_branch
                else:
                    when = now + (fp_lat if code else int_lat)
                    callback = complete
            elif code == OP_FENCE or code == OP_BARRIER:
                raise AssertionError(f"unexpected ready uop {entry}")
            else:
                # LOAD / STORE / ATOMIC: address generation only;
                # "issued" is reserved for the actual memory access
                when = now + agen_lat
                callback = on_addr
            seq = events._seq
            events._seq = seq + 1
            heappush(heap, (when, seq, callback, (entry,)))
        del ready[:take]

    return issue_ready


def _make_issue_one(core: Core) -> Callable:
    """Inlined ``Core._issue_load``: forwarding probe, stat counting and
    the memory request with the closure-hoisted collaborators.  Returns
    ``1`` when the load went to memory, ``0`` when it was forwarded, so
    the caller can batch the two stat counters per scan.

    The forwarding probe scans the SQ ring backward from the tail: the
    first older same-line address-ready store is the youngest one.

    The memory callback stays a ``partial`` over the *core's* bound
    method — never an engine closure — so a checkpoint taken with the
    fill in flight still pickles (the engine is not checkpoint state).
    """
    sq = core.sq
    sq_ring = sq._ring
    sq_qmask = sq._qmask
    flags = core._flags
    wb_lines = core.write_buffer._line_counts
    events = core.events
    heap = events._heap
    complete = core._complete
    mem_load = core.mem.load
    on_load_data = core._on_load_data
    core_id = core.core_id

    def issue_one(entry) -> int:  # repro: hot
        slot = entry.slot
        flags[slot] |= FLAG_ISSUED
        index = entry.index
        line = entry.line
        forwarding = None
        head = sq._head
        for pos in range(sq._tail - 1, head - 1, -1):
            store = sq_ring[pos & sq_qmask]
            if store.index >= index:
                continue
            if flags[store.slot] & FLAG_ADDR_READY and store.line == line:
                forwarding = store
                break
        if forwarding is None and line in wb_lines:
            forwarding = entry     # forwarded from the write buffer
        if forwarding is not None:
            flags[slot] |= FLAG_FORWARDED | FLAG_PERFORMED
            seq = events._seq
            events._seq = seq + 1
            heappush(heap, (events.now + 1, seq, complete, (entry,)))
            return 0
        flags[slot] |= FLAG_OUTSTANDING
        mem_load(core_id, line, partial(on_load_data, entry))
        return 1

    return issue_one


def _make_issue_loads(core: Core,
                      compiled: CompiledTrace) -> Callable[[], None]:
    """Specialized ``_issue_waiting_loads``: same sort / port budget /
    keep / ``_waiting_stalled`` contract as the generic stage, with the
    two-virtual-call pre-VP issue-mode test inlined per defense family,
    the issue path inlined (``_make_issue_one``), the per-load stat
    bumps batched per scan, and the keep list compacted in place.  The
    waiting list holds plain indices; squashed ones were purged, so the
    only skip test left is one flags read (already issued for
    pinning)."""
    defense = core.config.defense
    issue = _make_issue_one(core)
    stats = core.stats
    handles = core._handles
    mask = core._slot_mask
    flags = core._flags
    vp_col = core._vp_col

    if defense is DefenseKind.UNSAFE:
        def issue_loads() -> None:  # repro: hot
            wl = core._waiting_loads
            wl.sort()
            budget = L1_PORTS
            stalled_only = True
            issued = missed = 0
            w = 0
            for index in wl:
                slot = index & mask
                if flags[slot] & FLAG_ISSUED:
                    continue
                if budget:
                    budget -= 1
                    issued += 1
                    missed += issue(handles[slot])
                    continue
                stalled_only = False
                wl[w] = index
                w += 1
            del wl[w:]
            core._waiting_stalled = stalled_only
            if issued:
                if missed:
                    stats.bump("loads_issued", missed)
                if issued > missed:
                    stats.bump("loads_forwarded", issued - missed)

    elif defense is DefenseKind.FENCE:
        def issue_loads() -> None:  # repro: hot
            wl = core._waiting_loads
            wl.sort()
            budget = L1_PORTS
            stalled_only = True
            issued = missed = 0
            w = 0
            for index in wl:
                slot = index & mask
                if flags[slot] & FLAG_ISSUED:
                    continue
                if vp_col[slot] >= 0:
                    if budget:
                        budget -= 1
                        issued += 1
                        missed += issue(handles[slot])
                        continue
                    stalled_only = False
                wl[w] = index
                w += 1
            del wl[w:]
            core._waiting_stalled = stalled_only
            if issued:
                if missed:
                    stats.bump("loads_issued", missed)
                if issued > missed:
                    stats.bump("loads_forwarded", issued - missed)

    elif defense is DefenseKind.DOM:
        # inlined CoherentMemory.l1_hit -> CacheArray.lookup(touch=False):
        # a hit probe is one dict membership test per waiting load.  The
        # per-set ``_lines`` dicts are stable attributes (mutated, never
        # reassigned), so the hoisted list stays live.
        l1 = core.mem.l1s[core.core_id]
        l1_mask = l1._mask
        l1_lines = [lru._lines for lru in l1._sets]

        def issue_loads() -> None:  # repro: hot
            wl = core._waiting_loads
            wl.sort()
            budget = L1_PORTS
            stalled_only = True
            issued = missed = 0
            w = 0
            for index in wl:
                slot = index & mask
                if flags[slot] & FLAG_ISSUED:
                    continue
                entry = handles[slot]
                line = entry.line
                if vp_col[slot] >= 0 or line in l1_lines[line & l1_mask]:
                    if budget:
                        budget -= 1
                        issued += 1
                        missed += issue(entry)
                        continue
                    stalled_only = False
                wl[w] = index
                w += 1
            del wl[w:]
            core._waiting_stalled = stalled_only
            if issued:
                if missed:
                    stats.bump("loads_issued", missed)
                if issued > missed:
                    stats.bump("loads_forwarded", issued - missed)

    elif defense is DefenseKind.STT:
        roots_get = core.taint._output_roots.get
        rob = core.rob
        deps_list = [u.deps for u in compiled.uops]

        def issue_loads() -> None:  # repro: hot
            wl = core._waiting_loads
            wl.sort()
            budget = L1_PORTS
            stalled_only = True
            issued = missed = 0
            w = 0
            # the ROB window is frozen during the scan (no retire or
            # dispatch can interleave), so the root-liveness bounds are
            # scan constants
            head = rob._head
            nxt = rob._next
            for index in wl:
                slot = index & mask
                if flags[slot] & FLAG_ISSUED:
                    continue
                entry = handles[slot]
                if vp_col[slot] >= 0:
                    eligible = True
                else:
                    # inlined TaintTracker.addr_tainted: is the address
                    # rooted at a live pre-VP speculative load?
                    eligible = True
                    for dep in deps_list[index]:
                        roots = roots_get(dep)
                        if roots:
                            for root in roots:
                                if head <= root < nxt \
                                        and vp_col[root & mask] < 0:
                                    eligible = False
                                    break
                            if not eligible:
                                break
                if eligible:
                    if budget:
                        budget -= 1
                        issued += 1
                        missed += issue(entry)
                        continue
                    stalled_only = False
                wl[w] = index
                w += 1
            del wl[w:]
            core._waiting_stalled = stalled_only
            if issued:
                if missed:
                    stats.bump("loads_issued", missed)
                if issued > missed:
                    stats.bump("loads_forwarded", issued - missed)

    else:  # pragma: no cover - build_engine filters these out
        raise AssertionError(f"no specialized issue loop for {defense}")

    return issue_loads


def _make_update_vps(core: Core) -> Callable[[], None]:
    """Specialized VP walk: threat-model levels and the pinning-mode
    branch become closure constants, and the candidate walk is a flags
    scan over the LQ ring gated by the core's candidate counter."""
    level = core.config.threat_model.level
    chk_alias = level >= ThreatModel.ALIAS.level
    chk_except = level >= ThreatModel.EXCEPT.level
    chk_mcv = level >= ThreatModel.MCV.level
    pinned_mode = core._pinning
    aggressive = core.config.pinning.aggressive_tso
    vp = core.vp_state
    ub_heap = vp.unresolved_branches._heap
    ub_live = vp.unresolved_branches._live
    uas_heap = vp.unknown_addr_stores._heap
    uas_live = vp.unknown_addr_stores._live
    uam_heap = vp.unknown_addr_memops._heap
    uam_live = vp.unknown_addr_memops._live
    url_heap = vp.unretired_loads._heap
    url_live = vp.unretired_loads._live
    is_head = core.rob.is_head
    note = core.note_vp_reached
    lq = core.lq
    lq_ring = lq._ring
    lq_qmask = lq._qmask
    flags = core._flags
    vp_col = core._vp_col
    counters = core.stats._counters
    # Marked-prefix skip: a load whose VP is set (``vp >= 0``) can never
    # become a candidate again in this incarnation (``_on_addr_ready``
    # only flags ``vp < 0`` loads), so the walk resumes past the
    # contiguous marked prefix it established last time.  The cache goes
    # stale only when a squash recycles ring positions behind it — every
    # squash path funnels through ``_squash_from``, which bumps the
    # ``squashed_uops`` counter, so a counter snapshot is the epoch.
    scan_state = [0, 0.0]   # [resume position, squash epoch]

    def update_vps() -> None:  # repro: hot
        if not core._vp_candidates:
            return
        # The VP condition sets only shrink at retire / resolve events,
        # never during this walk (marking a load clears its candidate
        # flag; its ``on_load_vp`` hook is a no-op for the specialized
        # schemes), so each set's min is read once.  The index-bound
        # break conditions are monotone and side-effect free, so "break
        # on the first failing bound" equals "break when the index
        # passes the smallest applicable bound" — and the break may fire
        # on non-candidates too, since any later candidate has a larger
        # index.
        while ub_heap and ub_heap[0] not in ub_live:
            heappop(ub_heap)
        bound = ub_heap[0] if ub_heap else _NO_MIN
        if chk_alias:
            while uas_heap and uas_heap[0] not in uas_live:
                heappop(uas_heap)
            if uas_heap and uas_heap[0] < bound:
                bound = uas_heap[0]
        if chk_except:
            while uam_heap and uam_heap[0] not in uam_live:
                heappop(uam_heap)
            if uam_heap and uam_heap[0] < bound:
                bound = uam_heap[0]
        if chk_mcv and aggressive and not pinned_mode:
            while url_heap and url_heap[0] not in url_live:
                heappop(url_heap)
            url_bound = url_heap[0] if url_heap else _NO_MIN
        else:
            url_bound = _NO_MIN
        head = lq._head
        epoch = counters.get("squashed_uops", 0.0)
        if epoch != scan_state[1]:
            scan_state[1] = epoch
            start = head
        else:
            start = scan_state[0]
            if start < head:
                start = head
        advancing = True
        for pos in range(start, lq._tail):
            load = lq_ring[pos & lq_qmask]
            slot = load.slot
            if vp_col[slot] >= 0:
                # marked: never a candidate again this incarnation;
                # extend the skip prefix while it stays contiguous
                if advancing:
                    scan_state[0] = pos + 1
                continue
            index = load.index
            if bound < index:
                break
            f = flags[slot]
            if not f & FLAG_VP_CAND:
                advancing = False
                continue
            if chk_mcv:
                if pinned_mode:
                    if not f & FLAG_MCV_SAFE:
                        break
                elif aggressive:
                    if url_bound < index:
                        break
                elif not is_head(load):
                    break
            note(load)
            if advancing:
                scan_state[0] = pos + 1

    return update_vps


def _make_retire(core: Core, compiled: CompiledTrace) -> Callable[[], None]:
    """Specialized retire: the head-retirability ladder collapses to a
    byte compare plus one flags read for the common classes (ALU /
    branch / plain load / store); the rarer serializing classes keep the
    generic check.  Head pops on the ROB and the LQ/SQ rings are one
    list store and one integer increment each."""
    width = core.config.core.width
    rob = core.rob
    handles = core._handles
    mask = core._slot_mask
    flags = core._flags
    vp_col = core._vp_col
    opcodes = compiled.opcodes
    wb = core.write_buffer
    wb_entries = wb._entries
    wb_capacity = wb.capacity
    wb_push = wb.push
    kick_wb = core._kick_write_buffer
    may_retire = core._head_may_retire
    note = core.note_vp_reached
    lq = core.lq
    lq_ring = lq._ring
    lq_qmask = lq._qmask
    sq = core.sq
    sq_ring = sq._ring
    sq_qmask = sq._qmask
    vp = core.vp_state
    url_discard = vp.unretired_loads.discard
    ser_discard = vp.serializing.discard
    pinning = core._pinning
    on_load_retire = core.controller.on_load_retire
    progress = core._progress
    stats = core.stats

    def retire_stage() -> None:  # repro: hot
        retired = 0
        sig = core.retire_sig
        ru = core._retired_upto
        cursor = core._cursor
        while retired < width and ru < cursor:
            slot = ru & mask
            head = handles[slot]
            code = opcodes[ru]
            f = flags[slot]
            if code <= OP_BRANCH:
                if not f & FLAG_COMPLETE:
                    break
            elif code == OP_LOAD:
                if f & FLAG_INVISIBLE:
                    if not may_retire(head):
                        break
                elif not f & FLAG_COMPLETE:
                    break
            elif code == OP_STORE:
                if not f & FLAG_COMPLETE or wb.backpressure \
                        or len(wb_entries) >= wb_capacity:
                    break
            elif not may_retire(head):  # FENCE / ATOMIC / BARRIER
                break
            # --- inlined Core._retire ---
            if code == OP_LOAD:
                if vp_col[slot] < 0:
                    note(head)
                lq_slot = lq._head & lq_qmask
                if lq_ring[lq_slot] is not head:
                    raise ValueError(
                        "retiring a load that is not the LQ head")
                lq_ring[lq_slot] = None
                lq._head += 1
                url_discard(ru)
                if pinning:
                    # no-op when pinning is off: lq_id and the pinned
                    # bit are only ever set by the controller
                    on_load_retire(head)
            elif code == OP_STORE:
                sq_slot = sq._head & sq_qmask
                if sq_ring[sq_slot] is not head:
                    raise ValueError(
                        "retiring a store that is not the SQ head")
                sq_ring[sq_slot] = None
                sq._head += 1
                wb_push(head.line)
                kick_wb()
            elif code >= OP_FENCE:  # FENCE / ATOMIC / BARRIER
                ser_discard(ru)
            handles[slot] = None
            ru += 1
            sig = ((sig ^ ru) * 0x100000001b3) & 0xFFFFFFFFFFFFFFFF
            retired += 1
        if retired:
            # nothing inside the loop reads the head pointers (checked:
            # note_vp_reached, the controller release path, the write
            # buffer), so the window advance is batched per stage
            rob._head = ru
            core._retired_upto = ru
            core.retire_sig = sig
            core._wake_pending = True
            core.retired_count += retired
            progress.count += retired
            stats.bump("retired", retired)

    return retire_stage


def _make_dispatch(core: Core, compiled: CompiledTrace) -> Callable[[], None]:
    """Fully inlined ``Core._dispatch_stage`` + ``Core._dispatch``: the
    trace probes are flat byte reads, the dependency walk runs on the
    CSR arrays, and ``_value_available`` / ``rob.push`` / the LQ/SQ
    allocations collapse to integer compares, one flags read, and ring
    stores.  The resulting column state, waiter registrations and
    VP-set updates are identical to the generic path's (same objects,
    same order)."""
    width = core.config.core.width
    trace_len = compiled.length
    opcodes = compiled.opcodes
    uops = compiled.uops
    # cache-line objects boxed once per engine build: every dispatch of
    # the same uop then stores the same int (or None) instead of
    # re-deriving it from ``uop.addr`` inside the ROBEntry constructor
    raw_lines = compiled.lines
    line_objs = [None if raw_lines[i] < 0 else raw_lines[i]
                 for i in range(trace_len)]
    # dep tuples boxed once: saves two attribute loads per dispatch, and
    # the empty-tuple common case (ALU results with no data operands)
    # skips iterator setup entirely
    deps_list = [u.deps for u in uops]
    data_deps_list = [u.data_deps for u in uops]
    new_entry = ROBEntry.__new__
    rob = core.rob
    cols = core._cols
    handles = core._handles
    mask = core._slot_mask
    flags = core._flags
    vp_col = core._vp_col
    pending_col = cols.pending
    pending_data_col = cols.pending_data
    lq_id_col = cols.lq_id
    complete_col = cols.complete_cycle
    dispatch_col = cols.dispatch_cycle
    rob_capacity = core._rob_capacity
    lq = core.lq
    lq_capacity = lq.capacity
    lq_ring = lq._ring
    lq_qmask = lq._qmask
    sq = core.sq
    sq_capacity = sq.capacity
    sq_ring = sq._ring
    sq_qmask = sq._qmask
    waiters = core._waiters
    data_waiters = core._data_waiters
    vp = core.vp_state
    # LazyMinSet.add inlined for the hot classes: one membership probe,
    # one set add, one heap push against the hoisted internals (both are
    # stable attributes, mutated in place everywhere)
    url_live = vp.unretired_loads._live
    url_heap = vp.unretired_loads._heap
    uas_live = vp.unknown_addr_stores._live
    uas_heap = vp.unknown_addr_stores._heap
    uam_live = vp.unknown_addr_memops._live
    uam_heap = vp.unknown_addr_memops._heap
    ubr_live = vp.unresolved_branches._live
    ubr_heap = vp.unresolved_branches._heap
    ser_add = vp.serializing.add
    pinning = core._pinning
    on_load_dispatch = core.controller.on_load_dispatch
    taint = core.taint
    # STT: TaintTracker.on_dispatch inlined below, with the all-live
    # common case (no retired/post-VP roots to drop) probed before the
    # allocating `_live_subset` filter is paid
    taint_roots = None if taint is None else taint._output_roots
    live_subset = None if taint is None else taint._live_subset
    empty_roots = frozenset()
    # singleton root sets boxed once per engine build: every (re)dispatch
    # of load ``i`` installs the same frozenset({i}) instead of
    # allocating a fresh one (frozensets are immutable, sharing is safe)
    root_sets = None if taint is None else \
        [frozenset((i,)) for i in range(trace_len)]
    stats = core.stats

    def dispatch_stage() -> None:  # repro: hot
        dispatched = 0
        cursor = core._cursor
        cycle = core.cycle
        retired_upto = core._retired_upto
        ready = core._ready
        while dispatched < width and cursor < trace_len \
                and cursor - retired_upto < rob_capacity:
            code = opcodes[cursor]
            if code == OP_LOAD:
                if lq._tail - lq._head >= lq_capacity:
                    break
            elif code == OP_STORE:
                if sq._tail - sq._head >= sq_capacity:
                    break
            # --- inlined Core._dispatch ---
            # the ROBEntry constructor (attribute stores + ColumnState
            # reset) unrolled over the hoisted columns
            uop = uops[cursor]
            slot = cursor & mask
            entry = new_entry(ROBEntry)
            entry.uop = uop
            entry.index = cursor
            entry.line = line_objs[cursor]
            entry.squashed = False
            entry.cols = cols
            entry.slot = slot
            flags[slot] = 0
            pending_col[slot] = 0
            pending_data_col[slot] = 0
            vp_col[slot] = -1
            lq_id_col[slot] = -1
            complete_col[slot] = -1
            dispatch_col[slot] = cycle
            pending = 0
            deps = deps_list[cursor]
            if deps:
                for dep in deps:
                    if dep >= retired_upto \
                            and not flags[dep & mask] & FLAG_COMPLETE:
                        dep_waiters = waiters.get(dep)
                        if dep_waiters is None:
                            # first waiter: the reference path allocates
                            # this list too (amortized, not per-cycle)
                            waiters[dep] = [entry]  # repro: allow-hot-path-allocation
                        else:
                            dep_waiters.append(entry)
                        pending += 1
                if pending:
                    pending_col[slot] = pending
            data_deps = data_deps_list[cursor]
            if data_deps:
                for dep in data_deps:
                    if dep >= retired_upto \
                            and not flags[dep & mask] & FLAG_COMPLETE:
                        dep_waiters = data_waiters.get(dep)
                        if dep_waiters is None:
                            data_waiters[dep] = [entry]  # repro: allow-hot-path-allocation
                        else:
                            dep_waiters.append(entry)
                        pending_data_col[slot] += 1
            handles[slot] = entry
            # per-uop window advance (not batched): the inlined taint
            # probes below and ``_live_subset`` read the live bounds
            rob._next = cursor + 1
            # LazyMinSet.add without the membership probe: a dispatching
            # cursor is never live — retire and ``_cleanup_squashed``
            # both discard it before the slot can host a fresh
            # incarnation (verified above; stale heap copies are handled
            # by the lazy-deletion cleanups either way)
            if code == OP_LOAD:
                lq_ring[lq._tail & lq_qmask] = entry
                lq._tail += 1
                url_live.add(cursor)
                heappush(url_heap, cursor)
                uam_live.add(cursor)
                heappush(uam_heap, cursor)
                if pinning:
                    on_load_dispatch(entry)
                if taint_roots is not None:
                    taint_roots[cursor] = root_sets[cursor]
            else:
                if code == OP_STORE:
                    sq_ring[sq._tail & sq_qmask] = entry
                    sq._tail += 1
                    uas_live.add(cursor)
                    heappush(uas_heap, cursor)
                    uam_live.add(cursor)
                    heappush(uam_heap, cursor)
                elif code == OP_BRANCH:
                    ubr_live.add(cursor)
                    heappush(ubr_heap, cursor)
                elif code == OP_ATOMIC:
                    uas_live.add(cursor)
                    heappush(uas_heap, cursor)
                    uam_live.add(cursor)
                    heappush(uam_heap, cursor)
                    ser_add(cursor)
                elif code == OP_FENCE or code == OP_BARRIER:
                    ser_add(cursor)
                if taint_roots is not None:
                    roots = empty_roots
                    for dep in deps:
                        dep_roots = taint_roots.get(dep)
                        if dep_roots:
                            for root in dep_roots:
                                if root < retired_upto \
                                        or vp_col[root & mask] >= 0:
                                    dep_roots = live_subset(dep_roots)
                                    break
                            if dep_roots:
                                roots = (dep_roots if roots is empty_roots
                                         else roots | dep_roots)
                    taint_roots[cursor] = roots
            if pending == 0 and code != OP_FENCE and code != OP_BARRIER:
                ready.append(cursor)
            cursor += 1
            dispatched += 1
        if dispatched:
            core._cursor = cursor
            core._wake_pending = True
            stats.bump("dispatched", dispatched)

    return dispatch_stage


def _make_controller_tick(core: Core) -> Callable[[], None]:
    """Specialized pin chain for the lp/ep cells.  The generic
    ``PinnedLoadsController.tick`` already hoists the set mins per chain
    run; here the five ``LazyMinSet.min`` calls inline to heap cleanups,
    and the chain prefix every blocked tick re-walks — already-safe
    loads, the address/branch-bound block, the serializing block, the
    oldest-load exemption — runs on flags reads and integer compares
    before falling back to ``_try_make_safe`` for the resource checks
    (CPT / write buffer / CST / LP issue).  Same marks, same denial
    episodes, same order; the drain path delegates to the generic tick.
    """
    ctl = core.controller
    generic_tick = ctl.tick
    deny = ctl._deny
    aggressive = ctl.params.aggressive_tso
    early = ctl.mode is PinningMode.EARLY
    early_pin = ctl._early_pin
    issue_for_pin = core.issue_load_for_pinning
    cpt = ctl.cpt
    cpt_lines = cpt._lines
    note = core.note_vp_reached
    stats = ctl.stats
    write_buffer = core.write_buffer
    wb_entries = write_buffer._entries
    wb_capacity = write_buffer.capacity
    sq = core.sq
    sq_ring = sq._ring
    sq_qmask = sq._qmask
    lq = core.lq
    lq_ring = lq._ring
    lq_qmask = lq._qmask
    flags = core._flags
    vp = core.vp_state
    ub_heap = vp.unresolved_branches._heap
    ub_live = vp.unresolved_branches._live
    uas_heap = vp.unknown_addr_stores._heap
    uas_live = vp.unknown_addr_stores._live
    uam_heap = vp.unknown_addr_memops._heap
    uam_live = vp.unknown_addr_memops._live
    ser_heap = vp.serializing._heap
    ser_live = vp.serializing._live
    url_heap = vp.unretired_loads._heap
    url_live = vp.unretired_loads._live

    def controller_tick() -> None:  # repro: hot
        if ctl._draining:
            generic_tick()      # rare: LQ-ID wraparound drain + restart
            return
        head = lq._head
        tail = lq._tail
        if tail == head:
            return
        # inlined LazyMinSet.min x5 (lazy-deletion cleanup in place)
        while ub_heap and ub_heap[0] not in ub_live:
            heappop(ub_heap)
        bound = ub_heap[0] if ub_heap else _NO_MIN
        while uas_heap and uas_heap[0] not in uas_live:
            heappop(uas_heap)
        if uas_heap and uas_heap[0] < bound:
            bound = uas_heap[0]
        while uam_heap and uam_heap[0] not in uam_live:
            heappop(uam_heap)
        if uam_heap and uam_heap[0] < bound:
            bound = uam_heap[0]
        while ser_heap and ser_heap[0] not in ser_live:
            heappop(ser_heap)
        ser_bound = ser_heap[0] if ser_heap else _NO_MIN
        while url_heap and url_heap[0] not in url_live:
            heappop(url_heap)
        url_bound = url_heap[0] if url_heap else _NO_MIN
        for pos in range(head, tail):
            load = lq_ring[pos & lq_qmask]
            slot = load.slot
            f = flags[slot]
            if f & FLAG_MCV_SAFE:
                continue
            # --- inlined _try_make_safe fast paths (same order) ---
            if f & FLAG_FORWARDED and f & FLAG_PERFORMED:
                flags[slot] |= FLAG_MCV_SAFE
                note(load)
                continue
            index = load.index
            if not f & FLAG_ADDR_READY or bound < index:
                break
            if ser_bound < index:
                deny(load, "pin_denied_serializing")
                break
            if aggressive and url_bound >= index:
                flags[slot] |= FLAG_MCV_SAFE
                stats.bump("oldest_exemptions")
                note(load)
                continue
            # --- inlined resource checks (same order, same episodes) ---
            if cpt._overflowed:
                deny(load, "pin_denied_cpt_blocked")
                break
            if load.line in cpt_lines:
                deny(load, "pin_denied_cpt")
                break
            # §5.1.2 write-buffer bound: the SQ is program-ordered, so
            # the older-store count stops at the first younger store
            older_sq_stores = 0
            for spos in range(sq._head, sq._tail):
                if sq_ring[spos & sq_qmask].index >= index:
                    break
                older_sq_stores += 1
            if older_sq_stores + len(wb_entries) > wb_capacity:
                deny(load, "pin_denied_wb")
                break
            if early:
                if early_pin(load):
                    continue
                break
            # --- inlined _late_pin (addr_ready already established) ---
            if f & FLAG_PERFORMED:
                # resolved at call time: the invariant sanitizer shadows
                # ``_pin`` on the controller instance
                ctl._pin(load)
                continue
            if f & (FLAG_PARKED | FLAG_OUTSTANDING | FLAG_ISSUED):
                break
            issue_for_pin(load)
            break

    return controller_tick


def _make_quiet(core: Core, compiled: CompiledTrace) -> Callable[[int], int]:
    """Specialized ``Core.quiet_until``: same conditions, same order,
    with the trace/head probes on flat arrays and the occupancy tests
    on window arithmetic."""
    wake_matters = core._vp_active or core._pinning
    opcodes = compiled.opcodes
    barrier_ids = compiled.barrier_ids
    is_load = compiled.is_load
    is_store = compiled.is_store
    trace_len = compiled.length
    handles = core._handles
    mask = core._slot_mask
    flags = core._flags
    rob_capacity = core._rob_capacity
    lq = core.lq
    lq_capacity = lq.capacity
    sq = core.sq
    sq_capacity = sq.capacity
    released = core.barriers.released

    def quiet_until(cycle: int) -> int:  # repro: hot
        if wake_matters and core._wake_pending:
            return 0
        if core._ready or core._lp_parked:
            return 0
        if core._waiting_loads and not core._waiting_stalled:
            return 0
        if core._wb_entries and not core._wb_draining:
            return 0
        cursor = core._cursor
        ru = core._retired_upto
        if cursor > ru:
            code = opcodes[ru]
            if code == OP_ATOMIC:
                return 0
            elif code == OP_BARRIER:
                if not handles[ru & mask].barrier_notified \
                        or released(barrier_ids[ru]):
                    return 0
            elif code == OP_FENCE:
                if not core._wb_entries:
                    return 0
            elif flags[ru & mask] & FLAG_COMPLETE:
                return 0
        if cursor < trace_len and cursor - ru < rob_capacity:
            if not ((is_load[cursor]
                     and lq._tail - lq._head >= lq_capacity)
                    or (is_store[cursor]
                        and sq._tail - sq._head >= sq_capacity)):
                resume = core._fetch_resume
                if resume <= cycle + 1:
                    return 0
                return resume
        return QUIET_FOREVER

    return quiet_until


def _specialize_core(core: Core, compiled: CompiledTrace,
                     ) -> Tuple[Callable[[int], None], Callable[[int], int]]:
    """Compile one core's tick/quiet pair.  Stage activation flags
    (``vp_active``, pinning, LATE parking) are static per config, so the
    per-cycle flag re-tests of the generic tick disappear."""
    vp_active = core._vp_active
    pinning = core._pinning
    late = core.config.pinning.mode is PinningMode.LATE
    # The stalled-scan skip is sound only when issue eligibility flips
    # exclusively through wake-flagged mutations (the quiet_until
    # fixpoint contract): true for fence (vp_cycle), STT (vp_cycle /
    # taint liveness) and unsafe (always eligible).  DOM eligibility
    # also reads shared L1 state, which mem-side events (a write-buffer
    # drain filling a line) change without waking the core, so DOM
    # scans whenever loads wait — exactly like the generic tick.
    scan_always = core.config.defense is DefenseKind.DOM
    trace_len = compiled.length
    stats = core.stats
    controller_tick = _make_controller_tick(core) if pinning else None
    lp_retry = core._lp_retry_parked
    kick_wb = core._kick_write_buffer
    retire_stage = _make_retire(core, compiled)
    update_vps = _make_update_vps(core) if vp_active else None
    issue_ready = _make_issue_ready(core, compiled)
    issue_loads = _make_issue_loads(core, compiled)
    dispatch_stage = _make_dispatch(core, compiled)
    quiet_until = _make_quiet(core, compiled)

    def tick(cycle: int) -> None:  # repro: hot
        if core.done_cycle is not None:
            return
        # the wake flag observed at entry covers every mutation since
        # this core's previous tick; the re-read before the load scan
        # covers mutations made by this tick's earlier stages
        woke = core._wake_pending
        if woke:
            core._wake_pending = False
        core.cycle = cycle
        if core._cursor > core._retired_upto:
            retire_stage()
        if vp_active:
            update_vps()
        if pinning:
            controller_tick()
            if late and core._lp_parked:
                lp_retry()
        if core._ready:
            issue_ready()
        if core._waiting_loads and (scan_always or woke or core._wake_pending
                                    or not core._waiting_stalled):
            issue_loads()
        if core._cursor < trace_len and cycle >= core._fetch_resume:
            dispatch_stage()
        if core._wb_entries and not core._wb_draining:
            kick_wb()
        if core._cursor == core._retired_upto and not core._wb_entries \
                and core._cursor >= trace_len:
            core.done_cycle = cycle
            stats.set("done_cycle", cycle)
            stats.set("retire_sig", core.retire_sig)

    return tick, quiet_until


class SpecializedEngine:
    """Engine over one ``System``: per-core specialized closures plus a
    run loop mirroring ``System.run_ticked``'s fast-forward structure."""

    __slots__ = ("system", "_cores", "_ticks", "_quiets", "compiled")

    def __init__(self, system) -> None:
        self.system = system
        self._cores: List[Core] = list(system.cores)
        self.compiled: List[CompiledTrace] = [
            compile_trace(core.trace) for core in self._cores]
        self._ticks = []
        self._quiets = []
        for core, compiled in zip(self._cores, self.compiled):
            tick, quiet = _specialize_core(core, compiled)
            self._ticks.append(tick)
            self._quiets.append(quiet)

    def run(self, max_cycles: int = 50_000_000,
            stop_cycle: Optional[int] = None) -> int:
        # The run loop allocates in a steady state (entry handles, event
        # tuples) with no reference cycles on the hot path; pausing the
        # generational collector for the duration avoids periodic full
        # scans of the long-lived simulator graph.
        paused = gc.isenabled()
        if paused:
            gc.disable()
        try:
            if len(self._cores) == 1:
                return self._run_single(max_cycles, stop_cycle)
            return self._run_multi(max_cycles, stop_cycle)
        finally:
            if paused:
                gc.enable()

    def _run_single(self, max_cycles: int,
                    stop_cycle: Optional[int]) -> int:
        system = self.system
        core = self._cores[0]
        tick = self._ticks[0]
        quiet = self._quiets[0]
        events = system.events
        heap = events._heap
        run_until = events.run_until
        progress = system.progress
        deadlock_window = system.config.deadlock_cycles
        cycle = system.cycles
        last_progress_cycle = cycle
        last_retired = -1
        while core.done_cycle is None:
            if stop_cycle is not None and cycle >= stop_cycle:
                break
            cycle += 1
            if heap and heap[0][0] <= cycle:
                run_until(cycle)
            else:
                # no due events: run_until would only advance the clock
                events.now = cycle
            tick(cycle)
            if core.done_cycle is not None:
                break
            retired = progress.count
            if retired != last_retired:
                last_retired = retired
                last_progress_cycle = cycle
            elif cycle - last_progress_cycle > deadlock_window:
                raise DeadlockError(cycle, repr(core),
                                    dump=system.diagnostic_dump(cycle))
            if cycle >= max_cycles:
                raise DeadlockError(cycle, "max_cycles exceeded",
                                    dump=system.diagnostic_dump(cycle))
            bound = quiet(cycle)
            if bound > cycle + 1:
                target = bound
                if heap:
                    next_event = heap[0][0]
                    if next_event < target:
                        target = next_event
                deadlock_at = last_progress_cycle + deadlock_window + 1
                if deadlock_at < target:
                    target = deadlock_at
                if max_cycles < target:
                    target = max_cycles
                if stop_cycle is not None and stop_cycle < target:
                    target = stop_cycle
                if target > cycle + 1:
                    cycle = target - 1
        system.cycles = cycle
        return cycle

    def _run_multi(self, max_cycles: int,
                   stop_cycle: Optional[int]) -> int:
        """Multi-core loop with batched quiet-region stepping: each live
        core caches its last ``quiet_until`` bound, and its tick is
        skipped while the bound covers the cycle, no event fired, and
        nothing re-armed its wake flag.  Soundness: a cached bound means
        "ticks are no-ops absent an intervening mutation", and every
        mutation a skipped core can receive arrives either through the
        event queue (``fired``) or through a flag-setting hook —
        coherence callbacks, CPT traffic, and barrier releases
        (``BarrierManager`` wakes all cores on release).  On top of the
        per-core skip, the existing all-quiet jump advances the clock in
        one arithmetic step, which the absolute-cycle columns make
        state-touch-free."""
        system = self.system
        events = system.events
        heap = events._heap
        run_until = events.run_until
        progress = system.progress
        deadlock_window = system.config.deadlock_cycles
        cycle = system.cycles
        last_progress_cycle = cycle
        last_retired = -1
        # mutable per-core records: [core, tick, quiet, cached_bound]
        live = [[core, tick, quiet, 0] for core, tick, quiet
                in zip(self._cores, self._ticks, self._quiets)
                if core.done_cycle is None]
        while live:
            if stop_cycle is not None and cycle >= stop_cycle:
                break
            cycle += 1
            fired = bool(heap) and heap[0][0] <= cycle
            if fired:
                run_until(cycle)
            else:
                events.now = cycle
            finished = False
            for item in live:
                core = item[0]
                if not fired and item[3] > cycle \
                        and not core._wake_pending:
                    continue    # provably a no-op tick: skip it
                item[3] = 0
                item[1](cycle)
                if core.done_cycle is not None:
                    finished = True
            if finished:
                live = [item for item in live
                        if item[0].done_cycle is None]
                if not live:
                    break
            retired = progress.count
            if retired != last_retired:
                last_retired = retired
                last_progress_cycle = cycle
            elif cycle - last_progress_cycle > deadlock_window:
                detail = "; ".join(repr(item[0]) for item in live)
                raise DeadlockError(cycle, detail,
                                    dump=system.diagnostic_dump(cycle))
            if cycle >= max_cycles:
                raise DeadlockError(cycle, "max_cycles exceeded",
                                    dump=system.diagnostic_dump(cycle))
            bound = QUIET_FOREVER
            for item in live:
                core_bound = item[2](cycle)
                item[3] = core_bound
                if core_bound < bound:
                    bound = core_bound
            if bound > cycle + 1:
                target = bound
                if heap:
                    next_event = heap[0][0]
                    if next_event < target:
                        target = next_event
                deadlock_at = last_progress_cycle + deadlock_window + 1
                if deadlock_at < target:
                    target = deadlock_at
                if max_cycles < target:
                    target = max_cycles
                if stop_cycle is not None and stop_cycle < target:
                    target = stop_cycle
                if target > cycle + 1:
                    cycle = target - 1
        system.cycles = cycle
        return cycle


def build_engine(system) -> Optional[SpecializedEngine]:
    """Compile a specialized engine for ``system``, or ``None`` when the
    system must stay on the generic loop (sanitizer attached — it
    shadows ``Core.tick`` through the instance dict — or a defense
    outside the specialized families).

    Adversarial traces (any transient uop) and mutated defenses
    (``SystemConfig.defense_mutation``) also stay generic: the NOP-twin
    substitution and the weakened scheme hooks live in ``Core``'s
    dispatch/issue methods, which the compiled closures bypass.  Both
    are security-evaluation paths (``repro attack``), never performance
    cells, so they cost the specialization nothing."""
    if system.sanitizer is not None:
        return None
    if system.config.defense not in SPECIALIZED_DEFENSES:
        return None
    if system.config.defense_mutation:
        return None
    if any(trace.has_transient for trace in system.workload.traces):
        return None
    return SpecializedEngine(system)
