"""Per-scheme specialized run loops over struct-of-arrays trace state.

``System.run`` delegates here when the configured defense belongs to one
of the specialized families (unsafe / fence / DOM / STT — the 13-scheme
paper grid) and no sanitizer is attached.  ``build_engine`` compiles each
core's trace once (``repro.isa.compiled``) and closes a dedicated
``tick``/``quiet_until`` pair over the core's hot state:

* every scheme flag, threat-model level, latency, and capacity that the
  generic ``Core.tick`` re-reads through attribute/property chains each
  cycle is bound once as a closure constant, so the inner loop carries
  no per-cycle scheme dispatch;
* the per-uop object probes on the dispatch and quiet paths
  (``uop.is_load`` property calls, ``OpClass`` identity ladders) become
  single byte-array reads indexed by the cursor the core already keeps;
* the ready/waiting-load scans compact their lists in place instead of
  reallocating them every cycle;
* the pre-VP issue-mode test is inlined per defense family: fence
  (post-VP only), DOM (post-VP or L1 hit), STT (post-VP or untainted
  address), unsafe (always), instead of two virtual calls per load per
  scan.

Behaviour is bit-exact against ``Core.tick`` / ``System.run_ticked`` and
against the seed ``run_reference`` oracle: same event schedule (the tie
break is the queue's insertion sequence, so the engine issues exactly
the calls the generic path would), same statistics, same retire
signatures.  Parity is asserted per grid cell by ``repro bench`` and by
``tests/test_soa_parity.py``, chaos on and off.

One refinement beyond the generic tick is the stalled-scan skip: when
every waiting load was stalled by its scheme (``_waiting_stalled``) and
nothing re-armed the core's ``_wake_pending`` flag, the scan is provably
a no-op (the ``Core.quiet_until`` fixpoint contract — issue modes only
flip via flagged mutations or events) and is skipped even while other
stages stay busy.  The generic loop reaches the same conclusion only
when the whole core is quiet.

The engine holds no simulated state of its own: everything lives in the
ordinary object model, so checkpoints, diagnostics, and the reference
loops see one world.  Engines are rebuilt lazily after a checkpoint
restore (``System.__getstate__`` drops them).
"""

from __future__ import annotations

import gc
import operator
from functools import partial
from heapq import heappush
from typing import Callable, List, Optional, Tuple

from repro.common.errors import DeadlockError
from repro.common.params import DefenseKind, PinningMode, ThreatModel
from repro.core.pipeline import L1_PORTS, QUIET_FOREVER, Core
from repro.core.rob import ROBEntry
from repro.isa.compiled import (OP_ATOMIC, OP_BARRIER, OP_BRANCH, OP_FENCE,
                                OP_FP_ALU, OP_INT_ALU, OP_LOAD, OP_STORE,
                                CompiledTrace, compile_trace)

#: Defense families with a specialized inner loop.  Anything else (e.g.
#: invisible speculation, which is outside the paper's 13-scheme grid)
#: falls back to the generic guarded tick loop.
SPECIALIZED_DEFENSES = frozenset({
    DefenseKind.UNSAFE, DefenseKind.FENCE, DefenseKind.DOM, DefenseKind.STT,
})

_by_index = operator.attrgetter("index")

#: Sentinel for "no live value" when a LazyMinSet min is hoisted into a
#: plain integer compare (safely above any uop index).
_NO_MIN = 1 << 62

# Several closures below push heap entries directly instead of calling
# ``EventQueue.schedule_after``.  The entry layout ``(when, seq,
# callback, args)`` and the plain-int ``_seq`` post-increment replicate
# ``EventQueue.schedule`` exactly (same tie-break order, same pickled
# shape); the not-in-the-past guard is dropped because every inlined
# site schedules at ``now + latency`` with a non-negative latency.  The
# callbacks stay bound core methods / partials — never engine closures —
# so a mid-run checkpoint still pickles the heap.


def _make_issue_ready(core: Core, compiled: CompiledTrace) -> Callable[[], None]:
    """Specialized ready-uop issue: the ``_begin_execution`` opclass
    ladder collapses to one byte read, with the event callbacks and
    latencies bound as closure constants."""
    cp = core.config.core
    width = cp.width
    int_lat = cp.int_latency
    fp_lat = cp.fp_latency
    branch_lat = cp.branch_exec_latency
    agen_lat = cp.agen_latency
    events = core.events
    heap = events._heap
    complete = core._complete
    on_branch = core._on_branch_resolved
    on_addr = core._on_addr_ready
    opcodes = compiled.opcodes

    def issue_ready() -> None:  # repro: hot
        ready = core._ready
        ready.sort(key=_by_index)
        budget = width
        now = events.now       # constant within one tick
        w = 0
        for entry in ready:
            if entry.squashed:
                continue
            if budget == 0:
                ready[w] = entry
                w += 1
                continue
            budget -= 1
            code = opcodes[entry.index]
            if code <= OP_BRANCH:
                entry.issued = True
                if code == OP_INT_ALU:
                    when = now + int_lat
                    callback = complete
                elif code == OP_FP_ALU:
                    when = now + fp_lat
                    callback = complete
                else:
                    when = now + branch_lat
                    callback = on_branch
            elif code == OP_FENCE or code == OP_BARRIER:
                raise AssertionError(f"unexpected ready uop {entry}")
            else:
                # LOAD / STORE / ATOMIC: address generation only;
                # "issued" is reserved for the actual memory access
                when = now + agen_lat
                callback = on_addr
            seq = events._seq
            events._seq = seq + 1
            heappush(heap, (when, seq, callback, (entry,)))
        del ready[w:]

    return issue_ready


def _make_issue_one(core: Core) -> Callable:
    """Inlined ``Core._issue_load``: forwarding probe, stat counting and
    the memory request with the closure-hoisted collaborators.  Returns
    ``1`` when the load went to memory, ``0`` when it was forwarded, so
    the caller can batch the two stat counters per scan.

    The memory callback stays a ``partial`` over the *core's* bound
    method — never an engine closure — so a checkpoint taken with the
    fill in flight still pickles (the engine is not checkpoint state).
    """
    sq = core.sq
    wb_lines = core.write_buffer._line_counts
    events = core.events
    heap = events._heap
    complete = core._complete
    mem_load = core.mem.load
    on_load_data = core._on_load_data
    core_id = core.core_id

    def issue_one(entry) -> int:  # repro: hot
        entry.issued = True
        index = entry.index
        line = entry.line
        # inlined StoreQueue.forwarding_store: youngest older same-line
        # store with a known address (``_stores`` is reassigned on
        # squashes, so it is read through the queue each call)
        forwarding = None
        for store in sq._stores:
            if store.index >= index:
                break
            if store.addr_ready and store.line == line:
                forwarding = store
        if forwarding is None and line in wb_lines:
            forwarding = entry     # forwarded from the write buffer
        if forwarding is not None:
            entry.forwarded = True
            entry.performed = True
            seq = events._seq
            events._seq = seq + 1
            heappush(heap, (events.now + 1, seq, complete, (entry,)))
            return 0
        entry.outstanding = True
        mem_load(core_id, entry.line, partial(on_load_data, entry))
        return 1

    return issue_one


def _make_issue_loads(core: Core) -> Callable[[], None]:
    """Specialized ``_issue_waiting_loads``: same sort / port budget /
    keep / ``_waiting_stalled`` contract as the generic stage, with the
    two-virtual-call pre-VP issue-mode test inlined per defense family,
    the issue path inlined (``_make_issue_one``), the per-load stat
    bumps batched per scan, and the keep list compacted in place."""
    defense = core.config.defense
    issue = _make_issue_one(core)
    stats = core.stats

    if defense is DefenseKind.UNSAFE:
        def issue_loads() -> None:  # repro: hot
            wl = core._waiting_loads
            wl.sort(key=_by_index)
            budget = L1_PORTS
            stalled_only = True
            issued = missed = 0
            w = 0
            for entry in wl:
                if entry.squashed or entry.issued:
                    continue
                if budget:
                    budget -= 1
                    issued += 1
                    missed += issue(entry)
                    continue
                stalled_only = False
                wl[w] = entry
                w += 1
            del wl[w:]
            core._waiting_stalled = stalled_only
            if issued:
                if missed:
                    stats.bump("loads_issued", missed)
                if issued > missed:
                    stats.bump("loads_forwarded", issued - missed)

    elif defense is DefenseKind.FENCE:
        def issue_loads() -> None:  # repro: hot
            wl = core._waiting_loads
            wl.sort(key=_by_index)
            budget = L1_PORTS
            stalled_only = True
            issued = missed = 0
            w = 0
            for entry in wl:
                if entry.squashed or entry.issued:
                    continue
                if entry.vp_cycle is not None:
                    if budget:
                        budget -= 1
                        issued += 1
                        missed += issue(entry)
                        continue
                    stalled_only = False
                wl[w] = entry
                w += 1
            del wl[w:]
            core._waiting_stalled = stalled_only
            if issued:
                if missed:
                    stats.bump("loads_issued", missed)
                if issued > missed:
                    stats.bump("loads_forwarded", issued - missed)

    elif defense is DefenseKind.DOM:
        # inlined CoherentMemory.l1_hit -> CacheArray.lookup(touch=False):
        # a hit probe is one dict membership test per waiting load.  The
        # per-set ``_lines`` dicts are stable attributes (mutated, never
        # reassigned), so the hoisted list stays live.
        l1 = core.mem.l1s[core.core_id]
        l1_mask = l1._mask
        l1_lines = [lru._lines for lru in l1._sets]

        def issue_loads() -> None:  # repro: hot
            wl = core._waiting_loads
            wl.sort(key=_by_index)
            budget = L1_PORTS
            stalled_only = True
            issued = missed = 0
            w = 0
            for entry in wl:
                if entry.squashed or entry.issued:
                    continue
                line = entry.line
                if entry.vp_cycle is not None \
                        or line in l1_lines[line & l1_mask]:
                    if budget:
                        budget -= 1
                        issued += 1
                        missed += issue(entry)
                        continue
                    stalled_only = False
                wl[w] = entry
                w += 1
            del wl[w:]
            core._waiting_stalled = stalled_only
            if issued:
                if missed:
                    stats.bump("loads_issued", missed)
                if issued > missed:
                    stats.bump("loads_forwarded", issued - missed)

    elif defense is DefenseKind.STT:
        roots_map = core.taint._output_roots
        find = core.rob._by_index.get

        def issue_loads() -> None:  # repro: hot
            wl = core._waiting_loads
            wl.sort(key=_by_index)
            budget = L1_PORTS
            stalled_only = True
            issued = missed = 0
            w = 0
            for entry in wl:
                if entry.squashed or entry.issued:
                    continue
                if entry.vp_cycle is not None:
                    eligible = True
                else:
                    # inlined TaintTracker.addr_tainted: is the address
                    # rooted at a live pre-VP speculative load?
                    eligible = True
                    for dep in entry.uop.deps:
                        roots = roots_map.get(dep)
                        if roots:
                            for root in roots:
                                producer = find(root)
                                if producer is not None \
                                        and producer.vp_cycle is None:
                                    eligible = False
                                    break
                            if not eligible:
                                break
                if eligible:
                    if budget:
                        budget -= 1
                        issued += 1
                        missed += issue(entry)
                        continue
                    stalled_only = False
                wl[w] = entry
                w += 1
            del wl[w:]
            core._waiting_stalled = stalled_only
            if issued:
                if missed:
                    stats.bump("loads_issued", missed)
                if issued > missed:
                    stats.bump("loads_forwarded", issued - missed)

    else:  # pragma: no cover - build_engine filters these out
        raise AssertionError(f"no specialized issue loop for {defense}")

    return issue_loads


def _make_update_vps(core: Core) -> Callable[[], None]:
    """Specialized VP walk: threat-model levels and the pinning-mode
    branch become closure constants; the frontier's generator is
    inlined to one sorted pass over its index map."""
    level = core.config.threat_model.level
    chk_alias = level >= ThreatModel.ALIAS.level
    chk_except = level >= ThreatModel.EXCEPT.level
    chk_mcv = level >= ThreatModel.MCV.level
    pinned_mode = core._pinning
    aggressive = core.config.pinning.aggressive_tso
    vp = core.vp_state
    frontier = core._vp_frontier._entries
    ub_min = vp.unresolved_branches.min
    uas_min = vp.unknown_addr_stores.min
    uam_min = vp.unknown_addr_memops.min
    url_min = vp.unretired_loads.min
    is_head = core.rob.is_head
    note = core.note_vp_reached

    def update_vps() -> None:  # repro: hot
        if not frontier:
            return
        # The VP condition sets only shrink at retire / resolve events,
        # never during this walk (marking a load discards it from the
        # *frontier*; its ``on_load_vp`` hook is a no-op for the
        # specialized schemes), so each set's min is read once.  The
        # index-bound break conditions are monotone and side-effect
        # free, so "break on the first failing bound" equals "break
        # when the index passes the smallest applicable bound".
        bound = ub_min()
        if bound is None:
            bound = _NO_MIN
        if chk_alias:
            m = uas_min()
            if m is not None and m < bound:
                bound = m
        if chk_except:
            m = uam_min()
            if m is not None and m < bound:
                bound = m
        if chk_mcv and aggressive and not pinned_mode:
            url_bound = url_min()
            if url_bound is None:
                url_bound = _NO_MIN
        else:
            url_bound = _NO_MIN
        for index in sorted(frontier):
            load = frontier.get(index)
            if load is None:
                continue    # marked (or squashed) earlier in this walk
            if bound < index:
                break
            if chk_mcv:
                if pinned_mode:
                    if not load.mcv_safe:
                        break
                elif aggressive:
                    if url_bound < index:
                        break
                elif not is_head(load):
                    break
            note(load)

    return update_vps


def _make_retire(core: Core, compiled: CompiledTrace) -> Callable[[], None]:
    """Specialized retire: the head-retirability ladder collapses to a
    byte compare for the common classes (ALU/branch/plain load/store);
    the rarer serializing classes keep the generic check."""
    width = core.config.core.width
    entries = core._rob_entries
    by_index = core.rob._by_index
    opcodes = compiled.opcodes
    wb = core.write_buffer
    wb_entries = wb._entries
    wb_capacity = wb.capacity
    wb_push = wb.push
    kick_wb = core._kick_write_buffer
    may_retire = core._head_may_retire
    note = core.note_vp_reached
    lq = core.lq
    sq = core.sq
    vp = core.vp_state
    url_discard = vp.unretired_loads.discard
    ser_discard = vp.serializing.discard
    pinning = core._pinning
    on_load_retire = core.controller.on_load_retire
    progress = core._progress
    stats = core.stats

    def retire_stage() -> None:  # repro: hot
        retired = 0
        sig = core.retire_sig
        while retired < width and entries:
            head = entries[0]
            index = head.index
            code = opcodes[index]
            if code <= OP_BRANCH:
                if not head.complete:
                    break
            elif code == OP_LOAD:
                if head.invisible:
                    if not may_retire(head):
                        break
                elif not head.complete:
                    break
            elif code == OP_STORE:
                if not head.complete or wb.backpressure \
                        or len(wb_entries) >= wb_capacity:
                    break
            elif not may_retire(head):  # FENCE / ATOMIC / BARRIER
                break
            # --- inlined Core._retire ---
            if code == OP_LOAD:
                if head.vp_cycle is None:
                    note(head)
                loads = lq._loads
                if not loads or loads[0] is not head:
                    raise ValueError(
                        "retiring a load that is not the LQ head")
                loads.pop(0)
                url_discard(index)
                if pinning:
                    # no-op when pinning is off: lq_id and the pinned
                    # bit are only ever set by the controller
                    on_load_retire(head)
            elif code == OP_STORE:
                stores = sq._stores
                if not stores or stores[0] is not head:
                    raise ValueError(
                        "retiring a store that is not the SQ head")
                stores.pop(0)
                wb_push(head.line)
                kick_wb()
            elif code >= OP_FENCE:  # FENCE / ATOMIC / BARRIER
                ser_discard(index)
            entries.popleft()
            del by_index[index]
            core._retired_upto = index + 1
            sig = ((sig ^ (index + 1))
                   * 0x100000001b3) & 0xFFFFFFFFFFFFFFFF
            retired += 1
        if retired:
            core.retire_sig = sig
            core._wake_pending = True
            core.retired_count += retired
            progress.count += retired
            stats.bump("retired", retired)

    return retire_stage


def _make_dispatch(core: Core, compiled: CompiledTrace) -> Callable[[], None]:
    """Fully inlined ``Core._dispatch_stage`` + ``Core._dispatch``: the
    trace probes are flat byte reads, the dependency walk runs on the
    CSR arrays, and ``_value_available`` / ``rob.push`` collapse to one
    dict probe / one append each.  The resulting entry state, waiter
    registrations and VP-set updates are identical to the generic
    path's (same objects, same order)."""
    width = core.config.core.width
    trace_len = compiled.length
    opcodes = compiled.opcodes
    uops = compiled.uops
    entries = core._rob_entries
    by_index = core.rob._by_index
    rob_capacity = core._rob_capacity
    lq = core.lq
    lq_capacity = lq.capacity
    lq_allocate = lq.allocate
    sq = core.sq
    sq_capacity = sq.capacity
    sq_allocate = sq.allocate
    waiters = core._waiters
    data_waiters = core._data_waiters
    vp = core.vp_state
    # LazyMinSet.add inlined for the hot classes: one membership probe,
    # one set add, one heap push against the hoisted internals (both are
    # stable attributes, mutated in place everywhere)
    url_live = vp.unretired_loads._live
    url_heap = vp.unretired_loads._heap
    uas_live = vp.unknown_addr_stores._live
    uas_heap = vp.unknown_addr_stores._heap
    uam_live = vp.unknown_addr_memops._live
    uam_heap = vp.unknown_addr_memops._heap
    ubr_live = vp.unresolved_branches._live
    ubr_heap = vp.unresolved_branches._heap
    ser_add = vp.serializing.add
    pinning = core._pinning
    on_load_dispatch = core.controller.on_load_dispatch
    taint = core.taint
    # STT: TaintTracker.on_dispatch inlined below, with the all-live
    # common case (no retired/post-VP roots to drop) probed before the
    # allocating `_live_subset` filter is paid
    taint_roots = None if taint is None else taint._output_roots
    live_subset = None if taint is None else taint._live_subset
    empty_roots = frozenset()
    stats = core.stats

    def dispatch_stage() -> None:  # repro: hot
        dispatched = 0
        cursor = core._cursor
        cycle = core.cycle
        retired_upto = core._retired_upto
        while dispatched < width and cursor < trace_len \
                and len(entries) < rob_capacity:
            code = opcodes[cursor]
            if code == OP_LOAD:
                if len(lq._loads) >= lq_capacity:
                    break
            elif code == OP_STORE:
                if len(sq._stores) >= sq_capacity:
                    break
            # --- inlined Core._dispatch ---
            uop = uops[cursor]
            entry = ROBEntry(uop, 0, cycle)
            pending = 0
            deps = uop.deps
            for dep in deps:
                if dep >= retired_upto:
                    producer = by_index.get(dep)
                    if producer is None or not producer.complete:
                        dep_waiters = waiters.get(dep)
                        if dep_waiters is None:
                            # first waiter: the reference path allocates
                            # this list too (amortized, not per-cycle)
                            waiters[dep] = [entry]  # repro: allow-hot-path-allocation
                        else:
                            dep_waiters.append(entry)
                        pending += 1
            entry.pending_deps = pending
            for dep in uop.data_deps:
                if dep >= retired_upto:
                    producer = by_index.get(dep)
                    if producer is None or not producer.complete:
                        dep_waiters = data_waiters.get(dep)
                        if dep_waiters is None:
                            data_waiters[dep] = [entry]  # repro: allow-hot-path-allocation
                        else:
                            dep_waiters.append(entry)
                        entry.pending_data_deps += 1
            entries.append(entry)
            by_index[cursor] = entry
            if code == OP_LOAD:
                lq_allocate(entry)
                if cursor not in url_live:
                    url_live.add(cursor)
                    heappush(url_heap, cursor)
                if cursor not in uam_live:
                    uam_live.add(cursor)
                    heappush(uam_heap, cursor)
                if pinning:
                    on_load_dispatch(entry)
                if taint_roots is not None:
                    taint_roots[cursor] = frozenset((cursor,))
            else:
                if code == OP_STORE:
                    sq_allocate(entry)
                    if cursor not in uas_live:
                        uas_live.add(cursor)
                        heappush(uas_heap, cursor)
                    if cursor not in uam_live:
                        uam_live.add(cursor)
                        heappush(uam_heap, cursor)
                elif code == OP_BRANCH:
                    if cursor not in ubr_live:
                        ubr_live.add(cursor)
                        heappush(ubr_heap, cursor)
                elif code == OP_ATOMIC:
                    if cursor not in uas_live:
                        uas_live.add(cursor)
                        heappush(uas_heap, cursor)
                    if cursor not in uam_live:
                        uam_live.add(cursor)
                        heappush(uam_heap, cursor)
                    ser_add(cursor)
                elif code == OP_FENCE or code == OP_BARRIER:
                    ser_add(cursor)
                if taint_roots is not None:
                    roots = empty_roots
                    for dep in deps:
                        dep_roots = taint_roots.get(dep)
                        if dep_roots:
                            for root in dep_roots:
                                producer = by_index.get(root)
                                if producer is None \
                                        or producer.vp_cycle is not None:
                                    dep_roots = live_subset(dep_roots)
                                    break
                            if dep_roots:
                                roots = (dep_roots if roots is empty_roots
                                         else roots | dep_roots)
                    taint_roots[cursor] = roots
            if pending == 0 and code != OP_FENCE and code != OP_BARRIER:
                core._ready.append(entry)
            cursor += 1
            dispatched += 1
        if dispatched:
            core._cursor = cursor
            core._wake_pending = True
            stats.bump("dispatched", dispatched)

    return dispatch_stage


def _make_quiet(core: Core, compiled: CompiledTrace) -> Callable[[int], int]:
    """Specialized ``Core.quiet_until``: same conditions, same order,
    with the trace/head probes on flat arrays."""
    wake_matters = core._vp_active or core._pinning
    opcodes = compiled.opcodes
    barrier_ids = compiled.barrier_ids
    is_load = compiled.is_load
    is_store = compiled.is_store
    trace_len = compiled.length
    entries = core._rob_entries
    rob_capacity = core._rob_capacity
    lq = core.lq
    lq_capacity = lq.capacity
    sq = core.sq
    sq_capacity = sq.capacity
    released = core.barriers.released

    def quiet_until(cycle: int) -> int:  # repro: hot
        if wake_matters and core._wake_pending:
            return 0
        if core._ready or core._lp_parked:
            return 0
        if core._waiting_loads and not core._waiting_stalled:
            return 0
        if core._wb_entries and not core._wb_draining:
            return 0
        if entries:
            head = entries[0]
            code = opcodes[head.index]
            if code == OP_ATOMIC:
                return 0
            elif code == OP_BARRIER:
                if not head.barrier_notified \
                        or released(barrier_ids[head.index]):
                    return 0
            elif code == OP_FENCE:
                if not core._wb_entries:
                    return 0
            elif head.complete:
                return 0
        cursor = core._cursor
        if cursor < trace_len and len(entries) < rob_capacity:
            if not ((is_load[cursor] and len(lq._loads) >= lq_capacity)
                    or (is_store[cursor]
                        and len(sq._stores) >= sq_capacity)):
                resume = core._fetch_resume
                if resume <= cycle + 1:
                    return 0
                return resume
        return QUIET_FOREVER

    return quiet_until


def _specialize_core(core: Core, compiled: CompiledTrace,
                     ) -> Tuple[Callable[[int], None], Callable[[int], int]]:
    """Compile one core's tick/quiet pair.  Stage activation flags
    (``vp_active``, pinning, LATE parking) are static per config, so the
    per-cycle flag re-tests of the generic tick disappear."""
    vp_active = core._vp_active
    pinning = core._pinning
    late = core.config.pinning.mode is PinningMode.LATE
    # The stalled-scan skip is sound only when issue eligibility flips
    # exclusively through wake-flagged mutations (the quiet_until
    # fixpoint contract): true for fence (vp_cycle), STT (vp_cycle /
    # taint liveness) and unsafe (always eligible).  DOM eligibility
    # also reads shared L1 state, which mem-side events (a write-buffer
    # drain filling a line) change without waking the core, so DOM
    # scans whenever loads wait — exactly like the generic tick.
    scan_always = core.config.defense is DefenseKind.DOM
    trace_len = compiled.length
    entries = core._rob_entries
    stats = core.stats
    controller_tick = core.controller.tick
    lp_retry = core._lp_retry_parked
    kick_wb = core._kick_write_buffer
    retire_stage = _make_retire(core, compiled)
    update_vps = _make_update_vps(core) if vp_active else None
    issue_ready = _make_issue_ready(core, compiled)
    issue_loads = _make_issue_loads(core)
    dispatch_stage = _make_dispatch(core, compiled)
    quiet_until = _make_quiet(core, compiled)

    def tick(cycle: int) -> None:  # repro: hot
        if core.done_cycle is not None:
            return
        # the wake flag observed at entry covers every mutation since
        # this core's previous tick; the re-read before the load scan
        # covers mutations made by this tick's earlier stages
        woke = core._wake_pending
        if woke:
            core._wake_pending = False
        core.cycle = cycle
        if entries:
            retire_stage()
        if vp_active:
            update_vps()
        if pinning:
            controller_tick()
            if late and core._lp_parked:
                lp_retry()
        if core._ready:
            issue_ready()
        if core._waiting_loads and (scan_always or woke or core._wake_pending
                                    or not core._waiting_stalled):
            issue_loads()
        if core._cursor < trace_len and cycle >= core._fetch_resume:
            dispatch_stage()
        if core._wb_entries and not core._wb_draining:
            kick_wb()
        if not entries and not core._wb_entries \
                and core._cursor >= trace_len:
            core.done_cycle = cycle
            stats.set("done_cycle", cycle)
            stats.set("retire_sig", core.retire_sig)

    return tick, quiet_until


class SpecializedEngine:
    """Engine over one ``System``: per-core specialized closures plus a
    run loop mirroring ``System.run_ticked``'s fast-forward structure."""

    __slots__ = ("system", "_cores", "_ticks", "_quiets", "compiled")

    def __init__(self, system) -> None:
        self.system = system
        self._cores: List[Core] = list(system.cores)
        self.compiled: List[CompiledTrace] = [
            compile_trace(core.trace) for core in self._cores]
        self._ticks = []
        self._quiets = []
        for core, compiled in zip(self._cores, self.compiled):
            tick, quiet = _specialize_core(core, compiled)
            self._ticks.append(tick)
            self._quiets.append(quiet)

    def run(self, max_cycles: int = 50_000_000,
            stop_cycle: Optional[int] = None) -> int:
        # The run loop allocates in a steady state (ROB entries, event
        # tuples) with no reference cycles on the hot path; pausing the
        # generational collector for the duration avoids periodic full
        # scans of the long-lived simulator graph.
        paused = gc.isenabled()
        if paused:
            gc.disable()
        try:
            if len(self._cores) == 1:
                return self._run_single(max_cycles, stop_cycle)
            return self._run_multi(max_cycles, stop_cycle)
        finally:
            if paused:
                gc.enable()

    def _run_single(self, max_cycles: int,
                    stop_cycle: Optional[int]) -> int:
        system = self.system
        core = self._cores[0]
        tick = self._ticks[0]
        quiet = self._quiets[0]
        events = system.events
        heap = events._heap
        run_until = events.run_until
        progress = system.progress
        deadlock_window = system.config.deadlock_cycles
        cycle = system.cycles
        last_progress_cycle = cycle
        last_retired = -1
        while core.done_cycle is None:
            if stop_cycle is not None and cycle >= stop_cycle:
                break
            cycle += 1
            if heap and heap[0][0] <= cycle:
                run_until(cycle)
            else:
                # no due events: run_until would only advance the clock
                events.now = cycle
            tick(cycle)
            if core.done_cycle is not None:
                break
            retired = progress.count
            if retired != last_retired:
                last_retired = retired
                last_progress_cycle = cycle
            elif cycle - last_progress_cycle > deadlock_window:
                raise DeadlockError(cycle, repr(core),
                                    dump=system.diagnostic_dump(cycle))
            if cycle >= max_cycles:
                raise DeadlockError(cycle, "max_cycles exceeded",
                                    dump=system.diagnostic_dump(cycle))
            bound = quiet(cycle)
            if bound > cycle + 1:
                target = bound
                if heap:
                    next_event = heap[0][0]
                    if next_event < target:
                        target = next_event
                deadlock_at = last_progress_cycle + deadlock_window + 1
                if deadlock_at < target:
                    target = deadlock_at
                if max_cycles < target:
                    target = max_cycles
                if stop_cycle is not None and stop_cycle < target:
                    target = stop_cycle
                if target > cycle + 1:
                    cycle = target - 1
        system.cycles = cycle
        return cycle

    def _run_multi(self, max_cycles: int,
                   stop_cycle: Optional[int]) -> int:
        system = self.system
        events = system.events
        heap = events._heap
        run_until = events.run_until
        progress = system.progress
        deadlock_window = system.config.deadlock_cycles
        cycle = system.cycles
        last_progress_cycle = cycle
        last_retired = -1
        live = [(core, tick, quiet) for core, tick, quiet
                in zip(self._cores, self._ticks, self._quiets)
                if core.done_cycle is None]
        while live:
            if stop_cycle is not None and cycle >= stop_cycle:
                break
            cycle += 1
            if heap and heap[0][0] <= cycle:
                run_until(cycle)
            else:
                events.now = cycle
            finished = False
            for item in live:
                item[1](cycle)
                if item[0].done_cycle is not None:
                    finished = True
            if finished:
                live = [item for item in live
                        if item[0].done_cycle is None]
                if not live:
                    break
            retired = progress.count
            if retired != last_retired:
                last_retired = retired
                last_progress_cycle = cycle
            elif cycle - last_progress_cycle > deadlock_window:
                detail = "; ".join(repr(item[0]) for item in live)
                raise DeadlockError(cycle, detail,
                                    dump=system.diagnostic_dump(cycle))
            if cycle >= max_cycles:
                raise DeadlockError(cycle, "max_cycles exceeded",
                                    dump=system.diagnostic_dump(cycle))
            bound = QUIET_FOREVER
            for item in live:
                core_bound = item[2](cycle)
                if core_bound <= cycle + 1:
                    bound = 0
                    break
                if core_bound < bound:
                    bound = core_bound
            if bound > cycle + 1:
                target = bound
                if heap:
                    next_event = heap[0][0]
                    if next_event < target:
                        target = next_event
                deadlock_at = last_progress_cycle + deadlock_window + 1
                if deadlock_at < target:
                    target = deadlock_at
                if max_cycles < target:
                    target = max_cycles
                if stop_cycle is not None and stop_cycle < target:
                    target = stop_cycle
                if target > cycle + 1:
                    cycle = target - 1
        system.cycles = cycle
        return cycle


def build_engine(system) -> Optional[SpecializedEngine]:
    """Compile a specialized engine for ``system``, or ``None`` when the
    system must stay on the generic loop (sanitizer attached — it
    shadows ``Core.tick`` through the instance dict — or a defense
    outside the specialized families)."""
    if system.sanitizer is not None:
        return None
    if system.config.defense not in SPECIALIZED_DEFENSES:
        return None
    return SpecializedEngine(system)
