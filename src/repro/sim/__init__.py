"""System assembly, experiment running, and result containers."""

from repro.sim.results import SimResult
from repro.sim.runner import (GLOBAL_CACHE, ExperimentCache, run_simulation,
                              scheme_grid)
from repro.sim.sweep import Sweep
from repro.sim.system import BarrierManager, System

__all__ = ["BarrierManager", "ExperimentCache", "GLOBAL_CACHE", "SimResult",
           "Sweep", "System", "run_simulation", "scheme_grid"]
