"""System assembly, experiment running, and result containers."""

from repro.sim.checkpoint import (CHECKPOINT_FORMAT_VERSION, load_checkpoint,
                                  restore_system, run_with_checkpoints,
                                  save_checkpoint, snapshot_system)
from repro.sim.results import SimResult
from repro.sim.runner import (GLOBAL_CACHE, ExperimentCache, collect_result,
                              run_simulation, scheme_grid)
from repro.sim.sweep import Sweep
from repro.sim.system import BarrierManager, System

__all__ = ["BarrierManager", "CHECKPOINT_FORMAT_VERSION", "ExperimentCache",
           "GLOBAL_CACHE", "SimResult", "Sweep", "System", "collect_result",
           "load_checkpoint", "restore_system", "run_simulation",
           "run_with_checkpoints", "save_checkpoint", "scheme_grid",
           "snapshot_system"]
