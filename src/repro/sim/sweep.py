"""Parameter sweeps over configurations and workload suites.

The benchmark harness and the sensitivity studies (§9.2.*) all reduce to
the same operation: run a grid of configurations over a set of workloads,
normalize to the Unsafe baseline, and aggregate.  ``Sweep`` packages that
with run memoization, so library users can reproduce or extend the
paper's studies in a few lines::

    sweep = Sweep(SystemConfig(), {"mcf": spec17_workload("mcf_r", 4000)})
    table = sweep.grid(scheme_grid())        # Tables 2/3 on one workload
    print(table["mcf"]["fence-ep"])          # normalized CPI
"""

from __future__ import annotations

from dataclasses import replace
from typing import Callable, Dict, List, Mapping, Optional, Tuple

from repro.common.params import (DefenseKind, PinningMode, SystemConfig,
                                 ThreatModel)
from repro.common.stats import geomean
from repro.isa.trace import Workload
from repro.sim.executor import Executor, Task
from repro.sim.results import SimResult
from repro.sim.runner import ExperimentCache

GridCell = Tuple[DefenseKind, ThreatModel, PinningMode]


class Sweep:
    """Runs configuration grids over a named set of workloads.

    With an ``Executor`` attached, grid-shaped calls first *prefetch*
    every uncached cell through the process pool, then assemble the
    table from the (now warm) cache serially — so tables are
    bit-identical with and without parallelism, and a failed worker
    simply leaves its cell cold for the serial pass to re-raise.
    """

    def __init__(self, base_config: SystemConfig,
                 workloads: Mapping[str, Workload],
                 cache: Optional[ExperimentCache] = None,
                 executor: Optional[Executor] = None) -> None:
        if not workloads:
            raise ValueError("sweep needs at least one workload")
        self.base_config = base_config
        self.workloads = dict(workloads)
        self.cache = cache or ExperimentCache()
        self.executor = executor

    def _prefetch(self, cells: List[Tuple[str, SystemConfig]]) -> None:
        """Fan every uncached (label, config-on-workload) cell over the
        executor, depositing results into the shared cache."""
        if self.executor is None:
            return
        tasks = [Task(f"{name}:{label}", config, self.workloads[name])
                 for name in self.workloads
                 for label, config in cells]
        self.executor.run_tasks(tasks, cache=self.cache)

    def run_one(self, config: SystemConfig, name: str) -> SimResult:
        return self.cache.run(config, self.workloads[name], key=name)

    def unsafe(self, name: str) -> SimResult:
        config = self.base_config.with_defense(DefenseKind.UNSAFE,
                                               ThreatModel.MCV)
        return self.run_one(config, name)

    def normalized(self, config: SystemConfig, name: str) -> float:
        """Normalized CPI of ``config`` on workload ``name``."""
        return (self.run_one(config, name).cycles
                / self.unsafe(name).cycles)

    def grid(self, cells: Mapping[str, GridCell]) -> Dict[str, Dict[str, float]]:
        """Normalized CPI for every (workload x grid cell)."""
        configs = [("unsafe/baseline",
                    self.base_config.with_defense(DefenseKind.UNSAFE,
                                                  ThreatModel.MCV))]
        configs += [
            (label, self.base_config.with_defense(defense, threat, pinning))
            for label, (defense, threat, pinning) in cells.items()]
        self._prefetch(configs)
        table: Dict[str, Dict[str, float]] = {}
        for name in self.workloads:
            row = {}
            for label, (defense, threat, pinning) in cells.items():
                config = self.base_config.with_defense(defense, threat,
                                                       pinning)
                row[label] = self.normalized(config, name)
            table[name] = row
        return table

    def geomeans(self, cells: Mapping[str, GridCell]) -> Dict[str, float]:
        """Suite-level geomean normalized CPI per grid cell."""
        table = self.grid(cells)
        return {label: geomean([table[name][label]
                                for name in self.workloads])
                for label in cells}

    def pinning_sweep(self, defense: DefenseKind, mode: PinningMode,
                      variants: Mapping[str, Dict],
                      ) -> Dict[str, Dict[str, float]]:
        """Sweep Pinned Loads hardware parameters (CST sizes, W_d, CPT,
        TSO rule...).  ``variants`` maps a label to ``PinnedLoadsParams``
        field overrides; returns normalized CPIs per workload/variant."""
        base = self.base_config.with_defense(defense, ThreatModel.MCV,
                                             mode)
        configs = [("unsafe/baseline",
                    self.base_config.with_defense(DefenseKind.UNSAFE,
                                                  ThreatModel.MCV))]
        configs += [
            (label, replace(base, pinning=replace(base.pinning,
                                                  **overrides)))
            for label, overrides in variants.items()]
        self._prefetch(configs)
        results: Dict[str, Dict[str, float]] = {}
        for label, overrides in variants.items():
            config = replace(base, pinning=replace(base.pinning,
                                                   **overrides))
            results[label] = {name: self.normalized(config, name)
                              for name in self.workloads}
        return results

    def apply(self, transform: Callable[[SystemConfig], SystemConfig],
              ) -> "Sweep":
        """A new sweep with a transformed base config, sharing the cache
        (and executor)."""
        return Sweep(transform(self.base_config), self.workloads,
                     cache=self.cache, executor=self.executor)
