"""System assembly and the main simulation loop."""

from __future__ import annotations

from typing import Dict, List, Optional, Set

from repro.common.errors import ConfigError, DeadlockError
from repro.common.events import EventQueue
from repro.common.params import SystemConfig
from repro.core.pipeline import QUIET_FOREVER, Core, RetireProgress
from repro.isa.trace import Workload
from repro.mem.coherence import CoherentMemory


class BarrierManager:
    """Global rendezvous for BARRIER uops in multithreaded workloads.

    A barrier releases once every participating core has arrived; arrival
    happens when the barrier uop reaches the head of its core's ROB, so a
    released barrier can never be squashed.  A released barrier's arrival
    set is dropped immediately — only the (tiny) set of released ids is
    retained for the rest of the run, so memory stays bounded by the
    number of *distinct* barriers, not by arrivals.

    A release re-arms every core's ``_wake_pending`` flag: the release
    happens synchronously inside the *last* arriving core's retire stage
    (not through the event queue), so it is exactly the kind of
    cross-core mutation the quiet/wakeup contract requires to be
    flagged.  The specialized multi-core loop relies on this to skip
    ticks of cores parked on a notified barrier (``repro.sim.engine``);
    for the generic loops the extra wake is a conservative no-op.
    """

    __slots__ = ("num_cores", "_arrived", "_released", "_cores")

    def __init__(self, num_cores: int) -> None:
        self.num_cores = num_cores
        self._arrived: Dict[int, Set[int]] = {}
        self._released: Set[int] = set()
        self._cores: List[Core] = []   # backref, set by System.__init__

    def arrive(self, barrier_id: int, core_id: int) -> None:
        if barrier_id in self._released:
            return
        arrived = self._arrived.setdefault(barrier_id, set())
        arrived.add(core_id)
        if len(arrived) >= self.num_cores:
            self._released.add(barrier_id)
            del self._arrived[barrier_id]
            for core in self._cores:
                core._wake_pending = True

    def released(self, barrier_id: int) -> bool:
        return barrier_id in self._released


class System:
    """A configured multicore machine bound to one workload."""

    def __init__(self, config: SystemConfig, workload: Workload) -> None:
        config.validate()
        if workload.num_threads != config.num_cores:
            raise ConfigError(
                f"workload has {workload.num_threads} threads but the "
                f"system has {config.num_cores} cores")
        self.config = config
        self.workload = workload
        self.events = EventQueue()
        self.mem = CoherentMemory(config, self.events)
        self.barriers = BarrierManager(config.num_cores)
        self.progress = RetireProgress()
        self.cores: List[Core] = [
            Core(core_id, config, trace, self.mem, self.events,
                 self.barriers, progress=self.progress)
            for core_id, trace in enumerate(workload.traces)]
        self.barriers._cores = self.cores
        self.cycles = 0
        self.sanitizer: Optional["Sanitizer"] = None
        if config.sanitize:
            # deferred import: the verify subsystem is optional tooling
            from repro.verify.sanitizer import Sanitizer
            self.sanitizer = Sanitizer(self)
            self.sanitizer.attach()
        self.chaos = None
        if config.chaos is not None:
            # deferred import: fault injection is optional tooling
            from repro.chaos.engine import ChaosEngine
            self.chaos = ChaosEngine(config.chaos, self)
            if self.sanitizer is not None:
                # wrap before install so even the first scheduled fault
                # event goes through the trace-recording shims
                self.sanitizer.attach_chaos(self.chaos)
            self.chaos.install()
        # lazily-built specialized engine (repro.sim.engine); ``False``
        # records that this system is ineligible so ``run`` probes once
        self._engine = None

    def __getstate__(self):
        # the engine is a web of closures over live component state —
        # derived, unpicklable, and cheap to recompile after a restore
        state = self.__dict__.copy()
        state.pop("_engine", None)
        return state

    def __setstate__(self, state) -> None:
        self.__dict__.update(state)
        self._engine = None

    def run(self, max_cycles: int = 50_000_000,
            stop_cycle: Optional[int] = None) -> int:
        """Run to completion of every trace; returns the cycle reached.

        ``stop_cycle`` pauses the run once that cycle has been simulated
        (instead of running to completion) so a checkpoint can be taken
        (``repro.sim.checkpoint``); calling ``run`` again resumes from
        ``self.cycles`` and the stitched run is bit-identical to an
        uninterrupted one.

        Dispatches to the struct-of-arrays specialized engine
        (``repro.sim.engine``) when the defense scheme has one and no
        sanitizer is attached; otherwise falls back to the generic
        guarded loop ``run_ticked``.  Both are bit-exact against
        ``run_reference`` (asserted by the tests and by every
        ``repro bench`` hot-loop cell).
        """
        if self.sanitizer is None:
            engine = self._engine
            if engine is None:
                from repro.sim.engine import build_engine
                engine = build_engine(self)
                if engine is None:
                    engine = False      # ineligible; don't probe again
                self._engine = engine
            if engine is not False:
                return engine.run(max_cycles, stop_cycle)
        return self.run_ticked(max_cycles, stop_cycle)

    def run_ticked(self, max_cycles: int = 50_000_000,
                   stop_cycle: Optional[int] = None) -> int:
        """The generic guarded per-core tick loop (the PR 4 engine).

        This is the fallback for configurations without a specialized
        inner loop and for sanitized runs (the sanitizer shadows
        ``Core.tick``, so every tick must go through the method).  Two
        things keep the
        per-cycle cost low without changing simulated behaviour:

        * the deadlock scan is incremental — cores bump one shared
          ``RetireProgress`` counter at retire, so detecting forward
          progress is O(1) per cycle instead of an O(cores) stats walk;
        * finished cores leave the tick list instead of being re-checked
          every remaining cycle;
        * when every live core reports (``Core.quiet_until``) that its
          next ticks are provably no-ops — typically all cores stalled
          on outstanding memory misses, or defended cores whose VP /
          taint / pinning machinery is at a fixpoint (the
          ``_wake_pending`` contract in ``Core.quiet_until``) — the
          loop fast-forwards the cycle counter to the next pending
          event instead of ticking through the dead cycles one by one.

        ``run_reference`` preserves the original per-cycle structure and
        must produce bit-identical cycle counts (asserted by the tests;
        timed against this loop by ``python -m repro bench``).
        """
        cycle = self.cycles
        last_progress_cycle = cycle
        last_retired = -1
        deadlock_window = self.config.deadlock_cycles
        events = self.events
        progress = self.progress
        # the sanitizer observes per-tick invariants; give it every tick
        fast_forward = self.sanitizer is None
        live = [core for core in self.cores if not core.done]
        while live:
            if stop_cycle is not None and cycle >= stop_cycle:
                break
            cycle += 1
            events.run_until(cycle)
            finished = False
            for core in live:
                core.tick(cycle)
                if core.done_cycle is not None:
                    finished = True
            if finished:
                live = [core for core in live if core.done_cycle is None]
                if not live:
                    break
            retired = progress.count
            if retired != last_retired:
                last_retired = retired
                last_progress_cycle = cycle
            elif cycle - last_progress_cycle > deadlock_window:
                detail = "; ".join(repr(core) for core in self.cores
                                   if not core.done)
                raise DeadlockError(cycle, detail,
                                    dump=self.diagnostic_dump(cycle))
            if cycle >= max_cycles:
                raise DeadlockError(cycle, "max_cycles exceeded",
                                    dump=self.diagnostic_dump(cycle))
            if fast_forward:
                bound = QUIET_FOREVER
                for core in live:
                    core_bound = core.quiet_until(cycle)
                    if core_bound <= cycle + 1:
                        bound = 0
                        break
                    if core_bound < bound:
                        bound = core_bound
                if bound > cycle + 1:
                    # ticks strictly before `target` are no-ops; land on
                    # the first cycle where anything can happen again —
                    # an event delivery, a fetch resteer, the deadlock
                    # check, or the max_cycles backstop
                    target = bound
                    next_event = events.next_time()
                    if next_event is not None and next_event < target:
                        target = next_event
                    deadlock_at = last_progress_cycle + deadlock_window + 1
                    if deadlock_at < target:
                        target = deadlock_at
                    if max_cycles < target:
                        target = max_cycles
                    if stop_cycle is not None and stop_cycle < target:
                        target = stop_cycle
                    if target > cycle + 1:
                        cycle = target - 1
        self.cycles = cycle
        if self.sanitizer is not None and self.done:
            self.sanitizer.finish()
        return cycle

    def run_reference(self, max_cycles: int = 50_000_000) -> int:
        """The unoptimized run loop: full per-cycle core scan, O(cores)
        retired summation, and unguarded per-stage calls via
        ``Core.tick_reference``.  Kept as the validation baseline for the
        optimized ``run`` — same simulated behaviour, measurably slower
        (``python -m repro bench`` reports the ratio)."""
        cycle = 0
        last_progress_cycle = 0
        last_retired = -1
        deadlock_window = self.config.deadlock_cycles
        cores = self.cores
        events = self.events
        while True:
            cycle += 1
            events.run_until(cycle)
            all_done = True
            for core in cores:
                if not core.done:
                    core.tick_reference(cycle)
                    if not core.done:
                        all_done = False
            if all_done:
                break
            retired = sum(core.retired for core in cores)
            if retired != last_retired:
                last_retired = retired
                last_progress_cycle = cycle
            elif cycle - last_progress_cycle > deadlock_window:
                detail = "; ".join(repr(core) for core in cores
                                   if not core.done)
                raise DeadlockError(cycle, detail,
                                    dump=self.diagnostic_dump(cycle))
            if cycle >= max_cycles:
                raise DeadlockError(cycle, "max_cycles exceeded",
                                    dump=self.diagnostic_dump(cycle))
        self.cycles = cycle
        if self.sanitizer is not None:
            self.sanitizer.finish()
        return cycle

    @property
    def total_retired(self) -> int:
        return sum(core.retired for core in self.cores)

    @property
    def done(self) -> bool:
        """Every trace has fully retired (nothing left to simulate)."""
        return all(core.done for core in self.cores)

    def diagnostic_dump(self, cycle: Optional[int] = None) -> Dict:
        """Structured snapshot of the stuck (or paused) machine, attached
        to ``DeadlockError`` so postmortems don't need a rerun: per-core
        ROB head and oldest-load state, the earliest pending events, and
        pin/CPT occupancy (inside each core's ``debug_state``)."""
        return {
            "cycle": self.cycles if cycle is None else cycle,
            "retired_total": self.total_retired,
            "pending_events": self.events.pending_summary(),
            "busy_lines": [hex(line)
                           for line in sorted(self.mem._busy_lines)],
            "cores": [core.debug_state() for core in self.cores],
        }
