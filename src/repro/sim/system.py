"""System assembly and the main simulation loop."""

from __future__ import annotations

from typing import Dict, List, Optional, Set

from repro.common.errors import ConfigError, DeadlockError
from repro.common.events import EventQueue
from repro.common.params import SystemConfig
from repro.core.pipeline import Core
from repro.isa.trace import Workload
from repro.mem.coherence import CoherentMemory


class BarrierManager:
    """Global rendezvous for BARRIER uops in multithreaded workloads.

    A barrier releases once every participating core has arrived; arrival
    happens when the barrier uop reaches the head of its core's ROB, so a
    released barrier can never be squashed.
    """

    def __init__(self, num_cores: int) -> None:
        self.num_cores = num_cores
        self._arrived: Dict[int, Set[int]] = {}
        self._released: Set[int] = set()

    def arrive(self, barrier_id: int, core_id: int) -> None:
        arrived = self._arrived.setdefault(barrier_id, set())
        arrived.add(core_id)
        if len(arrived) >= self.num_cores:
            self._released.add(barrier_id)

    def released(self, barrier_id: int) -> bool:
        return barrier_id in self._released


class System:
    """A configured multicore machine bound to one workload."""

    def __init__(self, config: SystemConfig, workload: Workload) -> None:
        config.validate()
        if workload.num_threads != config.num_cores:
            raise ConfigError(
                f"workload has {workload.num_threads} threads but the "
                f"system has {config.num_cores} cores")
        self.config = config
        self.workload = workload
        self.events = EventQueue()
        self.mem = CoherentMemory(config, self.events)
        self.barriers = BarrierManager(config.num_cores)
        self.cores: List[Core] = [
            Core(core_id, config, trace, self.mem, self.events,
                 self.barriers)
            for core_id, trace in enumerate(workload.traces)]
        self.cycles = 0
        self.sanitizer: Optional["Sanitizer"] = None
        if config.sanitize:
            # deferred import: the verify subsystem is optional tooling
            from repro.verify.sanitizer import Sanitizer
            self.sanitizer = Sanitizer(self)
            self.sanitizer.attach()

    def run(self, max_cycles: int = 50_000_000) -> int:
        """Run to completion of every trace; returns total cycles."""
        cycle = 0
        last_progress_cycle = 0
        last_retired = -1
        deadlock_window = self.config.deadlock_cycles
        cores = self.cores
        events = self.events
        while True:
            cycle += 1
            events.run_until(cycle)
            all_done = True
            for core in cores:
                if not core.done:
                    core.tick(cycle)
                    if not core.done:
                        all_done = False
            if all_done:
                break
            retired = sum(core.retired for core in cores)
            if retired != last_retired:
                last_retired = retired
                last_progress_cycle = cycle
            elif cycle - last_progress_cycle > deadlock_window:
                detail = "; ".join(repr(core) for core in cores
                                   if not core.done)
                raise DeadlockError(cycle, detail)
            if cycle >= max_cycles:
                raise DeadlockError(cycle, "max_cycles exceeded")
        self.cycles = cycle
        if self.sanitizer is not None:
            self.sanitizer.finish()
        return cycle

    @property
    def total_retired(self) -> int:
        return sum(core.retired for core in self.cores)
