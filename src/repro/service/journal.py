"""Append-only, checksummed write-ahead journal for the job service.

Every job transition (``submitted → running → done/failed``, plus
``requeued`` for drained/interrupted jobs) is one JSON line, written
*before* the transition takes effect (write-ahead), flushed and —
by default — fsynced, so a ``kill -9`` of the service at any moment
loses at most the line being written.  On restart, ``replay()`` +
``reduce_records()`` rebuild the exact queue/running/done state and the
supervisor resumes the unfinished jobs; completed work is never redone
because results live in the content-addressed ``ResultStore`` keyed by
the same job id.

Wire format — one record per line, canonical JSON with sorted keys:

    {"data": {...}, "job": "<job id>", "seq": N, "sum": "<sha256-16>",
     "type": "submitted", "v": 1}

``sum`` is the first 16 hex digits of sha256 over the canonical JSON of
the record *without* the ``sum`` field.  Torn tails are expected (a
crash mid-``write``) and tolerated: an undecodable or checksum-failing
**final** line is dropped with a warning.  The same damage anywhere
*earlier* means the file was corrupted after the fact (bit rot, manual
edits, two services sharing one journal) and raises ``JournalError`` —
replaying around a hole could resurrect a finished job or drop a
pending one, and the journal refuses to guess.

``compact()`` atomically (temp file + ``os.replace``) rewrites the
journal as one ``snapshot`` record per live job, bounding replay time
and file size; the supervisor compacts on startup after a successful
replay and periodically while running.
"""

from __future__ import annotations

import hashlib
import json
import logging
import os
import tempfile
from typing import Any, Dict, List, Optional

from repro.common.errors import JournalError

_log = logging.getLogger(__name__)

JOURNAL_FORMAT_VERSION = 1

#: Record types, in the order a job normally experiences them.
RECORD_TYPES = ("submitted", "running", "requeued", "done", "failed",
                "snapshot")


def _record_checksum(record: Dict[str, Any]) -> str:
    body = {k: v for k, v in record.items() if k != "sum"}
    text = json.dumps(body, sort_keys=True)
    return hashlib.sha256(text.encode()).hexdigest()[:16]


def encode_record(seq: int, rtype: str, job_id: str,
                  data: Optional[Dict[str, Any]] = None) -> str:
    """One journal line (newline-terminated, checksummed)."""
    if rtype not in RECORD_TYPES:
        raise ValueError(f"unknown record type {rtype!r}")
    record = {"data": data or {}, "job": job_id, "seq": seq,
              "type": rtype, "v": JOURNAL_FORMAT_VERSION}
    record["sum"] = _record_checksum(record)
    return json.dumps(record, sort_keys=True) + "\n"


def decode_record(line: str) -> Dict[str, Any]:
    """Parse + verify one journal line; raises ``JournalError``."""
    try:
        record = json.loads(line)
    except ValueError as err:
        raise JournalError(f"undecodable journal line: {err}") from err
    if not isinstance(record, dict):
        raise JournalError(f"journal line is not an object: "
                           f"{type(record).__name__}")
    if record.get("v") != JOURNAL_FORMAT_VERSION:
        raise JournalError(f"journal format {record.get('v')!r} does "
                           f"not match {JOURNAL_FORMAT_VERSION}")
    if record.get("type") not in RECORD_TYPES:
        raise JournalError(f"unknown record type {record.get('type')!r}")
    if record.get("sum") != _record_checksum(record):
        raise JournalError(f"journal checksum mismatch on record "
                           f"seq={record.get('seq')}")
    return record


class Journal:
    """The service's durable transition log (see module docs)."""

    def __init__(self, path: str, fsync: bool = True) -> None:
        self.path = os.fspath(path)
        self.fsync = fsync
        self._fh = None
        self._seq = 0
        #: Appends since the last compaction; the supervisor uses this
        #: to decide when another compaction pays for itself.
        self.appends_since_compact = 0

    def _open(self):
        if self._fh is None:
            directory = os.path.dirname(os.path.abspath(self.path))
            os.makedirs(directory, exist_ok=True)
            self._fh = open(self.path, "a", encoding="utf-8")
        return self._fh

    def append(self, rtype: str, job_id: str,
               data: Optional[Dict[str, Any]] = None) -> int:
        """Durably append one transition; returns its sequence number."""
        self._seq += 1
        line = encode_record(self._seq, rtype, job_id, data)
        fh = self._open()
        fh.write(line)
        fh.flush()
        if self.fsync:
            os.fsync(fh.fileno())
        self.appends_since_compact += 1
        return self._seq

    def replay(self) -> List[Dict[str, Any]]:
        """All valid records, in order; tolerates a torn final line.

        Also fast-forwards the append sequence past the highest replayed
        ``seq`` so post-replay appends keep the total order.
        """
        records: List[Dict[str, Any]] = []
        try:
            with open(self.path, "r", encoding="utf-8") as fh:
                lines = fh.readlines()
        except OSError:
            return records
        for index, line in enumerate(lines):
            if not line.strip():
                continue
            try:
                records.append(decode_record(line))
            except JournalError as err:
                if index == len(lines) - 1:
                    _log.warning("journal: dropping torn final line "
                                 "(%s) — expected after a crash "
                                 "mid-append", err)
                    break
                raise JournalError(
                    f"{self.path}: corrupt record at line {index + 1} "
                    f"(of {len(lines)}): {err}") from err
        if records:
            self._seq = max(self._seq,
                            max(record["seq"] for record in records))
        return records

    def compact(self, state: Dict[str, Dict[str, Any]]) -> None:
        """Atomically rewrite the journal as one ``snapshot`` record per
        job in ``state`` (the ``reduce_records`` output), then reopen
        for appending.  A crash anywhere during compaction leaves either
        the old journal or the new one — never a mix."""
        if self._fh is not None:
            self._fh.close()
            self._fh = None
        directory = os.path.dirname(os.path.abspath(self.path))
        os.makedirs(directory, exist_ok=True)
        fd, tmp = tempfile.mkstemp(dir=directory, suffix=".journal.tmp")
        try:
            with os.fdopen(fd, "w", encoding="utf-8") as fh:
                seq = 0
                for job_id in sorted(state):
                    seq += 1
                    fh.write(encode_record(seq, "snapshot", job_id,
                                           state[job_id]))
                fh.flush()
                if self.fsync:
                    os.fsync(fh.fileno())
            os.replace(tmp, self.path)
        except BaseException:
            try:
                os.unlink(tmp)
            except OSError:
                pass
            raise
        self._seq = len(state)
        self.appends_since_compact = 0

    def close(self) -> None:
        if self._fh is not None:
            self._fh.close()
            self._fh = None


def reduce_records(records: List[Dict[str, Any]]
                   ) -> Dict[str, Dict[str, Any]]:
    """Fold a record stream into per-job state (the journal's state
    machine): ``queued → running → done | failed``, with ``requeued``
    sending a job back to ``queued`` with ``resume=True`` so the next
    attempt continues from its rolling checkpoint.

    The returned docs are JSON-serializable and are exactly what
    ``Journal.compact`` snapshots.
    """
    state: Dict[str, Dict[str, Any]] = {}
    for record in records:
        job_id = record["job"]
        rtype = record["type"]
        data = record.get("data", {})
        if rtype == "snapshot":
            state[job_id] = dict(data)
            continue
        if rtype == "submitted":
            if job_id in state:
                continue  # idempotent resubmission of a known job
            state[job_id] = {
                "status": "queued", "spec": data.get("spec"),
                "priority": data.get("priority", 0), "attempts": 0,
                "resume": False,
            }
            continue
        entry = state.get(job_id)
        if entry is None:
            # a transition for a job we never saw submitted: the
            # journal's write-ahead discipline makes this corruption
            raise JournalError(f"record seq={record['seq']} "
                               f"({rtype}) for unknown job {job_id}")
        if rtype == "running":
            entry["status"] = "running"
            entry["attempts"] = data.get("attempt",
                                         entry["attempts"] + 1)
        elif rtype == "requeued":
            entry["status"] = "queued"
            entry["resume"] = True
            if "checkpoint_cycle" in data:
                entry["checkpoint_cycle"] = data["checkpoint_cycle"]
        elif rtype == "done":
            entry["status"] = "done"
            entry["resume"] = False
            if "cycles" in data:
                entry["cycles"] = data["cycles"]
        elif rtype == "failed":
            entry["status"] = "failed"
            entry["failure"] = {"kind": data.get("kind", "error"),
                                "message": data.get("message", "")}
    return state
