"""Crash-tolerant simulation job service (``repro serve`` / ``submit``).

The layer above the self-healing executor: a durable write-ahead
journal of job transitions, bounded admission with backpressure, a
supervising watchdog with staged degradation, and a localhost HTTP
front end.  See ``docs/resilience.md`` ("The job service") for the
journal format, state machine, degradation ladder, and error taxonomy.
"""

from repro.service.client import ServiceClient
from repro.service.jobs import (PRIORITY_BULK, PRIORITY_DEFAULT,
                                PRIORITY_INTERACTIVE, JobSpec, build_cell)
from repro.service.journal import (JOURNAL_FORMAT_VERSION, Journal,
                                   reduce_records)
from repro.service.queue import AdmissionQueue
from repro.service.server import ServiceServer, serve
from repro.service.supervisor import DEGRADATION_LADDER, Supervisor

__all__ = [
    "AdmissionQueue", "DEGRADATION_LADDER", "JOURNAL_FORMAT_VERSION",
    "JobSpec", "Journal", "PRIORITY_BULK", "PRIORITY_DEFAULT",
    "PRIORITY_INTERACTIVE", "ServiceClient", "ServiceServer",
    "Supervisor", "build_cell", "reduce_records", "serve",
]
