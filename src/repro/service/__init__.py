"""Crash-tolerant simulation job service (``repro serve`` / ``submit``).

The layer above the self-healing executor: a durable write-ahead
journal of job transitions, bounded admission with backpressure and
per-tenant fair share, a supervising watchdog with staged degradation,
and a localhost HTTP front end.  ``repro.service.fabric`` federates N
such shards behind one consistent-hash-routing client with replica
failover and store read-through.  See ``docs/resilience.md`` ("The job
service" and "Federation") for the journal format, state machine,
degradation ladder, error taxonomy, and the ring/replica contract.
"""

from repro.service.client import ServiceClient
from repro.service.fabric import (FaultProxy, FederatedClient, HashRing,
                                  parse_ring)
from repro.service.jobs import (PRIORITY_BULK, PRIORITY_DEFAULT,
                                PRIORITY_INTERACTIVE, JobSpec, build_cell)
from repro.service.journal import (JOURNAL_FORMAT_VERSION, Journal,
                                   reduce_records)
from repro.service.queue import DEFAULT_TENANT, AdmissionQueue
from repro.service.server import ServiceServer, serve
from repro.service.supervisor import DEGRADATION_LADDER, Supervisor

__all__ = [
    "AdmissionQueue", "DEFAULT_TENANT", "DEGRADATION_LADDER",
    "FaultProxy", "FederatedClient", "HashRing",
    "JOURNAL_FORMAT_VERSION", "JobSpec", "Journal", "PRIORITY_BULK",
    "PRIORITY_DEFAULT", "PRIORITY_INTERACTIVE", "ServiceClient",
    "ServiceServer", "Supervisor", "build_cell", "parse_ring",
    "reduce_records", "serve",
]
