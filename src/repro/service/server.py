"""Localhost HTTP front end for the job service (``repro serve``).

A deliberately boring, stdlib-only surface over the supervisor:

* ``POST /jobs``    — submit a job spec; 202 (queued/running), 200
  (already done — idempotent resubmission), 400/429/503 per the error
  taxonomy in ``repro.common.errors``
* ``GET /jobs/<id>``— job status; done jobs embed the result document
* ``GET /jobs?watch=<id>[,<id>...]&timeout_s=N`` — long-poll: blocks
  until at least one watched job is terminal (those docs, results
  embedded) or the timeout elapses (``{"jobs": {}, "pending": [...]}``)
  — the streaming feed that lets sweep clients stop fixed-interval
  polling
* ``GET /store/<key>`` — raw local ``ResultStore`` payload (format
  marker + result + checksum); peer shards read-through this for
  store federation.  Local-only by contract: never triggers a further
  peer fetch.
* ``GET /ring``     — this shard's view of the federation (ring
  member URLs, its own index, ring stats); 404 on a standalone server
* ``GET /healthz``  — liveness (200 while the process serves requests)
* ``GET /readyz``   — readiness (503 while draining or reject-only)
* ``GET /stats``    — supervisor counters, queue depth, level
* ``POST /drain``   — begin a graceful drain (also wired to
  SIGTERM/SIGINT by ``repro serve``)

Every error body is ``{"error": {"code", "message"[, "retry_after_s"]}}``
with the retry hint mirrored in a ``Retry-After`` header, so generic
HTTP clients and ``repro.service.client`` see the same taxonomy.
"""

from __future__ import annotations

import json
import logging
import math
import signal
import threading
import urllib.parse
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer
from typing import Any, Dict, Optional, Tuple

from repro.common.errors import (BadRequestError, JobNotFoundError,
                                 ServiceError)
from repro.service.jobs import JobSpec
from repro.service.supervisor import Supervisor

_log = logging.getLogger(__name__)

#: Submission bodies above this are refused outright (a job spec is a
#: few hundred bytes; anything larger is a mistake or an attack).
MAX_BODY_BYTES = 1 << 20

#: Per-request ceiling on the long-poll watch window: a client asking
#: for more gets clamped, so a handler thread can never be parked
#: indefinitely by one request (clients re-issue to keep watching).
MAX_WATCH_S = 60.0


class ServiceHandler(BaseHTTPRequestHandler):
    """Routes requests to the supervisor attached to the server."""

    server_version = "repro-service/1"
    protocol_version = "HTTP/1.1"

    @property
    def supervisor(self) -> Supervisor:
        return self.server.supervisor  # type: ignore[attr-defined]

    def log_message(self, fmt: str, *args: Any) -> None:
        _log.debug("%s %s", self.address_string(), fmt % args)

    # -- plumbing ------------------------------------------------------

    def _send_json(self, status: int, doc: Dict[str, Any],
                   retry_after_s: Optional[float] = None) -> None:
        body = json.dumps(doc, sort_keys=True).encode()
        self.send_response(status)
        self.send_header("Content-Type", "application/json")
        self.send_header("Content-Length", str(len(body)))
        if retry_after_s is not None:
            self.send_header("Retry-After",
                             str(max(1, math.ceil(retry_after_s))))
        self.end_headers()
        self.wfile.write(body)

    def _send_error_doc(self, err: ServiceError) -> None:
        self._send_json(err.http_status, {"error": err.to_doc()},
                        retry_after_s=err.retry_after_s)

    def _read_body(self) -> Any:
        length = int(self.headers.get("Content-Length") or 0)
        if length > MAX_BODY_BYTES:
            raise BadRequestError(f"request body of {length} bytes "
                                  f"exceeds {MAX_BODY_BYTES}")
        raw = self.rfile.read(length) if length else b""
        if not raw:
            raise BadRequestError("request body must be a JSON object")
        try:
            return json.loads(raw)
        except ValueError as err:
            raise BadRequestError(f"request body is not valid JSON: "
                                  f"{err}")

    def _dispatch(self, handler) -> None:
        try:
            status, doc = handler()
            self._send_json(status, doc)
        except ServiceError as err:
            self._send_error_doc(err)
        except Exception as err:  # noqa: BLE001 - HTTP boundary
            _log.exception("unhandled error serving %s %s",
                           self.command, self.path)
            self._send_error_doc(ServiceError(
                f"{type(err).__name__}: {err}"))

    # -- routes --------------------------------------------------------

    def do_GET(self) -> None:  # noqa: N802 - http.server API
        self._dispatch(self._route_get)

    def do_POST(self) -> None:  # noqa: N802 - http.server API
        self._dispatch(self._route_post)

    def _split_path(self) -> Tuple[str, Dict[str, str]]:
        """``self.path`` as ``(path, query)`` with the last value
        winning for repeated query keys."""
        parts = urllib.parse.urlsplit(self.path)
        query = {key: values[-1] for key, values
                 in urllib.parse.parse_qs(parts.query).items()}
        return parts.path, query

    def _route_get(self) -> Tuple[int, Dict[str, Any]]:
        supervisor = self.supervisor
        path, query = self._split_path()
        if path == "/healthz":
            return 200, {"ok": True}
        if path == "/readyz":
            if supervisor.draining:
                raise _not_ready("draining")
            if supervisor.level == "reject":
                raise _not_ready("rejecting")
            return 200, {"ready": True, "level": supervisor.level}
        if path == "/stats":
            return 200, supervisor.stats()
        if path == "/ring":
            fabric = getattr(self.server, "fabric", None)
            if fabric is None:
                raise JobNotFoundError(
                    "this server is standalone (started without "
                    "--ring); no federation info to report")
            return 200, fabric
        if path == "/jobs":
            return self._route_watch(query)
        if path.startswith("/store/"):
            key = path[len("/store/"):]
            payload = supervisor.store_payload(key)
            if payload is None:
                raise JobNotFoundError(f"no stored result for "
                                       f"{key[:16]}")
            return 200, payload
        if path.startswith("/jobs/"):
            job_id = path[len("/jobs/"):]
            doc = supervisor.status(job_id)
            if doc["status"] == "done":
                result = supervisor.result_doc(job_id)
                if result is not None:
                    doc["result"] = result
            return 200, doc
        raise JobNotFoundError(f"no route for GET {path}")

    def _route_watch(self, query: Dict[str, str]
                     ) -> Tuple[int, Dict[str, Any]]:
        """Long-poll ``GET /jobs?watch=``: park the handler thread on
        the supervisor's change condition until a watched job lands."""
        watch = query.get("watch", "")
        job_ids = [job_id for job_id in watch.split(",") if job_id]
        if not job_ids:
            raise BadRequestError("GET /jobs needs ?watch=<job id>"
                                  "[,<job id>...]")
        try:
            timeout_s = float(query.get("timeout_s", "30"))
        except ValueError:
            raise BadRequestError("timeout_s must be a number")
        timeout_s = min(max(timeout_s, 0.0), MAX_WATCH_S)
        done = self.supervisor.wait_for(job_ids, timeout_s=timeout_s)
        for job_id, doc in done.items():
            if doc["status"] == "done":
                result = self.supervisor.result_doc(job_id)
                if result is not None:
                    doc["result"] = result
        return 200, {"jobs": done,
                     "pending": [job_id for job_id in job_ids
                                 if job_id not in done]}

    def _route_post(self) -> Tuple[int, Dict[str, Any]]:
        supervisor = self.supervisor
        path, _query = self._split_path()
        if path == "/jobs":
            spec = JobSpec.from_doc(self._read_body())
            doc = supervisor.submit(spec)
            return (200 if doc["status"] == "done" else 202), doc
        if path == "/drain":
            threading.Thread(target=supervisor.drain,
                             name="repro-service-drain",
                             daemon=True).start()
            return 202, {"draining": True}
        raise JobNotFoundError(f"no route for POST {path}")


def _not_ready(why: str) -> ServiceError:
    from repro.common.errors import DrainingError, RejectingError
    cls = DrainingError if why == "draining" else RejectingError
    return cls(f"not ready: {why}", retry_after_s=1.0)


class ServiceServer(ThreadingHTTPServer):
    """``ThreadingHTTPServer`` carrying its supervisor and (when the
    process is one shard of a federation) its ring description, served
    verbatim at ``GET /ring``."""

    daemon_threads = True

    def __init__(self, address: Tuple[str, int],
                 supervisor: Supervisor,
                 fabric: Optional[Dict[str, Any]] = None) -> None:
        super().__init__(address, ServiceHandler)
        self.supervisor = supervisor
        self.fabric = fabric


def serve(supervisor: Supervisor, host: str = "127.0.0.1",
          port: int = 8321,
          install_signal_handlers: bool = True,
          fabric: Optional[Dict[str, Any]] = None) -> None:
    """Run the service until it drains (SIGTERM/SIGINT/``POST /drain``).

    Blocks the calling thread.  The supervisor is started if its worker
    thread is not already running.  ``fabric`` (from ``repro serve
    --ring``) is the shard's federation descriptor, exposed at
    ``GET /ring``.
    """
    server = ServiceServer((host, port), supervisor, fabric=fabric)
    supervisor.start()
    done = threading.Event()

    def _shutdown(reason: str) -> None:
        _log.info("drain requested (%s)", reason)
        supervisor.drain(wait=True)
        done.set()
        # shutdown() must come from another thread than serve_forever's
        threading.Thread(target=server.shutdown, daemon=True).start()

    if install_signal_handlers:
        for signum in (signal.SIGTERM, signal.SIGINT):
            signal.signal(
                signum,
                lambda _s, _f, s=signum: threading.Thread(
                    target=_shutdown, args=(signal.Signals(s).name,),
                    daemon=True).start())
    _log.info("repro service listening on http://%s:%d (root %s)",
              host, port, supervisor.root)
    try:
        server.serve_forever(poll_interval=0.2)
    finally:
        if not done.is_set():
            supervisor.drain(wait=True)
        supervisor.close()
        server.server_close()
