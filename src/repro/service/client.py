"""HTTP client for the job service, with taxonomy-aware retries.

``ServiceClient`` speaks the error taxonomy documented in
``repro.common.errors``: transient conditions (connection refused while
the service restarts, 429 backpressure, 503 drain/reject) are retried
with capped exponential backoff plus deterministic jitter, always
honoring the server's ``retry_after_s`` hint when one is present;
permanent conditions (400 bad spec, 404, job failures) surface
immediately as the matching ``ServiceError`` subclass.

Jitter is drawn from a client-owned seeded ``random.Random`` — never
the global RNG — so client behaviour in tests is reproducible and the
simulator's determinism lint stays clean.
"""

from __future__ import annotations

import json
import random
import time
import urllib.error
import urllib.request
from typing import Any, Dict, Optional

from repro.common.errors import (DrainingError, JobFailedError,
                                 QueueFullError, RejectingError,
                                 ServiceError)
from repro.service.jobs import JobSpec
from repro.sim.results import SimResult

#: Errors worth retrying: the condition is expected to clear.
_TRANSIENT = (QueueFullError, RejectingError, DrainingError)


class ServiceClient:
    """Thin, retrying client for one service endpoint."""

    def __init__(self, base_url: str = "http://127.0.0.1:8321",
                 retries: int = 8, backoff_s: float = 0.1,
                 backoff_cap_s: float = 5.0,
                 jitter_seed: int = 0,
                 timeout_s: float = 10.0) -> None:
        self.base_url = base_url.rstrip("/")
        self.retries = retries
        self.backoff_s = backoff_s
        self.backoff_cap_s = backoff_cap_s
        self.timeout_s = timeout_s
        self._rng = random.Random(jitter_seed)

    # -- transport -----------------------------------------------------

    def _request_once(self, method: str, path: str,
                      body: Optional[Dict[str, Any]]) -> Dict[str, Any]:
        data = json.dumps(body).encode() if body is not None else None
        request = urllib.request.Request(
            self.base_url + path, data=data, method=method,
            headers={"Content-Type": "application/json"})
        try:
            with urllib.request.urlopen(
                    request, timeout=self.timeout_s) as response:
                return json.loads(response.read().decode())
        except urllib.error.HTTPError as err:
            payload = err.read().decode(errors="replace")
            try:
                doc = json.loads(payload).get("error", {})
            except ValueError:
                doc = {"code": "internal",
                       "message": f"HTTP {err.code}: {payload[:200]}"}
            raise ServiceError.from_doc(doc) from None
        except urllib.error.URLError as err:
            raise ConnectionError(
                f"{method} {path}: {err.reason}") from err

    def _delay(self, attempt: int,
               retry_after_s: Optional[float]) -> float:
        backoff = min(self.backoff_cap_s,
                      self.backoff_s * (2 ** attempt))
        # full jitter (deterministic RNG): desynchronizes a fleet of
        # clients hammering a freshly restarted service
        delay = backoff * (0.5 + 0.5 * self._rng.random())
        if retry_after_s is not None:
            delay = max(delay, float(retry_after_s))
        return delay

    def _request(self, method: str, path: str,
                 body: Optional[Dict[str, Any]] = None) -> Dict[str, Any]:
        attempt = 0
        while True:
            try:
                return self._request_once(method, path, body)
            except _TRANSIENT as err:
                if attempt >= self.retries:
                    raise
                delay = self._delay(attempt, err.retry_after_s)
            except ConnectionError:
                if attempt >= self.retries:
                    raise
                delay = self._delay(attempt, None)
            attempt += 1
            time.sleep(delay)

    # -- API -----------------------------------------------------------

    def submit(self, spec: JobSpec) -> Dict[str, Any]:
        return self._request("POST", "/jobs", spec.to_doc())

    def job(self, job_id: str) -> Dict[str, Any]:
        return self._request("GET", f"/jobs/{job_id}")

    def healthz(self) -> Dict[str, Any]:
        return self._request("GET", "/healthz")

    def readyz(self) -> Dict[str, Any]:
        return self._request("GET", "/readyz")

    def stats(self) -> Dict[str, Any]:
        return self._request("GET", "/stats")

    def drain(self) -> Dict[str, Any]:
        return self._request("POST", "/drain", {})

    def wait(self, job_id: str, timeout_s: float = 120.0,
             poll_s: float = 0.2) -> Dict[str, Any]:
        """Poll until the job reaches ``done`` or ``failed``.

        Raises ``JobFailedError`` on failure and ``TimeoutError`` if the
        deadline passes first.  Polling survives a service restart
        mid-job: connection errors inside ``_request`` retry, and the
        replayed job keeps its id.
        """
        deadline = time.monotonic() + timeout_s  # repro: allow-wall-clock
        while True:
            doc = self.job(job_id)
            if doc["status"] == "done":
                return doc
            if doc["status"] == "failed":
                failure = doc.get("failure", {})
                raise JobFailedError(
                    f"job {job_id[:16]} failed "
                    f"({failure.get('kind', 'error')}): "
                    f"{failure.get('message', '')}")
            if time.monotonic() >= deadline:  # repro: allow-wall-clock
                raise TimeoutError(
                    f"job {job_id[:16]} still {doc['status']} after "
                    f"{timeout_s}s")
            time.sleep(poll_s)

    def run(self, spec: JobSpec,
            timeout_s: float = 120.0) -> SimResult:
        """Submit + wait + decode: the service-side equivalent of
        ``run_simulation(config, workload)``, idempotent and
        crash-tolerant."""
        doc = self.submit(spec)
        job_id = doc["job"]
        if doc["status"] != "done":
            doc = self.wait(job_id, timeout_s=timeout_s)
        if "result" not in doc:
            doc = self.job(job_id)
        if "result" not in doc:
            raise JobFailedError(f"job {job_id[:16]} is done but its "
                                 f"result is missing from the store")
        return SimResult.from_dict(doc["result"])
