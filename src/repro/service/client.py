"""HTTP client for the job service, with taxonomy-aware retries.

``ServiceClient`` speaks the error taxonomy documented in
``repro.common.errors``: transient conditions (connection refused while
the service restarts, 429 backpressure, 503 drain/reject) are retried
with capped exponential backoff plus deterministic jitter, always
honoring the server's ``retry_after_s`` hint when one is present;
permanent conditions (400 bad spec, 404, job failures) surface
immediately as the matching ``ServiceError`` subclass.

Jitter is drawn from a client-owned seeded ``random.Random`` — never
the global RNG — so client behaviour in tests is reproducible and the
simulator's determinism lint stays clean.  The ``jitter_seed``
constructor argument (default ``0``) seeds that RNG: it feeds both the
retry backoff in ``_request`` and the poll backoff in ``wait``, so two
clients built with the same seed replay the exact same timing decisions
— pass distinct seeds to desynchronize a fleet, or a fixed one to make
a test's retry schedule deterministic.

``wait`` prefers the server's long-poll watch endpoint
(``GET /jobs?watch=``) and only falls back to polling — with capped
exponential backoff honoring the server's ``retry_after_s`` hints —
when talking to a server that predates it.
"""

from __future__ import annotations

import json
import random
import time
import urllib.error
import urllib.request
from typing import Any, Dict, List, Optional

from repro.common.errors import (DrainingError, JobFailedError,
                                 JobNotFoundError, QueueFullError,
                                 QuotaExceededError, RejectingError,
                                 ServiceError)
from repro.service.jobs import JobSpec
from repro.sim.results import SimResult

#: Errors worth retrying: the condition is expected to clear.
_TRANSIENT = (QueueFullError, QuotaExceededError, RejectingError,
              DrainingError)

#: Per-request watch window ``wait`` asks the server for.  Matches the
#: server's clamp (``server.MAX_WATCH_S``) order of magnitude while
#: keeping each HTTP request short enough to notice a dying server.
WATCH_SLICE_S = 10.0


class ServiceClient:
    """Thin, retrying client for one service endpoint.

    ``jitter_seed`` makes every timing decision this client takes
    (retry jitter, poll backoff jitter) a deterministic function of the
    seed — see the module docs.
    """

    def __init__(self, base_url: str = "http://127.0.0.1:8321",
                 retries: int = 8, backoff_s: float = 0.1,
                 backoff_cap_s: float = 5.0,
                 jitter_seed: int = 0,
                 timeout_s: float = 10.0) -> None:
        self.base_url = base_url.rstrip("/")
        self.retries = retries
        self.backoff_s = backoff_s
        self.backoff_cap_s = backoff_cap_s
        self.timeout_s = timeout_s
        self._rng = random.Random(jitter_seed)
        #: None until probed; False once the server 404s the watch
        #: route (pre-watch server) — then ``wait`` polls instead.
        self._watch_supported: Optional[bool] = None

    # -- transport -----------------------------------------------------

    def _request_once(self, method: str, path: str,
                      body: Optional[Dict[str, Any]],
                      timeout_s: Optional[float] = None
                      ) -> Dict[str, Any]:
        data = json.dumps(body).encode() if body is not None else None
        request = urllib.request.Request(
            self.base_url + path, data=data, method=method,
            headers={"Content-Type": "application/json"})
        try:
            with urllib.request.urlopen(
                    request,
                    timeout=self.timeout_s if timeout_s is None
                    else timeout_s) as response:
                return json.loads(response.read().decode())
        except urllib.error.HTTPError as err:
            payload = err.read().decode(errors="replace")
            try:
                doc = json.loads(payload).get("error", {})
            except ValueError:
                doc = {"code": "internal",
                       "message": f"HTTP {err.code}: {payload[:200]}"}
            raise ServiceError.from_doc(doc) from None
        except urllib.error.URLError as err:
            raise ConnectionError(
                f"{method} {path}: {err.reason}") from err

    def _delay(self, attempt: int,
               retry_after_s: Optional[float]) -> float:
        backoff = min(self.backoff_cap_s,
                      self.backoff_s * (2 ** attempt))
        # full jitter (deterministic RNG): desynchronizes a fleet of
        # clients hammering a freshly restarted service
        delay = backoff * (0.5 + 0.5 * self._rng.random())
        if retry_after_s is not None:
            delay = max(delay, float(retry_after_s))
        return delay

    def _request(self, method: str, path: str,
                 body: Optional[Dict[str, Any]] = None,
                 timeout_s: Optional[float] = None) -> Dict[str, Any]:
        attempt = 0
        while True:
            try:
                return self._request_once(method, path, body,
                                          timeout_s=timeout_s)
            except _TRANSIENT as err:
                if attempt >= self.retries:
                    raise
                delay = self._delay(attempt, err.retry_after_s)
            except ConnectionError:
                if attempt >= self.retries:
                    raise
                delay = self._delay(attempt, None)
            attempt += 1
            time.sleep(delay)

    # -- API -----------------------------------------------------------

    def submit(self, spec: JobSpec) -> Dict[str, Any]:
        return self._request("POST", "/jobs", spec.to_doc())

    def job(self, job_id: str) -> Dict[str, Any]:
        return self._request("GET", f"/jobs/{job_id}")

    def healthz(self) -> Dict[str, Any]:
        return self._request("GET", "/healthz")

    def readyz(self) -> Dict[str, Any]:
        return self._request("GET", "/readyz")

    def stats(self) -> Dict[str, Any]:
        return self._request("GET", "/stats")

    def drain(self) -> Dict[str, Any]:
        return self._request("POST", "/drain", {})

    def watch(self, job_ids: List[str],
              timeout_s: float = WATCH_SLICE_S) -> Dict[str, Any]:
        """One long-poll of ``GET /jobs?watch=``: blocks server-side up
        to ``timeout_s`` and returns ``{job_id: terminal status doc}``
        for every watched job that is already ``done``/``failed`` —
        empty when the window elapsed with nothing terminal.  Raises
        ``JobNotFoundError`` if any watched id is unknown to the server.
        """
        watch = ",".join(job_ids)
        doc = self._request(
            "GET", f"/jobs?watch={watch}&timeout_s={timeout_s:g}",
            # the HTTP request must outlive the server-side park
            timeout_s=timeout_s + self.timeout_s)
        return doc.get("jobs", {})

    def _finish(self, job_id: str,
                doc: Dict[str, Any]) -> Dict[str, Any]:
        if doc["status"] == "failed":
            failure = doc.get("failure", {})
            raise JobFailedError(
                f"job {job_id[:16]} failed "
                f"({failure.get('kind', 'error')}): "
                f"{failure.get('message', '')}")
        return doc

    def wait(self, job_id: str, timeout_s: float = 120.0,
             poll_s: float = 0.2,
             poll_cap_s: float = 2.0) -> Dict[str, Any]:
        """Block until the job reaches ``done`` or ``failed``.

        Prefers the server's long-poll watch endpoint (no client-side
        sleeping at all); against a pre-watch server it falls back to
        polling ``GET /jobs/<id>`` with capped exponential backoff —
        ``poll_s`` doubling up to ``poll_cap_s``, jittered by the seeded
        RNG, never below the server's ``retry_after_s`` hint when one is
        present — instead of hammering at a fixed interval.

        Raises ``JobFailedError`` on failure and ``TimeoutError`` if the
        deadline passes first.  Waiting survives a service restart
        mid-job: connection errors inside ``_request`` retry, the
        replayed job keeps its id, and the watch probe is re-evaluated
        per call.
        """
        deadline = time.monotonic() + timeout_s  # repro: allow-wall-clock
        delay = max(poll_s, 1e-3)
        while True:
            remaining = deadline \
                - time.monotonic()  # repro: allow-wall-clock
            if remaining <= 0:
                raise TimeoutError(
                    f"job {job_id[:16]} still pending after "
                    f"{timeout_s}s")
            if self._watch_supported is not False:
                try:
                    done = self.watch(
                        [job_id],
                        timeout_s=min(WATCH_SLICE_S, remaining))
                except JobNotFoundError:
                    if self._watch_supported is None:
                        # pre-watch server: GET /jobs has no route and
                        # 404s — remember and fall back to polling
                        self._watch_supported = False
                        continue
                    raise
                self._watch_supported = True
                if job_id in done:
                    return self._finish(job_id, done[job_id])
                continue  # the server did the waiting; go straight back
            doc = self.job(job_id)
            if doc["status"] in ("done", "failed"):
                return self._finish(job_id, doc)
            # capped exponential backoff with deterministic jitter,
            # floored at the server's own backpressure hint
            sleep_s = delay * (0.5 + 0.5 * self._rng.random())
            hint = doc.get("retry_after_s")
            if hint is not None:
                sleep_s = max(sleep_s, float(hint))
            time.sleep(min(sleep_s, poll_cap_s, max(remaining, 1e-3)))
            delay = min(delay * 2, poll_cap_s)

    def run(self, spec: JobSpec,
            timeout_s: float = 120.0) -> SimResult:
        """Submit + wait + decode: the service-side equivalent of
        ``run_simulation(config, workload)``, idempotent and
        crash-tolerant."""
        doc = self.submit(spec)
        job_id = doc["job"]
        if doc["status"] != "done":
            doc = self.wait(job_id, timeout_s=timeout_s)
        if "result" not in doc:
            doc = self.job(job_id)
        if "result" not in doc:
            raise JobFailedError(f"job {job_id[:16]} is done but its "
                                 f"result is missing from the store")
        return SimResult.from_dict(doc["result"])
