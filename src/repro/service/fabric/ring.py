"""Consistent-hash ring: routing content-addressed job ids to shards.

The federation's routing layer is deliberately dumb and deterministic:
every client computes the same ring from the same member list, so there
is no coordinator to crash and no routing state to replicate.  Each
shard URL is hashed onto ``vnodes`` points of a sha256 ring; a job id
(itself a sha256 hex digest — the executor's content-addressed cache
key) hashes to a point, and its replica set is the next ``replicas``
*distinct* shards clockwise.  Virtual nodes smooth the load split and,
just as important here, make the replica *sets* diverse: when a shard
dies, its keys scatter across the survivors instead of dog-piling one
neighbor.

``route`` order is the failover contract: index 0 is the primary a
``FederatedClient`` talks to first, the rest are the replicas it walks
— resubmitting idempotently — when a shard is unreachable.  Because
job ids are content addresses and every shard is journal-backed, a
resubmission to a replica is the *same job* and produces bit-identical
results; the routing layer never has to be right, only deterministic.
"""

from __future__ import annotations

import hashlib
from typing import Any, Dict, List, Sequence, Union

from repro.common.errors import BadRequestError

#: Points per shard on the ring; 64 keeps the max/min key-share ratio
#: of a small ring within ~1.3x while staying cheap to build.
DEFAULT_VNODES = 64

#: Shards per replica set (primary + 1 failover copy).
DEFAULT_REPLICAS = 2


def parse_ring(urls: Union[str, Sequence[str]]) -> List[str]:
    """Validate a ring member list (or comma-joined CLI string).

    Raises ``BadRequestError`` — part of the service taxonomy, and a
    ``ValueError`` so argparse-adjacent callers can catch it uniformly
    — for an empty ring, a member that is not an ``http(s)`` URL, or
    duplicate members (after trailing-slash normalization).  Order is
    preserved: all ring builders must agree on it.
    """
    if isinstance(urls, str):
        members = [url.strip() for url in urls.split(",") if url.strip()]
    else:
        members = [str(url).strip() for url in urls if str(url).strip()]
    if not members:
        raise BadRequestError("ring needs at least one shard URL")
    normalized = []
    for url in members:
        if not url.startswith(("http://", "https://")):
            raise BadRequestError(f"ring member {url!r} is not an "
                                  f"http(s) URL")
        normalized.append(url.rstrip("/"))
    duplicates = sorted({url for url in normalized
                         if normalized.count(url) > 1})
    if duplicates:
        raise BadRequestError(f"ring members must be distinct; "
                              f"duplicated: {', '.join(duplicates)}")
    return normalized


def _point(token: str) -> int:
    """A token's position on the ring: the first 8 bytes of its sha256
    (plenty of spread, cheap integer compares)."""
    digest = hashlib.sha256(token.encode()).digest()
    return int.from_bytes(digest[:8], "big")


class HashRing:
    """Deterministic consistent-hash ring over shard URLs."""

    def __init__(self, nodes: Union[str, Sequence[str]],
                 replicas: int = DEFAULT_REPLICAS,
                 vnodes: int = DEFAULT_VNODES) -> None:
        self.nodes = parse_ring(nodes)
        if replicas < 1:
            raise BadRequestError("replicas must be >= 1")
        if vnodes < 1:
            raise BadRequestError("vnodes must be >= 1")
        self.replicas = min(replicas, len(self.nodes))
        self.vnodes = vnodes
        points = []
        for node in self.nodes:
            for index in range(vnodes):
                points.append((_point(f"{node}#{index}"), node))
        # ties are broken by URL so equal points (astronomically
        # unlikely) still order identically everywhere
        points.sort()
        self._points = points

    def route(self, job_id: str) -> List[str]:
        """The replica set for ``job_id``: primary first, then the next
        ``replicas - 1`` distinct shards clockwise on the ring."""
        want = _point(job_id)
        # binary search for the first ring point at/after the key
        lo, hi = 0, len(self._points)
        while lo < hi:
            mid = (lo + hi) // 2
            if self._points[mid][0] < want:
                lo = mid + 1
            else:
                hi = mid
        shards: List[str] = []
        for offset in range(len(self._points)):
            node = self._points[(lo + offset) % len(self._points)][1]
            if node not in shards:
                shards.append(node)
                if len(shards) == self.replicas:
                    break
        return shards

    def primary(self, job_id: str) -> str:
        return self.route(job_id)[0]

    def describe(self) -> Dict[str, Any]:
        """Ring layout + load split, for ``GET /ring`` and smoke-test
        artifacts.  ``share`` is each shard's fraction of the key space
        (arc length it owns), so imbalance is visible at a glance."""
        total = 1 << 64
        owned = {node: 0 for node in self.nodes}
        for index, (point, node) in enumerate(self._points):
            # arc between this point and its predecessor (negative
            # index wraps to the last point; % total un-wraps the arc)
            previous = self._points[index - 1][0]
            owned[node] += (point - previous) % total
        return {
            "nodes": list(self.nodes),
            "replicas": self.replicas,
            "vnodes": self.vnodes,
            "points": len(self._points),
            "share": {node: round(arc / total, 4)
                      for node, arc in owned.items()},
        }
