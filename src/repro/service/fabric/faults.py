"""Deterministic network-fault proxy for federation tests.

``repro chaos`` made *simulator* faults reproducible by seeding every
failure decision; this module does the same for the *network* between a
client and a shard.  ``FaultProxy`` is a tiny threaded TCP relay that
sits in front of one upstream service and injects faults decided by a
seeded ``random.Random``:

* **drops** — with ``drop_prob``, an accepted connection is closed
  before relaying a byte (the client sees a reset → ``ConnectionError``
  → its taxonomy-aware retry/failover path);
* **latency spikes** — with ``latency_prob``, relaying is delayed by
  ``latency_s`` (exercises client timeouts and backoff);
* **partitions** — ``partition()`` severs every active relay and
  refuses new connections until ``heal()``; the upstream process stays
  healthy throughout, which is exactly the "shard is fine, network is
  not" case failover must distinguish from a dead shard (it cannot, and
  must not need to — the contract is the same either way).

Determinism: all drop/latency decisions are drawn from the single
seeded RNG *in connection-accept order* by the single accept thread, so
a test that replays the same connection sequence replays the same fault
sequence.  (Wall-clock interleavings still vary; what is reproducible
is *which* connections are dropped/delayed, which pins down the code
paths a test exercises.)

Faults are injected per *connection*, which maps one-to-one onto
requests for ``urllib``-based clients (no connection reuse).
"""

from __future__ import annotations

import collections
import logging
import random
import socket
import threading
import time
from typing import Optional, Set, Tuple

_log = logging.getLogger(__name__)

#: Relay copy-loop chunk size.
_CHUNK = 1 << 16


class FaultProxy:
    """Seeded TCP fault injector in front of one upstream service."""

    def __init__(self, upstream_port: int,
                 upstream_host: str = "127.0.0.1",
                 seed: int = 0,
                 drop_prob: float = 0.0,
                 latency_s: float = 0.0,
                 latency_prob: float = 0.0,
                 host: str = "127.0.0.1", port: int = 0) -> None:
        self.upstream = (upstream_host, upstream_port)
        self.drop_prob = drop_prob
        self.latency_s = latency_s
        self.latency_prob = latency_prob
        self._rng = random.Random(seed)
        self._partitioned = threading.Event()
        self._stopping = threading.Event()
        self._active_lock = threading.Lock()
        self._active: Set[socket.socket] = set()
        self.counters: collections.Counter = collections.Counter()
        self._listener = socket.socket(socket.AF_INET,
                                       socket.SOCK_STREAM)
        self._listener.setsockopt(socket.SOL_SOCKET,
                                  socket.SO_REUSEADDR, 1)
        self._listener.bind((host, port))
        self._listener.listen(64)
        self.host, self.port = self._listener.getsockname()[:2]
        self._accept_thread: Optional[threading.Thread] = None

    @property
    def url(self) -> str:
        return f"http://{self.host}:{self.port}"

    # -- lifecycle -----------------------------------------------------

    def start(self) -> "FaultProxy":
        self._accept_thread = threading.Thread(
            target=self._accept_loop, name="fault-proxy-accept",
            daemon=True)
        self._accept_thread.start()
        return self

    def stop(self) -> None:
        self._stopping.set()
        try:
            self._listener.close()
        except OSError:
            pass
        self._sever_active()
        if self._accept_thread is not None:
            self._accept_thread.join(timeout=2.0)

    def __enter__(self) -> "FaultProxy":
        return self.start()

    def __exit__(self, *_exc) -> None:
        self.stop()

    # -- fault controls ------------------------------------------------

    def partition(self) -> None:
        """Refuse new connections and sever active relays until
        ``heal()``.  The upstream process is untouched."""
        self._partitioned.set()
        self._sever_active()
        self.counters["partitions"] += 1

    def heal(self) -> None:
        self._partitioned.clear()
        self.counters["heals"] += 1

    @property
    def partitioned(self) -> bool:
        return self._partitioned.is_set()

    def _sever_active(self) -> None:
        with self._active_lock:
            doomed = list(self._active)
        for sock in doomed:
            try:
                sock.shutdown(socket.SHUT_RDWR)
            except OSError:
                pass
            try:
                sock.close()
            except OSError:
                pass

    # -- relay ---------------------------------------------------------

    def _accept_loop(self) -> None:
        while not self._stopping.is_set():
            try:
                conn, _addr = self._listener.accept()
            except OSError:
                break
            if self._stopping.is_set() or self._partitioned.is_set():
                self.counters["refused"] += 1
                conn.close()
                continue
            # fault decisions come from the seeded RNG in accept order
            # — one thread, one RNG, one deterministic sequence
            drop = self._rng.random() < self.drop_prob
            delay = 0.0
            if self.latency_s > 0 \
                    and self._rng.random() < self.latency_prob:
                delay = self.latency_s
            if drop:
                self.counters["dropped"] += 1
                conn.close()
                continue
            self.counters["accepted"] += 1
            threading.Thread(target=self._relay, args=(conn, delay),
                             name="fault-proxy-relay",
                             daemon=True).start()

    def _relay(self, conn: socket.socket, delay: float) -> None:
        if delay:
            self.counters["delayed"] += 1
            time.sleep(delay)
            if self._partitioned.is_set() or self._stopping.is_set():
                conn.close()
                return
        try:
            upstream = socket.create_connection(self.upstream,
                                                timeout=5.0)
        except OSError:
            # upstream dead (e.g. a kill -9'd shard): the client sees
            # the same reset a partition produces
            self.counters["upstream_unreachable"] += 1
            conn.close()
            return
        with self._active_lock:
            self._active.add(conn)
            self._active.add(upstream)
        pump = threading.Thread(target=self._pump,
                                args=(upstream, conn),
                                name="fault-proxy-pump", daemon=True)
        pump.start()
        self._pump(conn, upstream)
        pump.join()
        with self._active_lock:
            self._active.discard(conn)
            self._active.discard(upstream)
        for sock in (conn, upstream):
            try:
                sock.close()
            except OSError:
                pass

    @staticmethod
    def _pump(src: socket.socket, dst: socket.socket) -> None:
        try:
            while True:
                data = src.recv(_CHUNK)
                if not data:
                    break
                dst.sendall(data)
        except OSError:
            pass
        finally:
            try:
                dst.shutdown(socket.SHUT_WR)
            except OSError:
                pass

    def stats(self) -> Tuple[str, dict]:
        return self.url, dict(self.counters)
