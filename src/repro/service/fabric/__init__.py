"""Federated sweep fabric: N journal-backed shards, one client face.

The federation layer over ``repro.service``: a consistent-hash ring
(``fabric.ring``) routes content-addressed job ids to primary +
replica shards, ``FederatedClient`` (``fabric.client``) retries a
failed or partitioned primary on its replicas by resubmitting
idempotently, the ``ResultStore`` grows a read-through peer tier
(``fabric.store``), and a seeded network-fault proxy
(``fabric.faults``) makes every failover path testable
deterministically.  See ``docs/resilience.md`` ("Federation") for the
ring layout, the replica contract, and the failover sequence.
"""

from repro.service.fabric.client import FederatedClient
from repro.service.fabric.faults import FaultProxy
from repro.service.fabric.ring import (DEFAULT_REPLICAS, DEFAULT_VNODES,
                                       HashRing, parse_ring)
from repro.service.fabric.store import fetch_payload, peer_fetcher

__all__ = [
    "DEFAULT_REPLICAS", "DEFAULT_VNODES", "FaultProxy",
    "FederatedClient", "HashRing", "fetch_payload", "parse_ring",
    "peer_fetcher",
]
