"""``FederatedClient``: one client face over a ring of shards.

Submission and result-gathering route by the consistent-hash ring
(``fabric.ring``): a job's primary shard is tried first, and any
connection-level failure — shard process dead, network partitioned —
fails over to the next replica by *resubmitting the spec there*.  That
resubmission is safe and cheap by construction: job ids are
content-addressed cache keys, every shard journals write-ahead, and
results are deterministic, so the replica either already has the
result (store federation read-through), is already running the same
job, or runs it fresh — in every case the answer is bit-identical to
what the primary would have produced.  The federation therefore needs
no consensus, no replication protocol, and no failover coordination:
the idempotency contract from the single-shard service *is* the
replication protocol.

Failover triggers on ``ConnectionError`` only.  A ``ServiceError``
means the shard is alive and answering (its backpressure/taxonomy
semantics stand), and a ``TimeoutError`` means the job is slow, not
the shard dead — re-running a slow job elsewhere would double the
wait, not halve it.  When every replica in a job's route fails, the
walk surfaces as ``ShardUnavailableError`` (503 in the documented
taxonomy).
"""

from __future__ import annotations

import collections
import time
from typing import Any, Dict, List, Optional, Sequence, Union

from repro.common.errors import ShardUnavailableError
from repro.service.client import ServiceClient
from repro.service.fabric.ring import (DEFAULT_REPLICAS, DEFAULT_VNODES,
                                       HashRing)
from repro.service.jobs import JobSpec
from repro.sim.results import SimResult


class FederatedClient:
    """Ring-routing, failover-capable client over N service shards.

    Per-shard ``ServiceClient``s get a deliberately small retry budget
    (default ``retries=2``): when a shard is down, the right move is to
    fail over to its replica quickly, not to sit in a long retry loop
    against a corpse.  ``jitter_seed`` derives a distinct per-shard
    seed, so the whole federation's retry timing is reproducible from
    one number (see ``ServiceClient``).
    """

    def __init__(self, urls: Union[str, Sequence[str]],
                 replicas: int = DEFAULT_REPLICAS,
                 vnodes: int = DEFAULT_VNODES,
                 retries: int = 2, backoff_s: float = 0.05,
                 backoff_cap_s: float = 1.0,
                 jitter_seed: int = 0,
                 timeout_s: float = 10.0) -> None:
        self.ring = HashRing(urls, replicas=replicas, vnodes=vnodes)
        self._clients = {
            url: ServiceClient(url, retries=retries,
                               backoff_s=backoff_s,
                               backoff_cap_s=backoff_cap_s,
                               jitter_seed=jitter_seed * 1000 + index,
                               timeout_s=timeout_s)
            for index, url in enumerate(self.ring.nodes)}
        self.counters: collections.Counter = collections.Counter()

    def client(self, url: str) -> ServiceClient:
        """The per-shard client for one ring member."""
        return self._clients[url]

    def shards_for(self, spec_or_id: Union[JobSpec, str]) -> List[str]:
        job_id = spec_or_id if isinstance(spec_or_id, str) \
            else spec_or_id.job_id()
        return self.ring.route(job_id)

    # -- failover core -------------------------------------------------

    def _walk(self, job_id: str, op) -> Any:
        """Run ``op(client)`` against the job's replica set, failing
        over on connection-level errors; ``ShardUnavailableError`` when
        the whole set is down."""
        last: Optional[BaseException] = None
        for index, url in enumerate(self.ring.route(job_id)):
            if index:
                self.counters["failovers"] += 1
            try:
                result = op(self._clients[url])
                self.counters["requests"] += 1
                return result
            except ConnectionError as err:
                self.counters["shard_errors"] += 1
                last = err
        raise ShardUnavailableError(
            f"job {job_id[:16]}: every replica in its route is "
            f"unreachable ({last})")

    # -- API -----------------------------------------------------------

    def submit(self, spec: JobSpec) -> Dict[str, Any]:
        """Idempotently submit to the job's primary (replica on
        failover); returns the shard's status doc."""
        return self._walk(spec.job_id(),
                          lambda client: client.submit(spec))

    def run(self, spec: JobSpec,
            timeout_s: float = 120.0) -> SimResult:
        """Submit + wait + decode with failover.

        A shard death *mid-wait* surfaces as ``ConnectionError`` once
        the per-shard client's retries are spent; the walk then
        resubmits the spec to the next replica and waits there — the
        idempotent-resubmission contract makes the result bit-identical
        whichever shard finally serves it.
        """
        return self._walk(
            spec.job_id(),
            lambda client: client.run(spec, timeout_s=timeout_s))

    def submit_all(self, specs: Sequence[JobSpec]) -> Dict[str, JobSpec]:
        """Fan a sweep's specs out across the ring (primary-first,
        failover per job); returns ``{job_id: spec}`` (deduplicated —
        content-addressed ids collapse identical cells)."""
        by_id: Dict[str, JobSpec] = {}
        for spec in specs:
            job_id = spec.job_id()
            if job_id in by_id:
                continue
            self.submit(spec)
            by_id[job_id] = spec
        return by_id

    def gather(self, specs: Sequence[JobSpec],
               timeout_s: float = 600.0) -> Dict[str, SimResult]:
        """Wait for a submitted sweep; returns ``{job_id: result}``.

        Shards run their queues concurrently; this walks the jobs one
        at a time (each against its own replica set, resubmitting on
        failover), sharing one wall-clock budget.
        """
        deadline = time.monotonic() + timeout_s  # repro: allow-wall-clock
        results: Dict[str, SimResult] = {}
        for spec in specs:
            job_id = spec.job_id()
            if job_id in results:
                continue
            remaining = deadline \
                - time.monotonic()  # repro: allow-wall-clock
            if remaining <= 0:
                raise TimeoutError(
                    f"fabric sweep: {len(results)} of "
                    f"{len(specs)} jobs done after {timeout_s}s")
            results[job_id] = self.run(spec, timeout_s=remaining)
        return results

    def run_all(self, specs: Sequence[JobSpec],
                timeout_s: float = 600.0) -> Dict[str, SimResult]:
        """Submit then gather a whole sweep: the federation-side
        equivalent of one ``Executor.run_tasks`` call."""
        self.submit_all(specs)
        return self.gather(specs, timeout_s=timeout_s)

    def stats(self) -> Dict[str, Any]:
        """Ring description, client counters, and per-shard ``/stats``
        (a string error marker for unreachable shards)."""
        shards: Dict[str, Any] = {}
        for url in self.ring.nodes:
            try:
                shards[url] = self._clients[url].stats()
            except (ConnectionError, TimeoutError) as err:
                shards[url] = {"unreachable": str(err)}
        return {"ring": self.ring.describe(),
                "counters": dict(self.counters),
                "shards": shards}
