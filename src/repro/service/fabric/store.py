"""Store federation: read-through peer fetch for the ``ResultStore``.

One shard's ``ResultStore`` miss is often another shard's hit — after
a failover resubmission, or when two tenants sweep overlapping grids
against different primaries.  ``peer_fetcher`` builds the read-through
side: a callable the ``ResultStore`` invokes on a local miss, which
walks the peer shards' ``GET /store/<key>`` endpoints and returns a
*validated* ``SimResult`` (or ``None``).

Trust discipline mirrors local reads: a fetched payload must carry the
current cache format marker, the right key, and a checksum that matches
its result document — a peer serving garbage (or a truncated response)
is treated as a miss, never filled locally.  The fill itself goes
through ``ResultStore.put``, i.e. under the same advisory flock +
atomic-rename discipline as any local writer.  Loop safety is
structural: the serving endpoint reads via ``ResultStore.payload``,
which never consults peers, so A→B→A fetch cycles cannot form.
"""

from __future__ import annotations

import json
import logging
import urllib.error
import urllib.request
from typing import Callable, List, Optional, Sequence, Union

from repro.service.fabric.ring import parse_ring
from repro.sim.executor import CACHE_FORMAT_VERSION, result_checksum
from repro.sim.results import SimResult

_log = logging.getLogger(__name__)

#: Peer fetches are opportunistic (a miss just re-simulates), so they
#: get a short timeout rather than the client's patient default.
PEER_TIMEOUT_S = 3.0


def fetch_payload(url: str, key: str,
                  timeout_s: float = PEER_TIMEOUT_S
                  ) -> Optional[SimResult]:
    """Fetch + validate one peer's stored result; ``None`` on any
    failure (unreachable peer, 404, bad payload, checksum mismatch)."""
    try:
        with urllib.request.urlopen(f"{url}/store/{key}",
                                    timeout=timeout_s) as response:
            payload = json.loads(response.read().decode())
    except (urllib.error.URLError, OSError, ValueError):
        return None
    if not isinstance(payload, dict) \
            or payload.get("format") != CACHE_FORMAT_VERSION \
            or payload.get("key") != key \
            or payload.get("checksum") != result_checksum(
                payload.get("result", {})):
        _log.warning("store federation: peer %s served an invalid "
                     "payload for %s; ignoring", url, key[:16])
        return None
    try:
        return SimResult.from_dict(payload["result"])
    except Exception:  # noqa: BLE001 - untrusted peer data boundary
        return None


def peer_fetcher(peer_urls: Union[str, Sequence[str]],
                 timeout_s: float = PEER_TIMEOUT_S
                 ) -> Callable[[str], Optional[SimResult]]:
    """A ``ResultStore.peer_fetch`` callable over ``peer_urls``.

    Peers are tried in order; the first validated hit wins.  Every
    failure mode — peer down, partitioned, missing entry, corrupt
    payload — degrades to a plain miss (the caller re-simulates), so
    federation can only ever *save* work, never corrupt or block it.
    """
    peers: List[str] = parse_ring(peer_urls)

    def fetch(key: str) -> Optional[SimResult]:
        for url in peers:
            result = fetch_payload(url, key, timeout_s=timeout_s)
            if result is not None:
                return result
        return None

    return fetch
