"""Job specifications: the wire/journal form of one simulation cell.

A ``JobSpec`` names an experiment the way the CLI does — workload name,
instruction count, thread count, scheme label, optional sanitize/chaos
settings — rather than carrying pickled objects, so the same spec can
cross the HTTP boundary, live in the journal, and be replayed by a
service incarnation that shares nothing with the submitter but the
code.  ``resolve()`` deterministically rebuilds the exact
``(SystemConfig, Workload)`` pair, and the job's identity is the
executor's content-addressed ``cache_key`` over that pair — which is
what makes submission idempotent: two specs that resolve to the same
experiment are the same job, whatever their display names.
"""

from __future__ import annotations

import dataclasses
from typing import Any, Dict, Optional, Tuple

from repro.common.errors import BadRequestError, ConfigError
from repro.common.params import ChaosConfig, SystemConfig
from repro.isa.trace import Workload
from repro.service.queue import DEFAULT_TENANT
from repro.sim.executor import cache_key
from repro.sim.runner import scheme_grid
from repro.workloads import (PARALLEL_NAMES, SPEC17_NAMES,
                             parallel_workload, spec17_workload)

#: Priority conventions (lower is more urgent): interactive ``repro
#: submit`` requests land ahead of bulk sweep/campaign cells.
PRIORITY_INTERACTIVE = 0
PRIORITY_DEFAULT = 5
PRIORITY_BULK = 10


def _build_attack_cell(workload_name: str,
                       scheme: str) -> Tuple[SystemConfig, Workload]:
    """Resolve an ``attack:<class>:s<secret>:seed<k>`` workload name.

    Attack variants are fixed-content adversarial traces
    (``repro.security.attacks``): the name pins everything, so the
    spec's ``instructions``/``threads`` knobs do not apply (they are
    deliberately ignored — the cache identity is content-addressed and
    two specs naming the same variant share one job regardless).
    """
    from repro.security.attacks import attack_cell
    parts = workload_name.split(":")
    usage = ("attack workload names look like "
             "'attack:<class>:s<0|1>:seed<k>'")
    if len(parts) != 4 or not parts[2].startswith("s") \
            or not parts[3].startswith("seed"):
        raise BadRequestError(f"malformed workload {workload_name!r}; "
                              f"{usage}")
    try:
        secret = int(parts[2][1:])
        seed = int(parts[3][len("seed"):])
    except ValueError:
        raise BadRequestError(f"malformed workload {workload_name!r}; "
                              f"{usage}")
    try:
        return attack_cell(parts[1], secret, seed, scheme)
    except ValueError as err:
        raise BadRequestError(str(err))


def build_cell(workload_name: str, instructions: int, threads: int,
               scheme: str) -> Tuple[SystemConfig, Workload]:
    """Deterministically build one (config, workload) cell from names.

    The single source of truth for turning CLI/service-level cell names
    into simulator objects — `repro run`, the chaos campaign, the attack
    campaign, and the job service all resolve cells through here.
    """
    if workload_name.startswith("attack:"):
        return _build_attack_cell(workload_name, scheme)
    if workload_name in SPEC17_NAMES:
        base: SystemConfig = SystemConfig()
        workload = spec17_workload(workload_name,
                                   instructions=instructions)
    elif workload_name in PARALLEL_NAMES:
        workload = parallel_workload(workload_name, num_threads=threads,
                                     instructions_per_thread=instructions)
        base = SystemConfig(num_cores=threads)
    else:
        raise BadRequestError(f"unknown workload {workload_name!r}; "
                              f"see `repro workloads`")
    if scheme == "unsafe":
        return base, workload
    grid = scheme_grid()
    if scheme not in grid:
        raise BadRequestError(
            f"unknown scheme {scheme!r}; choose 'unsafe' or one of "
            f"{sorted(grid)}")
    defense, threat, pin = grid[scheme]
    return base.with_defense(defense, threat, pin), workload


@dataclasses.dataclass(frozen=True)
class JobSpec:
    """One submittable simulation job (JSON-serializable, validated)."""

    workload: str
    scheme: str = "unsafe"
    instructions: int = 4000
    threads: int = 8
    sanitize: bool = False
    chaos: Optional[Dict[str, Any]] = None
    priority: int = PRIORITY_DEFAULT
    #: Accounting/fair-share identity only — deliberately *not* part of
    #: ``job_id()`` (which hashes the resolved experiment), so two
    #: tenants submitting the same cell share one job and one cached
    #: result.
    tenant: str = DEFAULT_TENANT

    def validate(self) -> None:
        if not isinstance(self.workload, str) or not self.workload:
            raise BadRequestError("workload must be a non-empty string")
        if not isinstance(self.scheme, str) or not self.scheme:
            raise BadRequestError("scheme must be a non-empty string")
        if not isinstance(self.tenant, str) or not self.tenant:
            raise BadRequestError("tenant must be a non-empty string")
        for name in ("instructions", "threads", "priority"):
            value = getattr(self, name)
            if not isinstance(value, int) or isinstance(value, bool):
                raise BadRequestError(f"{name} must be an integer, "
                                      f"not {value!r}")
        if self.instructions < 1:
            raise BadRequestError("instructions must be >= 1")
        if self.threads < 1:
            raise BadRequestError("threads must be >= 1")
        if not isinstance(self.sanitize, bool):
            raise BadRequestError("sanitize must be a boolean")
        if self.chaos is not None and not isinstance(self.chaos, dict):
            raise BadRequestError("chaos must be an object of "
                                  "ChaosConfig fields")

    def to_doc(self) -> Dict[str, Any]:
        doc = dataclasses.asdict(self)
        if doc["chaos"] is None:
            del doc["chaos"]
        if doc["tenant"] == DEFAULT_TENANT:
            del doc["tenant"]  # wire/journal compatible with pre-tenant
        return doc

    @classmethod
    def from_doc(cls, doc: Any) -> "JobSpec":
        if not isinstance(doc, dict):
            raise BadRequestError(f"job spec must be a JSON object, "
                                  f"not {type(doc).__name__}")
        known = {field.name for field in dataclasses.fields(cls)}
        unknown = sorted(set(doc) - known)
        if unknown:
            raise BadRequestError(f"unknown job spec field(s): "
                                  f"{', '.join(unknown)}")
        if "workload" not in doc:
            raise BadRequestError("job spec needs a 'workload' field")
        spec = cls(**doc)
        spec.validate()
        return spec

    def resolve(self) -> Tuple[SystemConfig, Workload]:
        """The exact (config, workload) pair this spec names; raises
        ``BadRequestError`` for anything the simulator would refuse."""
        self.validate()
        config, workload = build_cell(self.workload, self.instructions,
                                      self.threads, self.scheme)
        replacements: Dict[str, Any] = {}
        if self.sanitize:
            replacements["sanitize"] = True
        if self.chaos is not None:
            try:
                chaos = ChaosConfig(**self.chaos)
                chaos.validate()
            except (TypeError, ConfigError) as err:
                raise BadRequestError(f"bad chaos settings: {err}")
            replacements["chaos"] = chaos
        if replacements:
            config = dataclasses.replace(config, **replacements)
        return config, workload

    def job_id(self) -> str:
        """Content-addressed job identity: the executor ``cache_key`` of
        the resolved experiment, so identical experiments submitted
        under different names deduplicate to one job."""
        return cache_key(*self.resolve())

    def describe(self) -> str:
        tag = f"{self.workload}/{self.scheme}/{self.instructions}"
        if self.sanitize:
            tag += "/sanitized"
        if self.chaos is not None:
            tag += f"/chaos-seed{self.chaos.get('seed', 0)}"
        return tag
