"""The supervisor: journaled job lifecycle over the self-healing executor.

PR 3 made individual *tasks* self-healing (SIGALRM budgets, pool
rebuilds, rolling checkpoints); the supervisor closes the remaining gap
— the death of the coordinator itself.  Every job transition is
journaled write-ahead (``repro.service.journal``), so a ``kill -9`` of
the whole service loses nothing an acknowledged submitter cares about:
a fresh supervisor replays the journal, re-queues pending and
interrupted jobs (``Task(resume=True)`` continues from their rolling
checkpoints), and serves completed jobs straight from the
content-addressed ``ResultStore`` with zero re-simulation.

Above the executor's per-task healing sit four service-level defenses:

* **admission control** — a bounded priority queue
  (``repro.service.queue``) rejects overload with a retry-after hint
  instead of growing without bound;
* **heartbeat watchdog** — a thread that notices jobs stuck past
  ``stuck_after_s`` of wall clock (beyond the per-task SIGALRM, which
  cannot fire on the supervisor's own worker thread) and feeds the
  degradation ladder;
* **staged degradation** — consecutive failures walk the service down a
  ladder of ``full pool → reduced pool → serial → reject-only``;
  consecutive successes (or a reject-level probe timer) walk it back
  up.  Degraded levels trade throughput for stability, never
  correctness: results are bit-identical at any level;
* **graceful drain** — SIGTERM/SIGINT (or ``POST /drain``) stops
  admission, asks in-flight jobs to pause at their next checkpoint
  boundary (the executor's cooperative ``drain_flag``), journals them
  as requeued, and exits; the next incarnation resumes them from those
  checkpoints bit-identically.
"""

from __future__ import annotations

import collections
import logging
import os
import threading
import time
from typing import Any, Dict, List, Optional

from repro.common.errors import (DrainingError, JobNotFoundError,
                                 RejectingError)
from repro.service.jobs import JobSpec
from repro.service.journal import Journal, reduce_records
from repro.service.queue import (DEFAULT_JOB_SECONDS, DEFAULT_TENANT,
                                 AdmissionQueue)
from repro.sim.executor import Executor, Task
from repro.sim.runner import ExperimentCache

_log = logging.getLogger(__name__)

#: The degradation ladder, most to least capable.  Worker counts for the
#: first three rungs are derived from the configured ``jobs``; the last
#: rung runs nothing and rejects all submissions while probing.
DEGRADATION_LADDER = ("full", "reduced", "serial", "reject")

#: Journal appends between periodic compactions.
COMPACT_EVERY = 256


class Supervisor:
    """Crash-tolerant job lifecycle around one ``Executor``."""

    def __init__(self, root: str, jobs: int = 2,
                 queue_capacity: int = 64,
                 timeout_s: Optional[float] = None,
                 retries: int = 1,
                 worker_memory_mb: Optional[int] = None,
                 checkpoint_interval: Optional[int] = None,
                 heartbeat_s: float = 0.25,
                 stuck_after_s: float = 300.0,
                 degrade_after: int = 3,
                 recover_after: int = 3,
                 probe_after_s: float = 10.0,
                 fsync: bool = True,
                 tenant_capacity: Optional[int] = None,
                 peers: Optional[List[str]] = None) -> None:
        if jobs < 1:
            raise ValueError("jobs must be >= 1")
        self.root = os.fspath(root)
        os.makedirs(self.root, exist_ok=True)
        self.jobs = jobs
        self.timeout_s = timeout_s
        self.retries = retries
        self.worker_memory_mb = worker_memory_mb
        self.checkpoint_interval = checkpoint_interval
        self.heartbeat_s = heartbeat_s
        self.stuck_after_s = stuck_after_s
        self.degrade_after = degrade_after
        self.recover_after = recover_after
        self.probe_after_s = probe_after_s

        self.journal = Journal(os.path.join(self.root, "journal.jsonl"),
                               fsync=fsync)
        self.cache = ExperimentCache(
            cache_dir=os.path.join(self.root, "cache"))
        self.checkpoint_dir = os.path.join(self.root, "checkpoints")
        os.makedirs(self.checkpoint_dir, exist_ok=True)
        self.drain_flag = os.path.join(self.root, "drain.flag")
        self.queue = AdmissionQueue(queue_capacity,
                                    job_seconds=self._avg_job_seconds,
                                    tenant_capacity=tenant_capacity)
        self.peers = list(peers or [])
        if self.peers and self.cache.store is not None:
            # store federation: a local miss read-throughs the peer
            # shards' /store endpoints and fills locally (flock'd)
            from repro.service.fabric.store import peer_fetcher
            self.cache.store.peer_fetch = peer_fetcher(self.peers)

        self._lock = threading.RLock()
        #: Signaled (under ``_lock``) on every job state transition;
        #: the long-poll watch endpoint (``wait_for``) sleeps on it.
        self._changed = threading.Condition(self._lock)
        self._state: Dict[str, Dict[str, Any]] = {}
        self._specs: Dict[str, JobSpec] = {}
        self._inflight: Dict[str, float] = {}
        self._stuck_flagged: set = set()
        self._durations: collections.deque = collections.deque(maxlen=32)
        self._level_index = 0
        self._level_entered = 0.0
        self._consecutive_failures = 0
        self._consecutive_successes = 0
        self._executor: Optional[Executor] = None
        self._draining = threading.Event()
        self._stop = threading.Event()
        self._worker: Optional[threading.Thread] = None
        self._watchdog: Optional[threading.Thread] = None
        self._started = time.monotonic()  # repro: allow-wall-clock
        self.counters = collections.Counter()
        self._recover()

    # ------------------------------------------------------------------
    # Crash recovery (journal replay)
    # ------------------------------------------------------------------

    def _recover(self) -> None:
        """Rebuild queue/state from the journal left by a previous
        incarnation, then compact it.  Jobs last seen ``running`` were
        interrupted by the crash: they re-enter the queue with
        ``resume=True`` so their rolling checkpoints are picked up."""
        try:
            os.unlink(self.drain_flag)  # a stale flag would insta-drain
        except OSError:
            pass
        state = reduce_records(self.journal.replay())
        replayed = 0
        for job_id in sorted(state):
            entry = state[job_id]
            spec_doc = entry.get("spec")
            if spec_doc is not None:
                try:
                    self._specs[job_id] = JobSpec.from_doc(spec_doc)
                except Exception:  # noqa: BLE001 - old/foreign spec
                    _log.warning("journal: job %s has an unresolvable "
                                 "spec; dropping", job_id[:16])
                    continue
            if entry["status"] == "running":
                entry["status"] = "queued"
                entry["resume"] = True
            self._state[job_id] = entry
            if entry["status"] == "queued":
                if job_id not in self._specs:
                    _log.warning("journal: queued job %s has no spec; "
                                 "dropping", job_id[:16])
                    entry["status"] = "failed"
                    entry["failure"] = {"kind": "error",
                                        "message": "spec lost"}
                    continue
                self.queue.push(job_id, entry.get("priority", 0),
                                tenant=self._tenant_of(job_id))
                replayed += 1
        if replayed:
            _log.info("journal replay: %d unfinished job(s) re-queued",
                      replayed)
        self.counters["replayed_jobs"] = replayed
        self.journal.compact(self._state)

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------

    def start(self) -> None:
        self._worker = threading.Thread(target=self._worker_loop,
                                        name="repro-service-worker",
                                        daemon=True)
        self._watchdog = threading.Thread(target=self._watchdog_loop,
                                          name="repro-service-watchdog",
                                          daemon=True)
        self._worker.start()
        self._watchdog.start()

    def drain(self, wait: bool = True,
              timeout_s: Optional[float] = None) -> None:
        """Graceful shutdown: refuse new work, checkpoint + requeue
        in-flight jobs, stop the threads.  Idempotent."""
        self._draining.set()
        with open(self.drain_flag, "w", encoding="utf-8") as fh:
            fh.write("draining\n")
        self.queue.wake_all()
        if wait and self._worker is not None:
            self._worker.join(timeout_s)
        self._stop.set()
        if wait and self._watchdog is not None:
            self._watchdog.join(min(timeout_s or 5.0, 5.0))

    def close(self) -> None:
        self._stop.set()
        self._draining.set()
        self.queue.wake_all()
        self.journal.close()

    @property
    def draining(self) -> bool:
        return self._draining.is_set()

    @property
    def level(self) -> str:
        return DEGRADATION_LADDER[self._level_index]

    def _tenant_of(self, job_id: str) -> str:
        spec = self._specs.get(job_id)
        return spec.tenant if spec is not None else DEFAULT_TENANT

    # ------------------------------------------------------------------
    # Submission / status (called from HTTP handler threads)
    # ------------------------------------------------------------------

    def submit(self, spec: JobSpec) -> Dict[str, Any]:
        """Idempotently admit one job; returns its status doc.

        Raises ``BadRequestError`` (unresolvable spec),
        ``QueueFullError`` (backpressure), ``DrainingError`` or
        ``RejectingError`` (degraded to reject-only).
        """
        config, workload = spec.resolve()
        job_id = spec.job_id()
        with self._lock:
            entry = self._state.get(job_id)
            if entry is not None and entry["status"] == "done":
                self.counters["idempotent_hits"] += 1
                return self._status_doc(job_id, entry)
            if entry is not None and entry["status"] in ("queued",
                                                         "running"):
                self.counters["deduplicated"] += 1
                return self._status_doc(job_id, entry)
        if self._draining.is_set():
            raise DrainingError("service is draining; resubmit to the "
                                "next incarnation",
                                retry_after_s=self.queue.retry_after_s())
        if self.level == "reject":
            raise RejectingError(
                "service degraded to reject-only; probing for recovery",
                retry_after_s=max(self.probe_after_s, 1.0))
        # a result computed by an earlier batch run sharing this cache
        # directory satisfies the job with zero simulation
        cached = self.cache.peek(config, workload)
        with self._lock:
            if cached is not None:
                self.counters["idempotent_hits"] += 1
                entry = {"status": "done", "spec": spec.to_doc(),
                         "priority": spec.priority, "attempts": 0,
                         "resume": False, "cycles": cached.cycles}
                self.journal.append("submitted", job_id,
                                    {"spec": spec.to_doc(),
                                     "priority": spec.priority})
                self.journal.append("done", job_id,
                                    {"cycles": cached.cycles,
                                     "cached": True})
                self._state[job_id] = entry
                self._changed.notify_all()
                return self._status_doc(job_id, entry)
            admitted = self.queue.push(job_id, spec.priority,
                                       tenant=spec.tenant)
            if admitted:
                self.counters["submitted"] += 1
                entry = {"status": "queued", "spec": spec.to_doc(),
                         "priority": spec.priority, "attempts": 0,
                         "resume": False}
                # write-ahead: the 202 the caller sends after this line
                # is backed by a durable record
                self.journal.append("submitted", job_id,
                                    {"spec": spec.to_doc(),
                                     "priority": spec.priority})
                self._state[job_id] = entry
                self._specs[job_id] = spec
            else:
                entry = self._state[job_id]
            return self._status_doc(job_id, entry)

    def status(self, job_id: str) -> Dict[str, Any]:
        with self._lock:
            entry = self._state.get(job_id)
            if entry is None:
                raise JobNotFoundError(f"no such job: {job_id}")
            return self._status_doc(job_id, entry)

    def result_doc(self, job_id: str) -> Optional[Dict[str, Any]]:
        """The stored ``SimResult`` document of a done job (job ids are
        the store's content-addressed keys), or ``None``."""
        store = self.cache.store
        result = store.get(job_id) if store is not None else None
        return result.to_dict() if result is not None else None

    def store_payload(self, key: str) -> Optional[Dict[str, Any]]:
        """Raw local store payload for ``key`` (what ``GET /store/<key>``
        serves to peer shards).  Local-only by contract — never falls
        through to peers, so cross-shard fetch chains always terminate."""
        store = self.cache.store
        return store.payload(key) if store is not None else None

    def wait_for(self, job_ids: List[str],
                 timeout_s: float = 30.0) -> Dict[str, Dict[str, Any]]:
        """Long-poll primitive behind ``GET /jobs?watch=``: block until
        at least one of ``job_ids`` is terminal (``done``/``failed``),
        then return every terminal one's status doc; ``{}`` when
        ``timeout_s`` elapses first.  Raises ``JobNotFoundError`` for an
        id that was never submitted here (the watcher is confused or the
        ring routed it to a different shard — either way, tell it now
        rather than stalling it for the full timeout)."""
        timeout_s = max(timeout_s, 0.0)
        deadline = time.monotonic() + timeout_s  # repro: allow-wall-clock
        with self._changed:
            while True:
                done: Dict[str, Dict[str, Any]] = {}
                for job_id in job_ids:
                    entry = self._state.get(job_id)
                    if entry is None:
                        raise JobNotFoundError(f"no such job: {job_id}")
                    if entry["status"] in ("done", "failed"):
                        done[job_id] = self._status_doc(job_id, entry)
                if done:
                    return done
                remaining = deadline \
                    - time.monotonic()  # repro: allow-wall-clock
                if remaining <= 0 or self._stop.is_set():
                    return {}
                # bounded wait slices double as a liveness backstop
                # should a transition ever miss its notify
                self._changed.wait(min(remaining, 0.5))

    def _status_doc(self, job_id: str,
                    entry: Dict[str, Any]) -> Dict[str, Any]:
        doc = {"job": job_id, "status": entry["status"],
               "priority": entry.get("priority", 0),
               "attempts": entry.get("attempts", 0)}
        if entry.get("resume"):
            doc["resume"] = True
        if entry["status"] == "queued":
            # poll-backoff hint: clients scale their next poll to the
            # backlog instead of hammering at a fixed interval
            doc["retry_after_s"] = self.queue.retry_after_s()
        if "cycles" in entry:
            doc["cycles"] = entry["cycles"]
        if "failure" in entry:
            doc["failure"] = entry["failure"]
        spec_doc = entry.get("spec")
        if spec_doc:
            doc["spec"] = spec_doc
        return doc

    def stats(self) -> Dict[str, Any]:
        with self._lock:
            by_status = collections.Counter(
                entry["status"] for entry in self._state.values())
            inflight = sorted(self._inflight)
            counters = dict(self.counters)
        store = self.cache.store
        return {
            "level": self.level,
            "draining": self.draining,
            "jobs_by_status": dict(by_status),
            "queue_depth": len(self.queue),
            "queue_capacity": self.queue.capacity,
            "queue_tenants": self.queue.tenants(),
            "peers": list(self.peers),
            "peer_fills": store.peer_fills if store is not None else 0,
            "inflight": [job[:16] for job in inflight],
            "avg_job_seconds": round(self._avg_job_seconds(), 3),
            "uptime_s": round(
                time.monotonic()  # repro: allow-wall-clock
                - self._started, 3),
            "counters": counters,
        }

    # ------------------------------------------------------------------
    # Worker loop
    # ------------------------------------------------------------------

    def _level_jobs(self) -> int:
        return {"full": self.jobs,
                "reduced": max(1, self.jobs // 2),
                "serial": 1}.get(self.level, 0)

    def _avg_job_seconds(self) -> float:
        durations = list(self._durations)
        if not durations:
            return DEFAULT_JOB_SECONDS
        return sum(durations) / len(durations)

    def _make_executor(self) -> Executor:
        level_jobs = max(1, self._level_jobs())
        return Executor(
            jobs=level_jobs, timeout_s=self.timeout_s, cache=self.cache,
            retries=self.retries,
            checkpoint_dir=self.checkpoint_dir,
            checkpoint_interval=self.checkpoint_interval,
            worker_memory_mb=self.worker_memory_mb,
            drain_flag=self.drain_flag)

    def _worker_loop(self) -> None:
        while not self._stop.is_set():
            if self._draining.is_set():
                break
            if self.level == "reject":
                time.sleep(self.heartbeat_s)
                continue
            job_id = self.queue.pop(timeout_s=0.2)
            if job_id is None:
                continue
            batch = [job_id] + self.queue.pop_batch(
                self._level_jobs() - 1)
            self._run_batch(batch)
        self._requeue_leftovers()

    def _run_batch(self, batch: List[str]) -> None:
        tasks: List[Task] = []
        started = time.monotonic()  # repro: allow-wall-clock
        with self._lock:
            if self._executor is None:
                self._executor = self._make_executor()
            executor = self._executor
            for job_id in batch:
                entry = self._state[job_id]
                spec = self._specs[job_id]
                config, workload = spec.resolve()
                attempt = entry.get("attempts", 0) + 1
                self.journal.append("running", job_id,
                                    {"attempt": attempt})
                entry["status"] = "running"
                entry["attempts"] = attempt
                self._inflight[job_id] = started
                tasks.append(Task(job_id, config, workload,
                                  resume=bool(entry.get("resume"))))
        outcome = executor.run_tasks(tasks)
        elapsed = time.monotonic() - started  # repro: allow-wall-clock
        with self._lock:
            for key in ("simulated", "cache_hits", "retries",
                        "pool_rebuilds"):
                self.counters[f"executor_{key}"] += outcome.stats[key]
            for job_id in batch:
                self._inflight.pop(job_id, None)
                self._stuck_flagged.discard(job_id)
                entry = self._state[job_id]
                if job_id in outcome.results:
                    result = outcome.results[job_id]
                    self.journal.append("done", job_id,
                                        {"cycles": result.cycles})
                    entry["status"] = "done"
                    entry["resume"] = False
                    entry["cycles"] = result.cycles
                    self.counters["completed"] += 1
                    self._durations.append(max(elapsed / len(batch),
                                               1e-3))
                    self._note_success()
                elif job_id in outcome.drained:
                    cycle = outcome.drained[job_id]
                    self.journal.append("requeued", job_id,
                                        {"checkpoint_cycle": cycle})
                    entry["status"] = "queued"
                    entry["resume"] = True
                    entry["checkpoint_cycle"] = cycle
                    self.counters["requeued"] += 1
                    if not self._draining.is_set():
                        self.queue.push(job_id, entry.get("priority", 0),
                                        tenant=self._tenant_of(job_id))
                else:
                    failure = next(f for f in outcome.failures
                                   if f.label == job_id)
                    self.journal.append(
                        "failed", job_id,
                        {"kind": failure.kind,
                         "message": failure.message[:500],
                         "attempts": failure.attempts})
                    entry["status"] = "failed"
                    entry["failure"] = {"kind": failure.kind,
                                        "message": failure.message[:500]}
                    self.counters["failed"] += 1
                    self._note_failure(failure.kind)
            if self.journal.appends_since_compact >= COMPACT_EVERY:
                self.journal.compact(self._state)
                self.counters["compactions"] += 1
            self._changed.notify_all()  # wake long-poll watchers

    def _requeue_leftovers(self) -> None:
        """On drain: anything still queued stays journaled as queued —
        nothing to do but surface the count (replay re-queues them)."""
        with self._lock:
            leftover = sum(1 for entry in self._state.values()
                           if entry["status"] == "queued")
        if leftover:
            _log.info("drain: %d queued job(s) left for the next "
                      "incarnation", leftover)

    # ------------------------------------------------------------------
    # Degradation ladder
    # ------------------------------------------------------------------

    def _note_success(self) -> None:
        self._consecutive_failures = 0
        if self._level_index == 0:
            return
        self._consecutive_successes += 1
        if self._consecutive_successes >= self.recover_after:
            self._shift_level(-1, "consecutive successes")

    def _note_failure(self, kind: str) -> None:
        self._consecutive_successes = 0
        self._consecutive_failures += 1
        if self._consecutive_failures >= self.degrade_after \
                and self._level_index < len(DEGRADATION_LADDER) - 1:
            self._shift_level(+1, f"consecutive {kind} failures")

    def _shift_level(self, delta: int, why: str) -> None:
        previous = self.level
        self._level_index = min(max(self._level_index + delta, 0),
                                len(DEGRADATION_LADDER) - 1)
        self._level_entered = time.monotonic()  # repro: allow-wall-clock
        self._consecutive_failures = 0
        self._consecutive_successes = 0
        self._executor = None  # rebuilt at the new width
        key = "degradations" if delta > 0 else "recoveries"
        self.counters[key] += 1
        _log.warning("service level %s -> %s (%s)", previous,
                     self.level, why)

    # ------------------------------------------------------------------
    # Watchdog
    # ------------------------------------------------------------------

    def _watchdog_loop(self) -> None:
        while not self._stop.is_set():
            time.sleep(self.heartbeat_s)
            now = time.monotonic()  # repro: allow-wall-clock
            with self._lock:
                for job_id, since in list(self._inflight.items()):
                    if now - since < self.stuck_after_s \
                            or job_id in self._stuck_flagged:
                        continue
                    self._stuck_flagged.add(job_id)
                    self.counters["watchdog_stuck"] += 1
                    _log.warning("watchdog: job %s in flight for "
                                 "%.1fs (budget %.1fs)", job_id[:16],
                                 now - since, self.stuck_after_s)
                    self._note_failure("stuck")
                if self.level == "reject" \
                        and now - self._level_entered \
                        >= self.probe_after_s:
                    self._shift_level(-1, "recovery probe")
