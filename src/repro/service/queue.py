"""Bounded admission queue: priorities, fair-share tenants, backpressure.

The queue is the service's only growth point, so it is the one place
where load sheds: past ``capacity`` pending jobs, ``push`` raises
``QueueFullError`` with a ``retry_after_s`` hint instead of queueing —
an explicit, structured rejection the client can honor, rather than an
unbounded backlog that turns into an OOM three hours later.  An
optional per-tenant quota (``tenant_capacity``) sheds the same way but
earlier and per tenant (``QuotaExceededError``), so one tenant's burst
cannot crowd the whole queue.

Ordering is ``(priority, tenant fair-share, seq)``: lower priority
values run first (interactive ``repro submit`` requests use
``PRIORITY_INTERACTIVE=0`` and overtake bulk campaign cells at
``PRIORITY_BULK=10``); among equal-priority heads of *different*
tenants, the least-recently-served tenant goes first (round-robin
fair share — two sweeping tenants interleave instead of queue-order
starving one); within one tenant it is FIFO by submission ``seq``, so
equal-priority jobs can never starve each other.  With a single tenant
the fair-share term is constant and the order degenerates to exactly
the old ``(priority, seq)`` contract.  A job id can only be queued once
(``push`` of a queued id is a no-op returning ``False``), whatever
tenant resubmits it, which keeps idempotent resubmission cheap.

The retry-after hint is backpressure-proportional: the caller supplies
an estimate of seconds-per-job drain rate (the supervisor feeds it a
decayed average of recent job durations), and the hint scales with the
backlog in front of the hypothetical next slot.
"""

from __future__ import annotations

import heapq
import threading
from typing import Callable, Dict, List, Optional, Tuple

from repro.common.errors import QueueFullError, QuotaExceededError

#: Fallback seconds-per-job guess before any job has completed.
DEFAULT_JOB_SECONDS = 2.0

#: Tenant name used when submitters don't identify themselves.
DEFAULT_TENANT = "default"


class AdmissionQueue:
    """Thread-safe bounded priority queue of job ids (see module docs)."""

    def __init__(self, capacity: int = 64,
                 job_seconds: Optional[Callable[[], float]] = None,
                 tenant_capacity: Optional[int] = None) -> None:
        if capacity < 1:
            raise ValueError("capacity must be >= 1")
        if tenant_capacity is not None and tenant_capacity < 1:
            raise ValueError("tenant_capacity must be >= 1")
        self.capacity = capacity
        self.tenant_capacity = tenant_capacity
        self._job_seconds = job_seconds
        # one FIFO-within-priority heap per tenant; insertion order of
        # the dict is submission order, which keeps iteration (and so
        # pop tie-breaking) deterministic
        self._heaps: Dict[str, List[Tuple[int, int, str]]] = {}
        self._queued: Dict[str, str] = {}  # job_id -> tenant
        self._served: Dict[str, int] = {}  # tenant -> last-pop tick
        self._seq = 0
        self._tick = 0
        self._size = 0
        self._lock = threading.Lock()
        self._not_empty = threading.Condition(self._lock)

    def __len__(self) -> int:
        with self._lock:
            return self._size

    def __contains__(self, job_id: str) -> bool:
        with self._lock:
            return job_id in self._queued

    def depth(self, tenant: str = DEFAULT_TENANT) -> int:
        """Pending jobs queued by one tenant."""
        with self._lock:
            return len(self._heaps.get(tenant, ()))

    def tenants(self) -> Dict[str, int]:
        """Per-tenant pending depth (only tenants with backlog)."""
        with self._lock:
            return {tenant: len(heap)
                    for tenant, heap in self._heaps.items() if heap}

    def retry_after_s(self, backlog: Optional[int] = None) -> float:
        """Estimated seconds until a queue slot frees up."""
        per_job = DEFAULT_JOB_SECONDS if self._job_seconds is None \
            else max(self._job_seconds(), 0.05)
        if backlog is None:
            with self._lock:
                backlog = self._size
        return round(max(1, backlog) * per_job, 3)

    def push(self, job_id: str, priority: int,
             tenant: str = DEFAULT_TENANT) -> bool:
        """Admit ``job_id`` at ``priority`` for ``tenant``; ``False`` if
        already queued (by any tenant — job ids are content-addressed,
        so the job is the same job whoever resubmits it).

        Raises ``QueueFullError`` when the queue is at global capacity
        and ``QuotaExceededError`` when this tenant's slice is full —
        the caller translates either into an HTTP 429 plus
        ``Retry-After`` header.
        """
        with self._lock:
            if job_id in self._queued:
                return False
            if self._size >= self.capacity:
                raise QueueFullError(
                    f"admission queue at capacity "
                    f"({self._size}/{self.capacity})",
                    retry_after_s=self.retry_after_s(self._size))
            heap = self._heaps.setdefault(tenant, [])
            if self.tenant_capacity is not None \
                    and len(heap) >= self.tenant_capacity:
                raise QuotaExceededError(
                    f"tenant {tenant!r} is at its quota "
                    f"({len(heap)}/{self.tenant_capacity} pending)",
                    retry_after_s=self.retry_after_s(len(heap)))
            self._seq += 1
            heapq.heappush(heap, (priority, self._seq, job_id))
            self._queued[job_id] = tenant
            self._size += 1
            self._not_empty.notify()
            return True

    def _pop_locked(self) -> Optional[str]:
        """Fair-share pop (lock held): among tenant heap heads, take the
        lowest ``(priority, last-served tick, seq)``."""
        best: Optional[Tuple[Tuple[int, int, int], str]] = None
        for tenant, heap in self._heaps.items():
            if not heap:
                continue
            priority, seq, _job_id = heap[0]
            rank = (priority, self._served.get(tenant, 0), seq)
            if best is None or rank < best[0]:
                best = (rank, tenant)
        if best is None:
            return None
        tenant = best[1]
        _priority, _seq, job_id = heapq.heappop(self._heaps[tenant])
        self._tick += 1
        self._served[tenant] = self._tick
        del self._queued[job_id]
        self._size -= 1
        return job_id

    def pop(self, timeout_s: Optional[float] = None) -> Optional[str]:
        """Highest-priority job id (fair-shared across tenants),
        blocking up to ``timeout_s``; ``None`` on timeout (or
        immediately when ``timeout_s=0``)."""
        with self._not_empty:
            if not self._size and timeout_s != 0:
                self._not_empty.wait(timeout_s)
            return self._pop_locked()

    def pop_batch(self, limit: int) -> List[str]:
        """Up to ``limit`` job ids, non-blocking, fair-share order."""
        batch: List[str] = []
        with self._lock:
            while self._size and len(batch) < limit:
                job_id = self._pop_locked()
                if job_id is None:  # pragma: no cover - size guards this
                    break
                batch.append(job_id)
        return batch

    def wake_all(self) -> None:
        """Release every blocked ``pop`` (service shutdown/drain)."""
        with self._not_empty:
            self._not_empty.notify_all()

    def snapshot(self) -> List[Tuple[int, str]]:
        """(priority, job_id) pairs in (priority, submission) order,
        for ``/stats``."""
        with self._lock:
            entries = [entry for heap in self._heaps.values()
                       for entry in heap]
        return [(priority, job_id)
                for priority, _seq, job_id in sorted(entries)]
