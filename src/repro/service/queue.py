"""Bounded admission queue: priorities, backpressure, graceful refusal.

The queue is the service's only growth point, so it is the one place
where load sheds: past ``capacity`` pending jobs, ``push`` raises
``QueueFullError`` with a ``retry_after_s`` hint instead of queueing —
an explicit, structured rejection the client can honor, rather than an
unbounded backlog that turns into an OOM three hours later.

Ordering is ``(priority, seq)``: lower priority values run first
(interactive ``repro submit`` requests use ``PRIORITY_INTERACTIVE=0``
and overtake bulk campaign cells at ``PRIORITY_BULK=10``), and FIFO
within a priority class, so equal-priority jobs can never starve each
other.  A job id can only be queued once (``push`` of a queued id is a
no-op returning ``False``), which keeps idempotent resubmission cheap.

The retry-after hint is backpressure-proportional: the caller supplies
an estimate of seconds-per-job drain rate (the supervisor feeds it a
decayed average of recent job durations), and the hint scales with the
backlog in front of the hypothetical next slot.
"""

from __future__ import annotations

import heapq
import threading
from typing import Callable, List, Optional, Set, Tuple

from repro.common.errors import QueueFullError

#: Fallback seconds-per-job guess before any job has completed.
DEFAULT_JOB_SECONDS = 2.0


class AdmissionQueue:
    """Thread-safe bounded priority queue of job ids (see module docs)."""

    def __init__(self, capacity: int = 64,
                 job_seconds: Optional[Callable[[], float]] = None
                 ) -> None:
        if capacity < 1:
            raise ValueError("capacity must be >= 1")
        self.capacity = capacity
        self._job_seconds = job_seconds
        self._heap: List[Tuple[int, int, str]] = []
        self._queued: Set[str] = set()
        self._seq = 0
        self._lock = threading.Lock()
        self._not_empty = threading.Condition(self._lock)

    def __len__(self) -> int:
        with self._lock:
            return len(self._heap)

    def __contains__(self, job_id: str) -> bool:
        with self._lock:
            return job_id in self._queued

    def retry_after_s(self, backlog: Optional[int] = None) -> float:
        """Estimated seconds until a queue slot frees up."""
        per_job = DEFAULT_JOB_SECONDS if self._job_seconds is None \
            else max(self._job_seconds(), 0.05)
        if backlog is None:
            with self._lock:
                backlog = len(self._heap)
        return round(max(1, backlog) * per_job, 3)

    def push(self, job_id: str, priority: int) -> bool:
        """Admit ``job_id`` at ``priority``; ``False`` if already queued.

        Raises ``QueueFullError`` (with the retry-after hint) when the
        queue is at capacity — the caller translates that into an HTTP
        429 plus ``Retry-After`` header.
        """
        with self._lock:
            if job_id in self._queued:
                return False
            if len(self._heap) >= self.capacity:
                raise QueueFullError(
                    f"admission queue at capacity "
                    f"({len(self._heap)}/{self.capacity})",
                    retry_after_s=self.retry_after_s(len(self._heap)))
            self._seq += 1
            heapq.heappush(self._heap, (priority, self._seq, job_id))
            self._queued.add(job_id)
            self._not_empty.notify()
            return True

    def pop(self, timeout_s: Optional[float] = None) -> Optional[str]:
        """Highest-priority job id, blocking up to ``timeout_s``;
        ``None`` on timeout (or immediately when ``timeout_s=0``)."""
        with self._not_empty:
            if not self._heap and timeout_s != 0:
                self._not_empty.wait(timeout_s)
            if not self._heap:
                return None
            _priority, _seq, job_id = heapq.heappop(self._heap)
            self._queued.discard(job_id)
            return job_id

    def pop_batch(self, limit: int) -> List[str]:
        """Up to ``limit`` job ids, non-blocking, priority order."""
        batch: List[str] = []
        with self._lock:
            while self._heap and len(batch) < limit:
                _priority, _seq, job_id = heapq.heappop(self._heap)
                self._queued.discard(job_id)
                batch.append(job_id)
        return batch

    def wake_all(self) -> None:
        """Release every blocked ``pop`` (service shutdown/drain)."""
        with self._not_empty:
            self._not_empty.notify_all()

    def snapshot(self) -> List[Tuple[int, str]]:
        """(priority, job_id) pairs in drain order, for ``/stats``."""
        with self._lock:
            return [(priority, job_id) for priority, _seq, job_id
                    in sorted(self._heap)]
