"""The out-of-order core model: ROB, LSQ, pipeline, order tracking."""

from repro.core.lsq import LoadQueue, StoreQueue
from repro.core.pipeline import Core
from repro.core.rob import ReorderBuffer, ROBEntry
from repro.core.tracking import LazyMinSet

__all__ = ["Core", "LazyMinSet", "LoadQueue", "ROBEntry", "ReorderBuffer",
           "StoreQueue"]
