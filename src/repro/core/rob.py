"""Reorder buffer: parallel column state plus slim per-uop handles.

The mutable execution state of in-flight uops is a struct-of-arrays
block (``ColumnState``): preallocated ``array`` columns indexed by a
*slot id*.  The reorder buffer window is contiguous in program order —
dispatch pushes index ``cursor``, squash pops a suffix and rewinds the
cursor, retire advances the head — so a uop's slot is simply
``index & mask`` over a power-of-two column capacity, and slots recycle
themselves as the window wraps: no free list walk, no per-entry dict.

A ``ROBEntry`` is a *handle*: identity (uop, index, slot) plus the one
mutable field that must survive the slot's reuse (``squashed`` — stale
event callbacks holding a squashed handle must see it dead even after
the slot hosts the replayed incarnation).  Every other field reads and
writes the columns through properties, so non-hot code (the pinning
controller, the schemes, the sanitizer, unit tests) keeps its attribute
syntax while the specialized engine closures index the columns
directly.  The same ``MicroOp`` may be dispatched several times
(squash-and-replay), each time with a fresh handle over a reset slot.
"""

from __future__ import annotations

from array import array
from typing import Iterator, List, Optional

from repro.isa.uops import MicroOp

#: ``ColumnState.flags`` bits.  One uint16 read answers every status
#: probe the hot scans make; one store clears the whole struct at
#: dispatch.
FLAG_ISSUED = 1
FLAG_COMPLETE = 2
FLAG_ADDR_READY = 4
FLAG_PERFORMED = 8
FLAG_PINNED = 16
FLAG_MCV_SAFE = 32
FLAG_OUTSTANDING = 64
FLAG_FORWARDED = 128
FLAG_PARKED = 256
FLAG_NOTIFIED = 512      # barrier uop announced its arrival
FLAG_INVISIBLE = 1024    # load performed invisibly (InvisiSpec)
FLAG_VALIDATED = 2048    # invisible load validated at its VP
FLAG_VP_CAND = 4096      # address-ready load the VP walk may act on


def _pow2(capacity: int) -> int:
    cap = 1
    while cap < capacity:
        cap <<= 1
    return cap


class ColumnState:
    """Preallocated parallel columns of per-slot mutable uop state.

    In memory the columns are plain preallocated lists: CPython indexes
    a list roughly twice as fast as a typed ``array`` (no element
    boxing), and read-modify-write flag stores are ~3x faster, which is
    what the per-tick scans actually pay.  The typed layout still
    exists — at checkpoint time each column pickles as a compact
    ``array`` buffer (``__getstate__``), so a format-4 snapshot stores
    flat machine-sized columns rather than per-entry object graphs.
    """

    __slots__ = ("cap", "mask", "flags", "pending", "pending_data",
                 "vp", "lq_id", "complete_cycle", "dispatch_cycle")

    #: (name, array typecode) per column, in pickle order.  ``H`` holds
    #: every flag combination (< 2**16); cycle counts / indices are
    #: signed 64-bit so -1 sentinels and long runs fit.
    _COLUMNS = (("flags", "H"), ("pending", "i"), ("pending_data", "i"),
                ("vp", "q"), ("lq_id", "q"),
                ("complete_cycle", "q"), ("dispatch_cycle", "q"))

    def __init__(self, capacity: int) -> None:
        cap = _pow2(capacity)
        self.cap = cap
        self.mask = cap - 1
        self.flags = [0] * cap
        self.pending = [0] * cap
        self.pending_data = [0] * cap
        self.vp = [-1] * cap
        self.lq_id = [-1] * cap
        self.complete_cycle = [-1] * cap
        self.dispatch_cycle = [0] * cap

    def __getstate__(self):
        return (self.cap, [array(code, getattr(self, name))
                           for name, code in self._COLUMNS])

    def __setstate__(self, state) -> None:
        cap, columns = state
        self.cap = cap
        self.mask = cap - 1
        for (name, _code), column in zip(self._COLUMNS, columns):
            setattr(self, name, column.tolist())

    def reset(self, slot: int, pending_deps: int,
              dispatch_cycle: int) -> None:
        """Claim ``slot`` for a fresh incarnation: a handful of column
        stores instead of the twenty-odd attribute stores the per-uop
        object layout paid on every dispatch."""
        self.flags[slot] = 0
        self.pending[slot] = pending_deps
        self.pending_data[slot] = 0
        self.vp[slot] = -1
        self.lq_id[slot] = -1
        self.complete_cycle[slot] = -1
        self.dispatch_cycle[slot] = dispatch_cycle


def _flag_property(bit: int):
    clear = ~bit

    def getter(self) -> bool:
        return bool(self.cols.flags[self.slot] & bit)

    def setter(self, value: bool) -> None:
        # wake relevance is accounted at the assignment *site* (the
        # attribute store the wakeup verify pass registers), not here
        if value:
            self.cols.flags[self.slot] |= bit
        else:
            self.cols.flags[self.slot] &= clear

    return property(getter, setter)


class ROBEntry:
    """Handle to one in-flight uop's column state.

    ``squashed`` lives on the handle, not in the columns: a squashed
    uop's slot is reset when the replayed incarnation dispatches, but
    event callbacks scheduled against the dead incarnation still hold
    the old handle and must keep reading ``squashed == True``.
    """

    __slots__ = ("uop", "index", "slot", "line", "squashed", "cols")

    def __init__(self, uop: MicroOp, pending_deps: int,
                 dispatch_cycle: int, cols: Optional[ColumnState] = None,
                 slot: int = 0) -> None:
        self.uop = uop
        self.index = uop.index
        self.line: Optional[int] = (uop.addr >> 6) if uop.addr is not None \
            else None
        self.squashed = False
        if cols is None:
            # standalone construction (unit tests, tools): a private
            # single-slot column block keeps the property protocol
            cols = ColumnState(1)
            slot = 0
        self.cols = cols
        self.slot = slot
        cols.reset(slot, pending_deps, dispatch_cycle)

    issued = _flag_property(FLAG_ISSUED)
    complete = _flag_property(FLAG_COMPLETE)
    addr_ready = _flag_property(FLAG_ADDR_READY)
    performed = _flag_property(FLAG_PERFORMED)
    pinned = _flag_property(FLAG_PINNED)
    mcv_safe = _flag_property(FLAG_MCV_SAFE)
    outstanding = _flag_property(FLAG_OUTSTANDING)
    forwarded = _flag_property(FLAG_FORWARDED)
    parked = _flag_property(FLAG_PARKED)
    barrier_notified = _flag_property(FLAG_NOTIFIED)
    invisible = _flag_property(FLAG_INVISIBLE)
    validated = _flag_property(FLAG_VALIDATED)
    vp_candidate = _flag_property(FLAG_VP_CAND)

    @property
    def pending_deps(self) -> int:
        return self.cols.pending[self.slot]

    @pending_deps.setter
    def pending_deps(self, value: int) -> None:
        self.cols.pending[self.slot] = value

    @property
    def pending_data_deps(self) -> int:
        return self.cols.pending_data[self.slot]

    @pending_data_deps.setter
    def pending_data_deps(self, value: int) -> None:
        self.cols.pending_data[self.slot] = value

    @property
    def vp_cycle(self) -> Optional[int]:
        cycle = self.cols.vp[self.slot]
        return None if cycle < 0 else cycle

    @vp_cycle.setter
    def vp_cycle(self, value: Optional[int]) -> None:
        self.cols.vp[self.slot] = -1 if value is None else value

    @property
    def lq_id(self) -> Optional[int]:
        lq_id = self.cols.lq_id[self.slot]
        return None if lq_id < 0 else lq_id

    @lq_id.setter
    def lq_id(self, value: Optional[int]) -> None:
        self.cols.lq_id[self.slot] = -1 if value is None else value

    @property
    def complete_cycle(self) -> Optional[int]:
        cycle = self.cols.complete_cycle[self.slot]
        return None if cycle < 0 else cycle

    @complete_cycle.setter
    def complete_cycle(self, value: Optional[int]) -> None:
        self.cols.complete_cycle[self.slot] = -1 if value is None else value

    @property
    def dispatch_cycle(self) -> int:
        return self.cols.dispatch_cycle[self.slot]

    @dispatch_cycle.setter
    def dispatch_cycle(self, value: int) -> None:
        self.cols.dispatch_cycle[self.slot] = value

    @property
    def deps_ready(self) -> bool:
        return self.cols.pending[self.slot] == 0

    def __repr__(self) -> str:
        flags = "".join(flag for flag, on in [
            ("I", self.issued), ("C", self.complete), ("A", self.addr_ready),
            ("P", self.performed), ("p", self.pinned), ("s", self.mcv_safe),
            ("X", self.squashed)] if on)
        return f"ROBEntry(#{self.index} {self.uop.opclass.value} [{flags}])"


class ReorderBuffer:
    """Contiguous in-order window of in-flight uops over the columns.

    The window is ``[_head, _next)`` in program-order indices; the
    handle for index ``i`` sits at ``_handles[i & _mask]``.  All the
    linked-structure operations of the previous deque+dict layout —
    head/tail access, index lookup, occupancy — become O(1) integer
    arithmetic, and popping either end is one list store.
    """

    __slots__ = ("capacity", "cols", "_mask", "_handles", "_head", "_next")

    def __init__(self, capacity: int) -> None:
        self.capacity = capacity
        self.cols = ColumnState(capacity)
        self._mask = self.cols.mask
        self._handles: List[Optional[ROBEntry]] = [None] * self.cols.cap
        self._head = 0
        self._next = 0

    def __len__(self) -> int:
        return self._next - self._head

    def __iter__(self) -> Iterator[ROBEntry]:
        handles = self._handles
        mask = self._mask
        for index in range(self._head, self._next):
            entry = handles[index & mask]
            if entry is not None:
                yield entry

    @property
    def full(self) -> bool:
        return self._next - self._head >= self.capacity

    @property
    def empty(self) -> bool:
        return self._next == self._head

    def head(self) -> Optional[ROBEntry]:
        if self._next == self._head:
            return None
        return self._handles[self._head & self._mask]

    def tail(self) -> Optional[ROBEntry]:
        if self._next == self._head:
            return None
        return self._handles[(self._next - 1) & self._mask]

    def push(self, entry: ROBEntry) -> None:
        if self._next - self._head >= self.capacity:
            raise OverflowError("ROB full")
        # The pipeline always pushes the contiguous cursor (the window
        # invariant the slot arithmetic relies on).  Standalone callers
        # (unit tests, tools) may push sparse or out-of-order indices:
        # the window bounds stretch to cover them and unoccupied indices
        # read as None holes.
        if self._next == self._head:
            self._head = entry.index
        elif entry.index < self._head:
            self._head = entry.index
        if entry.cols is not self.cols:
            # adopt a standalone-constructed handle (unit tests, tools):
            # migrate its private column slot into this window's columns
            # so probes that index ``cols`` directly see its state
            src, s = entry.cols, entry.slot
            slot = entry.index & self._mask
            cols = self.cols
            cols.flags[slot] = src.flags[s]
            cols.pending[slot] = src.pending[s]
            cols.pending_data[slot] = src.pending_data[s]
            cols.vp[slot] = src.vp[s]
            cols.lq_id[slot] = src.lq_id[s]
            cols.complete_cycle[slot] = src.complete_cycle[s]
            cols.dispatch_cycle[slot] = src.dispatch_cycle[s]
            entry.cols = cols
            entry.slot = slot
        self._handles[entry.index & self._mask] = entry
        if entry.index >= self._next:
            self._next = entry.index + 1

    def pop_head(self) -> ROBEntry:
        slot = self._head & self._mask
        entry = self._handles[slot]
        self._handles[slot] = None
        self._head += 1
        return entry

    def pop_tail(self) -> ROBEntry:
        self._next -= 1
        slot = self._next & self._mask
        entry = self._handles[slot]
        self._handles[slot] = None
        return entry

    def find(self, index: int) -> Optional[ROBEntry]:
        if self._head <= index < self._next:
            entry = self._handles[index & self._mask]
            if entry is not None and entry.index == index:
                return entry
        return None

    def is_head(self, entry: ROBEntry) -> bool:
        return self._next > self._head \
            and self._handles[self._head & self._mask] is entry
