"""Reorder buffer and its entries.

A ``ROBEntry`` is the mutable execution state of one dispatched uop.  The
same ``MicroOp`` may be dispatched several times (squash-and-replay), each
time with a fresh entry.
"""

from __future__ import annotations

from collections import deque
from typing import Deque, Dict, Iterator, Optional

from repro.isa.uops import MicroOp


class ROBEntry:
    """Execution state of one in-flight uop."""

    __slots__ = (
        "uop", "index", "pending_deps", "pending_data_deps", "issued",
        "complete",
        "complete_cycle", "addr_ready", "performed", "line", "lq_id",
        "pinned", "mcv_safe", "squashed", "dispatch_cycle", "outstanding",
        "vp_cycle", "forwarded", "parked", "barrier_notified",
        "invisible", "validated",
    )

    def __init__(self, uop: MicroOp, pending_deps: int,
                 dispatch_cycle: int) -> None:
        self.uop = uop
        self.index = uop.index
        self.pending_deps = pending_deps
        self.pending_data_deps = 0      # stores: data operands outstanding
        self.dispatch_cycle = dispatch_cycle
        self.issued = False
        self.complete = False
        self.complete_cycle: Optional[int] = None
        self.addr_ready = False
        self.performed = False          # loads: data received and consumed
        self.line: Optional[int] = (uop.addr >> 6) if uop.addr is not None \
            else None
        self.lq_id: Optional[int] = None
        self.pinned = False
        self.mcv_safe = False           # pinned, or exempt as oldest load
        self.squashed = False
        self.outstanding = False        # load issued to memory, no data yet
        self.vp_cycle: Optional[int] = None
        self.forwarded = False          # load satisfied by store forwarding
        self.parked = False             # LP: data arrived but pin deferred
        self.barrier_notified = False   # barrier uop announced its arrival
        self.invisible = False          # load performed invisibly (InvisiSpec)
        self.validated = False          # invisible load validated at its VP

    @property
    def deps_ready(self) -> bool:
        return self.pending_deps == 0

    def __repr__(self) -> str:
        flags = "".join(flag for flag, on in [
            ("I", self.issued), ("C", self.complete), ("A", self.addr_ready),
            ("P", self.performed), ("p", self.pinned), ("s", self.mcv_safe),
            ("X", self.squashed)] if on)
        return f"ROBEntry(#{self.index} {self.uop.opclass.value} [{flags}])"


class ReorderBuffer:
    """In-order window of in-flight uops with index lookup."""

    __slots__ = ("capacity", "_entries", "_by_index")

    def __init__(self, capacity: int) -> None:
        self.capacity = capacity
        self._entries: Deque[ROBEntry] = deque()
        self._by_index: Dict[int, ROBEntry] = {}

    def __len__(self) -> int:
        return len(self._entries)

    def __iter__(self) -> Iterator[ROBEntry]:
        return iter(self._entries)

    @property
    def full(self) -> bool:
        return len(self._entries) >= self.capacity

    @property
    def empty(self) -> bool:
        return not self._entries

    def head(self) -> Optional[ROBEntry]:
        return self._entries[0] if self._entries else None

    def tail(self) -> Optional[ROBEntry]:
        return self._entries[-1] if self._entries else None

    def push(self, entry: ROBEntry) -> None:
        if self.full:
            raise OverflowError("ROB full")
        self._entries.append(entry)
        self._by_index[entry.index] = entry

    def pop_head(self) -> ROBEntry:
        entry = self._entries.popleft()
        del self._by_index[entry.index]
        return entry

    def pop_tail(self) -> ROBEntry:
        entry = self._entries.pop()
        del self._by_index[entry.index]
        return entry

    def find(self, index: int) -> Optional[ROBEntry]:
        return self._by_index.get(index)

    def is_head(self, entry: ROBEntry) -> bool:
        return bool(self._entries) and self._entries[0] is entry
