"""Load and store queues as program-ordered rings.

The load queue is the structure snooped on invalidations/evictions for the
TSO squash rule, and — in the chosen Pinned Loads design (§6.1.1) — where
the Pinned bit lives.  The store queue provides line-granularity
store-to-load forwarding and the unknown-address aliasing window.

Both queues are rings over a preallocated power-of-two handle list with
absolute head/tail counters: allocation and head release are O(1) (the
previous list layout paid an O(n) ``pop(0)`` per retired memop), squash
pops the suffix it drops and nothing else, and the forwarding probe scans
*backward* from the tail so the youngest matching store is the first hit.
"""

from __future__ import annotations

from typing import Iterator, List, Optional

from repro.core.rob import (FLAG_FORWARDED, FLAG_PERFORMED, ROBEntry,
                            _pow2)


class LoadQueue:
    """Program-ordered ring of in-flight loads (62 entries, Table 1)."""

    __slots__ = ("capacity", "_ring", "_qmask", "_head", "_tail")

    def __init__(self, capacity: int) -> None:
        self.capacity = capacity
        cap = _pow2(capacity)
        self._ring: List[Optional[ROBEntry]] = [None] * cap
        self._qmask = cap - 1
        self._head = 0
        self._tail = 0

    def __len__(self) -> int:
        return self._tail - self._head

    def __iter__(self) -> Iterator[ROBEntry]:
        ring = self._ring
        qmask = self._qmask
        for pos in range(self._head, self._tail):
            yield ring[pos & qmask]

    @property
    def full(self) -> bool:
        return self._tail - self._head >= self.capacity

    def allocate(self, entry: ROBEntry) -> None:
        if self._tail - self._head >= self.capacity:
            raise OverflowError("load queue full")
        self._ring[self._tail & self._qmask] = entry
        self._tail += 1

    def release_head(self, entry: ROBEntry) -> None:
        """Remove ``entry``, which must be the oldest load (retirement)."""
        slot = self._head & self._qmask
        if self._tail == self._head or self._ring[slot] is not entry:
            raise ValueError("retiring a load that is not the LQ head")
        self._ring[slot] = None
        self._head += 1

    def squash_younger_or_equal(self, index: int) -> List[ROBEntry]:
        """Drop every load with uop index >= ``index`` (squash path).

        Loads are ring-resident in program order, so the victims are
        exactly a suffix: pop from the tail until an older load (or the
        head) is reached.  Returns the dropped loads oldest-first."""
        ring = self._ring
        qmask = self._qmask
        head = self._head
        tail = self._tail
        dropped: List[ROBEntry] = []
        while tail > head:
            slot = (tail - 1) & qmask
            load = ring[slot]
            if load.index < index:
                break
            dropped.append(load)
            ring[slot] = None
            tail -= 1
        self._tail = tail
        dropped.reverse()
        return dropped

    def oldest(self) -> Optional[ROBEntry]:
        if self._tail == self._head:
            return None
        return self._ring[self._head & self._qmask]

    def performed_unretired(self, line: int) -> List[ROBEntry]:
        """Loads vulnerable to an invalidation/eviction of ``line``:
        performed from memory (not by store forwarding) and not yet
        retired.  Program-ordered (oldest first), like the ring.  This
        runs per coherence event, so the status probe reads the flags
        column directly instead of paying two property calls per load."""
        ring = self._ring
        qmask = self._qmask
        out: List[ROBEntry] = []
        for pos in range(self._head, self._tail):
            load = ring[pos & qmask]
            if load.line == line:
                f = load.cols.flags[load.slot]
                if f & FLAG_PERFORMED and not f & FLAG_FORWARDED:
                    out.append(load)
        return out

    def snoop_pinned(self, line: int) -> bool:
        """LQ snoop used by the coherence layer: any pinned load of line?"""
        return any(load.line == line and load.pinned for load in self)


class StoreQueue:
    """Program-ordered ring of not-yet-retired stores (32 entries)."""

    __slots__ = ("capacity", "_ring", "_qmask", "_head", "_tail")

    def __init__(self, capacity: int) -> None:
        self.capacity = capacity
        cap = _pow2(capacity)
        self._ring: List[Optional[ROBEntry]] = [None] * cap
        self._qmask = cap - 1
        self._head = 0
        self._tail = 0

    def __len__(self) -> int:
        return self._tail - self._head

    def __iter__(self) -> Iterator[ROBEntry]:
        ring = self._ring
        qmask = self._qmask
        for pos in range(self._head, self._tail):
            yield ring[pos & qmask]

    @property
    def full(self) -> bool:
        return self._tail - self._head >= self.capacity

    def allocate(self, entry: ROBEntry) -> None:
        if self._tail - self._head >= self.capacity:
            raise OverflowError("store queue full")
        self._ring[self._tail & self._qmask] = entry
        self._tail += 1

    def release_head(self, entry: ROBEntry) -> None:
        slot = self._head & self._qmask
        if self._tail == self._head or self._ring[slot] is not entry:
            raise ValueError("retiring a store that is not the SQ head")
        self._ring[slot] = None
        self._head += 1

    def squash_younger_or_equal(self, index: int) -> List[ROBEntry]:
        ring = self._ring
        qmask = self._qmask
        head = self._head
        tail = self._tail
        dropped: List[ROBEntry] = []
        while tail > head:
            slot = (tail - 1) & qmask
            store = ring[slot]
            if store.index < index:
                break
            dropped.append(store)
            ring[slot] = None
            tail -= 1
        self._tail = tail
        dropped.reverse()
        return dropped

    def forwarding_store(self, load: ROBEntry) -> Optional[ROBEntry]:
        """Youngest older store to the load's line with a known address.

        Backward scan from the tail: the first store older than the load
        that matches is by construction the youngest such store, so the
        scan stops at the first hit instead of walking the whole queue."""
        ring = self._ring
        qmask = self._qmask
        head = self._head
        load_index = load.index
        line = load.line
        for pos in range(self._tail - 1, head - 1, -1):
            store = ring[pos & qmask]
            if store.index >= load_index:
                continue
            if store.addr_ready and store.line == line:
                return store
        return None

    def older_unknown_address(self, load_index: int) -> bool:
        """Any store older than ``load_index`` whose address is unknown?"""
        for store in self:
            if store.index >= load_index:
                break
            if not store.addr_ready:
                return True
        return False
