"""Load and store queues.

The load queue is the structure snooped on invalidations/evictions for the
TSO squash rule, and — in the chosen Pinned Loads design (§6.1.1) — where
the Pinned bit lives.  The store queue provides line-granularity
store-to-load forwarding and the unknown-address aliasing window.
"""

from __future__ import annotations

from typing import Iterator, List, Optional

from repro.core.rob import ROBEntry


class LoadQueue:
    """Program-ordered queue of in-flight loads (62 entries, Table 1)."""

    __slots__ = ("capacity", "_loads")

    def __init__(self, capacity: int) -> None:
        self.capacity = capacity
        self._loads: List[ROBEntry] = []

    def __len__(self) -> int:
        return len(self._loads)

    def __iter__(self) -> Iterator[ROBEntry]:
        return iter(self._loads)

    @property
    def full(self) -> bool:
        return len(self._loads) >= self.capacity

    def allocate(self, entry: ROBEntry) -> None:
        if self.full:
            raise OverflowError("load queue full")
        self._loads.append(entry)

    def release_head(self, entry: ROBEntry) -> None:
        """Remove ``entry``, which must be the oldest load (retirement)."""
        if not self._loads or self._loads[0] is not entry:
            raise ValueError("retiring a load that is not the LQ head")
        self._loads.pop(0)

    def squash_younger_or_equal(self, index: int) -> List[ROBEntry]:
        """Drop every load with uop index >= ``index`` (squash path)."""
        keep, dropped = [], []
        for load in self._loads:
            (dropped if load.index >= index else keep).append(load)
        self._loads = keep
        return dropped

    def oldest(self) -> Optional[ROBEntry]:
        return self._loads[0] if self._loads else None

    def performed_unretired(self, line: int) -> List[ROBEntry]:
        """Loads vulnerable to an invalidation/eviction of ``line``:
        performed (or satisfied by forwarding from memory... no —
        memory-performed only) and not yet retired."""
        return [load for load in self._loads
                if load.line == line and load.performed
                and not load.forwarded]

    def snoop_pinned(self, line: int) -> bool:
        """LQ snoop used by the coherence layer: any pinned load of line?"""
        return any(load.line == line and load.pinned for load in self._loads)


class StoreQueue:
    """Program-ordered queue of not-yet-retired stores (32 entries)."""

    __slots__ = ("capacity", "_stores")

    def __init__(self, capacity: int) -> None:
        self.capacity = capacity
        self._stores: List[ROBEntry] = []

    def __len__(self) -> int:
        return len(self._stores)

    def __iter__(self) -> Iterator[ROBEntry]:
        return iter(self._stores)

    @property
    def full(self) -> bool:
        return len(self._stores) >= self.capacity

    def allocate(self, entry: ROBEntry) -> None:
        if self.full:
            raise OverflowError("store queue full")
        self._stores.append(entry)

    def release_head(self, entry: ROBEntry) -> None:
        if not self._stores or self._stores[0] is not entry:
            raise ValueError("retiring a store that is not the SQ head")
        self._stores.pop(0)

    def squash_younger_or_equal(self, index: int) -> List[ROBEntry]:
        keep, dropped = [], []
        for store in self._stores:
            (dropped if store.index >= index else keep).append(store)
        self._stores = keep
        return dropped

    def forwarding_store(self, load: ROBEntry) -> Optional[ROBEntry]:
        """Youngest older store to the load's line with a known address."""
        best = None
        for store in self._stores:
            if store.index >= load.index:
                break
            if store.addr_ready and store.line == load.line:
                best = store
        return best

    def older_unknown_address(self, load_index: int) -> bool:
        """Any store older than ``load_index`` whose address is unknown?"""
        return any(store.index < load_index and not store.addr_ready
                   for store in self._stores)
