"""Order-tracking helpers for Visibility-Point condition checks.

The VP conditions are all of the form "no *older* instruction with property
P remains" (unresolved branch, unknown-address store, unretired load...).
``LazyMinSet`` tracks the minimum program-order index of a dynamic set with
O(log n) inserts and amortized O(log n) removals via lazy heap deletion, so
per-cycle VP checks stay cheap even with a 192-entry ROB.
"""

from __future__ import annotations

import heapq
from typing import Dict, Iterator, Optional, Set, TYPE_CHECKING

if TYPE_CHECKING:
    from repro.core.rob import ROBEntry


class LazyMinSet:
    """A set of integers supporting fast ``min()`` under add/discard."""

    __slots__ = ("_heap", "_live")

    def __init__(self) -> None:
        self._heap: list = []
        self._live: Set[int] = set()

    def add(self, value: int) -> None:
        if value not in self._live:
            self._live.add(value)
            heapq.heappush(self._heap, value)

    def discard(self, value: int) -> None:
        self._live.discard(value)

    def __contains__(self, value: int) -> bool:
        return value in self._live

    def __len__(self) -> int:
        return len(self._live)

    def min(self) -> Optional[int]:
        """Smallest live value, or ``None`` when empty."""
        heap = self._heap
        live = self._live
        while heap and heap[0] not in live:
            heapq.heappop(heap)
        return heap[0] if heap else None

    def none_below(self, index: int) -> bool:
        """True iff no live value is strictly smaller than ``index``."""
        smallest = self.min()
        return smallest is None or smallest >= index

    def clear(self) -> None:
        self._heap.clear()
        self._live.clear()


class VPFrontier:
    """The set of loads whose VP *could* be marked: address generated,
    VP not yet reached, still in flight.

    The seed's ``Core._update_vps`` walked the whole load queue every
    cycle; almost all of that walk was ``continue``s over loads that are
    either already marked or have no address yet — neither of which can
    become markable without an event (address generation, data arrival)
    or a tick-time mutation (retire, squash, pin).  Tracking the
    candidates incrementally turns the walk into an iteration over only
    the loads the VP conditions are actually evaluated on, and gives
    ``Core.quiet_until`` a sound "nothing to mark" signal: an empty
    frontier cannot become non-empty without going through
    ``add`` (address-ready event), so a quiet core needs no VP walk.

    The walk over ``candidates()`` is equivalent to the seed's LQ walk:
    the break conditions (``none_below`` checks) are monotone in program
    order, so if the seed walk broke at a *non*-candidate index ``i``,
    the same check fails again at the next candidate ``j > i``; and
    non-candidates never reach the per-load checks in the seed walk
    (they ``continue`` first), so skipping them changes nothing.
    Candidates are visited in ascending program order, preserving the
    marking order (and therefore event-scheduling order) exactly.
    """

    __slots__ = ("_entries",)

    def __init__(self) -> None:
        self._entries: Dict[int, "ROBEntry"] = {}

    def add(self, entry: "ROBEntry") -> None:
        self._entries[entry.index] = entry

    def discard(self, index: int) -> None:
        self._entries.pop(index, None)

    def __len__(self) -> int:
        return len(self._entries)

    def __bool__(self) -> bool:
        return bool(self._entries)

    def candidates(self) -> Iterator["ROBEntry"]:
        """Live candidates in ascending program order (snapshot: marking
        a candidate mid-iteration discards it without disturbing the
        walk)."""
        entries = self._entries
        for index in sorted(entries):
            entry = entries.get(index)
            if entry is not None:
                yield entry

    def clear(self) -> None:
        self._entries.clear()
