"""Order-tracking helpers for Visibility-Point condition checks.

The VP conditions are all of the form "no *older* instruction with property
P remains" (unresolved branch, unknown-address store, unretired load...).
``LazyMinSet`` tracks the minimum program-order index of a dynamic set with
O(log n) inserts and amortized O(log n) removals via lazy heap deletion, so
per-cycle VP checks stay cheap even with a 192-entry ROB.

The VP *frontier* — the set of loads whose VP could be marked this cycle
(address generated, VP not yet reached, still in flight) — used to be a
side dict of candidate entries.  With the column layout a candidate is
one flag bit (``FLAG_VP_CAND``) plus a live counter on the core
(``Core._vp_candidates``), and the walk is a load-queue ring scan that
skips non-candidates on a single flags read; see ``Core._update_vps``
for the equivalence argument against the seed's full-LQ walk.
"""

from __future__ import annotations

import heapq
from typing import Optional, Set


class LazyMinSet:
    """A set of integers supporting fast ``min()`` under add/discard."""

    __slots__ = ("_heap", "_live")

    def __init__(self) -> None:
        self._heap: list = []
        self._live: Set[int] = set()

    def add(self, value: int) -> None:
        if value not in self._live:
            self._live.add(value)
            heapq.heappush(self._heap, value)

    def discard(self, value: int) -> None:
        self._live.discard(value)

    def __contains__(self, value: int) -> bool:
        return value in self._live

    def __len__(self) -> int:
        return len(self._live)

    def min(self) -> Optional[int]:
        """Smallest live value, or ``None`` when empty."""
        heap = self._heap
        live = self._live
        while heap and heap[0] not in live:
            heapq.heappop(heap)
        return heap[0] if heap else None

    def none_below(self, index: int) -> bool:
        """True iff no live value is strictly smaller than ``index``."""
        smallest = self.min()
        return smallest is None or smallest >= index

    def clear(self) -> None:
        self._heap.clear()
        self._live.clear()
