"""The out-of-order core model.

Trace-driven, cycle-stepped.  Each cycle the core retires, advances the
pinning chain, issues ready uops and eligible loads, dispatches new uops,
and drains the write buffer.  Completion of multi-cycle work (functional
units, memory responses) arrives through the system event queue.

The core implements the coherence layer's ``CorePort``: it is the component
snooped on invalidations/evictions (TSO squash rule and pin deferral) and
the home of the Cannot-Pin Table.

Hot mutable state is struct-of-arrays (see ``repro.core.rob``): the ROB
window, flags, dependency counters and VP cycles live in preallocated
columns indexed by ``index & mask``, and the transient work-lists
(``_ready``, ``_waiting_loads``) hold plain uop indices — native int
sorts, no key functions, no object dereference until a uop actually
issues.  Because an index carries no liveness of its own, squash purges
the dead suffix from those lists eagerly (squashes are rare; per-entry
lazy checks on every scan are not).
"""

from __future__ import annotations

from functools import partial
from typing import Any, Dict, List, Optional

from repro.common.events import EventQueue
from repro.common.params import (DefenseKind, PinningMode, SystemConfig,
                                 ThreatModel)
from repro.common.stats import StatSet
from repro.core.lsq import LoadQueue, StoreQueue
from repro.core.rob import (FLAG_ADDR_READY, FLAG_COMPLETE, FLAG_MCV_SAFE,
                            FLAG_OUTSTANDING, FLAG_PARKED, FLAG_PERFORMED,
                            FLAG_PINNED, FLAG_VP_CAND, ReorderBuffer,
                            ROBEntry)
from repro.isa.trace import Trace
from repro.isa.uops import MicroOp, OpClass
from repro.mem.coherence import CoherentMemory, CorePort
from repro.mem.writebuffer import WriteBuffer
from repro.pinning.controller import PinnedLoadsController
from repro.security import make_scheme
from repro.security.scheme import IssueMode
from repro.security.taint import TaintTracker
from repro.security.threat import VPState

#: L1-D read/write ports (Table 1): max loads issued to memory per cycle.
L1_PORTS = 3

#: ``Core.quiet_until`` bound meaning "quiet until the next event".
QUIET_FOREVER = 1 << 62


class RetireProgress:
    """Shared retire counter for the O(1) deadlock scan.

    Every core bumps ``count`` at retire, so ``System.run`` detects
    forward progress with one attribute read per cycle instead of
    summing per-core statistics."""

    __slots__ = ("count",)

    def __init__(self) -> None:
        self.count = 0


class Core(CorePort):
    """One out-of-order core executing one trace."""

    # "__dict__" stays in the slots: the opt-in invariant sanitizer
    # (repro.verify.sanitizer) shadows instance methods, which needs an
    # instance dict; the hot per-cycle attributes still live in slots.
    __slots__ = (
        "core_id", "config", "trace", "mem", "events", "barriers", "stats",
        "rob", "lq", "sq", "write_buffer", "vp_state", "scheme", "taint",
        "controller", "_pinning", "cycle", "done_cycle", "_cursor",
        "_fetch_resume", "_retired_upto", "_ready", "_waiting_loads",
        "_lp_parked", "_waiters", "_data_waiters", "_resolved_mispredicts",
        "_wb_draining", "retired_count", "_progress", "_trace_len",
        "_vp_active", "_wb_entries", "_width", "_rob_capacity",
        "retire_sig", "_vp_candidates", "_wake_pending",
        "_waiting_stalled", "_cols", "_flags", "_vp_col", "_slot_mask",
        "_handles", "_twins", "__dict__",
    )

    def __init__(self, core_id: int, config: SystemConfig, trace: Trace,
                 mem: CoherentMemory, events: EventQueue, barriers,
                 progress: Optional[RetireProgress] = None) -> None:
        self.core_id = core_id
        self.config = config
        self.trace = trace
        self.mem = mem
        self.events = events
        self.barriers = barriers
        self.stats = StatSet()
        cp = config.core
        self.rob = ReorderBuffer(cp.rob_entries)
        self.lq = LoadQueue(cp.load_queue_entries)
        self.sq = StoreQueue(cp.store_queue_entries)
        self.write_buffer = WriteBuffer(cp.write_buffer_entries)
        self.vp_state = VPState()
        self.scheme = make_scheme(config.defense, self)
        self.taint: Optional[TaintTracker] = (
            TaintTracker(self.rob) if config.defense is DefenseKind.STT
            else None)
        self.controller = PinnedLoadsController(self)
        self._pinning = config.pinning.mode is not PinningMode.NONE
        self.cycle = 0
        self.done_cycle: Optional[int] = None
        self._cursor = 0
        self._fetch_resume = 0
        self._retired_upto = 0
        # transient work-lists of uop *indices* (see module docstring)
        self._ready: List[int] = []
        self._waiting_loads: List[int] = []
        self._lp_parked: List[ROBEntry] = []
        self._waiters: Dict[int, List[ROBEntry]] = {}
        self._data_waiters: Dict[int, List[ROBEntry]] = {}
        self._resolved_mispredicts: set = set()
        self._wb_draining = False
        # event-driven wakeup state (see ``quiet_until``): the candidate
        # counter gates the VP walk (``FLAG_VP_CAND`` marks the loads it
        # may act on); the dirty flag records that something mutated
        # since this core's last tick began
        self._vp_candidates = 0
        self._wake_pending = True
        self._waiting_stalled = False
        self.retired_count = 0
        # order-sensitive FNV-style signature of the retired uop indices:
        # the committed stream must be invariant under any injected-fault
        # timing (asserted by the chaos campaign across seeds)
        self.retire_sig = 0xcbf29ce484222325
        self._progress = progress if progress is not None \
            else RetireProgress()
        # hot-loop hoists: immutable facts and stable containers read
        # every cycle by ``tick`` (the columns are never reassigned)
        self._trace_len = len(trace)
        # adversarial traces only: NOP twins for transient uops, checked
        # with one None test per dispatched uop on ordinary traces
        self._twins = trace.twins if trace.has_transient else None
        self._vp_active = self.scheme.gates_issue or self.taint is not None
        self._cols = self.rob.cols
        self._flags = self._cols.flags
        self._vp_col = self._cols.vp
        self._slot_mask = self.rob._mask
        self._handles = self.rob._handles
        self._wb_entries = self.write_buffer._entries
        self._width = self.config.core.width
        self._rob_capacity = self.rob.capacity
        mem.attach_port(core_id, self)

    # The column aliases above are *derived* state: they must stay the
    # very same list objects the ROB's ``ColumnState`` holds.  Pickling
    # them would break that identity (``ColumnState.__getstate__``
    # re-materializes its columns on restore), so a checkpoint drops the
    # aliases and a restore re-hoists them from the rebuilt components.
    _DERIVED_ALIASES = ("_cols", "_flags", "_vp_col", "_slot_mask",
                        "_handles", "_wb_entries", "_twins")

    def __getstate__(self):
        dict_state, slots = object.__getstate__(self)
        for name in self._DERIVED_ALIASES:
            slots.pop(name, None)
        return (dict_state, slots)

    def __setstate__(self, state) -> None:
        dict_state, slots = state
        if dict_state:
            self.__dict__.update(dict_state)
        for name, value in slots.items():
            setattr(self, name, value)
        self._cols = self.rob.cols
        self._flags = self._cols.flags
        self._vp_col = self._cols.vp
        self._slot_mask = self.rob._mask
        self._handles = self.rob._handles
        self._wb_entries = self.write_buffer._entries
        self._twins = self.trace.twins if self.trace.has_transient \
            else None

    # ------------------------------------------------------------------
    # CorePort (coherence layer callbacks)
    # ------------------------------------------------------------------

    def has_pinned(self, line: int) -> bool:
        return self.controller.has_pinned(line)

    def on_invalidation(self, line: int) -> None:
        # coherence hooks may fire after this core's tick this cycle
        # (from another core's tick); the flag keeps the core un-quiet
        # until the next tick has processed the new state
        self._wake_pending = True
        self._mcv_squash_check(line, "inval")

    def on_line_evicted(self, line: int) -> None:
        self._wake_pending = True
        self._mcv_squash_check(line, "evict")

    def cpt_insert(self, line: int, writer: Optional[int] = None) -> None:
        self._wake_pending = True
        self.controller.cpt_insert(line, writer)

    def cpt_clear(self, line: int) -> None:
        self._wake_pending = True
        self.controller.cpt_clear(line)

    def _mcv_squash_check(self, line: int, kind: str) -> None:
        """The TSO conservative rule: a performed, unretired load of an
        invalidated/evicted line must be squashed — unless pinned, or it is
        the oldest load in the ROB (aggressive implementation, §3.3)."""
        oldest = self.lq.oldest() if self.config.pinning.aggressive_tso \
            else None
        for load in self.lq.performed_unretired(line):
            # program order: the first surviving victim is the squash point
            if load.pinned or load is oldest:
                continue
            self._squash_from(load.index, f"mcv_{kind}")
            return

    # ------------------------------------------------------------------
    # Per-cycle step
    # ------------------------------------------------------------------

    @property
    def done(self) -> bool:
        return self.done_cycle is not None

    def tick(self, cycle: int) -> None:
        """One pipeline step.  This is the hot path: every stage call is
        guarded by the cheap condition that makes it a no-op, so an idle
        or memory-bound cycle costs a handful of attribute reads instead
        of seven function calls.  The stages keep their internal guards,
        so ``tick_reference`` (the seed loop, unguarded) stays
        behaviour-identical — asserted by the tests."""
        if self.done_cycle is not None:
            return
        # mutations made by this tick body (or arriving later this cycle
        # from another core's tick) re-arm the flag; a tick that mutates
        # nothing leaves it clear, and ``quiet_until`` may then report
        # the defense machinery quiet (cleared here, NOT in
        # ``tick_reference`` — the flag is only read by the optimized
        # loop and setting it is inert under the reference loop)
        self._wake_pending = False
        self.cycle = cycle
        if self._cursor > self._retired_upto:
            self._retire_stage()
        if self._vp_active:
            self._update_vps()
        if self._pinning:
            self.controller.tick()
        if self._lp_parked:
            self._lp_retry_parked()
        if self._ready or self._waiting_loads:
            self._issue_stage()
        if self._cursor < self._trace_len and cycle >= self._fetch_resume:
            self._dispatch_stage()
        if self._wb_entries and not self._wb_draining:
            self._kick_write_buffer()
        if (self._cursor == self._retired_upto and not self._wb_entries
                and self._cursor >= self._trace_len):
            self.done_cycle = cycle
            self.stats.set("done_cycle", cycle)
            self.stats.set("retire_sig", self.retire_sig)

    def quiet_until(self, cycle: int) -> int:
        """Exclusive upper bound on cycles whose ticks are provably
        no-ops for this core absent an intervening event; ``0`` if the
        core may act at ``cycle + 1``.

        This is the soundness contract behind ``System.run``'s
        fast-forward: every per-cycle stage is frozen unless one of the
        conditions below holds, because all other state transitions
        (completions, memory fills, write-buffer drains, branch
        resolutions and the squashes they cause) arrive via the event
        queue, and the caller never skips past a pending event.

        The defense machinery (the VP walk, taint queries, the pinning
        controller) is quiet on the same argument, tracked by the
        ``_wake_pending`` dirty flag: every mutation that can move VP,
        taint, or pin state — dispatch, retire, squash, address
        generation, branch resolution, data arrival, store drains,
        VP marking itself, and the coherence-driven CPT/invalidation
        hooks — sets the flag, and ``tick`` clears it on entry.  A clear
        flag therefore means the machinery is at a fixpoint: re-running
        the walk and the pin chain on unchanged state marks and pins
        nothing (their inputs are pure functions of that state), so the
        next ticks are no-ops until an event or another core's tick
        re-arms the flag.  Stalled pre-VP loads (``_waiting_stalled``)
        are quiet on the same fixpoint argument: an issue mode can only
        flip via a flagged mutation or an event (cache fills move DOM's
        hit probe; VP marks and retires move STT's taint roots).

        Because all per-slot timing state (VP cycles, completion cycles)
        is stored as *absolute* cycle numbers in the columns, a quiet
        region needs no per-slot touches at all: the caller advances the
        clock in one arithmetic step and every column value stays valid.
        """
        if self._wake_pending and (self._vp_active or self._pinning):
            return 0
        if self._ready or self._lp_parked:
            return 0
        if self._waiting_loads and not self._waiting_stalled:
            return 0
        if self._wb_entries and not self._wb_draining:
            return 0
        occupancy = self._cursor - self._retired_upto
        if occupancy:
            head = self._handles[self._retired_upto & self._slot_mask]
            opclass = head.uop.opclass
            if opclass is OpClass.ATOMIC:
                return 0    # head-issue attempt runs inside retire
            elif opclass is OpClass.BARRIER:
                # un-notified heads must tick to arrive; released ones
                # retire.  A notified, unreleased barrier is frozen
                # until another core (never quiet mid-retire) releases.
                if not head.barrier_notified \
                        or self.barriers.released(head.uop.barrier_id):
                    return 0
            elif opclass is OpClass.FENCE:
                if not self._wb_entries:
                    return 0    # retirable right now
            elif head.complete:
                return 0    # may retire (or attempt to) next tick
        if self._cursor < self._trace_len \
                and occupancy < self._rob_capacity:
            uop = self.trace[self._cursor]
            if self._twins is not None and uop.guard is not None \
                    and uop.guard in self._resolved_mispredicts:
                # mirror the dispatch-stage twin substitution: the
                # neutered uop is an INT_ALU and never blocks on the LQ
                uop = self._twins[uop.index]
            if not ((uop.is_load and self.lq.full)
                    or (uop.is_store and self.sq.full)):
                if self._fetch_resume <= cycle + 1:
                    return 0    # would dispatch next tick
                return self._fetch_resume   # quiet until the resteer
        return QUIET_FOREVER

    def tick_reference(self, cycle: int) -> None:
        """The seed per-cycle step: unconditional stage calls in the
        original order.  Validation baseline for the guarded ``tick``."""
        if self.done:
            return
        self.cycle = cycle
        self._retire_stage()
        self._update_vps()
        self.controller.tick()
        self._lp_retry_parked()
        self._issue_stage()
        self._dispatch_stage()
        self._kick_write_buffer()
        if (self._cursor >= len(self.trace) and self.rob.empty
                and self.write_buffer.empty):
            self.done_cycle = cycle
            self.stats.set("done_cycle", cycle)
            self.stats.set("retire_sig", self.retire_sig)

    # ------------------------------------------------------------------
    # Retire
    # ------------------------------------------------------------------

    def _retire_stage(self) -> None:
        retired = 0
        width = self.config.core.width
        rob = self.rob
        while retired < width:
            head = rob.head()
            if head is None or not self._head_may_retire(head):
                break
            self._retire(head)
            retired += 1
        if retired:
            # one batched counter update per stage, not per uop: the
            # final statistics are identical, the dict traffic is not
            self.stats.bump("retired", retired)

    def _head_may_retire(self, head: ROBEntry) -> bool:
        opclass = head.uop.opclass
        if opclass is OpClass.STORE:
            return head.complete and not self.write_buffer.full
        if opclass is OpClass.ATOMIC:
            if not head.issued:
                if head.addr_ready and self.write_buffer.empty:
                    self._issue_atomic(head)
                return False
            return head.complete
        if opclass is OpClass.FENCE:
            return self.write_buffer.empty
        if opclass is OpClass.BARRIER:
            if not head.barrier_notified:
                head.barrier_notified = True
                self.barriers.arrive(head.uop.barrier_id, self.core_id)
            return self.barriers.released(head.uop.barrier_id)
        if opclass is OpClass.LOAD and head.invisible:
            # an invisibly-performed load cannot retire before the visible
            # validation access at its VP has completed (InvisiSpec-class)
            return head.complete and head.validated
        return head.complete

    def _retire(self, head: ROBEntry) -> None:
        self._wake_pending = True
        uop = head.uop
        opclass = uop.opclass
        if opclass is OpClass.LOAD:
            if head.vp_cycle is None:
                self.note_vp_reached(head)
            self.lq.release_head(head)
            self.vp_state.unretired_loads.discard(head.index)
            self.controller.on_load_retire(head)
        elif opclass is OpClass.STORE:
            self.sq.release_head(head)
            self.write_buffer.push(head.line)
            self._kick_write_buffer()
        elif opclass in (OpClass.FENCE, OpClass.ATOMIC, OpClass.BARRIER):
            self.vp_state.serializing.discard(head.index)
        self.rob.pop_head()
        self._retired_upto = head.index + 1
        self.retired_count += 1
        self._progress.count += 1
        self.retire_sig = ((self.retire_sig ^ (head.index + 1))
                           * 0x100000001b3) & 0xFFFFFFFFFFFFFFFF

    # ------------------------------------------------------------------
    # VP tracking
    # ------------------------------------------------------------------

    def note_vp_reached(self, entry: ROBEntry) -> None:
        """Record the cycle a load reached its Visibility Point.

        Always re-arms the wakeup flag: every caller is a mutation site
        (the VP walk, pin grants, oldest-load exemptions, LP authorized
        issues), including the calls that find ``vp_cycle`` already set
        but changed ``mcv_safe`` just before."""
        self._wake_pending = True
        cols = entry.cols
        slot = entry.slot
        if cols.vp[slot] < 0:
            cols.vp[slot] = self.cycle
            if cols.flags[slot] & FLAG_VP_CAND:
                cols.flags[slot] &= ~FLAG_VP_CAND
                self._vp_candidates -= 1
            self.stats.bump("vp_reached")
            self.scheme.on_load_vp(entry)

    def _update_vps(self) -> None:
        """Mark loads whose VP conditions now hold, walking the load
        queue in program order and skipping non-candidates (no address
        yet, or VP already marked) on a single flags read.

        The walk is equivalent to the seed's full-LQ walk: candidates
        carry ``FLAG_VP_CAND`` (set at address generation, cleared on
        mark/squash), and ``_vp_candidates`` counts them so an empty
        frontier skips the walk entirely — a sound "nothing to mark"
        signal for ``quiet_until``, since the flag is only ever set from
        an address-ready event.  The below conditions over *older* uops
        are monotone in program order, so the walk stops at the first
        candidate that fails them; non-candidates never reached the
        per-load checks in the seed walk (they ``continue``d first), so
        skipping them changes nothing, and candidates are visited in
        ascending program order, preserving the marking (and therefore
        event-scheduling) order exactly."""
        if not self.scheme.gates_issue and self.taint is None:
            return
        if not self._vp_candidates:
            return
        level = self.config.threat_model.level
        pinned_mode = self._pinning
        aggressive = self.config.pinning.aggressive_tso
        vp = self.vp_state
        for load in self.lq:
            if not load.vp_candidate:
                continue
            index = load.index
            # conditions over *older* uops are monotone in program order:
            # once one fails, it fails for every younger load too
            if not vp.unresolved_branches.none_below(index):
                break
            if level >= ThreatModel.ALIAS.level \
                    and not vp.unknown_addr_stores.none_below(index):
                break
            if level >= ThreatModel.EXCEPT.level \
                    and not vp.unknown_addr_memops.none_below(index):
                break
            if level >= ThreatModel.MCV.level:
                if pinned_mode:
                    if not load.mcv_safe:
                        break
                elif aggressive:
                    if not vp.unretired_loads.none_below(index):
                        break
                elif not self.rob.is_head(load):
                    break
            self.note_vp_reached(load)

    # ------------------------------------------------------------------
    # Issue
    # ------------------------------------------------------------------

    def _issue_stage(self) -> None:
        width = self.config.core.width
        if self._ready:
            self._ready.sort()
            issuable = self._ready
            self._ready = []
            budget = width
            rob = self.rob
            for index in issuable:
                if budget == 0:
                    self._ready.append(index)
                    continue
                self._begin_execution(rob.find(index))
                budget -= 1
        self._issue_waiting_loads()

    def _begin_execution(self, entry: ROBEntry) -> None:
        cp = self.config.core
        opclass = entry.uop.opclass
        if opclass is OpClass.INT_ALU:
            entry.issued = True
            self._schedule_complete(entry, cp.int_latency)
        elif opclass is OpClass.FP_ALU:
            entry.issued = True
            self._schedule_complete(entry, cp.fp_latency)
        elif opclass is OpClass.BRANCH:
            entry.issued = True
            self.events.schedule_after(
                cp.branch_exec_latency, self._on_branch_resolved, entry)
        elif opclass in (OpClass.LOAD, OpClass.STORE, OpClass.ATOMIC):
            # memory ops only generate their address here; "issued" is
            # reserved for the actual memory access
            self.events.schedule_after(
                cp.agen_latency, self._on_addr_ready, entry)
        else:
            raise AssertionError(f"unexpected ready uop {entry}")

    def _schedule_complete(self, entry: ROBEntry, latency: int) -> None:
        self.events.schedule_after(latency, self._complete, entry)

    def _complete(self, entry: ROBEntry) -> None:
        if entry.squashed:
            return
        cols = entry.cols
        slot = entry.slot
        if cols.flags[slot] & FLAG_COMPLETE:
            return
        cols.flags[slot] |= FLAG_COMPLETE
        cols.complete_cycle[slot] = self.events.now
        self._wake_dependents(entry.index)

    def _wake_dependents(self, index: int) -> None:
        waiters = self._waiters.pop(index, None)
        if waiters:
            ready = self._ready
            for waiter in waiters:
                if waiter.squashed:
                    continue
                pending = waiter.cols.pending
                slot = waiter.slot
                pending[slot] -= 1
                if pending[slot] == 0:
                    ready.append(waiter.index)
        data_waiters = self._data_waiters.pop(index, None)
        if data_waiters:
            for waiter in data_waiters:
                if waiter.squashed:
                    continue
                waiter.cols.pending_data[waiter.slot] -= 1
                self._maybe_complete_store(waiter)

    def _maybe_complete_store(self, store: ROBEntry) -> None:
        """A store completes once its address is generated *and* its data
        operands arrived; the address alone opens/closes the aliasing and
        exception windows."""
        cols = store.cols
        slot = store.slot
        if cols.flags[slot] & FLAG_ADDR_READY and cols.pending_data[slot] == 0:
            self._complete(store)

    def _on_branch_resolved(self, entry: ROBEntry) -> None:
        if entry.squashed:
            return
        self._wake_pending = True
        self.vp_state.unresolved_branches.discard(entry.index)
        self._complete(entry)
        if entry.uop.mispredicted \
                and entry.index not in self._resolved_mispredicts:
            # the predictor learns: a replayed branch predicts correctly
            self._resolved_mispredicts.add(entry.index)
            self.stats.bump("squashes_branch")
            self._squash_from(entry.index + 1, None)
            self._fetch_resume = max(
                self._fetch_resume,
                self.events.now + self.config.core.branch_resolve_latency)

    def _on_addr_ready(self, entry: ROBEntry) -> None:
        if entry.squashed:
            return
        self._wake_pending = True
        cols = entry.cols
        slot = entry.slot
        cols.flags[slot] |= FLAG_ADDR_READY
        opclass = entry.uop.opclass
        self.vp_state.unknown_addr_memops.discard(entry.index)
        if opclass is OpClass.LOAD:
            self._waiting_loads.append(entry.index)
            # a fresh load invalidates any "all stalled" conclusion
            self._waiting_stalled = False
            if self._vp_active and cols.vp[slot] < 0:
                cols.flags[slot] |= FLAG_VP_CAND
                self._vp_candidates += 1
        else:   # STORE / ATOMIC
            self.vp_state.unknown_addr_stores.discard(entry.index)
            self._alias_squash_check(entry)
            if opclass is OpClass.STORE:
                self._maybe_complete_store(entry)
            # ATOMICs wait for the ROB head (they run non-speculatively)

    def _alias_squash_check(self, store: ROBEntry) -> None:
        """The store's address just became known: any younger load of the
        same line that already performed read a stale value (memory
        dependence mis-speculation) and must replay.  The vulnerable-load
        list is program-ordered, so the first younger entry is the oldest
        victim — the squash point."""
        store_index = store.index
        for load in self.lq.performed_unretired(store.line):
            if load.index > store_index:
                self.stats.bump("squashes_alias")
                self._squash_from(load.index, None)
                self._fetch_resume = max(
                    self._fetch_resume,
                    self.events.now + self.config.core.branch_resolve_latency)
                return

    # -- loads -----------------------------------------------------------

    def _issue_waiting_loads(self) -> None:
        if not self._waiting_loads:
            return
        self._waiting_loads.sort()
        budget = L1_PORTS
        keep: List[int] = []
        # every kept load stalled by its scheme (not by the port budget)
        # → re-running this stage is a no-op until an event or a flagged
        # mutation flips an issue mode; read by ``quiet_until``
        stalled_only = True
        rob = self.rob
        for index in self._waiting_loads:
            entry = rob.find(index)
            if entry.issued:
                continue
            mode = self._load_issue_mode(entry)
            if budget and mode is not IssueMode.STALL:
                if mode is IssueMode.INVISIBLE:
                    self._issue_load_invisible(entry)
                else:
                    self._issue_load(entry)
                budget -= 1
            else:
                keep.append(index)
                if mode is not IssueMode.STALL:
                    stalled_only = False
        self._waiting_loads = keep
        self._waiting_stalled = stalled_only

    def _load_issue_mode(self, entry: ROBEntry) -> IssueMode:
        if not self.scheme.gates_issue:
            return IssueMode.NORMAL
        if entry.vp_cycle is not None:
            return IssueMode.NORMAL
        return self.scheme.pre_vp_issue_mode(entry)

    def _issue_load(self, entry: ROBEntry) -> None:
        entry.issued = True
        forwarding = self.sq.forwarding_store(entry)
        if forwarding is None and self.write_buffer.contains_line(entry.line):
            forwarding = entry     # forwarded from the write buffer
        if forwarding is not None:
            entry.forwarded = True
            self.stats.bump("loads_forwarded")
            entry.performed = True
            self._schedule_complete(entry, 1)
            return
        entry.outstanding = True
        self.stats.bump("loads_issued")
        # callbacks are partials over bound methods, never lambdas: a
        # mid-flight fill must survive a checkpoint pickle round-trip
        self.mem.load(self.core_id, entry.line,
                      partial(self._on_load_data, entry))

    def _issue_load_invisible(self, entry: ROBEntry) -> None:
        """Invisible-speculation issue: the load gets its data without any
        cache/coherence side effects; a visible validation access follows
        at its VP (scheme hook ``on_load_vp``)."""
        entry.issued = True
        forwarding = self.sq.forwarding_store(entry)
        if forwarding is None and self.write_buffer.contains_line(entry.line):
            forwarding = entry
        if forwarding is not None:
            # store forwarding is core-local and already invisible
            entry.forwarded = True
            self.stats.bump("loads_forwarded")
            entry.performed = True
            self._schedule_complete(entry, 1)
            return
        entry.invisible = True
        entry.outstanding = True
        self.stats.bump("loads_issued_invisible")
        self.mem.load_invisible(
            self.core_id, entry.line,
            partial(self._on_invisible_load_data, entry))

    def _on_invisible_load_data(self, entry: ROBEntry,
                                _cycle: int = 0) -> None:
        if entry.squashed:
            return
        self._wake_pending = True
        entry.outstanding = False
        if (self.sq.forwarding_store(entry) is not None
                or self.write_buffer.contains_line(entry.line)):
            self._squash_from(entry.index, "alias")
            return
        entry.performed = True
        self._complete(entry)
        if entry.vp_cycle is not None and not entry.validated:
            # the VP arrived while the invisible access was in flight
            self.issue_validation(entry)

    def issue_validation(self, entry: ROBEntry) -> None:
        """Issue the visible validation access for an invisibly-performed
        load (called by the scheme when the load reaches its VP)."""
        if entry.squashed or entry.validated:
            return
        if entry.outstanding:
            return   # the invisible fetch itself is still in flight
        self.stats.bump("validations_issued")
        self.mem.load(self.core_id, entry.line,
                      partial(self._on_validation_done, entry))

    def _on_validation_done(self, entry: ROBEntry, _cycle: int = 0) -> None:
        if entry.squashed:
            return
        entry.validated = True
        self.stats.bump("validations_completed")

    def issue_load_for_pinning(self, entry: ROBEntry) -> None:
        """Late Pinning authorization: the load issues now and will be
        pinned when its data arrives (paper §5.2.1).  Authorization is the
        moment the VP is effectively passed downstream."""
        self.note_vp_reached(entry)
        self.stats.bump("lp_authorized_issues")
        self._issue_load(entry)

    def _on_load_data(self, entry: ROBEntry, _cycle: int = 0) -> None:
        if entry.squashed:
            return
        self._wake_pending = True
        cols = entry.cols
        slot = entry.slot
        flags = cols.flags
        flags[slot] &= ~FLAG_OUTSTANDING
        # inlined ``sq.forwarding_store``: this runs once per load-data
        # arrival, so the alias probe reads the flags column directly
        # (same backward scan, same first-hit semantics)
        sq = self.sq
        sq_ring = sq._ring
        sq_qmask = sq._qmask
        index = entry.index
        line = entry.line
        aliased = False
        for pos in range(sq._tail - 1, sq._head - 1, -1):
            store = sq_ring[pos & sq_qmask]
            if store.index >= index:
                continue
            if store.line == line and flags[store.slot] & FLAG_ADDR_READY:
                aliased = True
                break
        if aliased or self.write_buffer.contains_line(line):
            # an older store to this line resolved while the load was in
            # flight: the memory value is stale — replay (it will forward)
            self._squash_from(index, "alias")
            return
        if (self._pinning
                and self.config.pinning.mode is PinningMode.LATE
                and not flags[slot] & (FLAG_PINNED | FLAG_MCV_SAFE)
                and cols.vp[slot] >= 0):
            # this was an LP-authorized issue: pin before consuming
            if not self.controller.lp_data_arrived(entry):
                flags[slot] |= FLAG_PARKED
                self._lp_parked.append(entry)
                return
        if flags[slot] & FLAG_PINNED:
            self.controller.on_pinned_fill(entry)
        flags[slot] |= FLAG_PERFORMED
        self._complete(entry)

    def _lp_retry_parked(self) -> None:
        if not self._lp_parked:
            return
        keep: List[ROBEntry] = []
        for entry in self._lp_parked:
            if entry.squashed:
                continue
            if not self.mem.l1_hit(self.core_id, entry.line):
                # the unconsumed line was invalidated/evicted: refetch
                entry.parked = False
                entry.outstanding = True
                self.stats.bump("lp_parked_refetches")
                self.mem.load(self.core_id, entry.line,
                              partial(self._on_load_data, entry))
                continue
            if self.controller.lp_data_arrived(entry):
                entry.parked = False
                entry.performed = True
                self._complete(entry)
            else:
                keep.append(entry)
        self._lp_parked = keep

    # -- atomics ---------------------------------------------------------

    def _issue_atomic(self, entry: ROBEntry) -> None:
        entry.issued = True
        self.stats.bump("atomics_issued")
        self.mem.store(self.core_id, entry.line,
                       partial(self._on_atomic_performed, entry))

    def _on_atomic_performed(self, entry: ROBEntry, _cycle: int = 0) -> None:
        self._complete(entry)

    # ------------------------------------------------------------------
    # Dispatch
    # ------------------------------------------------------------------

    def _dispatch_stage(self) -> None:
        if self.cycle < self._fetch_resume:
            return
        dispatched = 0
        trace = self.trace
        trace_len = self._trace_len
        twins = self._twins
        while dispatched < self._width and self._cursor < trace_len \
                and not self.rob.full:
            uop = trace[self._cursor]
            if twins is not None and uop.guard is not None \
                    and uop.guard in self._resolved_mispredicts:
                # the guard resolved: the correct path never contained
                # this uop — every replay dispatches its NOP twin
                uop = twins[uop.index]
            if uop.is_load and self.lq.full:
                break
            if uop.is_store and self.sq.full:
                break
            self._dispatch(uop)
            self._cursor += 1
            dispatched += 1
        if dispatched:
            self.stats.bump("dispatched", dispatched)

    def _dispatch(self, uop: MicroOp) -> None:
        self._wake_pending = True
        entry = ROBEntry(uop, 0, self.cycle, self._cols,
                         uop.index & self._slot_mask)
        pending = 0
        for dep in uop.deps:
            if not self._value_available(dep):
                self._waiters.setdefault(dep, []).append(entry)
                pending += 1
        entry.pending_deps = pending
        for dep in uop.data_deps:
            if not self._value_available(dep):
                self._data_waiters.setdefault(dep, []).append(entry)
                entry.pending_data_deps += 1
        self.rob.push(entry)
        vp = self.vp_state
        opclass = uop.opclass
        if opclass is OpClass.LOAD:
            self.lq.allocate(entry)
            vp.unretired_loads.add(entry.index)
            vp.unknown_addr_memops.add(entry.index)
            self.controller.on_load_dispatch(entry)
        elif opclass is OpClass.STORE:
            self.sq.allocate(entry)
            vp.unknown_addr_stores.add(entry.index)
            vp.unknown_addr_memops.add(entry.index)
        elif opclass is OpClass.ATOMIC:
            vp.unknown_addr_stores.add(entry.index)
            vp.unknown_addr_memops.add(entry.index)
            vp.serializing.add(entry.index)
        elif opclass is OpClass.BRANCH:
            vp.unresolved_branches.add(entry.index)
        elif opclass in (OpClass.FENCE, OpClass.BARRIER):
            vp.serializing.add(entry.index)
        if self.taint is not None:
            self.taint.on_dispatch(uop)
        if pending == 0 and opclass not in (OpClass.FENCE, OpClass.BARRIER):
            self._ready.append(entry.index)

    def _value_available(self, dep: int) -> bool:
        # a dep is always older than the dispatching uop, so when it is
        # unretired it is in the ROB window and ``find`` returns its handle
        if dep < self._retired_upto:
            return True
        return self.rob.find(dep).complete

    # ------------------------------------------------------------------
    # Squash
    # ------------------------------------------------------------------

    def _squash_from(self, index: int, reason: Optional[str]) -> None:
        """Squash every in-flight uop with program-order index >= index and
        rewind the fetch cursor for replay."""
        self._wake_pending = True
        if reason is not None:
            self.stats.bump(f"squashes_{reason}")
            self._fetch_resume = max(
                self._fetch_resume,
                self.events.now + self.config.core.branch_resolve_latency)
        squashed = 0
        cursor = self._cursor
        low = index if index > self._retired_upto else self._retired_upto
        if cursor > low:
            handles = self._handles
            mask = self._slot_mask
            for idx in range(cursor - 1, low - 1, -1):
                slot = idx & mask
                entry = handles[slot]
                handles[slot] = None    # inlined rob.pop_tail
                self._cleanup_squashed(entry)
            squashed = cursor - low
            self.rob._next = low
            # the transient work-lists hold plain indices, which carry no
            # liveness: drop the dead suffix eagerly (squashes are rare,
            # per-entry staleness checks on every scan are not)
            self._ready = [i for i in self._ready if i < index]
            self._waiting_loads = [i for i in self._waiting_loads
                                   if i < index]
        self.lq.squash_younger_or_equal(index)
        self.sq.squash_younger_or_equal(index)
        self._cursor = min(self._cursor, index)
        self.stats.bump("squashed_uops", squashed)

    def _cleanup_squashed(self, entry: ROBEntry) -> None:
        entry.squashed = True
        opclass = entry.uop.opclass
        if opclass is OpClass.INT_ALU or opclass is OpClass.FP_ALU:
            return      # plain ALU ops (the bulk) track no VP state
        vp = self.vp_state
        index = entry.index
        if opclass is OpClass.LOAD:
            flags = entry.cols.flags
            slot = entry.slot
            if flags[slot] & FLAG_VP_CAND:
                flags[slot] &= ~FLAG_VP_CAND
                self._vp_candidates -= 1
            vp.unretired_loads.discard(index)
            vp.unknown_addr_memops.discard(index)
            self.controller.on_load_squash(entry)
        elif opclass is OpClass.STORE:
            vp.unknown_addr_stores.discard(index)
            vp.unknown_addr_memops.discard(index)
        elif opclass is OpClass.ATOMIC:
            vp.unknown_addr_stores.discard(index)
            vp.unknown_addr_memops.discard(index)
            vp.serializing.discard(index)
        elif opclass is OpClass.BRANCH:
            vp.unresolved_branches.discard(index)
        elif opclass in (OpClass.FENCE, OpClass.BARRIER):
            vp.serializing.discard(index)

    # ------------------------------------------------------------------
    # Write buffer drain
    # ------------------------------------------------------------------

    def _kick_write_buffer(self) -> None:
        if self._wb_draining or self.write_buffer.empty:
            return
        head = self.write_buffer.head()
        head.draining = True
        self._wb_draining = True
        self.mem.store(self.core_id, head.line, self._on_store_performed)

    def _on_store_performed(self, _cycle: int) -> None:
        self._wake_pending = True
        self.write_buffer.pop()
        self.stats.bump("stores_performed")
        self._wb_draining = False
        self._kick_write_buffer()

    # ------------------------------------------------------------------
    # Progress reporting
    # ------------------------------------------------------------------

    @property
    def retired(self) -> int:
        return self.retired_count

    def debug_state(self) -> Dict[str, Any]:
        """Structured snapshot of the stall-relevant core state, used by
        ``System.diagnostic_dump`` when the deadlock detector fires."""

        def entry_state(entry: Optional[ROBEntry]) -> Optional[Dict[str, Any]]:
            if entry is None:
                return None
            return {
                "index": entry.index,
                "opclass": entry.uop.opclass.value,
                "line": entry.line,
                "issued": entry.issued,
                "complete": entry.complete,
                "addr_ready": entry.addr_ready,
                "outstanding": entry.outstanding,
                "performed": entry.performed,
                "pinned": entry.pinned,
                "mcv_safe": entry.mcv_safe,
                "parked": entry.parked,
                "vp_reached": entry.vp_cycle is not None,
            }

        return {
            "core": self.core_id,
            "done": self.done,
            "retired": self.retired_count,
            "cursor": self._cursor,
            "trace_len": self._trace_len,
            "fetch_resume": self._fetch_resume,
            "rob_occupancy": len(self.rob),
            "rob_head": entry_state(self.rob.head()),
            "oldest_load": entry_state(self.lq.oldest()),
            "ready": len(self._ready),
            "waiting_loads": len(self._waiting_loads),
            "lp_parked": len(self._lp_parked),
            "write_buffer": len(self.write_buffer),
            "wb_draining": self._wb_draining,
            "wb_backpressure": self.write_buffer.backpressure,
            "pinned_total": self.controller.pinned_total,
            "cpt_occupancy": len(self.controller.cpt),
        }

    def __repr__(self) -> str:
        return (f"Core(id={self.core_id}, retired={self.retired}, "
                f"cursor={self._cursor}/{len(self.trace)})")
