"""Micro-op ISA and trace containers."""

from repro.isa.serialize import load_workload, save_workload
from repro.isa.trace import Trace, Workload
from repro.isa.uops import (MEMORY_CLASSES, SERIALIZING_CLASSES, MicroOp,
                            OpClass)

__all__ = ["MEMORY_CLASSES", "SERIALIZING_CLASSES", "MicroOp", "OpClass",
           "Trace", "Workload", "load_workload", "save_workload"]
