"""Trace precompilation: one flat struct-of-arrays view per ``Trace``.

The specialized run loops (``repro.sim.engine``) touch the trace on
every dispatch and on every ``quiet_until`` probe.  Going through the
per-uop object model costs an object index, an attribute load, and —
for ``is_load``/``is_store`` — a property *call* per touch.  A
``CompiledTrace`` decodes the whole trace once per run into parallel
arrays indexed by the program-order position (the integer handle the
core's cursor already is):

* ``opcodes``   — one byte per uop (``OP_*`` codes below);
* ``is_load`` / ``is_store`` / ``mispredicted`` — byte flags;
* ``lines``     — the cache line (``addr >> 6``) or ``-1``;
* ``barrier_ids`` — the rendezvous id or ``-1``;
* ``deps`` / ``data_deps`` — CSR form: ``deps_flat[deps_start[i]:
  deps_start[i+1]]`` are uop ``i``'s operand producers.

The arrays are derived, immutable, and cheap to rebuild, so they are
*not* checkpoint state: the engine that owns them is dropped from the
pickled ``System`` graph and recompiled lazily after a restore.  The
``uops`` list is retained so dispatch can hand the original ``MicroOp``
to a fresh ``ROBEntry`` (execution state stays in the object model).
"""

from __future__ import annotations

import weakref
from array import array
from typing import Dict, List, Tuple

from repro.isa.trace import Trace, Workload
from repro.isa.uops import MicroOp, OpClass

#: Stable opcode bytes; order mirrors the ``OpClass`` declaration.
OP_INT_ALU = 0
OP_FP_ALU = 1
OP_BRANCH = 2
OP_LOAD = 3
OP_STORE = 4
OP_FENCE = 5
OP_ATOMIC = 6
OP_BARRIER = 7

OP_CODES: Dict[OpClass, int] = {
    OpClass.INT_ALU: OP_INT_ALU,
    OpClass.FP_ALU: OP_FP_ALU,
    OpClass.BRANCH: OP_BRANCH,
    OpClass.LOAD: OP_LOAD,
    OpClass.STORE: OP_STORE,
    OpClass.FENCE: OP_FENCE,
    OpClass.ATOMIC: OP_ATOMIC,
    OpClass.BARRIER: OP_BARRIER,
}


class CompiledTrace:
    """Struct-of-arrays decode of one immutable ``Trace``."""

    __slots__ = ("length", "opcodes", "is_load", "is_store", "lines",
                 "mispredicted", "barrier_ids", "deps_start", "deps_flat",
                 "data_start", "data_flat", "uops")

    def __init__(self, trace: Trace) -> None:
        uops: List[MicroOp] = list(trace)
        n = len(uops)
        self.length = n
        self.uops = uops
        opcodes = bytearray(n)
        is_load = bytearray(n)
        is_store = bytearray(n)
        mispredicted = bytearray(n)
        lines = array("q")
        barrier_ids = array("q")
        deps_start = array("q", [0] * (n + 1))
        data_start = array("q", [0] * (n + 1))
        deps_flat = array("q")
        data_flat = array("q")
        for i, uop in enumerate(uops):
            opcodes[i] = OP_CODES[uop.opclass]
            opclass = uop.opclass
            if opclass is OpClass.LOAD:
                is_load[i] = 1
            elif opclass is OpClass.STORE:
                is_store[i] = 1
            if uop.mispredicted:
                mispredicted[i] = 1
            lines.append(-1 if uop.addr is None else uop.addr >> 6)
            barrier_ids.append(-1 if uop.barrier_id is None
                               else uop.barrier_id)
            deps_flat.extend(uop.deps)
            deps_start[i + 1] = len(deps_flat)
            data_flat.extend(uop.data_deps)
            data_start[i + 1] = len(data_flat)
        # bytes (not bytearray): immutable and the fastest indexed read
        self.opcodes = bytes(opcodes)
        self.is_load = bytes(is_load)
        self.is_store = bytes(is_store)
        self.mispredicted = bytes(mispredicted)
        self.lines = lines
        self.barrier_ids = barrier_ids
        self.deps_start = deps_start
        self.deps_flat = deps_flat
        self.data_start = data_start
        self.data_flat = data_flat

    def deps_of(self, index: int) -> Tuple[int, ...]:
        """Operand producers of uop ``index`` (diagnostics; the engine
        iterates the CSR arrays directly)."""
        return tuple(self.deps_flat[self.deps_start[index]:
                                    self.deps_start[index + 1]])


#: Per-trace memo: traces are immutable, so the decode is shared by
#: every system bound to the same workload (sweep repeats, lockstep
#: batches).  Weak keys keep the cache from pinning dead workloads.
_COMPILED: "weakref.WeakKeyDictionary[Trace, CompiledTrace]" = \
    weakref.WeakKeyDictionary()


def compile_trace(trace: Trace) -> CompiledTrace:
    compiled = _COMPILED.get(trace)
    if compiled is None:
        compiled = CompiledTrace(trace)
        _COMPILED[trace] = compiled
    return compiled


def compile_workload(workload: Workload) -> List[CompiledTrace]:
    """One ``CompiledTrace`` per thread, in core order."""
    return [CompiledTrace(trace) for trace in workload.traces]
