"""Trace and workload serialization (JSON).

Synthetic traces are cheap to regenerate, but serialization lets a user
pin down the *exact* instruction stream of an experiment (artifact
archiving), hand-edit a trace for a case study, or import traces produced
by an external tool into this simulator.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Union

from repro.isa.trace import Trace, Workload
from repro.isa.uops import MicroOp, OpClass

FORMAT_VERSION = 1


def uop_to_dict(uop: MicroOp) -> dict:
    record = {"op": uop.opclass.value}
    if uop.deps:
        record["deps"] = list(uop.deps)
    if uop.data_deps:
        record["data_deps"] = list(uop.data_deps)
    if uop.addr is not None:
        record["addr"] = uop.addr
    if uop.mispredicted:
        record["mispredicted"] = True
    if uop.barrier_id is not None:
        record["barrier_id"] = uop.barrier_id
    return record


def uop_from_dict(index: int, record: dict) -> MicroOp:
    return MicroOp(
        index,
        OpClass(record["op"]),
        deps=tuple(record.get("deps", ())),
        data_deps=tuple(record.get("data_deps", ())),
        addr=record.get("addr"),
        mispredicted=record.get("mispredicted", False),
        barrier_id=record.get("barrier_id"),
    )


def workload_to_dict(workload: Workload) -> dict:
    return {
        "version": FORMAT_VERSION,
        "name": workload.name,
        "threads": [
            {"name": trace.name,
             "uops": [uop_to_dict(uop) for uop in trace]}
            for trace in workload.traces
        ],
    }


def workload_from_dict(data: dict) -> Workload:
    version = data.get("version")
    if version != FORMAT_VERSION:
        raise ValueError(f"unsupported workload format version {version!r}")
    traces = []
    for thread in data["threads"]:
        uops = [uop_from_dict(index, record)
                for index, record in enumerate(thread["uops"])]
        traces.append(Trace(uops, name=thread.get("name", "trace")))
    return Workload(traces, name=data.get("name", "workload"))


def save_workload(workload: Workload, path: Union[str, Path]) -> None:
    """Write a workload to a JSON file."""
    Path(path).write_text(json.dumps(workload_to_dict(workload)))


def load_workload(path: Union[str, Path]) -> Workload:
    """Read a workload back from a JSON file."""
    return workload_from_dict(json.loads(Path(path).read_text()))
