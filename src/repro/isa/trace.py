"""Trace containers: per-thread uop sequences plus workload metadata."""

from __future__ import annotations

import hashlib
from typing import Dict, Iterator, List, Optional, Sequence

from repro.isa.uops import MicroOp, OpClass


#: op classes a transient (wrong-path) uop may have: wrong-path work is
#: loads and the arithmetic feeding their addresses — never stores,
#: branches, or serializing ops, which would perturb architectural state
TRANSIENT_CLASSES = frozenset({OpClass.LOAD, OpClass.INT_ALU,
                               OpClass.FP_ALU})


class Trace:
    """An immutable per-thread instruction sequence.

    The core keeps a cursor into the trace; a squash simply rewinds the
    cursor, so the same ``Trace`` serves replay for free.

    **Transient uops.**  A uop with ``guard=g`` exists only on the wrong
    path of the mispredicted branch at index ``g``: it dispatches and
    executes normally until the guard resolves, after which every replay
    dispatches its precomputed architectural *NOP twin* (an INT_ALU uop
    with the same index and deps but no address) instead.  The twins are
    built here, once, so dispatch-time substitution is a dict lookup and
    squash-and-replay still re-dispatches stable uop objects.
    """

    # __weakref__ so derived views (repro.isa.compiled) can memoize per
    # trace without keeping it alive
    __slots__ = ("_uops", "name", "twins", "has_transient",
                 "probe_indices", "__weakref__")

    def __init__(self, uops: Sequence[MicroOp], name: str = "trace") -> None:
        self._uops: List[MicroOp] = list(uops)
        self.name = name
        for position, uop in enumerate(self._uops):
            if uop.index != position:
                raise ValueError(
                    f"uop at position {position} has index {uop.index}")
        self.twins: Dict[int, MicroOp] = {}
        self.probe_indices = tuple(
            uop.index for uop in self._uops if uop.probe)
        for uop in self._uops:
            if uop.guard is None:
                # architectural uops must not consume wrong-path values
                for dep in uop.deps + uop.data_deps:
                    if self._uops[dep].guard is not None:
                        raise ValueError(
                            f"architectural uop {uop.index} depends on "
                            f"transient uop {dep}")
                continue
            if uop.opclass not in TRANSIENT_CLASSES:
                raise ValueError(
                    f"transient uop {uop.index} has op class "
                    f"{uop.opclass}; only loads and ALU ops may be "
                    f"transient")
            g = self._uops[uop.guard]
            if not (g.is_branch and g.mispredicted):
                raise ValueError(
                    f"uop {uop.index} guarded by {uop.guard}, which is "
                    f"not a mispredicted branch")
            for dep in uop.deps:
                dep_guard = self._uops[dep].guard
                if dep_guard is not None and dep_guard != uop.guard:
                    raise ValueError(
                        f"transient uop {uop.index} (guard {uop.guard}) "
                        f"depends on uop {dep} under a different guard "
                        f"{dep_guard}")
            self.twins[uop.index] = MicroOp(uop.index, OpClass.INT_ALU,
                                            deps=uop.deps)
        self.has_transient = bool(self.twins)

    def __len__(self) -> int:
        return len(self._uops)

    def __getitem__(self, index: int) -> MicroOp:
        return self._uops[index]

    def __iter__(self) -> Iterator[MicroOp]:
        return iter(self._uops)

    def count(self, opclass: OpClass) -> int:
        return sum(1 for uop in self._uops if uop.opclass is opclass)

    def mix(self) -> Dict[str, float]:
        """Fraction of the trace in each op class (diagnostics/tests)."""
        total = max(len(self._uops), 1)
        return {cls.value: self.count(cls) / total for cls in OpClass}

    def footprint_lines(self) -> int:
        """Number of distinct cache lines the trace touches."""
        lines = {uop.addr >> 6 for uop in self._uops if uop.addr is not None}
        return len(lines)


class Workload:
    """A named set of per-thread traces that run together on one system."""

    # __weakref__ so the checkpoint writer (repro.sim.checkpoint) can
    # memoize the serialized immutable part per workload
    __slots__ = ("traces", "name", "_fingerprint", "__weakref__")

    def __init__(self, traces: Sequence[Trace],
                 name: str = "workload") -> None:
        if not traces:
            raise ValueError("workload needs at least one trace")
        self.traces: List[Trace] = list(traces)
        self.name = name
        self._fingerprint: Optional[str] = None

    @property
    def fingerprint(self) -> str:
        """Content hash of the actual instruction streams (not the name).

        Two workloads that share a name but differ in any uop (different
        instruction count, seed, profile...) get different fingerprints,
        so experiment caches keyed on it can never alias them.  Computed
        once and memoized; traces are immutable after construction."""
        if self._fingerprint is None:
            digest = hashlib.sha256()
            for trace in self.traces:
                digest.update(b"T")
                for uop in trace:
                    record = (uop.index, uop.opclass.value, uop.deps,
                              uop.data_deps, uop.addr, uop.mispredicted,
                              uop.barrier_id)
                    if uop.guard is not None or uop.probe:
                        # appended only when set so every pre-existing
                        # trace keeps its fingerprint (and cache keys)
                        record = record + (uop.guard, uop.probe)
                    digest.update(repr(record).encode())
            self._fingerprint = digest.hexdigest()
        return self._fingerprint

    @property
    def num_threads(self) -> int:
        return len(self.traces)

    @property
    def total_instructions(self) -> int:
        return sum(len(trace) for trace in self.traces)

    def __repr__(self) -> str:
        return (f"Workload({self.name!r}, threads={self.num_threads}, "
                f"instructions={self.total_instructions})")
