"""Trace containers: per-thread uop sequences plus workload metadata."""

from __future__ import annotations

import hashlib
from typing import Dict, Iterator, List, Optional, Sequence

from repro.isa.uops import MicroOp, OpClass


class Trace:
    """An immutable per-thread instruction sequence.

    The core keeps a cursor into the trace; a squash simply rewinds the
    cursor, so the same ``Trace`` serves replay for free.
    """

    # __weakref__ so derived views (repro.isa.compiled) can memoize per
    # trace without keeping it alive
    __slots__ = ("_uops", "name", "__weakref__")

    def __init__(self, uops: Sequence[MicroOp], name: str = "trace") -> None:
        self._uops: List[MicroOp] = list(uops)
        self.name = name
        for position, uop in enumerate(self._uops):
            if uop.index != position:
                raise ValueError(
                    f"uop at position {position} has index {uop.index}")

    def __len__(self) -> int:
        return len(self._uops)

    def __getitem__(self, index: int) -> MicroOp:
        return self._uops[index]

    def __iter__(self) -> Iterator[MicroOp]:
        return iter(self._uops)

    def count(self, opclass: OpClass) -> int:
        return sum(1 for uop in self._uops if uop.opclass is opclass)

    def mix(self) -> Dict[str, float]:
        """Fraction of the trace in each op class (diagnostics/tests)."""
        total = max(len(self._uops), 1)
        return {cls.value: self.count(cls) / total for cls in OpClass}

    def footprint_lines(self) -> int:
        """Number of distinct cache lines the trace touches."""
        lines = {uop.addr >> 6 for uop in self._uops if uop.addr is not None}
        return len(lines)


class Workload:
    """A named set of per-thread traces that run together on one system."""

    # __weakref__ so the checkpoint writer (repro.sim.checkpoint) can
    # memoize the serialized immutable part per workload
    __slots__ = ("traces", "name", "_fingerprint", "__weakref__")

    def __init__(self, traces: Sequence[Trace],
                 name: str = "workload") -> None:
        if not traces:
            raise ValueError("workload needs at least one trace")
        self.traces: List[Trace] = list(traces)
        self.name = name
        self._fingerprint: Optional[str] = None

    @property
    def fingerprint(self) -> str:
        """Content hash of the actual instruction streams (not the name).

        Two workloads that share a name but differ in any uop (different
        instruction count, seed, profile...) get different fingerprints,
        so experiment caches keyed on it can never alias them.  Computed
        once and memoized; traces are immutable after construction."""
        if self._fingerprint is None:
            digest = hashlib.sha256()
            for trace in self.traces:
                digest.update(b"T")
                for uop in trace:
                    record = (uop.index, uop.opclass.value, uop.deps,
                              uop.data_deps, uop.addr, uop.mispredicted,
                              uop.barrier_id)
                    digest.update(repr(record).encode())
            self._fingerprint = digest.hexdigest()
        return self._fingerprint

    @property
    def num_threads(self) -> int:
        return len(self.traces)

    @property
    def total_instructions(self) -> int:
        return sum(len(trace) for trace in self.traces)

    def __repr__(self) -> str:
        return (f"Workload({self.name!r}, threads={self.num_threads}, "
                f"instructions={self.total_instructions})")
