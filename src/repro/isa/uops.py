"""Micro-operation definitions.

The core is trace-driven: a workload is a per-thread sequence of
``MicroOp``s with explicit data dependences (indices of older uops in the
same thread).  A uop is immutable once generated; all execution state lives
in the core's ROB entries so that squash-and-replay re-dispatches the same
uop object cheaply.
"""

from __future__ import annotations

import enum
from typing import Optional, Tuple


class OpClass(enum.Enum):
    INT_ALU = "int"
    FP_ALU = "fp"
    BRANCH = "br"
    LOAD = "ld"
    STORE = "st"
    FENCE = "fence"      # MFENCE: orders all memory ops around it
    ATOMIC = "atomic"    # LOCK-prefixed RMW: load+store with fence semantics
    BARRIER = "barrier"  # workload-level thread barrier (parallel suites)


MEMORY_CLASSES = frozenset({OpClass.LOAD, OpClass.STORE, OpClass.ATOMIC})
SERIALIZING_CLASSES = frozenset({OpClass.FENCE, OpClass.ATOMIC,
                                 OpClass.BARRIER})


class MicroOp:
    """One instruction of a workload trace.

    Attributes:
        index: program-order position within the thread (0-based).
        opclass: what kind of uop this is.
        deps: indices of older uops whose results this uop consumes.  For a
            memory op these are the *address* operands (plus store data);
            a load is "dependent" in the paper's Fig. 2(g) sense when its
            deps include an older load.
        addr: byte address for memory ops, ``None`` otherwise.
        mispredicted: for branches, whether the predictor got it wrong
            (resolving such a branch squashes all younger uops).
        barrier_id: for BARRIER uops, which global rendezvous this is.
        guard: index of an older *mispredicted* branch this uop is
            transient under.  A guarded uop exists only on the wrong
            path: it dispatches and executes normally until the guard
            resolves, then every replay dispatches its architectural
            NOP twin instead (``Trace.twins``) — the correct path never
            contained it.  Adversarial traces use this to model
            secret-dependent transient accesses (``repro.security.attacks``).
        probe: marks an architectural load whose per-access timing the
            result collector exports (``SimResult.probes``) — the
            attacker's stopwatch in leakage experiments.
    """

    __slots__ = ("index", "opclass", "deps", "data_deps", "addr",
                 "mispredicted", "barrier_id", "guard", "probe")

    def __init__(self, index: int, opclass: OpClass,
                 deps: Tuple[int, ...] = (),
                 addr: Optional[int] = None,
                 mispredicted: bool = False,
                 barrier_id: Optional[int] = None,
                 data_deps: Tuple[int, ...] = (),
                 guard: Optional[int] = None,
                 probe: bool = False) -> None:
        for dep in tuple(deps) + tuple(data_deps):
            if dep >= index:
                raise ValueError(
                    f"uop {index} depends on non-older uop {dep}")
        if opclass in MEMORY_CLASSES and addr is None:
            raise ValueError(f"{opclass} uop requires an address")
        if data_deps and opclass is not OpClass.STORE:
            raise ValueError("data_deps are only meaningful for stores")
        if guard is not None and guard >= index:
            raise ValueError(
                f"uop {index} guarded by non-older branch {guard}")
        if probe and opclass is not OpClass.LOAD:
            raise ValueError("only loads can be timing probes")
        if probe and guard is not None:
            raise ValueError("probes are architectural; transient uops "
                             "cannot be probes")
        self.index = index
        self.opclass = opclass
        self.deps = tuple(deps)
        self.data_deps = tuple(data_deps)
        self.addr = addr
        self.mispredicted = mispredicted
        self.barrier_id = barrier_id
        self.guard = guard
        self.probe = probe

    @property
    def is_load(self) -> bool:
        return self.opclass is OpClass.LOAD

    @property
    def is_store(self) -> bool:
        return self.opclass is OpClass.STORE

    @property
    def is_branch(self) -> bool:
        return self.opclass is OpClass.BRANCH

    @property
    def is_memory(self) -> bool:
        return self.opclass in MEMORY_CLASSES

    @property
    def is_serializing(self) -> bool:
        return self.opclass in SERIALIZING_CLASSES

    def __repr__(self) -> str:
        extra = ""
        if self.addr is not None:
            extra = f" addr=0x{self.addr:x}"
        if self.mispredicted:
            extra += " mispred"
        if self.guard is not None:
            extra += f" guard={self.guard}"
        if self.probe:
            extra += " probe"
        return (f"MicroOp(#{self.index} {self.opclass.value}"
                f" deps={list(self.deps)}{extra})")
