"""Exhaustive breadth-first exploration of the protocol model.

For small configurations (2-3 cores x 1-2 lines) the reachable state space
of :class:`repro.verify.model.PinnedProtocolModel` is a few thousand to a
few hundred thousand states; this module enumerates all of it and checks:

* **state safety** — SWMR and pin-safety in every reachable state;
* **transition safety** — CPT-respect and the CPT-starvation obligation on
  every fired transition;
* **writer progress** — from every reachable state with an in-flight write
  transaction, a completing transition for that transaction remains
  reachable (no deadlock/livelock: Defer/Abort can always resolve);
* **transition-table coverage** — which ``(L1 state, event)`` pairs the
  protocol logic ever exercises; pairs that become dead indicate unhandled
  or unreachable transition logic in ``CoherentMemory``'s concrete
  counterpart.

Violations carry the exact event trace from the initial state, so a broken
protocol change fails with a replayable counterexample.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass, field
from typing import Dict, FrozenSet, List, Optional, Set, Tuple

from repro.common.errors import VerificationError
from repro.verify.model import (Event, LINE_STATES, ModelConfig,
                                PinnedProtocolModel, ProtocolState, W_IDLE)


@dataclass(frozen=True)
class Violation:
    """One invariant failure with its counterexample."""

    invariant: str
    detail: str
    trace: Tuple[Event, ...]

    def __str__(self) -> str:
        steps = " -> ".join(str(event) for event in self.trace) or "<init>"
        return f"[{self.invariant}] {self.detail}\n    via: {steps}"


@dataclass
class ExplorationResult:
    """Everything one exhaustive exploration produced."""

    config: ModelConfig
    num_states: int
    num_transitions: int
    violations: List[Violation] = field(default_factory=list)
    #: exercised (L1 state of the acting core's line, event kind) pairs
    coverage: Set[Tuple[str, str]] = field(default_factory=set)

    @property
    def ok(self) -> bool:
        return not self.violations

    def dead_pairs(self) -> List[Tuple[str, str]]:
        """(L1 state, event kind) pairs never exercised by any reachable
        transition.  A pair both absent here and unlisted in
        ``EXPECTED_DEAD`` points at transition logic that silently became
        unreachable."""
        kinds = sorted({kind for _, kind in self.coverage}
                       | {kind for _, kind in EXPECTED_DEAD})
        return [(state, kind)
                for state in LINE_STATES for kind in kinds
                if (state, kind) not in self.coverage]


#: (L1 state, event) pairs that are dead *by protocol design* in the
#: default model; ``repro verify model`` asserts the observed dead set
#: matches exactly, so both a newly-dead and a newly-live pair fail.
EXPECTED_DEAD: FrozenSet[Tuple[str, str]] = frozenset({
    ("S", "LOAD"), ("E", "LOAD"), ("M", "LOAD"),    # loads need a miss
    ("I", "EVICT"), ("I", "UNPIN"), ("I", "PIN"),   # need a resident line
    ("I", "UPGRADE"), ("S", "UPGRADE"),             # silent upgrade: E only
    ("M", "UPGRADE"),
    ("E", "WRITE_ISSUE"), ("M", "WRITE_ISSUE"),     # writable: no GetX
    ("I", "LLC_EVICT"),                             # needs a cached copy
})


def _reconstruct(parents: Dict[ProtocolState,
                               Optional[Tuple[ProtocolState, Event]]],
                 state: ProtocolState,
                 extra: Optional[Event] = None) -> Tuple[Event, ...]:
    trace: List[Event] = [] if extra is None else [extra]
    cursor = state
    while True:
        parent = parents[cursor]
        if parent is None:
            break
        cursor, event = parent
        trace.append(event)
    trace.reverse()
    return tuple(trace)


def explore(config: Optional[ModelConfig] = None,
            check_progress: bool = True) -> ExplorationResult:
    """Run the exhaustive BFS and all checks; never raises on protocol
    violations (they are returned), only on exhausted exploration bounds.
    """
    config = config or ModelConfig()
    model = PinnedProtocolModel(config)
    init = model.initial_state()
    parents: Dict[ProtocolState,
                  Optional[Tuple[ProtocolState, Event]]] = {init: None}
    frontier = deque([init])
    edges: List[Tuple[int, int]] = []       # forward graph, by state id
    state_ids: Dict[ProtocolState, int] = {init: 0}
    states: List[ProtocolState] = [init]
    #: per state id: (writer_core, line) txns completable right there
    completions: Dict[int, Set[Tuple[int, int]]] = {}
    result = ExplorationResult(config=config, num_states=0,
                               num_transitions=0)
    seen_violations: Set[Tuple[str, str]] = set()

    def report(invariant: str, detail: str, state: ProtocolState,
               extra: Optional[Event] = None) -> None:
        key = (invariant, detail)
        if key in seen_violations:
            return
        seen_violations.add(key)
        result.violations.append(
            Violation(invariant, detail,
                      _reconstruct(parents, state, extra)))

    for problem in model.check_state(init):
        report("state", problem, init)
    while frontier:
        state = frontier.popleft()
        sid = state_ids[state]
        for event in model.enabled_events(state):
            succ = model.apply(state, event)
            result.num_transitions += 1
            actor = event.core if event.kind != "LLC_EVICT" else None
            if actor is not None:
                result.coverage.add(
                    (model.l1_state(state, actor, event.line), event.kind))
            else:
                for core in sorted(model.holders(state, event.line)):
                    result.coverage.add(
                        (model.l1_state(state, core, event.line),
                         event.kind))
            if model.completes_write(state, event):
                completions.setdefault(sid, set()).add(
                    (event.core, event.line))
            known = succ in parents
            if not known:
                if len(parents) >= config.max_states:
                    raise VerificationError(
                        f"model exploration exceeded "
                        f"{config.max_states} states; shrink the "
                        f"configuration or raise max_states")
                parents[succ] = (state, event)
                state_ids[succ] = len(states)
                states.append(succ)
                frontier.append(succ)
                for problem in model.check_state(succ):
                    report("state", problem, succ)
            for problem in model.check_transition(state, event, succ):
                report("transition", problem, state, extra=event)
            edges.append((sid, state_ids[succ]))
    result.num_states = len(states)
    if check_progress:
        _check_progress(model, states, edges, completions, parents, report)
    return result


def _check_progress(model: PinnedProtocolModel,
                    states: List[ProtocolState],
                    edges: List[Tuple[int, int]],
                    completions: Dict[int, Set[Tuple[int, int]]],
                    parents, report) -> None:
    """Backward reachability: every state with txn (c, l) in flight must
    reach a state where that txn can complete.  A write transaction's
    phase only returns to idle through completion, so plain backward
    reachability from the completion-enabled states is exact."""
    cfg = model.config
    reverse: Dict[int, List[int]] = {}
    for src, dst in edges:
        reverse.setdefault(dst, []).append(src)
    for core in range(cfg.cores):
        for line in range(cfg.lines):
            txn = (core, line)
            sources = [sid for sid, done in completions.items()
                       if txn in done]
            reachable = set(sources)
            stack = list(sources)
            while stack:
                node = stack.pop()
                for pred in reverse.get(node, ()):
                    if pred not in reachable:
                        reachable.add(pred)
                        stack.append(pred)
            idx = core * cfg.lines + line
            for sid, state in enumerate(states):
                if state.writes[idx] != W_IDLE and sid not in reachable:
                    report(
                        "progress",
                        f"write of core {core} to line {line} can never "
                        f"complete from a reachable state (Defer/Abort "
                        f"livelock)", state)
                    break
