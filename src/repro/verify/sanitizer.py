"""Runtime invariant sanitizer for the live simulator.

Enabled with ``SystemConfig(sanitize=True)``.  ``System`` then builds one
:class:`Sanitizer` and attaches it; the sanitizer wraps a handful of
instance methods on the memory system, the cores, and the pinning
controllers, re-verifying on every event the invariants the Pinned Loads
security argument rests on:

* **pin-safety** — a pinned line is never the target of a completed
  remote invalidation or eviction (L1 victim, inclusive back-invalidation,
  or remote ``Inv``/``Inv*``); this is the paper's §5.1.1/§5.1.3 theorem.
* **pin balance** — ``_pin``/``_unpin`` pair up exactly per ROB entry, and
  the controller's per-line refcounts always sum to ``pinned_total``.
* **pin order** — a load is only pinned after every older load in the LQ
  is already MCV-safe (the strict program-order chain of §5).
* **EP capacity** — under Early Pinning the ground-truth pinned lines per
  L1 set never exceed the associativity, and per directory set never
  exceed ``W_d`` (the guarantee the CSTs exist to provide, §5.1.4).
* **write-buffer precondition** — ``_write_buffer_ok`` holds at the
  moment of every pin (§5.1.2, the Figure 4 deadlock condition).
* **CPT occupancy** — a non-ideal Cannot-Pin Table never exceeds its
  capacity and its occupancy accounting never goes negative.
* **VP conditions** — whenever a load's Visibility Point is declared
  reached, the conditions of the configured threat model actually hold.
* **callback discipline** — every ``on_complete`` callback handed to the
  memory system fires at most once; unfired callbacks at end of run are
  tallied (in-flight fills of squashed wrong-path loads are legal).

A violation raises :class:`repro.common.errors.InvariantViolation`
carrying the suffix of the sanitizer's event trace, so the failing
interleaving can be reconstructed.

The instrumentation is pure instance-attribute wrapping: nothing on the
hot path changes when ``sanitize`` is off (see
``benchmarks/test_sanitizer_overhead.py`` for the measured cost when on).
"""

from __future__ import annotations

from collections import deque
from typing import Deque, Dict, Tuple

from repro.common.errors import InvariantViolation
from repro.common.params import PinningMode, ThreatModel
from repro.common.stats import StatSet

#: Length of the retained event-trace suffix attached to violations.
TRACE_DEPTH = 64


class Sanitizer:
    """Per-system invariant checker; see the module docstring."""

    def __init__(self, system) -> None:
        self.system = system
        self.config = system.config
        self.stats = StatSet()
        self.trace: Deque[Tuple[int, str]] = deque(maxlen=TRACE_DEPTH)
        self._pin_depth: Dict[int, int] = {}    # id(entry) -> pin count
        self._callbacks_live = 0

    # ------------------------------------------------------------------
    # Plumbing
    # ------------------------------------------------------------------

    def _record(self, what: str) -> None:
        self.trace.append((self.system.events.now, what))
        self.stats.bump("events_checked")

    def _fail(self, invariant: str, detail: str) -> None:
        raise InvariantViolation(
            invariant, detail, cycle=self.system.events.now,
            trace=[f"@{cycle}: {what}" for cycle, what in self.trace])

    def attach(self) -> None:
        """Wrap the instrumented instance methods.  Idempotence is not
        needed: ``System`` calls this exactly once at construction."""
        mem = self.system.mem
        self._wrap_mem(mem)
        for core in self.system.cores:
            self._wrap_core(core)

    def attach_chaos(self, chaos) -> None:
        """Record injected faults in the event trace (``System`` calls
        this when a chaos engine is installed *after* ``attach``).  A
        pin-safety violation under fault injection then shows the
        provoking fault right next to the offending eviction — which is
        also how the campaign's ``evict-pinned`` mutant self-test proves
        the sanitizer is actually watching the forced-eviction path."""
        orig_l1 = chaos._force_l1_eviction
        orig_llc = chaos._force_llc_eviction
        orig_spike = chaos._wb_spike_start

        def force_l1_eviction():
            self._record("chaos force-evict L1")
            return orig_l1()

        def force_llc_eviction():
            self._record("chaos force-evict LLC")
            return orig_llc()

        def wb_spike_start():
            self._record("chaos wb-spike")
            return orig_spike()

        chaos._force_l1_eviction = force_l1_eviction
        chaos._force_llc_eviction = force_llc_eviction
        chaos._wb_spike_start = wb_spike_start

    def finish(self) -> None:
        """End-of-run accounting (no violations raised here)."""
        self.stats.set("callbacks_unfired", self._callbacks_live)

    # ------------------------------------------------------------------
    # Memory-system instrumentation
    # ------------------------------------------------------------------

    def _pinner_of(self, core_id: int, line: int) -> bool:
        controller = self.system.cores[core_id].controller
        return line in controller._pinned_counts

    def _wrap_mem(self, mem) -> None:
        orig_inv = mem._remote_invalidate
        orig_evict = mem._evict_l1
        orig_load = mem.load
        orig_store = mem.store

        def remote_invalidate(core_id, line, dir_entry):
            self._record(f"inv core={core_id} line={line:#x}")
            if self._pinner_of(core_id, line):
                self._fail(
                    "pin-safety",
                    f"remote invalidation of line {line:#x} reached core "
                    f"{core_id} while that core pins it (a pinned sharer "
                    f"must answer Defer)")
            return orig_inv(core_id, line, dir_entry)

        def evict_l1(core_id, victim):
            self._record(f"evict core={core_id} line={victim:#x}")
            if self._pinner_of(core_id, victim):
                self._fail(
                    "pin-safety",
                    f"L1 eviction of line {victim:#x} on core {core_id} "
                    f"while that core pins it (victim selection must "
                    f"skip pinned lines)")
            return orig_evict(core_id, victim)

        def load(core_id, line, on_complete):
            self._record(f"load core={core_id} line={line:#x}")
            return orig_load(core_id, line,
                             self._guard_callback(on_complete,
                                                  f"load {line:#x} of "
                                                  f"core {core_id}"))

        def store(core_id, line, on_complete):
            self._record(f"store core={core_id} line={line:#x}")
            return orig_store(core_id, line,
                              self._guard_callback(on_complete,
                                                   f"store {line:#x} of "
                                                   f"core {core_id}"))

        mem._remote_invalidate = remote_invalidate
        mem._evict_l1 = evict_l1
        mem.load = load
        mem.store = store

    def _guard_callback(self, on_complete, label: str):
        fired = [False]
        self._callbacks_live += 1

        def guarded(cycle: int) -> None:
            if fired[0]:
                self._fail(
                    "callback-once",
                    f"on_complete of {label} fired a second time")
            fired[0] = True
            self._callbacks_live -= 1
            on_complete(cycle)

        return guarded

    # ------------------------------------------------------------------
    # Core / controller instrumentation
    # ------------------------------------------------------------------

    def _wrap_core(self, core) -> None:
        controller = core.controller
        orig_pin = controller._pin
        orig_unpin = controller._unpin
        orig_on_inval = core.on_invalidation
        orig_on_evicted = core.on_line_evicted
        orig_note_vp = core.note_vp_reached
        orig_tick = core.tick
        orig_cpt_insert = controller.cpt.insert
        orig_cpt_remove = controller.cpt.remove
        cpt = controller.cpt

        def on_invalidation(line):
            if line in controller._pinned_counts:
                self._fail(
                    "pin-safety",
                    f"core {core.core_id} lost its copy of pinned line "
                    f"{line:#x} to an invalidation")
            return orig_on_inval(line)

        def on_line_evicted(line):
            if line in controller._pinned_counts:
                self._fail(
                    "pin-safety",
                    f"core {core.core_id} lost its copy of pinned line "
                    f"{line:#x} to an eviction")
            return orig_on_evicted(line)

        def pin(entry):
            self._record(f"pin core={core.core_id} idx={entry.index} "
                         f"line={entry.line:#x}")
            self._check_pin_preconditions(core, controller, entry)
            depth = self._pin_depth.get(id(entry), 0)
            if depth != 0 or entry.pinned:
                self._fail(
                    "pin-balance",
                    f"load #{entry.index} of core {core.core_id} pinned "
                    f"twice without an intervening unpin")
            self._pin_depth[id(entry)] = 1
            result = orig_pin(entry)
            self._check_pin_capacity(core, controller, entry)
            return result

        def unpin(entry):
            self._record(f"unpin core={core.core_id} idx={entry.index} "
                         f"line={entry.line:#x}")
            if self._pin_depth.pop(id(entry), 0) != 1 or not entry.pinned:
                self._fail(
                    "pin-balance",
                    f"unpin of load #{entry.index} on core "
                    f"{core.core_id} without a matching pin")
            result = orig_unpin(entry)
            self._check_pin_accounting(core, controller)
            return result

        def note_vp_reached(entry):
            fresh = entry.vp_cycle is None
            if fresh and entry.line is not None:
                self._record(f"vp core={core.core_id} idx={entry.index}")
                self._check_vp_conditions(core, entry)
            return orig_note_vp(entry)

        def tick(cycle):
            result = orig_tick(cycle)
            self._check_per_tick(core, controller)
            return result

        def cpt_insert(line, writer=None):
            self._record(f"cpt+ core={core.core_id} line={line:#x}")
            result = orig_cpt_insert(line, writer=writer)
            self._check_cpt(core, cpt)
            return result

        def cpt_remove(line):
            self._record(f"cpt- core={core.core_id} line={line:#x}")
            result = orig_cpt_remove(line)
            self._check_cpt(core, cpt)
            return result

        core.on_invalidation = on_invalidation
        core.on_line_evicted = on_line_evicted
        core.note_vp_reached = note_vp_reached
        core.tick = tick
        controller._pin = pin
        controller._unpin = unpin
        controller.cpt.insert = cpt_insert
        controller.cpt.remove = cpt_remove

    # ------------------------------------------------------------------
    # The checks themselves
    # ------------------------------------------------------------------

    def _check_pin_preconditions(self, core, controller, entry) -> None:
        for older in core.lq:
            if older.index >= entry.index:
                break
            if not older.squashed and not older.mcv_safe:
                self._fail(
                    "pin-order",
                    f"core {core.core_id} pins load #{entry.index} while "
                    f"older load #{older.index} is not yet MCV-safe")
        if not controller._write_buffer_ok(entry):
            self._fail(
                "pin-wb",
                f"core {core.core_id} pins load #{entry.index} although "
                f"the yet-to-complete older stores overflow the write "
                f"buffer (Figure 4 deadlock window)")

    def _check_pin_capacity(self, core, controller, entry) -> None:
        """EP only: the CSTs must have kept ground-truth occupancy within
        the real structures' capacity (§5.1.4)."""
        params = self.config.pinning
        if params.mode is not PinningMode.EARLY or params.infinite_cst:
            return
        mem = core.mem
        line = entry.line
        l1_set = mem.l1_set_of(line)
        pinned_in_set = controller._l1_set_lines.get(l1_set, ())
        if len(pinned_in_set) > self.config.l1d.ways:
            self._fail(
                "cst-capacity",
                f"core {core.core_id} pins {len(pinned_in_set)} lines in "
                f"L1 set {l1_set} but the set only has "
                f"{self.config.l1d.ways} ways")
        dir_key = mem.slice_and_set_of(line)
        pinned_in_dir = controller._dir_set_lines.get(dir_key, ())
        if len(pinned_in_dir) > params.w_d:
            self._fail(
                "cst-capacity",
                f"core {core.core_id} pins {len(pinned_in_dir)} lines in "
                f"directory set {dir_key} but only W_d={params.w_d} are "
                f"reserved per core")

    def _check_pin_accounting(self, core, controller) -> None:
        counts = controller._pinned_counts
        if any(count <= 0 for count in counts.values()) \
                or controller.pinned_total != sum(counts.values()) \
                or controller.pinned_total < 0:
            self._fail(
                "pin-accounting",
                f"core {core.core_id} pin refcounts are inconsistent: "
                f"total={controller.pinned_total} counts={dict(counts)}")

    def _check_cpt(self, core, cpt) -> None:
        if not cpt.ideal and len(cpt) > cpt.capacity:
            self._fail(
                "cpt-occupancy",
                f"core {core.core_id} CPT holds {len(cpt)} lines, over "
                f"its capacity of {cpt.capacity}")
        if cpt._occupancy_sum < 0 or len(cpt) < 0:
            self._fail(
                "cpt-occupancy",
                f"core {core.core_id} CPT occupancy accounting went "
                f"negative")

    def _check_vp_conditions(self, core, entry) -> None:
        """Re-verify the declared Visibility Point against ground truth."""
        vp = core.vp_state
        index = entry.index
        level = self.config.threat_model.level
        if not entry.addr_ready:
            self._fail("vp-conditions",
                       f"load #{index} reached its VP before its own "
                       f"address was generated")
        if entry.forwarded:
            return      # store-forwarded loads never read a cache line
        if not vp.unresolved_branches.none_below(index):
            self._fail("vp-conditions",
                       f"load #{index} reached its VP under an "
                       f"unresolved older branch")
        if level >= ThreatModel.ALIAS.level \
                and not vp.unknown_addr_stores.none_below(index):
            self._fail("vp-conditions",
                       f"load #{index} reached its VP inside the "
                       f"aliasing window of an older store")
        if level >= ThreatModel.EXCEPT.level \
                and not vp.unknown_addr_memops.none_below(index):
            self._fail("vp-conditions",
                       f"load #{index} reached its VP inside the "
                       f"exception window of an older memory op")
        if level >= ThreatModel.MCV.level \
                and not self._mcv_condition_ok(core, entry):
            self._fail("vp-conditions",
                       f"load #{index} reached its VP without being "
                       f"MCV-safe")

    def _mcv_condition_ok(self, core, entry) -> bool:
        if entry.mcv_safe:
            return True
        vp = core.vp_state
        if vp.unretired_loads.none_below(entry.index) \
                or core.rob.is_head(entry):
            return True     # oldest-load exemption / conservative head
        if self.config.pinning.mode is not PinningMode.NONE:
            # Late Pinning authorization: the VP passes downstream before
            # the pin lands, but only with every older load already safe
            return all(older.mcv_safe or older.squashed
                       for older in core.lq
                       if older.index < entry.index)
        return False

    def _check_per_tick(self, core, controller) -> None:
        if len(core.write_buffer) > core.write_buffer.capacity:
            self._fail(
                "write-buffer-bound",
                f"core {core.core_id} write buffer holds "
                f"{len(core.write_buffer)} entries, over its capacity of "
                f"{core.write_buffer.capacity}")
        counts = controller._pinned_counts
        if controller.pinned_total != sum(counts.values()):
            self._fail(
                "pin-accounting",
                f"core {core.core_id} pinned_total="
                f"{controller.pinned_total} disagrees with refcounts "
                f"{dict(counts)}")
        self._check_cpt(core, controller.cpt)
