"""determinism: results are a pure function of (config, workload, seed).

Extends the lint pass's rule family (wall-clock, global-random,
set-iteration) with the hazards that slipped past it in review:

* ``env-read`` — any ``os.environ`` access (subscript, ``.get``,
  passing the mapping around) or ``os.getenv`` inside simulation code
  makes a "pure" run depend on the invoking shell.  Environment reads
  belong at process entry points (CLI, service); the sim-side
  exceptions (cache *location*, subprocess env construction) carry
  explicit waivers.
* ``id-ordering`` — ``id()`` values are allocation addresses; keying,
  ordering, or persisting them differs run to run.  Identity *memos*
  that never order or persist are waivable.
* ``unseeded-random`` — ``random.Random()`` with no seed argument and
  ``random.SystemRandom`` pull entropy from the OS.
* ``instance-dict-iteration`` — iterating ``vars(obj)`` /
  ``obj.__dict__`` couples behavior to attribute insertion order, which
  is exactly the unversioned-state hazard ``__slots__`` exists to
  prevent.
* ``entropy-source`` — ``os.urandom``, ``uuid.uuid1``/``uuid.uuid4``,
  and the ``secrets`` module draw OS entropy by construction.  The
  adversarial attack generator and leakage oracle
  (``repro.security.attacks``/``oracle``) make this load-bearing: a
  leakage verdict is the claim that two runs differing only in the
  secret bit are bit-identical, which is only meaningful if every
  address and payload derives from the experiment seed.
"""

from __future__ import annotations

import ast
from typing import List

from repro.verify.passes.base import (AnalysisPass, Finding, PassContext,
                                      SourceFile, dotted)

#: packages whose code runs inside (or feeds) a simulation
SIM_PACKAGES = {"core", "mem", "pinning", "security", "isa", "chaos",
                "workloads", "common", "sim"}


class DeterminismPass(AnalysisPass):
    name = "determinism"
    description = ("simulation code must not read the environment, key "
                   "on id(), or draw OS entropy")
    rules = {
        "env-read": "sim code must not read os.environ; configuration "
                    "flows in through SystemConfig",
        "id-ordering": "id() is an allocation address; never order, "
                       "key, or persist it",
        "unseeded-random": "random.Random() needs an explicit seed; "
                           "SystemRandom is never reproducible",
        "instance-dict-iteration": "iterating vars()/__dict__ depends "
                                   "on attribute insertion order",
        "entropy-source": "os.urandom / uuid.uuid1 / uuid.uuid4 / "
                          "secrets.* draw OS entropy; derive values "
                          "from the experiment seed",
    }

    def run(self, ctx: PassContext) -> List[Finding]:
        findings: List[Finding] = []
        for file in ctx.files:
            if file.package not in SIM_PACKAGES or file.tree is None:
                continue
            findings.extend(self._check_file(file))
        return findings

    def _check_file(self, file: SourceFile) -> List[Finding]:
        findings: List[Finding] = []
        assert file.tree is not None
        for node in ast.walk(file.tree):
            if isinstance(node, ast.Attribute) \
                    and dotted(node) in ("os.environ", "environ"):
                findings.append(self.finding(
                    file, node, "env-read",
                    f"{dotted(node)} accessed inside sim code; results "
                    f"must not depend on the invoking shell"))
            elif isinstance(node, ast.Call):
                findings.extend(self._check_call(file, node))
            elif isinstance(node, (ast.For, ast.comprehension)):
                if self._is_instance_dict(node.iter):
                    findings.append(self.finding(
                        file, node.iter, "instance-dict-iteration",
                        f"iteration over {ast.unparse(node.iter)} "
                        f"depends on attribute insertion order"))
        return findings

    def _check_call(self, file: SourceFile,
                    node: ast.Call) -> List[Finding]:
        findings: List[Finding] = []
        name = dotted(node.func)
        if name in ("os.getenv", "getenv"):
            findings.append(self.finding(
                file, node, "env-read",
                f"{name}(...) read inside sim code; results must not "
                f"depend on the invoking shell"))
        elif name == "id":
            findings.append(self.finding(
                file, node, "id-ordering",
                "id() yields an allocation address; keying or ordering "
                "on it varies run to run (waivable for pure identity "
                "memos that are never ordered or persisted)"))
        elif name == "random.Random" and not node.args \
                and not node.keywords:
            findings.append(self.finding(
                file, node, "unseeded-random",
                "random.Random() with no seed draws OS entropy; pass "
                "an explicit seed"))
        elif name in ("random.SystemRandom", "SystemRandom"):
            findings.append(self.finding(
                file, node, "unseeded-random",
                "SystemRandom is OS entropy by design and can never "
                "reproduce; use a seeded random.Random"))
        elif name in ("os.urandom", "urandom", "uuid.uuid1",
                      "uuid.uuid4", "uuid1", "uuid4",
                      "secrets.token_bytes", "secrets.token_hex",
                      "secrets.token_urlsafe", "secrets.randbits",
                      "secrets.randbelow", "secrets.choice",
                      "token_bytes", "token_hex", "token_urlsafe") \
                or (name is not None and name.startswith("secrets.")):
            findings.append(self.finding(
                file, node, "entropy-source",
                f"{name}(...) draws OS entropy inside sim code; every "
                f"address and payload must derive from the experiment "
                f"seed"))
        return findings

    @staticmethod
    def _is_instance_dict(node: ast.AST) -> bool:
        if isinstance(node, ast.Call) and isinstance(node.func, ast.Name) \
                and node.func.id == "vars" and node.args:
            return True
        return isinstance(node, ast.Attribute) \
            and node.attr == "__dict__"
