"""Shared plumbing for the multi-pass static analysis framework.

Every pass consumes the same parsed-once :class:`SourceFile` objects and
produces :class:`Finding` records; the driver (``repro.verify.passes.
driver``) owns file discovery, waiver application, baselining, and the
JSON report, so a pass is nothing but an AST walk plus a registry of
what it considers a violation.

Findings carry a *fingerprint* — a short hash of (canonical path, pass,
rule, offending line text, occurrence index) — which is what the
committed baseline file stores.  Hashing the line *text* rather than the
line *number* keeps baselines stable across unrelated edits above the
finding; the occurrence index disambiguates identical lines.
"""

from __future__ import annotations

import ast
import hashlib
from dataclasses import dataclass, field
from pathlib import Path
from typing import Dict, Iterable, List, Optional, Sequence, Union

SEVERITY_ERROR = "error"
SEVERITY_WARNING = "warning"


def canonical_path(path: Union[str, Path]) -> str:
    """Machine-independent form of ``path`` used in fingerprints.

    Everything up to and including the last ``repro`` directory is
    stripped (``/home/x/src/repro/core/pipeline.py`` and a CI
    checkout's ``/work/src/repro/core/pipeline.py`` both canonicalise
    to ``repro/core/pipeline.py``); paths with no ``repro`` component
    (scratch files in tests) fall back to the basename.
    """
    parts = Path(path).parts
    for i in range(len(parts) - 1, -1, -1):
        if parts[i] == "repro":
            return "/".join(parts[i:])
    return parts[-1] if parts else str(path)


def package_of(path: Union[str, Path]) -> str:
    """First package component under ``repro/``, or ``""``.

    ``repro/core/pipeline.py`` -> ``core``; ``repro/cli.py`` -> ``""``;
    a path with no ``repro`` component -> ``""`` (scoped passes skip
    such files).
    """
    canon = canonical_path(path)
    parts = canon.split("/")
    if parts[0] == "repro" and len(parts) > 2:
        return parts[1]
    return ""


@dataclass
class Finding:
    """One analysis finding, pointing at a source location."""

    pass_name: str
    rule: str
    path: str
    line: int
    col: int
    message: str
    severity: str = SEVERITY_ERROR
    fingerprint: str = ""
    baselined: bool = False

    def __str__(self) -> str:
        tag = "" if self.severity == SEVERITY_ERROR \
            else f" ({self.severity})"
        base = "" if not self.baselined else " [baselined]"
        return (f"{self.path}:{self.line}:{self.col}: "
                f"[{self.pass_name}/{self.rule}]{tag} "
                f"{self.message}{base}")

    def to_doc(self) -> Dict[str, object]:
        return {
            "pass": self.pass_name, "rule": self.rule, "path": self.path,
            "line": self.line, "col": self.col, "message": self.message,
            "severity": self.severity, "fingerprint": self.fingerprint,
            "baselined": self.baselined,
        }

    @staticmethod
    def from_doc(doc: Dict[str, object]) -> "Finding":
        return Finding(
            pass_name=str(doc["pass"]), rule=str(doc["rule"]),
            path=str(doc["path"]), line=int(doc["line"]),  # type: ignore
            col=int(doc["col"]), message=str(doc["message"]),  # type: ignore
            severity=str(doc.get("severity", SEVERITY_ERROR)),
            fingerprint=str(doc.get("fingerprint", "")),
            baselined=bool(doc.get("baselined", False)),
        )


class SourceFile:
    """One analyzed module: text, split lines, and the parsed tree.

    Parsing happens exactly once per file per analysis run, whatever
    the number of passes.  A file that fails to parse keeps ``tree =
    None`` and records the error; the driver turns that into a
    ``parse-error`` finding instead of aborting the run.
    """

    __slots__ = ("path", "canonical", "package", "text", "lines", "tree",
                 "parse_error")

    def __init__(self, path: Union[str, Path], text: str) -> None:
        self.path = str(path)
        self.canonical = canonical_path(path)
        self.package = package_of(path)
        self.text = text
        self.lines: List[str] = text.splitlines()
        self.tree: Optional[ast.AST] = None
        self.parse_error: Optional[str] = None
        try:
            self.tree = ast.parse(text, filename=self.path)
        except SyntaxError as err:
            self.parse_error = f"{err.msg} (line {err.lineno})"

    def line_text(self, line: int) -> str:
        if 1 <= line <= len(self.lines):
            return self.lines[line - 1]
        return ""


@dataclass
class PassContext:
    """Everything a pass may need beyond the file list."""

    files: List[SourceFile]
    #: directory holding committed data files (state manifest); passes
    #: must treat it as read-only — updates go through the CLI flags.
    data_dir: Path = field(default_factory=lambda: Path(__file__).parent)
    #: overrides for data files (tests point these at tmp copies)
    manifest_path: Optional[Path] = None

    def by_canonical(self, suffix: str) -> Optional[SourceFile]:
        """The analyzed file whose canonical path ends with ``suffix``."""
        for file in self.files:
            if file.canonical.endswith(suffix):
                return file
        return None


class AnalysisPass:
    """Base class: a named pass with a registry of rules it can emit."""

    #: short machine name, e.g. ``wakeup-contract``
    name: str = ""
    #: one-line human description (shown in reports/docs)
    description: str = ""
    #: rule name -> one-line invariant statement
    rules: Dict[str, str] = {}

    def run(self, ctx: PassContext) -> List[Finding]:
        raise NotImplementedError

    # -- emission helper -------------------------------------------------

    def finding(self, file: SourceFile, node: Optional[ast.AST], rule: str,
                message: str,
                severity: str = SEVERITY_ERROR) -> Finding:
        assert rule in self.rules, f"pass {self.name} has no rule {rule}"
        line = getattr(node, "lineno", 0) if node is not None else 0
        col = getattr(node, "col_offset", 0) if node is not None else 0
        return Finding(self.name, rule, file.path, line, col, message,
                       severity)


def discover(paths: Iterable[Union[str, Path]]) -> List[Path]:
    """Every ``.py`` file under the given files/directories, sorted."""
    files: List[Path] = []
    for path in paths:
        path = Path(path)
        if path.is_dir():
            files.extend(sorted(path.rglob("*.py")))
        else:
            files.append(path)
    return files


def load_sources(paths: Iterable[Union[str, Path]]) -> List[SourceFile]:
    return [SourceFile(file, Path(file).read_text())
            for file in discover(paths)]


def assign_fingerprints(findings: Sequence[Finding],
                        files: Sequence[SourceFile]) -> None:
    """Stamp every finding with its stable fingerprint (in place)."""
    by_path = {file.path: file for file in files}
    counters: Dict[tuple, int] = {}
    ordered = sorted(findings, key=lambda f: (f.path, f.line, f.col,
                                              f.pass_name, f.rule))
    for finding in ordered:
        file = by_path.get(finding.path)
        canon = file.canonical if file is not None \
            else canonical_path(finding.path)
        text = file.line_text(finding.line).strip() if file is not None \
            else ""
        key = (canon, finding.pass_name, finding.rule, text)
        occurrence = counters.get(key, 0)
        counters[key] = occurrence + 1
        payload = "::".join((canon, finding.pass_name, finding.rule, text,
                             str(occurrence)))
        digest = hashlib.sha256(payload.encode("utf-8")).hexdigest()
        finding.fingerprint = digest[:16]


def dotted(node: ast.AST) -> Optional[str]:
    """``a.b.c`` attribute path of a Name/Attribute chain, or None."""
    parts: List[str] = []
    while isinstance(node, ast.Attribute):
        parts.append(node.attr)
        node = node.value
    if isinstance(node, ast.Name):
        parts.append(node.id)
        return ".".join(reversed(parts))
    return None
