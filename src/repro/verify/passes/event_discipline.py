"""event-discipline: time moves only through the EventQueue.

Two invariants keep chaos runs bit-reproducible and checkpointable:

* ``direct-cycle-write`` — simulated time (``EventQueue.now``,
  ``System.cycles``, ``Core.cycle``) is advanced by the run loops and
  the queue itself, nowhere else.  Any other assignment teleports a
  component through time relative to the event heap — the failure mode
  the deadlock watchdog can only catch long after the fact.
* ``unscheduled-chaos-mutation`` — every fault the chaos engine injects
  (forced evictions, write-buffer spikes, crash/stall/alloc faults)
  must fire from an ``EventQueue``-scheduled callback or a registered
  memory-system hook, never synchronously from arbitrary code.  A
  mutation outside the event stream has no deterministic position in
  the cycle-accurate interleaving (and never lands in a checkpoint's
  pending-event heap), so the same seed stops reproducing the same run.

Coverage for the chaos rule mirrors the wakeup pass: a function is
disciplined if its bound-method name is handed to ``schedule``/
``schedule_after`` anywhere in the chaos package, if it is one of the
registered hooks (``message_jitter``/``nack_delay`` are *invoked by*
the memory system inside the event stream), or if every caller is
disciplined (``install`` and ``__init__`` run before cycle zero).
"""

from __future__ import annotations

import ast
from typing import List, Set

from repro.verify.passes.base import (AnalysisPass, Finding, PassContext,
                                      SourceFile, dotted)
from repro.verify.passes.callgraph import CallGraph

#: attributes that *are* simulated time
CYCLE_ATTRS = {"now", "cycles", "cycle"}

#: the queue itself owns .now
CYCLE_OWNER_SUFFIX = "common/events.py"

#: functions allowed to write time: the run loops assign the cycle they
#: are executing, __init__ establishes cycle zero
CYCLE_WRITER_FUNCS = {"__init__", "run", "run_ticked", "run_reference",
                      "tick", "tick_reference", "_run_single", "_run_multi"}

CYCLE_SCOPED_PACKAGES = {"core", "mem", "pinning", "security", "sim",
                         "chaos", "common"}

SCHEDULE_CALLS = {"schedule", "schedule_after"}

#: hooks the memory system invokes from inside the event stream
CHAOS_HOOKS = {"message_jitter", "nack_delay"}

#: chaos functions that run before cycle zero
CHAOS_SETUP_FUNCS = {"install", "__init__"}

#: attribute chains through these names reach live system state
SYSTEM_CHAIN_NAMES = {"system", "mem", "network", "cores", "write_buffer",
                      "l1s", "slices", "ports", "events"}

#: method calls that mutate live system state
SYSTEM_MUTATOR_CALLS = {"_evict_l1", "invalidate", "send",
                        "on_line_evicted", "bump"}


def _attr_chain_names(node: ast.AST) -> Set[str]:
    """Attribute names along a target chain (the root local variable is
    deliberately excluded: a *local* dict that happens to be called
    ``cores`` is not live system state)."""
    names: Set[str] = set()
    while True:
        if isinstance(node, ast.Attribute):
            names.add(node.attr)
            node = node.value
        elif isinstance(node, ast.Subscript):
            node = node.value
        else:
            return names


class EventDisciplinePass(AnalysisPass):
    name = "event-discipline"
    description = ("simulated time advances only through the run loops "
                   "and EventQueue; chaos faults fire only from "
                   "scheduled events or registered hooks")
    rules = {
        "direct-cycle-write": "only the run loops and the EventQueue "
                              "may assign simulated time",
        "unscheduled-chaos-mutation": "chaos fault injection must run "
                                      "from EventQueue-scheduled "
                                      "callbacks or registered hooks",
    }

    def run(self, ctx: PassContext) -> List[Finding]:
        findings: List[Finding] = []
        chaos_files = []
        cycle_files = []
        for file in ctx.files:
            if file.tree is None:
                continue
            if file.package in CYCLE_SCOPED_PACKAGES:
                cycle_files.append(file)
            if file.package == "chaos":
                chaos_files.append(file)
        for file in cycle_files:
            findings.extend(self._check_cycle_writes(file))
        if chaos_files:
            findings.extend(self._check_chaos(chaos_files))
        return findings

    # -- direct cycle manipulation ----------------------------------------

    def _check_cycle_writes(self, file: SourceFile) -> List[Finding]:
        if file.canonical.endswith(CYCLE_OWNER_SUFFIX):
            return []
        findings: List[Finding] = []
        graph = CallGraph([file])
        assert file.tree is not None
        for node in ast.walk(file.tree):
            if not isinstance(node, (ast.Assign, ast.AugAssign)):
                continue
            targets = node.targets if isinstance(node, ast.Assign) \
                else [node.target]
            for target in targets:
                if not (isinstance(target, ast.Attribute)
                        and target.attr in CYCLE_ATTRS):
                    continue
                owner = graph.owner_of(node)
                if owner is not None \
                        and owner.name in CYCLE_WRITER_FUNCS:
                    continue
                where = owner.name + "()" if owner is not None \
                    else "module level"
                findings.append(self.finding(
                    file, node, "direct-cycle-write",
                    f"assignment to .{target.attr} in {where} "
                    f"manipulates simulated time outside the run "
                    f"loops; schedule an event instead"))
        return findings

    # -- chaos mutations must be event-scheduled ----------------------------

    def _check_chaos(self, files: List[SourceFile]) -> List[Finding]:
        graph = CallGraph(files)
        scheduled: Set[str] = set()
        for file in files:
            assert file.tree is not None
            for node in ast.walk(file.tree):
                if isinstance(node, ast.Call) \
                        and isinstance(node.func, ast.Attribute) \
                        and node.func.attr in SCHEDULE_CALLS:
                    for arg in list(node.args) \
                            + [kw.value for kw in node.keywords]:
                        if isinstance(arg, ast.Attribute):
                            scheduled.add(arg.attr)
                        elif isinstance(arg, ast.Name):
                            scheduled.add(arg.id)
        disciplined = graph.covered_names(
            scheduled | CHAOS_HOOKS, CHAOS_SETUP_FUNCS)
        findings: List[Finding] = []
        for file in files:
            for node, what in self._mutation_sites(file):
                owner = graph.owner_of(node)
                if owner is None or owner.name in disciplined:
                    continue
                findings.append(self.finding(
                    file, node, "unscheduled-chaos-mutation",
                    f"{what} in {owner.name}() mutates live system "
                    f"state, but {owner.name} is never scheduled on "
                    f"the EventQueue (nor reached only from scheduled "
                    f"callbacks/hooks); the fault has no deterministic "
                    f"position in the run"))
        return findings

    @staticmethod
    def _mutation_sites(file: SourceFile):
        sites = []
        assert file.tree is not None
        for node in ast.walk(file.tree):
            if isinstance(node, (ast.Assign, ast.AugAssign)):
                targets = node.targets if isinstance(node, ast.Assign) \
                    else [node.target]
                for target in targets:
                    if isinstance(target, (ast.Attribute, ast.Subscript)) \
                            and _attr_chain_names(target) \
                            & SYSTEM_CHAIN_NAMES:
                        sites.append(
                            (node,
                             f"assignment to "
                             f"{ast.unparse(target)}"))
            elif isinstance(node, ast.Call) \
                    and isinstance(node.func, ast.Attribute) \
                    and node.func.attr in SYSTEM_MUTATOR_CALLS:
                sites.append((node, f"{node.func.attr}(...) call"))
        return sites
