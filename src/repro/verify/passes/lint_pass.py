"""The historical determinism/idiom lint, as a framework pass.

``repro verify lint`` remains a compatible standalone entry point; under
``repro verify analyze`` the same rules run through the shared driver so
their waivers are audited and their findings are baselinable like any
other pass's.
"""

from __future__ import annotations

from typing import List

from repro.verify import lint as lint_mod
from repro.verify.passes.base import (AnalysisPass, Finding, PassContext)


class LintPass(AnalysisPass):
    name = "lint"
    description = ("determinism and idiom lint: wall-clock reads, global "
                   "RNG draws, unordered set iteration, implicit "
                   "Optional, slot-less hot-path classes")
    rules = dict(lint_mod.RULES)

    def run(self, ctx: PassContext) -> List[Finding]:
        # the known-set registry spans all analyzed files, exactly as
        # lint_paths builds it
        registry = lint_mod._SetRegistry()
        for file in ctx.files:
            if file.tree is not None:
                registry.scan(file.tree)
        findings: List[Finding] = []
        for file in ctx.files:
            if file.tree is None:
                continue
            for raw in lint_mod.lint_source_raw(
                    file.text, file.path, registry, tree=file.tree):
                findings.append(Finding(self.name, raw.rule, raw.path,
                                        raw.line, raw.col, raw.message))
        return findings
