"""Unified ``# repro: allow-<rule>`` waiver handling.

One implementation shared by every pass (and by the standalone lint
entry point): a trailing ``# repro: allow-<rule>`` comment waives that
rule's findings *on that line only*.  The driver additionally audits
the waivers themselves:

* a waiver naming a rule no pass defines is an **error**
  (``unknown-waiver``) — it is dead weight that would silently fail to
  suppress anything if the rule were ever added under a different name;
* a waiver whose rule *is* known but which matched no finding on its
  line is a **warning** (``stale-waiver``) — the violation it excused
  is gone and the waiver should be deleted.

Both audit findings belong to the synthetic pass name ``waivers``.
"""

from __future__ import annotations

import io
import re
import tokenize
from dataclasses import dataclass
from typing import Dict, List, Sequence, Set, Tuple

from repro.verify.passes.base import (Finding, SEVERITY_ERROR,
                                      SEVERITY_WARNING, SourceFile)

WAIVER_RE = re.compile(r"#\s*repro:\s*allow-([A-Za-z0-9][A-Za-z0-9_-]*)")

#: rules the waiver audit itself can emit
WAIVER_RULES = {
    "unknown-waiver": "a waiver must name a rule some pass defines",
    "stale-waiver": "a waiver must suppress at least one finding",
}

WAIVER_PASS_NAME = "waivers"


@dataclass(frozen=True)
class Waiver:
    path: str
    line: int
    rule: str


def scan_waivers(file: SourceFile) -> List[Waiver]:
    """All waiver comments in ``file``, one per ``allow-`` mention.

    Tokenizes so only actual ``#`` comments count: a docstring that
    *documents* the waiver syntax (this one included) is not a waiver
    and must not be audited as stale.
    """
    waivers = []
    try:
        tokens = list(tokenize.generate_tokens(
            io.StringIO(file.text).readline))
    except (tokenize.TokenError, SyntaxError, IndentationError):
        return []
    for token in tokens:
        if token.type != tokenize.COMMENT:
            continue
        for match in WAIVER_RE.finditer(token.string):
            waivers.append(Waiver(file.path, token.start[0],
                                  match.group(1)))
    return waivers


def is_waived(finding: Finding, lines: Sequence[str]) -> bool:
    """Line-local check used by the standalone lint entry point."""
    if not 1 <= finding.line <= len(lines):
        return False
    text = lines[finding.line - 1]
    return any(match.group(1) == finding.rule
               for match in WAIVER_RE.finditer(text))


def apply_waivers(
    findings: Sequence[Finding],
    files: Sequence[SourceFile],
    known_rules: Set[str],
    audited_rules: Set[str],
) -> Tuple[List[Finding], List[Finding], List[Finding]]:
    """Split findings into (kept, waived) and audit the waivers.

    ``known_rules`` is every rule any registered pass can emit (waivers
    for rules outside it are ``unknown-waiver`` errors); ``audited_rules``
    is the subset belonging to passes that actually *ran* — staleness is
    only judged for those, so analyzing with ``--passes`` subsets never
    mislabels a waiver for a skipped pass as stale.
    """
    waivers_by_site: Dict[Tuple[str, int, str], Waiver] = {}
    for file in files:
        for waiver in scan_waivers(file):
            waivers_by_site[(waiver.path, waiver.line, waiver.rule)] = waiver
    used: Set[Tuple[str, int, str]] = set()
    kept: List[Finding] = []
    waived: List[Finding] = []
    for finding in findings:
        site = (finding.path, finding.line, finding.rule)
        if site in waivers_by_site:
            used.add(site)
            waived.append(finding)
        else:
            kept.append(finding)
    meta: List[Finding] = []
    for site, waiver in sorted(waivers_by_site.items()):
        if waiver.rule not in known_rules:
            meta.append(Finding(
                WAIVER_PASS_NAME, "unknown-waiver", waiver.path,
                waiver.line, 0,
                f"waiver 'allow-{waiver.rule}' names a rule no analysis "
                f"pass defines", SEVERITY_ERROR))
        elif site not in used and waiver.rule in audited_rules:
            meta.append(Finding(
                WAIVER_PASS_NAME, "stale-waiver", waiver.path, waiver.line,
                0,
                f"waiver 'allow-{waiver.rule}' suppresses nothing on this "
                f"line; delete it", SEVERITY_WARNING))
    return kept, waived, meta
