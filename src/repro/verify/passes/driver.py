"""Driver for the multi-pass static analysis (``repro verify analyze``).

Owns everything the passes share: file discovery, parse-once sources,
running each registered pass, unified waiver application (including the
waiver audit), baseline subtraction, and the JSON report.

Baselines
---------
``baseline.json`` (committed next to this module, overridable with
``--baseline``) lists fingerprints of *accepted* findings.  Analysis
reports them as ``baselined`` — they never fail the run — so a new
violation fails CI while the debt already triaged does not.  Update it
with ``repro verify analyze --update-baseline`` after deliberate
review; baseline entries whose finding no longer exists are summarized
as ``stale_baseline`` (prune them on the next update).
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Dict, Iterable, List, Optional, Sequence, Union

from repro.verify.passes.base import (AnalysisPass, Finding, PassContext,
                                      SEVERITY_ERROR, SEVERITY_WARNING,
                                      SourceFile, assign_fingerprints,
                                      load_sources)
from repro.verify.passes.checkpoint_state import CheckpointSafetyPass
from repro.verify.passes.determinism import DeterminismPass
from repro.verify.passes.event_discipline import EventDisciplinePass
from repro.verify.passes.lint_pass import LintPass
from repro.verify.passes.service_contracts import ServiceTaxonomyPass
from repro.verify.passes.waivers import (WAIVER_PASS_NAME, WAIVER_RULES,
                                         apply_waivers)
from repro.verify.passes.wakeup import WakeupContractPass

BASELINE_FILENAME = "baseline.json"
REPORT_VERSION = 1

#: registration order is presentation order
ALL_PASSES = (LintPass, WakeupContractPass, CheckpointSafetyPass,
              DeterminismPass, ServiceTaxonomyPass, EventDisciplinePass)

#: synthetic driver-level findings
DRIVER_RULES = {"parse-error": "every analyzed file must parse"}


def registered_rules() -> Dict[str, str]:
    """Every rule any pass (or the driver/waiver audit) can emit."""
    rules: Dict[str, str] = dict(DRIVER_RULES)
    rules.update(WAIVER_RULES)
    for pass_cls in ALL_PASSES:
        rules.update(pass_cls.rules)
    return rules


class Report:
    """Analysis outcome: findings plus enough context to act on them."""

    __slots__ = ("paths", "passes", "findings", "waived", "files",
                 "stale_baseline")

    def __init__(self, paths: List[str], passes: List[str],
                 findings: List[Finding], waived: int, files: int,
                 stale_baseline: int) -> None:
        self.paths = paths
        self.passes = passes
        self.findings = findings
        self.waived = waived
        self.files = files
        self.stale_baseline = stale_baseline

    # -- verdicts ---------------------------------------------------------

    @property
    def errors(self) -> List[Finding]:
        return [f for f in self.findings
                if f.severity == SEVERITY_ERROR and not f.baselined]

    @property
    def warnings(self) -> List[Finding]:
        return [f for f in self.findings
                if f.severity == SEVERITY_WARNING and not f.baselined]

    @property
    def clean(self) -> bool:
        return not self.errors

    # -- serialization ------------------------------------------------------

    def to_doc(self) -> Dict[str, object]:
        return {
            "version": REPORT_VERSION,
            "tool": "repro verify analyze",
            "paths": self.paths,
            "passes": self.passes,
            "findings": [f.to_doc() for f in self.findings],
            "summary": {
                "errors": len(self.errors),
                "warnings": len(self.warnings),
                "baselined": sum(1 for f in self.findings if f.baselined),
                "waived": self.waived,
                "files": self.files,
                "stale_baseline": self.stale_baseline,
            },
        }

    @staticmethod
    def from_doc(doc: Dict[str, object]) -> "Report":
        findings = [Finding.from_doc(d)
                    for d in doc.get("findings", [])]  # type: ignore
        summary = doc.get("summary", {})
        return Report(
            paths=list(doc.get("paths", [])),  # type: ignore
            passes=list(doc.get("passes", [])),  # type: ignore
            findings=findings,
            waived=int(summary.get("waived", 0)),  # type: ignore
            files=int(summary.get("files", 0)),  # type: ignore
            stale_baseline=int(
                summary.get("stale_baseline", 0)),  # type: ignore
        )

    def render_text(self) -> str:
        lines = [str(f) for f in self.findings]
        lines.append(
            f"{len(self.errors)} error(s), {len(self.warnings)} "
            f"warning(s) in {self.files} file(s) "
            f"({sum(1 for f in self.findings if f.baselined)} baselined, "
            f"{self.waived} waived, {self.stale_baseline} stale "
            f"baseline entries)")
        lines.append(f"passes: {', '.join(self.passes)}")
        return "\n".join(lines)


def default_baseline_path() -> Path:
    return Path(__file__).parent / BASELINE_FILENAME


def load_baseline(path: Union[str, Path]) -> List[Dict[str, object]]:
    path = Path(path)
    if not path.exists():
        return []
    doc = json.loads(path.read_text())
    return list(doc.get("findings", []))


def write_baseline(findings: Sequence[Finding],
                   path: Union[str, Path]) -> None:
    entries = [{"fingerprint": f.fingerprint, "rule": f.rule,
                "path": f.path, "line": f.line}
               for f in sorted(findings,
                               key=lambda f: (f.path, f.line, f.rule))]
    doc = {"version": 1, "findings": entries}
    Path(path).write_text(json.dumps(doc, indent=2) + "\n")


def _make_passes(only: Optional[Sequence[str]]) -> List[AnalysisPass]:
    passes = [pass_cls() for pass_cls in ALL_PASSES]
    if only is None:
        return passes
    unknown = set(only) - {p.name for p in passes}
    if unknown:
        raise ValueError(f"unknown pass(es): {', '.join(sorted(unknown))}")
    return [p for p in passes if p.name in only]


def analyze_sources(files: List[SourceFile],
                    passes: Optional[Sequence[str]] = None,
                    baseline_path: Optional[Union[str, Path]] = None,
                    manifest_path: Optional[Union[str, Path]] = None,
                    paths: Optional[List[str]] = None) -> Report:
    """Run the framework over already-loaded sources."""
    active = _make_passes(passes)
    ctx = PassContext(files=files)
    if manifest_path is not None:
        ctx.manifest_path = Path(manifest_path)
    findings: List[Finding] = []
    for file in files:
        if file.parse_error is not None:
            findings.append(Finding(
                "driver", "parse-error", file.path, 0, 0,
                f"file does not parse: {file.parse_error}"))
    for analysis_pass in active:
        findings.extend(analysis_pass.run(ctx))
    audited = set()
    for analysis_pass in active:
        audited.update(analysis_pass.rules)
    kept, waived, meta = apply_waivers(
        findings, files, set(registered_rules()), audited)
    findings = kept + meta
    assign_fingerprints(findings, files)
    baseline = load_baseline(baseline_path if baseline_path is not None
                             else default_baseline_path())
    accepted = {str(entry.get("fingerprint", "")) for entry in baseline}
    present = set()
    for finding in findings:
        if finding.fingerprint in accepted:
            finding.baselined = True
            present.add(finding.fingerprint)
    stale_baseline = len(accepted - present - {""})
    findings.sort(key=lambda f: (f.path, f.line, f.col, f.pass_name,
                                 f.rule))
    return Report(
        paths=[str(p) for p in (paths or [])],
        passes=[p.name for p in active] + [WAIVER_PASS_NAME],
        findings=findings,
        waived=len(waived),
        files=len(files),
        stale_baseline=stale_baseline,
    )


def analyze_paths(paths: Iterable[Union[str, Path]],
                  passes: Optional[Sequence[str]] = None,
                  baseline_path: Optional[Union[str, Path]] = None,
                  manifest_path: Optional[Union[str, Path]] = None
                  ) -> Report:
    """Discover, parse, and analyze every ``.py`` file under ``paths``."""
    path_list = [str(p) for p in paths]
    return analyze_sources(load_sources(path_list), passes=passes,
                           baseline_path=baseline_path,
                           manifest_path=manifest_path, paths=path_list)
