"""checkpoint-safety: the pickled state shape is a versioned contract.

A checkpoint is the pickled ``System`` object graph (``repro.sim.
checkpoint``), and crash-tolerant resume is only bit-identical if that
graph (a) round-trips through pickle and (b) means the same thing to
the simulator that wrote it.  Three static rules guard (a):

* ``checkpoint-slots`` — classes in checkpointed packages that the
  hot-path lint does not already cover (``isa``, ``common``, ``chaos``)
  must declare ``__slots__``: a stray ``__dict__`` is where untracked,
  unversioned state sneaks into checkpoints.
* ``pickle-unsafe-slot`` — a slot whose name says it holds an OS
  resource (lock/thread/socket/fd/file handle/pipe) cannot survive a
  pickle round trip; keep such handles off checkpointed objects.
* ``checkpoint-lambda`` — lambdas handed to ``EventQueue.schedule`` /
  ``schedule_after`` land in the pickled event heap and pickle refuses
  them at checkpoint time, long after the scheduling site; callbacks
  must be bound methods or module-level functions.

Rule (b) is ``checkpoint-manifest``: a committed manifest
(``state_manifest.json``) records a hash of every checkpointed class's
``__slots__`` layout together with the ``CHECKPOINT_FORMAT_VERSION`` it
was generated for.  Since format 3, classes that serialize through a
custom shape (``__getstate__``/``__setstate__``/``__reduce__`` — the
array-backed snapshots of ``repro.mem.cache.CacheArray`` and friends)
additionally contribute a hash of those method bodies, so editing a
snapshot layout is a manifest change even when ``__slots__`` is
untouched.  Changing the state shape without bumping the version is a
static error — exactly the failure the version field exists to make
loud (resuming an old checkpoint into a new layout).  Regenerate after
a legitimate bump with ``repro verify analyze --update-manifest``.
"""

from __future__ import annotations

import ast
import hashlib
import json
from pathlib import Path
from typing import Dict, Iterable, List, Optional

from repro.verify.lint import HOT_PATH_PACKAGES, _Linter
from repro.verify.passes.base import (AnalysisPass, Finding, PassContext,
                                      SourceFile)

#: packages whose objects can appear in a pickled System graph
CHECKPOINTED_PACKAGES = {"core", "mem", "pinning", "security", "isa",
                         "common", "chaos"}

#: slot-name tokens that denote unpicklable OS resources
UNPICKLABLE_TOKENS = {"lock", "thread", "socket", "sock", "fd", "fh",
                      "file", "pipe", "conn", "process"}

#: call names whose callable arguments end up in pickled state
SCHEDULE_CALLS = {"schedule", "schedule_after"}

MANIFEST_FILENAME = "state_manifest.json"
VERSION_CONSTANT = "CHECKPOINT_FORMAT_VERSION"
CHECKPOINT_MODULE_SUFFIX = "sim/checkpoint.py"


def _static_slots(node: ast.ClassDef) -> Optional[List[str]]:
    """The class's ``__slots__`` as a list of names, or None if absent
    or not statically readable."""
    for stmt in node.body:
        if isinstance(stmt, ast.Assign):
            targets = stmt.targets
            value = stmt.value
        elif isinstance(stmt, ast.AnnAssign):
            targets = [stmt.target]
            value = stmt.value
        else:
            continue
        for target in targets:
            if isinstance(target, ast.Name) and target.id == "__slots__":
                if isinstance(value, (ast.Tuple, ast.List, ast.Set)):
                    names = []
                    for element in value.elts:
                        if isinstance(element, ast.Constant) \
                                and isinstance(element.value, str):
                            names.append(element.value)
                    return names
                if isinstance(value, ast.Constant) \
                        and isinstance(value.value, str):
                    return [value.value]
                return []
    return None


#: methods that define a class's serialized shape independently of its
#: ``__slots__`` (the format-3 array-backed snapshots live here)
STATE_SHAPE_METHODS = {"__getstate__", "__setstate__",
                       "__reduce__", "__reduce_ex__"}


def _state_shape_hash(node: ast.ClassDef) -> Optional[str]:
    """Hash of the class's custom pickle-shape methods, or ``None`` if
    it pickles by plain slot layout."""
    methods = sorted(
        (stmt for stmt in node.body
         if isinstance(stmt, ast.FunctionDef)
         and stmt.name in STATE_SHAPE_METHODS),
        key=lambda stmt: stmt.name)
    if not methods:
        return None
    payload = "\n".join(ast.dump(m) for m in methods).encode("utf-8")
    return hashlib.sha256(payload).hexdigest()[:16]


def collect_manifest_classes(
        files: Iterable[SourceFile]) -> Dict[str, Dict[str, object]]:
    """``{canonical module: {class: shape}}`` for every class with a
    statically readable ``__slots__`` in a checkpointed package.  The
    shape is the slot list, or — for classes with custom pickle-shape
    methods — ``{"slots": [...], "state_shape": <hash>}``."""
    classes: Dict[str, Dict[str, object]] = {}
    for file in files:
        if file.package not in CHECKPOINTED_PACKAGES or file.tree is None:
            continue
        for node in ast.walk(file.tree):
            if not isinstance(node, ast.ClassDef):
                continue
            slots = _static_slots(node)
            if slots is None:
                continue
            shape_hash = _state_shape_hash(node)
            shape: object = slots if shape_hash is None \
                else {"slots": slots, "state_shape": shape_hash}
            classes.setdefault(file.canonical, {})[node.name] = shape
    return classes


def manifest_hash(classes: Dict[str, Dict[str, object]]) -> str:
    payload = json.dumps(classes, sort_keys=True).encode("utf-8")
    return hashlib.sha256(payload).hexdigest()[:16]


def _declared_version(file: SourceFile) -> Optional[int]:
    """AST-read ``CHECKPOINT_FORMAT_VERSION`` from checkpoint.py."""
    if file.tree is None:
        return None
    for node in ast.walk(file.tree):
        if isinstance(node, ast.Assign) \
                and any(isinstance(t, ast.Name)
                        and t.id == VERSION_CONSTANT
                        for t in node.targets) \
                and isinstance(node.value, ast.Constant) \
                and isinstance(node.value.value, int):
            return node.value.value
    return None


def _version_node(file: SourceFile) -> Optional[ast.AST]:
    if file.tree is None:
        return None
    for node in ast.walk(file.tree):
        if isinstance(node, ast.Assign) \
                and any(isinstance(t, ast.Name)
                        and t.id == VERSION_CONSTANT
                        for t in node.targets):
            return node
    return None


def write_manifest(files: Iterable[SourceFile], path: Path) -> Dict:
    """Regenerate the committed manifest (CLI ``--update-manifest``)."""
    files = list(files)
    classes = collect_manifest_classes(files)
    version = None
    for file in files:
        if file.canonical.endswith(CHECKPOINT_MODULE_SUFFIX):
            version = _declared_version(file)
    doc = {"checkpoint_format_version": version,
           "hash": manifest_hash(classes), "classes": classes}
    path.write_text(json.dumps(doc, indent=2, sort_keys=True) + "\n")
    return doc


class CheckpointSafetyPass(AnalysisPass):
    name = "checkpoint-safety"
    description = ("checkpointed classes declare __slots__, keep OS "
                   "resources and lambdas out of pickled state, and any "
                   "state-shape change bumps CHECKPOINT_FORMAT_VERSION")
    rules = {
        "checkpoint-slots": "checkpointed classes must declare "
                            "__slots__ so no unversioned state hides in "
                            "an instance __dict__",
        "pickle-unsafe-slot": "slots must not hold OS resources "
                              "(locks, threads, sockets, file handles)",
        "checkpoint-lambda": "EventQueue callbacks must be picklable "
                             "(bound methods, not lambdas)",
        "checkpoint-manifest": "changing checkpointed state shape "
                               "requires bumping "
                               "CHECKPOINT_FORMAT_VERSION and "
                               "regenerating the manifest",
    }

    def run(self, ctx: PassContext) -> List[Finding]:
        findings: List[Finding] = []
        scoped = [f for f in ctx.files
                  if f.package in CHECKPOINTED_PACKAGES
                  and f.tree is not None]
        for file in scoped:
            findings.extend(self._check_file(file))
        findings.extend(self._check_manifest(ctx))
        return findings

    def _check_file(self, file: SourceFile) -> List[Finding]:
        findings: List[Finding] = []
        # hot-path packages already get slot findings from the lint
        # pass; only extend the requirement to the remaining
        # checkpointed packages so one class never yields two findings
        slots_scope = file.package not in HOT_PATH_PACKAGES
        assert file.tree is not None
        for node in ast.walk(file.tree):
            if isinstance(node, ast.ClassDef):
                slots = _static_slots(node)
                if slots is None and slots_scope \
                        and not node.decorator_list \
                        and not _Linter._slots_exempt(node):
                    findings.append(self.finding(
                        file, node, "checkpoint-slots",
                        f"class {node.name} can reach a pickled System "
                        f"graph ({file.package}/ package) but declares "
                        f"no __slots__; its __dict__ would carry "
                        f"unversioned checkpoint state"))
                for slot in slots or []:
                    tokens = set(slot.lstrip("_").lower().split("_"))
                    bad = tokens & UNPICKLABLE_TOKENS
                    if bad:
                        findings.append(self.finding(
                            file, node, "pickle-unsafe-slot",
                            f"slot {node.name}.{slot} looks like an OS "
                            f"resource ({', '.join(sorted(bad))}); it "
                            f"cannot survive a checkpoint pickle"))
            elif isinstance(node, ast.Call) \
                    and isinstance(node.func, ast.Attribute) \
                    and node.func.attr in SCHEDULE_CALLS:
                for arg in list(node.args) \
                        + [kw.value for kw in node.keywords]:
                    if isinstance(arg, ast.Lambda):
                        findings.append(self.finding(
                            file, arg, "checkpoint-lambda",
                            f"lambda passed to {node.func.attr}() lands "
                            f"in the pickled event heap and breaks "
                            f"save_checkpoint; use a bound method"))
        return findings

    def _check_manifest(self, ctx: PassContext) -> List[Finding]:
        checkpoint_file = ctx.by_canonical(CHECKPOINT_MODULE_SUFFIX)
        if checkpoint_file is None:
            # partial analyses (single files, mutation self-tests) have
            # no version constant to check against
            return []
        version = _declared_version(checkpoint_file)
        node = _version_node(checkpoint_file)
        if version is None:
            return [self.finding(
                checkpoint_file, None, "checkpoint-manifest",
                f"{VERSION_CONSTANT} is missing or not a literal int in "
                f"{checkpoint_file.canonical}")]
        manifest_path = ctx.manifest_path \
            or ctx.data_dir / MANIFEST_FILENAME
        if not Path(manifest_path).exists():
            return [self.finding(
                checkpoint_file, node, "checkpoint-manifest",
                f"no committed state manifest at {manifest_path}; "
                f"generate it with 'repro verify analyze "
                f"--update-manifest'")]
        stored = json.loads(Path(manifest_path).read_text())
        classes = collect_manifest_classes(ctx.files)
        current_hash = manifest_hash(classes)
        if current_hash == stored.get("hash"):
            return []
        if version == stored.get("checkpoint_format_version"):
            changed = self._changed_classes(
                stored.get("classes", {}), classes)
            return [self.finding(
                checkpoint_file, node, "checkpoint-manifest",
                f"checkpointed state shape changed ({changed}) but "
                f"{VERSION_CONSTANT} is still {version}; bump it and "
                f"regenerate the manifest with --update-manifest")]
        return [self.finding(
            checkpoint_file, node, "checkpoint-manifest",
            f"{VERSION_CONSTANT} is {version} but the manifest was "
            f"generated for "
            f"{stored.get('checkpoint_format_version')}; regenerate it "
            f"with --update-manifest")]

    @staticmethod
    def _changed_classes(old: Dict, new: Dict) -> str:
        changed = []
        for module in sorted(set(old) | set(new)):
            old_mod = old.get(module, {})
            new_mod = new.get(module, {})
            for cls in sorted(set(old_mod) | set(new_mod)):
                if old_mod.get(cls) != new_mod.get(cls):
                    changed.append(f"{module}:{cls}")
        return ", ".join(changed[:8]) or "class set differs"
