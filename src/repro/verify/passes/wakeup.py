"""wakeup-contract: wake-relevant mutations must re-arm the dirty bit.

The event-driven fast-forward (``System.run`` skipping cycles a defended
core proves quiet via ``Core.quiet_until``) is sound only under one
contract: **every mutation that can change the next value-predictable
cycle — VP frontier membership, taint/root tracking, pin/CST/CPT state,
LQ/SQ allocation — must re-arm ``Core._wake_pending``**, either directly
or by running strictly under a caller that does.  A missed re-arm does
not fail loudly; it makes the core sleep through a wakeup and silently
diverges the defended run from ``run_reference`` (the bit-exact parity
the whole reproduction hangs on, see docs/performance.md).

This pass encodes the contract statically:

* *mutation sites* are assignments/calls touching a registry of
  wake-relevant attribute names and methods (below), in files under
  ``core/``, ``mem/``, ``pinning/`` and ``security/``;
* a function *re-arms* only if it assigns ``._wake_pending = True``
  itself (deliberately NOT "calls something that re-arms": such calls
  are usually conditional, and crediting them would have excused
  deleting the re-arm from every event callback in ``pipeline.py`` —
  the checker must catch its own seeded mutations to be worth running);
* a function is *covered* if it re-arms, is a conventional root
  (``__init__`` runs before the first tick; ``tick``/``tick_reference``
  mutations are observed by the cycle already being executed), or every
  caller is covered (least fixpoint; an uncalled function is NOT
  covered — event callbacks have no static callers and must re-arm
  themselves, which is exactly the bug class this pass hunts).

A mutation site in an uncovered function is a finding.  Intentional
exceptions carry ``# repro: allow-wakeup-rearm`` with a why-comment.
"""

from __future__ import annotations

import ast
from typing import List, Optional, Set

from repro.verify.passes.base import (AnalysisPass, Finding, PassContext,
                                      SourceFile)
from repro.verify.passes.callgraph import CallGraph, FunctionNode

#: packages whose files are subject to the contract
WAKE_SCOPED_PACKAGES = {"core", "mem", "pinning", "security"}

#: scalar attributes whose assignment can move a core's wake condition
#: (``_vp_candidates`` is the counter that gates the specialized VP walk
#: — it replaced the old ``_vp_frontier`` dict in checkpoint format 4)
WAKE_SCALAR_ATTRS = {"mcv_safe", "pinned", "vp_cycle", "parked",
                     "_vp_candidates"}

#: container attributes whose membership feeds quiet_until / the VP walk
WAKE_CONTAINER_ATTRS = {
    "unresolved_branches", "unknown_addr_stores",
    "unknown_addr_memops", "unretired_loads", "serializing",
    "_output_roots", "_live_lq", "_pinned_counts",
}

#: wake-relevant bits of the struct-of-arrays ``ColumnState.flags``
#: column: a read-modify-write store of one of these constants into a
#: subscripted column (``flags[slot] |= FLAG_VP_CAND``) moves the same
#: wake condition the scalar attribute spellings above do
WAKE_FLAG_CONSTANTS = {"FLAG_PINNED", "FLAG_MCV_SAFE", "FLAG_VP_CAND",
                       "FLAG_PARKED"}

#: method calls that mutate a container
CONTAINER_MUTATORS = {"add", "discard", "remove", "pop", "clear",
                      "insert", "append", "appendleft", "update",
                      "setdefault", "popleft"}

#: receiver attribute -> methods that mutate pin/CST/CPT/LSQ state
WAKE_OBJECT_METHODS = {
    "cpt": {"insert", "remove"},
    "l1_cst": {"try_pin", "cancel", "clear"},
    "dir_cst": {"try_pin", "cancel", "clear"},
    "lq": {"allocate", "release_head", "squash_younger_or_equal"},
    "sq": {"allocate", "release_head", "squash_younger_or_equal"},
}

#: function names covered by convention, not by re-arming:
#: ``__init__`` runs during construction (before any tick can sleep);
#: ``tick``/``tick_reference`` are the per-cycle entry points — any
#: state they move is observed by the very cycle executing them, and
#: ``Core.tick`` owns the flag's clear/handoff itself.
WAKE_EXEMPT_ROOTS = {"__init__", "tick", "tick_reference"}

WAKE_FLAG = "_wake_pending"


def _attr_of(node: ast.AST) -> Optional[str]:
    """Final attribute name of an attribute chain (``a.b.c`` -> ``c``)."""
    if isinstance(node, ast.Attribute):
        return node.attr
    return None


def _assigns_wake_flag_true(fn: FunctionNode) -> bool:
    for node in ast.walk(fn.node):
        if isinstance(node, ast.Assign):
            if any(_attr_of(t) == WAKE_FLAG for t in node.targets) \
                    and isinstance(node.value, ast.Constant) \
                    and node.value.value is True:
                return True
    return False


class _MutationSite:
    __slots__ = ("file", "node", "what")

    def __init__(self, file: SourceFile, node: ast.AST, what: str) -> None:
        self.file = file
        self.node = node
        self.what = what


def _container_target(node: ast.AST) -> Optional[str]:
    """Wake-registered container an expression refers to, if any."""
    if isinstance(node, ast.Attribute) \
            and node.attr in WAKE_CONTAINER_ATTRS:
        return node.attr
    return None


def _wake_flag_in(value: ast.AST) -> Optional[str]:
    """Wake-relevant FLAG_* constant referenced by an expression."""
    for sub in ast.walk(value):
        if isinstance(sub, ast.Name) and sub.id in WAKE_FLAG_CONSTANTS:
            return sub.id
    return None


def _collect_sites(file: SourceFile) -> List[_MutationSite]:
    sites: List[_MutationSite] = []
    assert file.tree is not None
    for node in ast.walk(file.tree):
        if isinstance(node, (ast.Assign, ast.AugAssign)):
            targets = node.targets if isinstance(node, ast.Assign) \
                else [node.target]
            for target in targets:
                attr = _attr_of(target)
                if attr in WAKE_SCALAR_ATTRS:
                    sites.append(_MutationSite(
                        file, node, f"assignment to .{attr}"))
                elif isinstance(target, ast.Subscript):
                    container = _container_target(target.value)
                    if container is not None:
                        sites.append(_MutationSite(
                            file, node,
                            f"item assignment into .{container}"))
                    elif isinstance(node, ast.AugAssign):
                        # flags[slot] |= FLAG_X / &= ~FLAG_X: the
                        # struct-of-arrays spelling of the scalar
                        # attribute stores above
                        flag = _wake_flag_in(node.value)
                        if flag is not None:
                            sites.append(_MutationSite(
                                file, node,
                                f"flag-column store of {flag}"))
        elif isinstance(node, ast.Delete):
            for target in node.targets:
                if isinstance(target, ast.Subscript):
                    container = _container_target(target.value)
                    if container is not None:
                        sites.append(_MutationSite(
                            file, node, f"deletion from .{container}"))
        elif isinstance(node, ast.Call) \
                and isinstance(node.func, ast.Attribute):
            method = node.func.attr
            receiver = node.func.value
            container = _container_target(receiver)
            if container is not None and method in CONTAINER_MUTATORS:
                sites.append(_MutationSite(
                    file, node, f".{container}.{method}(...)"))
                continue
            recv_attr = _attr_of(receiver)
            if recv_attr in WAKE_OBJECT_METHODS \
                    and method in WAKE_OBJECT_METHODS[recv_attr]:
                sites.append(_MutationSite(
                    file, node, f".{recv_attr}.{method}(...)"))
    return sites


class WakeupContractPass(AnalysisPass):
    name = "wakeup-contract"
    description = ("every mutation of wake-relevant state (VP frontier, "
                   "taint roots, pin/CST/CPT, LQ/SQ) must re-arm "
                   "Core._wake_pending or run under a caller that does")
    rules = {
        "wakeup-rearm": "wake-relevant mutations must (transitively) "
                        "re-arm Core._wake_pending",
    }

    def run(self, ctx: PassContext) -> List[Finding]:
        scoped = [f for f in ctx.files
                  if f.package in WAKE_SCOPED_PACKAGES
                  and f.tree is not None]
        if not scoped:
            return []
        # the call graph spans *all* analyzed files so that callers
        # outside the scoped packages (e.g. sim/system.py driving
        # core.tick) still count as coverage evidence
        graph = CallGraph(f for f in ctx.files if f.tree is not None)
        rearming: Set[str] = {
            name for name, nodes in graph.functions.items()
            if any(_assigns_wake_flag_true(fn) for fn in nodes)}
        covered = graph.covered_names(rearming, WAKE_EXEMPT_ROOTS)
        findings: List[Finding] = []
        for file in scoped:
            for site in _collect_sites(file):
                owner = graph.owner_of(site.node)
                if owner is None:
                    continue  # module level: import time, nothing sleeps
                if owner.name in covered:
                    continue
                findings.append(self.finding(
                    file, site.node, "wakeup-rearm",
                    f"{site.what} in {owner.name}() moves wake-relevant "
                    f"state, but {owner.name} neither re-arms "
                    f"Core._wake_pending nor runs only under callers "
                    f"that do; a skipped wakeup silently breaks "
                    f"run_reference parity"))
        return findings
