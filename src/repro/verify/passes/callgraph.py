"""Name-based call graph over the analyzed files.

The simulator's contracts are phrased per *function* ("every function
that moves wake-relevant state must re-arm the dirty bit, or only ever
run under a caller that does"), so the wakeup and event-discipline
passes need to know, for each function, which functions call it.

Resolution is deliberately name-based — a lint, not a type checker:
``controller.tick()`` is an edge to *every* function defined with the
bare name ``tick``.  Over-approximating the caller set makes
caller-coverage *optimistic* (a mutation is excused if some same-named
covered function could be the caller), which is the right bias for a
contract checker that must not drown real violations in false
positives.
"""

from __future__ import annotations

import ast
from typing import Dict, Iterable, List, Optional, Set

from repro.verify.passes.base import SourceFile


class FunctionNode:
    """One function/method definition and the bare names it calls."""

    __slots__ = ("name", "file", "node", "calls")

    def __init__(self, name: str, file: SourceFile,
                 node: ast.AST) -> None:
        self.name = name
        self.file = file
        self.node = node
        self.calls: Set[str] = set()

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"FunctionNode({self.file.canonical}:{self.name})"


def _called_name(call: ast.Call) -> Optional[str]:
    func = call.func
    if isinstance(func, ast.Attribute):
        return func.attr
    if isinstance(func, ast.Name):
        return func.id
    return None


class CallGraph:
    """Bare-name call graph plus the enclosing-function index."""

    def __init__(self, files: Iterable[SourceFile]) -> None:
        #: bare name -> every definition of that name
        self.functions: Dict[str, List[FunctionNode]] = {}
        #: callee bare name -> bare names of functions that call it
        self.callers: Dict[str, Set[str]] = {}
        #: id(ast stmt/expr node) -> enclosing FunctionNode
        self._owner: Dict[int, FunctionNode] = {}
        for file in files:
            if file.tree is None:
                continue
            self._index_scope(file, file.tree, None)

    def _index_scope(self, file: SourceFile, node: ast.AST,
                     owner: Optional[FunctionNode]) -> None:
        for child in ast.iter_child_nodes(node):
            if isinstance(child, (ast.FunctionDef, ast.AsyncFunctionDef)):
                fn = FunctionNode(child.name, file, child)
                self.functions.setdefault(child.name, []).append(fn)
                self._owner[id(child)] = owner  # def site belongs outside
                self._index_scope(file, child, fn)
            else:
                self._owner[id(child)] = owner
                if isinstance(child, ast.Call) and owner is not None:
                    callee = _called_name(child)
                    if callee is not None:
                        owner.calls.add(callee)
                        self.callers.setdefault(callee, set()) \
                            .add(owner.name)
                self._index_scope(file, child, owner)

    def owner_of(self, node: ast.AST) -> Optional[FunctionNode]:
        """The function a node is defined in (None at module level)."""
        return self._owner.get(id(node))

    # -- contract closures ---------------------------------------------

    def covered_names(self, roots: Set[str],
                      exempt: Set[str]) -> Set[str]:
        """Least fixpoint of caller coverage.

        A bare name is *covered* when it is a root (satisfies the
        contract itself), is exempt by convention, or every function
        that calls it is itself covered (and at least one caller
        exists — an uncalled helper that mutates contract state gets no
        benefit of the doubt).
        """
        covered = set(roots) | set(exempt)
        changed = True
        while changed:
            changed = False
            for name in self.functions:
                if name in covered:
                    continue
                callers = self.callers.get(name, set()) - {name}
                if callers and callers.issubset(covered):
                    covered.add(name)
                    changed = True
        return covered
