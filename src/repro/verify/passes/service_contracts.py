"""service-taxonomy: the HTTP error surface and journal are closed sets.

The job service promises clients a *documented* error taxonomy: every
failure mode surfaces as a ``ServiceError`` subclass with a stable
``code`` and HTTP status (``repro.common.errors``), so retry loops can
dispatch on ``code`` without parsing messages.  And crash recovery
replays the journal through ``reduce_records``, so a record type that
writer code emits but the reducer does not fold is silently dropped
state — the exact corruption the journal exists to prevent.

* ``service-raises`` — ``raise`` statements lexically inside the HTTP
  handler entry points (``_route_get``/``_route_post``/``do_GET``/
  ``do_POST``) may only raise documented ``ServiceError`` subclasses
  (collected from the analyzed ``common/errors.py`` class hierarchy) or
  call a local factory annotated ``-> ServiceError``.  Anything else
  would reach clients as an undocumented 500.
* ``journal-exhaustive`` — every type in ``journal.RECORD_TYPES`` must
  appear in an equality test inside ``reduce_records``.
* ``journal-unknown-type`` (warning) — ``reduce_records`` comparing
  against a type *not* in ``RECORD_TYPES`` suggests a writer/reader
  skew in the other direction.

Both journal rules (and ``service-raises``) skip silently when the
module that defines the ground truth is not part of the analyzed file
set — a single-file analysis has nothing sound to check against.
"""

from __future__ import annotations

import ast
from typing import Dict, List, Optional, Set

from repro.verify.passes.base import (AnalysisPass, Finding, PassContext,
                                      SEVERITY_WARNING, SourceFile, dotted)

#: functions whose raises reach HTTP clients directly
HANDLER_FUNCS = {"_route_get", "_route_post", "do_GET", "do_POST"}

SERVICE_ERROR_BASE = "ServiceError"
ERRORS_MODULE_SUFFIX = "common/errors.py"
JOURNAL_MODULE_SUFFIX = "service/journal.py"
RECORD_TYPES_NAME = "RECORD_TYPES"
REDUCER_NAME = "reduce_records"


def _service_error_names(errors_file: SourceFile) -> Set[str]:
    """Every class in errors.py descending from ServiceError (by name)."""
    bases: Dict[str, Set[str]] = {}
    assert errors_file.tree is not None
    for node in ast.walk(errors_file.tree):
        if isinstance(node, ast.ClassDef):
            bases[node.name] = {dotted(b) or "" for b in node.bases}
    names = {SERVICE_ERROR_BASE}
    changed = True
    while changed:
        changed = False
        for cls, parents in bases.items():
            if cls not in names and parents & names:
                names.add(cls)
                changed = True
    return names


def _record_types(journal_file: SourceFile) -> Optional[List[str]]:
    assert journal_file.tree is not None
    for node in ast.walk(journal_file.tree):
        if isinstance(node, ast.Assign) \
                and any(isinstance(t, ast.Name)
                        and t.id == RECORD_TYPES_NAME
                        for t in node.targets) \
                and isinstance(node.value, (ast.Tuple, ast.List)):
            values = []
            for element in node.value.elts:
                if isinstance(element, ast.Constant) \
                        and isinstance(element.value, str):
                    values.append(element.value)
            return values
    return None


class ServiceTaxonomyPass(AnalysisPass):
    name = "service-taxonomy"
    description = ("HTTP handlers raise only documented ServiceError "
                   "codes; the journal reducer handles every record "
                   "type")
    rules = {
        "service-raises": "handler raises must be documented "
                          "ServiceError subclasses (or ServiceError "
                          "factories)",
        "journal-exhaustive": "reduce_records must fold every type in "
                              "RECORD_TYPES",
        "journal-unknown-type": "reduce_records should not handle "
                                "record types RECORD_TYPES does not "
                                "declare",
    }

    def run(self, ctx: PassContext) -> List[Finding]:
        findings: List[Finding] = []
        errors_file = ctx.by_canonical(ERRORS_MODULE_SUFFIX)
        if errors_file is not None and errors_file.tree is not None:
            documented = _service_error_names(errors_file)
            for file in ctx.files:
                if file.package == "service" and file.tree is not None:
                    findings.extend(self._check_raises(file, documented))
        journal_file = ctx.by_canonical(JOURNAL_MODULE_SUFFIX)
        if journal_file is not None and journal_file.tree is not None:
            findings.extend(self._check_journal(journal_file))
        return findings

    # -- handler raise discipline ----------------------------------------

    def _check_raises(self, file: SourceFile,
                      documented: Set[str]) -> List[Finding]:
        findings: List[Finding] = []
        assert file.tree is not None
        factories = self._factory_names(file)
        for node in ast.walk(file.tree):
            if not isinstance(node, (ast.FunctionDef,
                                     ast.AsyncFunctionDef)) \
                    or node.name not in HANDLER_FUNCS:
                continue
            for stmt in ast.walk(node):
                if not isinstance(stmt, ast.Raise):
                    continue
                allowed, what = self._raise_allowed(
                    stmt, documented, factories)
                if not allowed:
                    findings.append(self.finding(
                        file, stmt, "service-raises",
                        f"handler {node.name}() raises {what}, which is "
                        f"not a documented ServiceError subclass; "
                        f"clients would see an undocumented 500"))
        return findings

    @staticmethod
    def _factory_names(file: SourceFile) -> Set[str]:
        """Module-local functions annotated ``-> ServiceError``-ish."""
        factories: Set[str] = set()
        assert file.tree is not None
        for node in ast.walk(file.tree):
            if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)) \
                    and node.returns is not None:
                returns = dotted(node.returns) or ""
                if returns.split(".")[-1].endswith("Error"):
                    factories.add(node.name)
        return factories

    @staticmethod
    def _raise_allowed(stmt: ast.Raise, documented: Set[str],
                       factories: Set[str]):
        if stmt.exc is None:
            return True, ""  # bare re-raise propagates a vetted error
        exc = stmt.exc
        if isinstance(exc, ast.Call):
            name = dotted(exc.func) or "<dynamic>"
            short = name.split(".")[-1]
            if short in documented or short in factories:
                return True, ""
            return False, f"{short}(...)"
        name = dotted(exc) or "<dynamic>"
        short = name.split(".")[-1]
        if short in documented:
            return True, ""
        return False, short

    # -- journal exhaustiveness -------------------------------------------

    def _check_journal(self, file: SourceFile) -> List[Finding]:
        declared = _record_types(file)
        if declared is None:
            return [self.finding(
                file, None, "journal-exhaustive",
                f"{RECORD_TYPES_NAME} is missing or not a literal "
                f"tuple/list of strings in {file.canonical}")]
        reducer = None
        assert file.tree is not None
        for node in ast.walk(file.tree):
            if isinstance(node, ast.FunctionDef) \
                    and node.name == REDUCER_NAME:
                reducer = node
                break
        if reducer is None:
            return [self.finding(
                file, None, "journal-exhaustive",
                f"{REDUCER_NAME}() not found in {file.canonical}; "
                f"recovery cannot fold the journal")]
        handled: Set[str] = set()
        for node in ast.walk(reducer):
            # only equality tests dispatch on the record type;
            # membership tests ("cycles" in data) probe payload keys
            if isinstance(node, ast.Compare) \
                    and all(isinstance(op, (ast.Eq, ast.NotEq))
                            for op in node.ops):
                for operand in [node.left] + list(node.comparators):
                    if isinstance(operand, ast.Constant) \
                            and isinstance(operand.value, str):
                        handled.add(operand.value)
                    elif isinstance(operand, (ast.Tuple, ast.Set,
                                              ast.List)):
                        for element in operand.elts:
                            if isinstance(element, ast.Constant) \
                                    and isinstance(element.value, str):
                                handled.add(element.value)
        findings: List[Finding] = []
        for missing in [t for t in declared if t not in handled]:
            findings.append(self.finding(
                file, reducer, "journal-exhaustive",
                f"record type '{missing}' is declared in "
                f"{RECORD_TYPES_NAME} but never handled by "
                f"{REDUCER_NAME}(); replaying a journal containing it "
                f"would silently drop state"))
        for extra in sorted(handled - set(declared)):
            findings.append(self.finding(
                file, reducer, "journal-unknown-type",
                f"{REDUCER_NAME}() handles record type '{extra}' that "
                f"{RECORD_TYPES_NAME} does not declare",
                severity=SEVERITY_WARNING))
        return findings
