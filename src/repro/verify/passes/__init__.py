"""Multi-pass static analysis framework (``repro verify analyze``).

The simulator's soundness rests on contracts no runtime test checks on
every path: the wakeup dirty-bit protocol behind the event-driven
fast-forward, the versioned pickle-state shape behind crash-tolerant
resume, determinism of results in (config, workload, seed), the
service's documented error taxonomy, and the rule that chaos faults
fire only from the event stream.  Each contract gets a dedicated AST
pass; the shared driver owns discovery, waivers, baselining, and the
JSON report.  See ``docs/verification.md`` for the pass catalog.
"""

from repro.verify.passes.base import (AnalysisPass, Finding, PassContext,
                                      SourceFile, canonical_path,
                                      package_of)
from repro.verify.passes.checkpoint_state import (CheckpointSafetyPass,
                                                  write_manifest)
from repro.verify.passes.determinism import DeterminismPass
from repro.verify.passes.driver import (ALL_PASSES, Report, analyze_paths,
                                        analyze_sources,
                                        default_baseline_path,
                                        registered_rules, write_baseline)
from repro.verify.passes.event_discipline import EventDisciplinePass
from repro.verify.passes.lint_pass import LintPass
from repro.verify.passes.service_contracts import ServiceTaxonomyPass
from repro.verify.passes.wakeup import WakeupContractPass

__all__ = [
    "ALL_PASSES", "AnalysisPass", "CheckpointSafetyPass",
    "DeterminismPass", "EventDisciplinePass", "Finding", "LintPass",
    "PassContext", "Report", "ServiceTaxonomyPass", "SourceFile",
    "WakeupContractPass", "analyze_paths", "analyze_sources",
    "canonical_path", "default_baseline_path", "package_of",
    "registered_rules", "write_baseline", "write_manifest",
]
