"""AST-based determinism and idiom lint for the simulator sources.

Simulation results must be a pure function of (configuration, workload,
seed): the benchmark memoization (``ExperimentCache``), the figure
regression tests, and cross-run comparisons all assume it.  This pass
flags the constructs that silently break that property, plus the
type-hint defect family that seeded this PR:

* ``wall-clock``       — calls that read real time (``time.time``,
  ``time.perf_counter``, ``datetime.now``...).  Simulated time lives in
  ``EventQueue.now``; wall-clock reads make runs unreproducible.
* ``global-random``    — module-level ``random.*`` draws use the shared,
  unseeded global RNG.  Use an explicitly seeded ``random.Random(seed)``
  (see ``workloads/generator.py``).
* ``set-iteration``    — ``for``/comprehension iteration over a value
  statically known to be a ``set``/``frozenset``.  Set order is an
  implementation detail; when iteration feeds event scheduling or output,
  it must be wrapped in ``sorted(...)``.
* ``implicit-optional``— a parameter or annotated assignment typed as a
  plain ``int``/``str``/... with a ``None`` default (``writer: int =
  None``); the annotation must say ``Optional[...]``.
* ``hot-path-slots``   — a class defined under the per-cycle packages
  (``core/``, ``mem/``) without a ``__slots__`` declaration.  Those
  objects are allocated/accessed millions of times per run; a dict per
  instance is measurable (see ``docs/performance.md``).  Enum,
  exception, Protocol-style, and decorated classes are exempt.
* ``hot-path-allocation`` — container displays, comprehensions,
  lambdas, and nested ``def`` inside a function whose ``def`` line is
  marked ``# repro: hot`` (the specialized engine's inner-loop
  closures).  Each such construct allocates per call on a path that
  runs every simulated cycle; hoist it into the closure maker, or waive
  a deliberate allocation with ``# repro: allow-hot-path-allocation``.
  The column layout adds three more hazards under the same rule:
  ``.copy()`` calls and slice-copies (each clones a hot column per
  call) and ``for`` iteration over slot maps (attributes annotated as
  dicts, or ``.items()``/``.keys()``/``.values()`` views) — slot-keyed
  state is meant to be walked through the rings and flat columns.

A finding is waived by a trailing ``# repro: allow-<rule>`` comment on
the offending line — e.g. the benchmark driver's timing reads carry
``# repro: allow-wall-clock``.

Known-set inference is deliberately shallow and name-based (a lint, not a
type checker): set displays/constructors/comprehensions, locals assigned
from those (including via set operators), attributes annotated ``Set[...]``
anywhere in the linted tree, and calls of functions/methods whose return
annotation is a set type.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass
from pathlib import Path
from typing import Iterable, List, Optional, Sequence, Set, Union

#: Functions that read the wall clock, as ``module.attr`` paths.
WALL_CLOCK_CALLS = {
    "time.time", "time.time_ns", "time.monotonic", "time.monotonic_ns",
    "time.perf_counter", "time.perf_counter_ns", "time.process_time",
    "datetime.now", "datetime.utcnow", "datetime.today",
    "datetime.datetime.now", "datetime.datetime.utcnow",
    "datetime.datetime.today", "date.today", "datetime.date.today",
}

#: Names the global-RNG rule treats as the ``random`` module.
RANDOM_MODULE = "random"

#: ``random.<attr>`` accesses that do *not* draw from the global RNG:
#: constructing an explicitly seeded generator is the recommended fix.
RANDOM_SAFE_ATTRS = {"Random", "SystemRandom", "seed"}

#: Iteration wrappers that impose a deterministic order on a set.
ORDERING_WRAPPERS = {"sorted", "min", "max", "sum", "len", "any", "all",
                     "frozenset", "set"}

SET_TYPE_NAMES = {"set", "frozenset", "Set", "FrozenSet", "MutableSet",
                  "AbstractSet"}

#: Annotation names the ``hot-path-allocation`` rule treats as dicts
#: (slot maps: dep->waiters, lq_id->entry...).  Iterating one inside a
#: ``# repro: hot`` function walks the map per call — the column/ring
#: scan is the layout the engine closures are supposed to use.
DICT_TYPE_NAMES = {"dict", "Dict", "defaultdict", "DefaultDict",
                   "OrderedDict", "Mapping", "MutableMapping"}

#: Packages whose classes live on the per-cycle path: every simulated
#: cycle allocates/touches their instances, so they must declare
#: ``__slots__`` (rule ``hot-path-slots``).  ``pinning`` and
#: ``security`` joined when the defense machinery moved onto the
#: event-driven wakeup path (the pin chain and VP walk run on every
#: non-skipped tick of a defended core).
HOT_PATH_PACKAGES = {"core", "mem", "pinning", "security"}

#: Base classes that exempt a class from ``hot-path-slots``: enums and
#: exceptions are not per-cycle objects, and Protocol/ABC-style bases
#: exist for typing, not allocation.
SLOTS_EXEMPT_BASES = {
    "Enum", "IntEnum", "StrEnum", "Flag", "IntFlag", "Exception",
    "BaseException", "Protocol", "NamedTuple", "TypedDict", "ABC",
}

#: rule name -> one-line invariant, consumed by the analysis framework
#: (``repro.verify.passes``) when it runs this lint as one of its passes.
RULES = {
    "wall-clock": "simulated time must come from EventQueue.now, "
                  "never the wall clock",
    "global-random": "randomness must come from an explicitly seeded "
                     "random.Random",
    "set-iteration": "iteration over a set feeding scheduling/output "
                     "must be wrapped in sorted(...)",
    "implicit-optional": "a None default requires an Optional[...] "
                         "annotation",
    "hot-path-slots": "classes in per-cycle packages must declare "
                      "__slots__",
    "hot-path-allocation": "functions marked '# repro: hot' must not "
                           "allocate containers or closures per call",
}

#: marker comment that opts a function into ``hot-path-allocation``
HOT_FUNCTION_MARKER = "# repro: hot"


@dataclass(frozen=True)
class Finding:
    """One lint finding, pointing at a source location."""

    path: str
    line: int
    col: int
    rule: str
    message: str

    def __str__(self) -> str:
        return (f"{self.path}:{self.line}:{self.col}: "
                f"[{self.rule}] {self.message}")


def _dotted(node: ast.AST) -> Optional[str]:
    """``a.b.c`` attribute path of a Name/Attribute chain, or None."""
    parts: List[str] = []
    while isinstance(node, ast.Attribute):
        parts.append(node.attr)
        node = node.value
    if isinstance(node, ast.Name):
        parts.append(node.id)
        return ".".join(reversed(parts))
    return None


def _annotation_is_set(annotation: Optional[ast.AST]) -> bool:
    if annotation is None:
        return False
    node = annotation
    if isinstance(node, ast.Subscript):
        node = node.value
    name = _dotted(node)
    return name is not None and name.split(".")[-1] in SET_TYPE_NAMES


def _annotation_is_dict(annotation: Optional[ast.AST]) -> bool:
    if annotation is None:
        return False
    node = annotation
    if isinstance(node, ast.Subscript):
        node = node.value
    name = _dotted(node)
    return name is not None and name.split(".")[-1] in DICT_TYPE_NAMES


def _annotation_allows_none(annotation: ast.AST) -> bool:
    text = ast.unparse(annotation)
    return ("Optional" in text or "None" in text or "Any" in text
            or "object" in text)


class _SetRegistry:
    """Names of attributes/functions known (by annotation) to be sets.

    Inference is by bare name, so an attribute name annotated ``Set[...]``
    in one class and something else in another (e.g. ``_lines`` is a set in
    ``CannotPinTable`` but an LRU-ordered dict in ``LRUSet``) is ambiguous
    and deliberately dropped — a false negative beats telling someone to
    ``sorted()`` an order-bearing container.
    """

    def __init__(self) -> None:
        self._set_attrs: Set[str] = set()
        self._nonset_attrs: Set[str] = set()
        self._dict_attrs: Set[str] = set()
        self._nondict_attrs: Set[str] = set()
        self.set_returning: Set[str] = set()

    def is_set_attr(self, name: str) -> bool:
        return name in self._set_attrs and name not in self._nonset_attrs

    def is_dict_attr(self, name: str) -> bool:
        """Attribute known (by annotation, unambiguously) to be a dict —
        the slot maps the ``hot-path-allocation`` iteration check
        targets."""
        return name in self._dict_attrs \
            and name not in self._nondict_attrs

    def scan(self, tree: ast.AST) -> None:
        for node in ast.walk(tree):
            if isinstance(node, ast.AnnAssign):
                target = node.target
                if isinstance(target, ast.Attribute):
                    (self._set_attrs
                     if _annotation_is_set(node.annotation)
                     else self._nonset_attrs).add(target.attr)
                    (self._dict_attrs
                     if _annotation_is_dict(node.annotation)
                     else self._nondict_attrs).add(target.attr)
            elif isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)) \
                    and _annotation_is_set(node.returns):
                self.set_returning.add(node.name)


def _is_hot_path(path: str) -> bool:
    """Is ``path`` inside a package subject to ``hot-path-slots``?"""
    return bool(HOT_PATH_PACKAGES.intersection(Path(path).parts))


class _Linter(ast.NodeVisitor):
    def __init__(self, path: str, registry: _SetRegistry,
                 lines: Optional[Sequence[str]] = None) -> None:
        self.path = path
        self.registry = registry
        self.findings: List[Finding] = []
        self._hot_path = _is_hot_path(path)
        #: source lines, for the comment-marker rules (None in the rare
        #: AST-only call paths: the marker rule is then inert)
        self._lines = lines
        #: per-function stack of local names inferred to hold sets
        self._set_locals: List[Set[str]] = [set()]

    # -- helpers -------------------------------------------------------

    def _emit(self, node: ast.AST, rule: str, message: str) -> None:
        self.findings.append(Finding(self.path, node.lineno,
                                     node.col_offset, rule, message))

    def _is_known_set(self, node: ast.AST) -> bool:
        if isinstance(node, ast.Set) or isinstance(node, ast.SetComp):
            return True
        if isinstance(node, ast.Call):
            name = _dotted(node.func)
            if name in ("set", "frozenset"):
                return True
            if isinstance(node.func, ast.Attribute) \
                    and node.func.attr in self.registry.set_returning:
                return True
            return False
        if isinstance(node, ast.BinOp) \
                and isinstance(node.op, (ast.Sub, ast.BitOr, ast.BitAnd,
                                         ast.BitXor)):
            return self._is_known_set(node.left) \
                or self._is_known_set(node.right)
        if isinstance(node, ast.Name):
            return node.id in self._set_locals[-1]
        if isinstance(node, ast.Attribute):
            return self.registry.is_set_attr(node.attr)
        return False

    # -- scopes --------------------------------------------------------

    def _visit_function(self, node) -> None:
        self._check_arg_defaults(node)
        if self._is_hot_function(node):
            self._check_hot_allocations(node)
        args = node.args
        scope = {arg.arg
                 for arg in (args.posonlyargs + args.args
                             + args.kwonlyargs)
                 if _annotation_is_set(arg.annotation)}
        self._set_locals.append(scope)
        self.generic_visit(node)
        self._set_locals.pop()

    visit_FunctionDef = _visit_function
    visit_AsyncFunctionDef = _visit_function

    # -- hot-path allocation -------------------------------------------

    def _is_hot_function(self, node) -> bool:
        if self._lines is None:
            return False
        line = self._lines[node.lineno - 1] \
            if node.lineno - 1 < len(self._lines) else ""
        return HOT_FUNCTION_MARKER in line

    _ALLOCATION_KINDS = {
        ast.List: "list display", ast.Set: "set display",
        ast.Dict: "dict display", ast.ListComp: "list comprehension",
        ast.SetComp: "set comprehension",
        ast.DictComp: "dict comprehension",
        ast.GeneratorExp: "generator expression",
        ast.Lambda: "lambda", ast.FunctionDef: "nested function",
        ast.AsyncFunctionDef: "nested function",
    }

    def _check_hot_allocations(self, node) -> None:
        """Flag per-call container/closure construction inside a
        function marked ``# repro: hot``.  Nested functions are flagged
        as a whole (the def itself allocates a closure every call) and
        not descended into.  Beyond the display/comprehension kinds,
        three column-layout hazards are flagged: ``.copy()`` calls and
        slice-copies (both clone a hot column per call) and ``for``
        iteration over slot maps (dict-annotated attributes or
        ``.items()``/``.keys()``/``.values()`` views) — the ring/column
        scan is the supported walk."""
        stack = list(node.body)
        while stack:
            child = stack.pop()
            kind = self._ALLOCATION_KINDS.get(type(child))
            if kind is not None:
                self._emit(
                    child, "hot-path-allocation",
                    f"{kind} inside '# repro: hot' function "
                    f"{node.name}() allocates per call; hoist it into "
                    f"the closure maker or waive with "
                    f"# repro: allow-hot-path-allocation")
                if isinstance(child, (ast.FunctionDef,
                                      ast.AsyncFunctionDef, ast.Lambda)):
                    continue
            elif isinstance(child, ast.Call) \
                    and isinstance(child.func, ast.Attribute) \
                    and child.func.attr == "copy" and not child.args:
                self._emit(
                    child, "hot-path-allocation",
                    f"{ast.unparse(child.func.value)}.copy() inside "
                    f"'# repro: hot' function {node.name}() clones a "
                    f"container per call; hoist it into the closure "
                    f"maker or waive with "
                    f"# repro: allow-hot-path-allocation")
            elif isinstance(child, ast.Subscript) \
                    and isinstance(child.slice, ast.Slice) \
                    and isinstance(child.ctx, ast.Load):
                self._emit(
                    child, "hot-path-allocation",
                    f"slice-copy {ast.unparse(child)} inside "
                    f"'# repro: hot' function {node.name}() allocates "
                    f"a fresh list per call; index the column in place "
                    f"or waive with # repro: allow-hot-path-allocation")
            elif isinstance(child, ast.For):
                self._check_hot_dict_iteration(node, child)
            stack.extend(ast.iter_child_nodes(child))

    def _check_hot_dict_iteration(self, func, loop: ast.For) -> None:
        iterable = loop.iter
        if isinstance(iterable, ast.Call) \
                and isinstance(iterable.func, ast.Attribute) \
                and iterable.func.attr in ("items", "keys", "values") \
                and not iterable.args:
            self._emit(
                iterable, "hot-path-allocation",
                f"dict iteration over "
                f"{ast.unparse(iterable)} inside '# repro: hot' "
                f"function {func.name}() walks a slot map per call; "
                f"scan the ring/columns instead or waive with "
                f"# repro: allow-hot-path-allocation")
        elif isinstance(iterable, ast.Attribute) \
                and self.registry.is_dict_attr(iterable.attr):
            self._emit(
                iterable, "hot-path-allocation",
                f"dict iteration over {ast.unparse(iterable)} inside "
                f"'# repro: hot' function {func.name}() walks a slot "
                f"map per call; scan the ring/columns instead or waive "
                f"with # repro: allow-hot-path-allocation")

    # -- hot-path __slots__ --------------------------------------------

    def visit_ClassDef(self, node: ast.ClassDef) -> None:
        if self._hot_path and not node.decorator_list \
                and not self._slots_exempt(node) \
                and not self._declares_slots(node):
            self._emit(
                node, "hot-path-slots",
                f"class {node.name} is on the per-cycle path "
                f"({'/'.join(sorted(HOT_PATH_PACKAGES))} packages) but "
                f"declares no __slots__")
        self.generic_visit(node)

    @staticmethod
    def _slots_exempt(node: ast.ClassDef) -> bool:
        for base in node.bases:
            name = _dotted(base)
            short = name.split(".")[-1] if name else ""
            if short in SLOTS_EXEMPT_BASES or short.endswith("Error"):
                return True
        return node.name.endswith("Error")

    @staticmethod
    def _declares_slots(node: ast.ClassDef) -> bool:
        for stmt in node.body:
            if isinstance(stmt, ast.Assign):
                targets = stmt.targets
            elif isinstance(stmt, ast.AnnAssign):
                targets = [stmt.target]
            else:
                continue
            for target in targets:
                if isinstance(target, ast.Name) \
                        and target.id == "__slots__":
                    return True
        return False

    # -- implicit Optional ---------------------------------------------

    def _check_arg_defaults(self, node) -> None:
        args = node.args
        positional = args.posonlyargs + args.args
        defaults: Sequence[Optional[ast.AST]] = \
            [None] * (len(positional) - len(args.defaults)) \
            + list(args.defaults)
        pairs = list(zip(positional, defaults)) \
            + list(zip(args.kwonlyargs, args.kw_defaults))
        for arg, default in pairs:
            if default is None or arg.annotation is None:
                continue
            if isinstance(default, ast.Constant) and default.value is None \
                    and not _annotation_allows_none(arg.annotation):
                self._emit(
                    arg, "implicit-optional",
                    f"parameter '{arg.arg}: "
                    f"{ast.unparse(arg.annotation)} = None' needs an "
                    f"Optional[...] annotation")

    def visit_AnnAssign(self, node: ast.AnnAssign) -> None:
        if isinstance(node.value, ast.Constant) and node.value.value is None \
                and not _annotation_allows_none(node.annotation):
            self._emit(node, "implicit-optional",
                       f"'{ast.unparse(node.target)}: "
                       f"{ast.unparse(node.annotation)} = None' needs an "
                       f"Optional[...] annotation")
        if _annotation_is_set(node.annotation) \
                and isinstance(node.target, ast.Name):
            self._set_locals[-1].add(node.target.id)
        self.generic_visit(node)

    # -- set inference through assignments -----------------------------

    def visit_Assign(self, node: ast.Assign) -> None:
        if self._is_known_set(node.value):
            for target in node.targets:
                if isinstance(target, ast.Name):
                    self._set_locals[-1].add(target.id)
        self.generic_visit(node)

    # -- set iteration -------------------------------------------------

    def _check_iteration(self, node: ast.AST, iterable: ast.AST) -> None:
        if self._is_known_set(iterable):
            self._emit(
                iterable, "set-iteration",
                f"iteration over a set ({ast.unparse(iterable)}) has "
                f"unspecified order; wrap it in sorted(...)")

    def visit_For(self, node: ast.For) -> None:
        self._check_iteration(node, node.iter)
        self.generic_visit(node)

    def _visit_comprehension(self, node) -> None:
        for generator in node.generators:
            self._check_iteration(node, generator.iter)
        self.generic_visit(node)

    visit_ListComp = _visit_comprehension
    visit_DictComp = _visit_comprehension
    visit_GeneratorExp = _visit_comprehension

    def visit_SetComp(self, node: ast.SetComp) -> None:
        # building a *new* set from a set is order-insensitive
        self.generic_visit(node)

    def visit_Call(self, node: ast.Call) -> None:
        # wall clock
        name = _dotted(node.func)
        if name in WALL_CLOCK_CALLS:
            self._emit(node, "wall-clock",
                       f"{name}() reads the wall clock; simulated time "
                       f"must come from EventQueue.now")
        elif name is not None and "." in name:
            module, func = name.rsplit(".", 1)
            if module == RANDOM_MODULE and func not in RANDOM_SAFE_ATTRS:
                self._emit(node, "global-random",
                           f"random.{func}() draws from the unseeded "
                           f"global RNG; use a seeded random.Random")
        # sorted(<set>) etc. impose an order: don't descend into the
        # iterable argument with the set-iteration rule
        if name in ORDERING_WRAPPERS:
            for arg in node.args:
                if isinstance(arg, (ast.GeneratorExp, ast.ListComp)):
                    self.generic_visit(arg)
            for keyword in node.keywords:
                self.visit(keyword.value)
            self.visit(node.func)
            return
        self.generic_visit(node)


def _waived(finding: Finding, lines: Sequence[str]) -> bool:
    """A ``# repro: allow-<rule>`` comment on the finding's line waives
    it (narrowly: only that rule, only that line).  The matching logic
    is the framework-wide one (``repro.verify.passes.waivers``)."""
    from repro.verify.passes.waivers import is_waived
    return is_waived(finding, lines)


def lint_source_raw(source: str, path: str = "<string>",
                    registry: Optional[_SetRegistry] = None,
                    tree: Optional[ast.AST] = None) -> List[Finding]:
    """Lint one module, *without* applying waivers.

    The analysis framework calls this and applies the unified waiver
    pass itself (so stale lint waivers are auditable); standalone
    ``lint_source`` keeps the historical filtered behavior.
    """
    if tree is None:
        tree = ast.parse(source, filename=path)
    if registry is None:
        registry = _SetRegistry()
        registry.scan(tree)
    linter = _Linter(path, registry, source.splitlines())
    linter.visit(tree)
    return linter.findings


def lint_source(source: str, path: str = "<string>",
                registry: Optional[_SetRegistry] = None) -> List[Finding]:
    """Lint one module's source text."""
    findings = lint_source_raw(source, path, registry)
    lines = source.splitlines()
    return [finding for finding in findings
            if not _waived(finding, lines)]


def lint_paths(paths: Iterable[Union[str, Path]]) -> List[Finding]:
    """Lint every ``.py`` file under the given files/directories.

    The known-set registry (annotated attributes and set-returning
    functions) is built across *all* files first, so e.g. iteration over
    ``DirEntry.holders()`` is flagged in ``coherence.py`` even though the
    annotation lives in ``directory.py``.
    """
    files: List[Path] = []
    for path in paths:
        path = Path(path)
        if path.is_dir():
            files.extend(sorted(path.rglob("*.py")))
        else:
            files.append(path)
    registry = _SetRegistry()
    sources = {}
    for file in files:
        source = file.read_text()
        sources[file] = source
        registry.scan(ast.parse(source, filename=str(file)))
    findings: List[Finding] = []
    for file, source in sources.items():
        findings.extend(lint_source(source, str(file), registry))
    return findings
