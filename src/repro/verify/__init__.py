"""Correctness tooling for the Pinned Loads reproduction.

Three independent passes, surfaced through ``python -m repro verify``:

* :mod:`repro.verify.model` / :mod:`repro.verify.explorer` — an abstract
  transition model of the MESI + pinning protocol, explored exhaustively
  for small configurations, checking SWMR, pin-safety, writer progress
  (the CPT starvation guarantee), and transition-table reachability.
* :mod:`repro.verify.sanitizer` — an opt-in runtime invariant checker
  (``SystemConfig(sanitize=True)``) hooked into the live simulator;
  violations raise :class:`repro.common.errors.InvariantViolation` with
  the recent event trace attached.
* :mod:`repro.verify.lint` — an AST pass over the sources flagging
  simulation-determinism hazards and type-hint defects.
* :mod:`repro.verify.passes` — the multi-pass static analysis framework
  (``repro verify analyze``): the lint plus the wakeup-contract,
  checkpoint-safety, determinism, service-taxonomy, and
  event-discipline passes, with unified waivers, a committed baseline,
  and a JSON report.

Every protocol or pinning change must keep ``repro verify model`` and
``repro verify analyze`` green; see ``docs/verification.md``.
"""

from repro.verify.explorer import ExplorationResult, explore
from repro.verify.lint import Finding, lint_paths, lint_source
from repro.verify.model import ModelConfig, PinnedProtocolModel
from repro.verify.passes import Report, analyze_paths
from repro.verify.sanitizer import Sanitizer

__all__ = [
    "ExplorationResult", "Finding", "ModelConfig", "PinnedProtocolModel",
    "Report", "Sanitizer", "analyze_paths", "explore", "lint_paths",
    "lint_source",
]
