"""Abstract transition model of the MESI + Pinned Loads protocol.

The concrete protocol lives in ``repro.mem.coherence`` and makes its
decisions against live cache arrays, MSHRs, and network timing.  This
module re-states only the *protocol-visible* state — per-core line states,
the pin set, the Cannot-Pin Tables, and in-flight write transactions — as
a finite, hashable value, together with the guarded transitions of §5 of
the paper:

* ``LOAD``        — a core fetches a line it does not hold (GetS).
* ``UPGRADE``     — silent E→M upgrade on a store hit.
* ``WRITE_ISSUE`` — a core queues a write needing exclusivity (GetX).
* ``WRITE_DIR``   — the directory processes one write attempt: a pinned
  sharer answers Defer and the writer Aborts; retries are GetX*, whose
  Inv* inserts the line into every sharer's CPT; success invalidates the
  remaining sharers and Clears the CPTs (Figures 3b and 5).
* ``PIN`` / ``UNPIN`` — the pin lifecycle of a load (guarded by residency
  and the CPT, §5.1.1/§5.1.5).
* ``EVICT``       — an L1 capacity eviction (denied for pinned lines).
* ``LLC_EVICT``   — an inclusive back-invalidation (denied while any core
  pins the line, §5.1.3).

The explorer (:mod:`repro.verify.explorer`) enumerates every reachable
state by BFS and checks the safety invariants in :meth:`check_state` plus
graph-level progress properties.  ``ModelConfig.mutate`` re-introduces
known protocol bugs so the test suite can prove the checker detects them.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import FrozenSet, Iterator, List, NamedTuple, Tuple

# MESI stable states of one line in one private L1 (Invalid = absent).
INVALID, SHARED, EXCLUSIVE, MODIFIED = "I", "S", "E", "M"
LINE_STATES = (INVALID, SHARED, EXCLUSIVE, MODIFIED)

#: Write-transaction phases (collapsed: every attempt past the first uses
#: GetX*/Inv*, so attempts >= 2 are protocol-equivalent).
W_IDLE, W_FIRST, W_RETRY = 0, 1, 2

#: Known-bug switches for ``ModelConfig.mutate`` — each silently removes
#: one protocol obligation; the checker must flag every one of them.
MUTATIONS = (
    "invalidate_pinned",    # writer ignores Defer and invalidates anyway
    "evict_pinned",         # evictions ignore the pin filter
    "skip_cpt_insert",      # Inv* does not populate the CPT
    "clear_on_defer",       # CPT cleared on Abort instead of on success
    "pin_ignores_cpt",      # loads may pin CPT-resident lines
)


class ProtocolState(NamedTuple):
    """One abstract machine state.  Fully hashable and comparable."""

    #: flattened [core][line] -> MESI state letter
    l1: Tuple[str, ...]
    #: set of (core, line) pairs currently pinned
    pinned: FrozenSet[Tuple[int, int]]
    #: per-core frozenset of CPT-resident lines
    cpt: Tuple[FrozenSet[int], ...]
    #: flattened [core][line] -> write-transaction phase
    writes: Tuple[int, ...]


class Event(NamedTuple):
    """One transition label: ``(kind, core, line)``."""

    kind: str
    core: int
    line: int

    def __str__(self) -> str:
        return f"{self.kind}(core={self.core}, line={self.line})"


@dataclass(frozen=True)
class ModelConfig:
    """Exploration bounds.  The defaults (2 cores x 2 lines) finish in
    well under a second; 3 cores x 2 lines stays in the low millions of
    states and is the recommended pre-merge configuration for protocol
    changes."""

    cores: int = 2
    lines: int = 2
    max_pins_per_core: int = 2
    #: safety valve for the BFS frontier
    max_states: int = 2_000_000
    #: injected protocol bugs (testing the checker itself); see MUTATIONS
    mutate: FrozenSet[str] = field(default_factory=frozenset)

    def __post_init__(self) -> None:
        if self.cores < 1 or self.lines < 1 or self.max_pins_per_core < 0:
            raise ValueError("model needs >= 1 core, >= 1 line, and a "
                             "non-negative pin bound")
        unknown = set(self.mutate) - set(MUTATIONS)
        if unknown:
            raise ValueError(f"unknown mutations: {sorted(unknown)}")


class PinnedProtocolModel:
    """Guarded-transition semantics over :class:`ProtocolState`."""

    def __init__(self, config: ModelConfig) -> None:
        self.config = config

    # -- state helpers -------------------------------------------------

    def initial_state(self) -> ProtocolState:
        cfg = self.config
        return ProtocolState(
            l1=(INVALID,) * (cfg.cores * cfg.lines),
            pinned=frozenset(),
            cpt=(frozenset(),) * cfg.cores,
            writes=(W_IDLE,) * (cfg.cores * cfg.lines),
        )

    def _idx(self, core: int, line: int) -> int:
        return core * self.config.lines + line

    def l1_state(self, state: ProtocolState, core: int, line: int) -> str:
        return state.l1[self._idx(core, line)]

    def holders(self, state: ProtocolState, line: int) -> List[int]:
        return [c for c in range(self.config.cores)
                if self.l1_state(state, c, line) != INVALID]

    # -- transition relation -------------------------------------------

    def enabled_events(self, state: ProtocolState) -> Iterator[Event]:
        cfg = self.config
        mutate = cfg.mutate
        for core in range(cfg.cores):
            pins_held = sum(1 for (c, _) in state.pinned if c == core)
            for line in range(cfg.lines):
                l1 = self.l1_state(state, core, line)
                pinned = (core, line) in state.pinned
                if l1 == INVALID:
                    yield Event("LOAD", core, line)
                else:
                    if not pinned or "evict_pinned" in mutate:
                        yield Event("EVICT", core, line)
                    if (not pinned
                            and pins_held < cfg.max_pins_per_core
                            and (line not in state.cpt[core]
                                 or "pin_ignores_cpt" in mutate)):
                        yield Event("PIN", core, line)
                if pinned:
                    yield Event("UNPIN", core, line)
                if l1 == EXCLUSIVE:
                    yield Event("UPGRADE", core, line)
                writes = state.writes[self._idx(core, line)]
                if writes == W_IDLE and l1 in (INVALID, SHARED):
                    yield Event("WRITE_ISSUE", core, line)
                elif writes != W_IDLE:
                    yield Event("WRITE_DIR", core, line)
        for line in range(cfg.lines):
            if self.holders(state, line) \
                    and (not any(p[1] == line for p in state.pinned)
                         or "evict_pinned" in self.config.mutate):
                yield Event("LLC_EVICT", -1, line)   # directory-initiated

    def apply(self, state: ProtocolState, event: Event) -> ProtocolState:
        handler = getattr(self, f"_apply_{event.kind.lower()}")
        return handler(state, event.core, event.line)

    def _with_l1(self, state: ProtocolState, core: int, line: int,
                 value: str) -> ProtocolState:
        l1 = list(state.l1)
        l1[self._idx(core, line)] = value
        return state._replace(l1=tuple(l1))

    def _apply_load(self, state: ProtocolState, core: int,
                    line: int) -> ProtocolState:
        l1 = list(state.l1)
        holders = self.holders(state, line)
        for holder in sorted(holders):
            # a read downgrades any M/E owner to S (three-hop forward)
            if l1[self._idx(holder, line)] in (EXCLUSIVE, MODIFIED):
                l1[self._idx(holder, line)] = SHARED
        l1[self._idx(core, line)] = SHARED if holders else EXCLUSIVE
        return state._replace(l1=tuple(l1))

    def _apply_evict(self, state: ProtocolState, core: int,
                     line: int) -> ProtocolState:
        return self._with_l1(state, core, line, INVALID)

    def _apply_llc_evict(self, state: ProtocolState, _core: int,
                         line: int) -> ProtocolState:
        l1 = list(state.l1)
        for core in range(self.config.cores):
            l1[self._idx(core, line)] = INVALID
        return state._replace(l1=tuple(l1))

    def _apply_pin(self, state: ProtocolState, core: int,
                   line: int) -> ProtocolState:
        return state._replace(pinned=state.pinned | {(core, line)})

    def _apply_unpin(self, state: ProtocolState, core: int,
                     line: int) -> ProtocolState:
        return state._replace(pinned=state.pinned - {(core, line)})

    def _apply_upgrade(self, state: ProtocolState, core: int,
                       line: int) -> ProtocolState:
        return self._with_l1(state, core, line, MODIFIED)

    def _apply_write_issue(self, state: ProtocolState, core: int,
                           line: int) -> ProtocolState:
        writes = list(state.writes)
        writes[self._idx(core, line)] = W_FIRST
        return state._replace(writes=tuple(writes))

    def _apply_write_dir(self, state: ProtocolState, core: int,
                         line: int) -> ProtocolState:
        """One directory visit of an in-flight write (Figure 3b / 5)."""
        mutate = self.config.mutate
        phase = state.writes[self._idx(core, line)]
        others = [o for o in sorted(self.holders(state, line)) if o != core]
        star = phase == W_RETRY
        cpt = list(state.cpt)
        if star and "skip_cpt_insert" not in mutate:
            for other in others:
                cpt[other] = cpt[other] | {line}
        deferring = [o for o in others if (o, line) in state.pinned]
        if deferring and "invalidate_pinned" not in mutate:
            # Defer/Abort: directory state unchanged, writer will retry
            # with GetX*; Inv* recipients without a pin invalidated above.
            l1 = list(state.l1)
            if star:
                for other in others:
                    if other not in deferring:
                        l1[self._idx(other, line)] = INVALID
            writes = list(state.writes)
            writes[self._idx(core, line)] = W_RETRY
            if "clear_on_defer" in mutate:
                cpt = [entry - {line} for entry in cpt]
            return state._replace(l1=tuple(l1), cpt=tuple(cpt),
                                  writes=tuple(writes))
        # success: every other holder is invalidated, CPTs are Cleared,
        # and the writer takes the line in M
        l1 = list(state.l1)
        for other in others:
            l1[self._idx(other, line)] = INVALID
        l1[self._idx(core, line)] = MODIFIED
        writes = list(state.writes)
        writes[self._idx(core, line)] = W_IDLE
        cpt = [entry - {line} for entry in cpt]
        # pins of invalidated sharers are deliberately NOT released here:
        # a correct protocol never reaches this branch with a pinned
        # sharer, and keeping the pair makes the pin-safety invariant
        # flag any transition that invalidates a pinned line.
        return state._replace(l1=tuple(l1), cpt=tuple(cpt),
                              writes=tuple(writes))

    # -- safety invariants ---------------------------------------------

    def check_state(self, state: ProtocolState) -> List[str]:
        """Safety violations in one state (empty list when healthy)."""
        cfg = self.config
        problems: List[str] = []
        for line in range(cfg.lines):
            states = [self.l1_state(state, c, line)
                      for c in range(cfg.cores)]
            exclusive = [c for c, s in enumerate(states)
                         if s in (EXCLUSIVE, MODIFIED)]
            sharers = [c for c, s in enumerate(states) if s == SHARED]
            if len(exclusive) > 1:
                problems.append(
                    f"SWMR: line {line} writable in cores {exclusive}")
            if exclusive and sharers:
                problems.append(
                    f"SWMR: line {line} owned by core {exclusive[0]} "
                    f"while shared by cores {sharers}")
        for core, line in sorted(state.pinned):
            if self.l1_state(state, core, line) == INVALID:
                problems.append(
                    f"pin-safety: core {core} pins line {line} "
                    f"but holds no copy")
        return problems

    def check_transition(self, state: ProtocolState, event: Event,
                         succ: ProtocolState) -> List[str]:
        """Postcondition checks on one fired transition.

        These re-verify protocol obligations *independently of the guards*
        (a buggy guard cannot vouch for itself):

        * a PIN must not target a CPT-resident line (§5.1.5);
        * after a deferred GetX* attempt, every deferring sharer must be
          CPT-resident — this is the whole starvation argument of §6.3:
          once it unpins, it cannot re-pin until the write Clears.
        """
        problems: List[str] = []
        if event.kind == "PIN" and event.line in state.cpt[event.core]:
            problems.append(
                f"cpt-respect: core {event.core} pinned line {event.line} "
                f"while it is in its Cannot-Pin Table")
        if event.kind == "WRITE_DIR" \
                and state.writes[self._idx(event.core, event.line)] \
                == W_RETRY \
                and not self.completes_write(state, event):
            for other, line in sorted(succ.pinned):
                if other != event.core and line == event.line \
                        and line not in succ.cpt[other]:
                    problems.append(
                        f"cpt-starvation: core {other} defers the GetX* of "
                        f"core {event.core} on line {line} without being "
                        f"inserted into its Cannot-Pin Table")
        return problems

    def completes_write(self, state: ProtocolState, event: Event) -> bool:
        """Does firing ``event`` in ``state`` complete a write txn?"""
        if event.kind != "WRITE_DIR":
            return False
        others = [o for o in sorted(self.holders(state, event.line))
                  if o != event.core]
        deferring = any((o, event.line) in state.pinned for o in others)
        return not deferring or "invalidate_pinned" in self.config.mutate
