"""Setuptools shim for environments whose pip lacks PEP 660 support."""

from setuptools import setup

setup()
