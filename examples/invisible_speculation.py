#!/usr/bin/env python3
"""Extension study: Pinned Loads on an invisible-speculation defense.

InvisiSpec-class schemes let pre-VP loads execute *invisibly* (no cache
side effects) but must re-access memory to validate each load at its VP,
and the load cannot retire until the validation completes.  Under the
Comprehensive threat model the VP arrives late, so validations serialize
near the head of the ROB — exactly the stall Pinned Loads removes.

Run:  python examples/invisible_speculation.py [benchmark]
"""

import sys

from repro import (DefenseKind, PinningMode, SPEC17_NAMES, SystemConfig,
                   ThreatModel, run_simulation, spec17_workload)


def main() -> None:
    bench = sys.argv[1] if len(sys.argv) > 1 else "fotonik3d_r"
    if bench not in SPEC17_NAMES:
        raise SystemExit(f"unknown benchmark {bench!r}")
    workload = spec17_workload(bench, instructions=3000)
    base = SystemConfig()
    unsafe = run_simulation(base, workload)

    print(f"invisible speculation on {bench} "
          f"(validate-at-VP, {workload.total_instructions} instructions)\n")
    print(f"{'configuration':<22}{'norm CPI':>10}{'invisible':>11}"
          f"{'validations':>13}")
    for label, threat, pinning in [
            ("comp", ThreatModel.MCV, PinningMode.NONE),
            ("comp + LP", ThreatModel.MCV, PinningMode.LATE),
            ("comp + EP", ThreatModel.MCV, PinningMode.EARLY),
            ("spectre", ThreatModel.CTRL, PinningMode.NONE)]:
        config = base.with_defense(DefenseKind.INVISI, threat, pinning)
        result = run_simulation(config, workload)
        stats = result.core_stats[0]
        print(f"{label:<22}{result.cycles / unsafe.cycles:>10.3f}"
              f"{stats.get('loads_issued_invisible', 0):>11.0f}"
              f"{stats.get('validations_completed', 0):>13.0f}")

    print("\nEvery invisibly-performed load pays a second (visible) access")
    print("at its VP.  Pinning moves the VP earlier, so the validations")
    print("start sooner and overlap — most of the Comp overhead vanishes.")


if __name__ == "__main__":
    main()
