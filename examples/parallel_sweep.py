#!/usr/bin/env python3
"""Multithreaded sweep: Pinned Loads on shared-memory workloads.

Runs a handful of SPLASH2/PARSEC-like 8-thread workloads across the
defense grid (DOM scheme), printing normalized CPIs plus the coherence
side of the story: deferred-write retries and CPT pressure — the paper's
§9.1.3 / §9.2.2 measurements in miniature.

Run:  python examples/parallel_sweep.py [insns_per_thread]
"""

import sys

from repro import (DefenseKind, PinningMode, SystemConfig, ThreatModel,
                   parallel_workload, run_simulation)

APPS = ["fft", "raytrace", "radiosity", "x264"]


def main() -> None:
    insns = int(sys.argv[1]) if len(sys.argv) > 1 else 800
    base = SystemConfig(num_cores=8)
    header = (f"{'app':<12}{'comp':>8}{'lp':>8}{'ep':>8}{'spectre':>9}"
              f"{'wr-retries':>12}{'cpt-max':>9}")
    print(f"DOM defense, 8 threads, {insns} instructions/thread")
    print(header)
    for app in APPS:
        workload = parallel_workload(app, instructions_per_thread=insns)
        unsafe = run_simulation(base, workload)
        row = {}
        ep_result = None
        for label, threat, pinning in [
                ("comp", ThreatModel.MCV, PinningMode.NONE),
                ("lp", ThreatModel.MCV, PinningMode.LATE),
                ("ep", ThreatModel.MCV, PinningMode.EARLY),
                ("spectre", ThreatModel.CTRL, PinningMode.NONE)]:
            config = base.with_defense(DefenseKind.DOM, threat, pinning)
            result = run_simulation(config, workload)
            row[label] = result.cycles / unsafe.cycles
            if label == "ep":
                ep_result = result
        retries = ep_result.mem_stats.get("write_retries", 0)
        cpt_max = max(stats.get("cpt_max_occupancy", 0)
                      for stats in ep_result.pinning_stats.values())
        print(f"{app:<12}{row['comp']:>8.3f}{row['lp']:>8.3f}"
              f"{row['ep']:>8.3f}{row['spectre']:>9.3f}"
              f"{retries:>12.0f}{cpt_max:>9.0f}")
    print("\nwr-retries: writes deferred because the target line was")
    print("pinned by another core (paper: rare).  cpt-max: most lines a")
    print("Cannot-Pin Table ever held (paper: fits in 4 entries).")


if __name__ == "__main__":
    main()
