#!/usr/bin/env python3
"""The attack surface Pinned Loads closes: MCV-induced squash-and-replay.

MCV-based speculative attacks (Ragab et al. 2021, Skarlatos et al. 2021 —
the paper's §10) need a victim load that *performs* speculatively and is
then squashed by a coherence invalidation from an attacker core, replaying
the victim's transient window at will.

This example builds that scenario directly: a victim core that keeps
reading a shared line deep in its speculative window, and an attacker core
that keeps writing it.  It then shows, per configuration:

* Unsafe          — the victim suffers repeated MCV squashes (the replay
                    channel exists);
* Fence-Comp      — no MCV squashes, but at a large cost;
* Fence-Comp + EP — still zero MCV squashes (pinned loads defer the
                    attacker's invalidations), at much lower cost.

Run:  python examples/mcv_attack_window.py
"""

from repro import (DefenseKind, MicroOp, OpClass, PinningMode, SystemConfig,
                   ThreatModel, Trace, Workload, run_simulation)

SHARED_LINE = 0x2000


def victim_trace(rounds: int) -> Trace:
    """A victim that reads the shared secret-dependent line while older
    work (an FP chain and an older load) keeps it speculative."""
    uops = []
    index = 0
    for _ in range(rounds):
        uops.append(MicroOp(index, OpClass.FP_ALU,
                            deps=(index - 1,) if index else ()))
        index += 1
        # an older load that resolves slowly keeps the window open
        uops.append(MicroOp(index, OpClass.LOAD, addr=0x100 + 0x40 * index,
                            deps=(index - 1,)))
        index += 1
        # the victim access: performed speculatively, squashable on
        # invalidation of SHARED_LINE
        uops.append(MicroOp(index, OpClass.LOAD, addr=SHARED_LINE))
        index += 1
    return Trace(uops, name="victim")


def attacker_trace(rounds: int) -> Trace:
    """An attacker that repeatedly writes the shared line, firing
    invalidations at the victim."""
    uops = []
    for i in range(rounds):
        if i % 2 == 0:
            uops.append(MicroOp(i, OpClass.STORE, addr=SHARED_LINE))
        else:
            uops.append(MicroOp(i, OpClass.INT_ALU))
    return Trace(uops, name="attacker")


def run(config: SystemConfig, workload: Workload):
    result = run_simulation(config, workload)
    squashes = result.squash_summary()
    return result.cycles, squashes["mcv_inval"] + squashes["mcv_evict"]


def main() -> None:
    workload = Workload([attacker_trace(60), victim_trace(40)],
                        name="mcv-attack")
    base = SystemConfig(num_cores=2)

    configs = [
        ("unsafe", base),
        ("fence-comp", base.with_defense(DefenseKind.FENCE,
                                         ThreatModel.MCV)),
        ("fence-comp + EP", base.with_defense(DefenseKind.FENCE,
                                              ThreatModel.MCV,
                                              PinningMode.EARLY)),
    ]
    print(f"{'configuration':<18}{'cycles':>9}{'MCV squashes':>14}")
    baseline = None
    for label, config in configs:
        cycles, mcv = run(config, workload)
        baseline = baseline or cycles
        print(f"{label:<18}{cycles:>9}{mcv:>14.0f}"
              f"   ({cycles / baseline:.2f}x unsafe)")

    print("\nUnder Unsafe, the attacker can squash-and-replay the victim's")
    print("speculative window (nonzero MCV squashes).  The Comprehensive")
    print("defense closes the channel; Early Pinning keeps it closed while")
    print("recovering most of the lost performance.")


if __name__ == "__main__":
    main()
