#!/usr/bin/env python3
"""Quickstart: measure what Pinned Loads buys a defended processor.

Builds one SPEC17-like workload, runs it on the Unsafe baseline, on a
fence-defended machine under the Comprehensive threat model, and on the
same machine extended with Late and Early Pinning — then prints the
normalized CPIs, reproducing in miniature the experiment of the paper's
Figure 7.

Run:  python examples/quickstart.py [benchmark] [instructions]
"""

import sys

from repro import (DefenseKind, PinningMode, SPEC17_NAMES, SystemConfig,
                   ThreatModel, overhead_pct, run_simulation,
                   spec17_workload)


def main() -> None:
    bench = sys.argv[1] if len(sys.argv) > 1 else "mcf_r"
    instructions = int(sys.argv[2]) if len(sys.argv) > 2 else 4000
    if bench not in SPEC17_NAMES:
        raise SystemExit(f"unknown benchmark {bench!r}; "
                         f"choose from {SPEC17_NAMES}")

    print(f"workload: {bench}, {instructions} instructions\n")
    workload = spec17_workload(bench, instructions=instructions)
    base = SystemConfig()

    unsafe = run_simulation(base, workload)
    print(f"{'configuration':<26}{'cycles':>10}{'norm CPI':>10}"
          f"{'overhead':>10}")
    print(f"{'unsafe (no defense)':<26}{unsafe.cycles:>10}{1.0:>10.3f}"
          f"{'-':>10}")

    cells = [
        ("fence, Comprehensive", DefenseKind.FENCE, ThreatModel.MCV,
         PinningMode.NONE),
        ("fence + Late Pinning", DefenseKind.FENCE, ThreatModel.MCV,
         PinningMode.LATE),
        ("fence + Early Pinning", DefenseKind.FENCE, ThreatModel.MCV,
         PinningMode.EARLY),
        ("fence, Spectre model", DefenseKind.FENCE, ThreatModel.CTRL,
         PinningMode.NONE),
    ]
    for label, defense, threat, pinning in cells:
        config = base.with_defense(defense, threat, pinning)
        result = run_simulation(config, workload)
        norm = result.cycles / unsafe.cycles
        print(f"{label:<26}{result.cycles:>10}{norm:>10.3f}"
              f"{overhead_pct(norm):>9.1f}%")

    print("\nPinned Loads moves the fence-defended machine from the")
    print("Comprehensive-model cost toward the Spectre-model floor by")
    print("making loads invulnerable to memory-consistency squashes early.")


if __name__ == "__main__":
    main()
