#!/usr/bin/env python3
"""Tuning the Cache Shadow Table: the hardware-budget trade-off.

Early Pinning's only nontrivial structure is the CST (Table 1: 444 B +
370 B per core).  This example sweeps its geometry on a miss-heavy
workload and prints performance, false-positive denial rates, and the
estimated silicon cost of each point — the §9.2.1 / §9.2.4 studies as a
user-facing tool.

Run:  python examples/cst_tuning.py [benchmark]
"""

import sys
from dataclasses import replace

from repro import (DefenseKind, PinningMode, SystemConfig,
                   run_simulation, spec17_workload)
from repro.analysis.area import estimate_sram

GEOMETRIES = [
    ("tiny", 4, 4, 10, 2),
    ("half", 6, 4, 20, 2),
    ("paper", 12, 8, 40, 2),
    ("double", 24, 8, 80, 2),
    ("infinite", 12, 8, 40, 2),
]


def main() -> None:
    bench = sys.argv[1] if len(sys.argv) > 1 else "bwaves_r"
    workload = spec17_workload(bench, instructions=3000)
    base = SystemConfig()
    unsafe = run_simulation(base, workload)
    ep = base.with_defense(DefenseKind.FENCE,
                           pinning_mode=PinningMode.EARLY)

    print(f"Fence+EP on {bench}: CST geometry sweep\n")
    print(f"{'config':<10}{'norm CPI':>10}{'dir FP':>9}{'l1 FP':>9}"
          f"{'storage':>10}{'area um2':>10}")
    for label, l1e, l1r, dire, dirr in GEOMETRIES:
        pinning = replace(ep.pinning, l1_cst_entries=l1e,
                          l1_cst_records=l1r, dir_cst_entries=dire,
                          dir_cst_records=dirr,
                          infinite_cst=(label == "infinite"))
        result = run_simulation(replace(ep, pinning=pinning), workload)
        stats = result.pinning_stats[0]
        record_bits = 12 + 24 + 1
        bits = (l1e * l1r + dire * dirr) * record_bits
        area = estimate_sram(bits, word_bits=record_bits * max(l1r, dirr))
        storage = "-" if label == "infinite" else f"{bits // 8} B"
        print(f"{label:<10}{result.cycles / unsafe.cycles:>10.3f}"
              f"{stats.get('cst_dir_fp_rate', 0):>9.4f}"
              f"{stats.get('cst_l1_fp_rate', 0):>9.4f}"
              f"{storage:>10}{area.area_mm2 * 1e6:>10.1f}")

    print("\nThe paper-sized CST trades a few percent of performance for")
    print("under a kilobyte of state per core; an infinite CST marks the")
    print("headroom that remains.")


if __name__ == "__main__":
    main()
