"""Trace-generator edge cases and boundary behaviour."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.isa.uops import OpClass
from repro.workloads import WorkloadProfile, build_trace, build_workload


class TestTinyTraces:
    def test_single_instruction(self):
        trace = build_trace(WorkloadProfile(name="t"), instructions=1)
        assert len(trace) >= 1

    def test_zero_memory_fraction_profile(self):
        profile = WorkloadProfile(name="alu", load_frac=0.01,
                                  store_frac=0.01, branch_frac=0.01)
        trace = build_trace(profile, instructions=500)
        assert trace.count(OpClass.INT_ALU) + trace.count(OpClass.FP_ALU) \
            > 400

    def test_all_hot_accesses_have_small_footprint(self):
        profile = WorkloadProfile(name="hot", warm_frac=0.0,
                                  stream_frac=0.0, hot_lines=32)
        trace = build_trace(profile, instructions=2000)
        assert trace.footprint_lines() <= 32

    def test_pure_streaming_never_repeats(self):
        profile = WorkloadProfile(name="stream", warm_frac=0.0,
                                  stream_frac=1.0, load_frac=0.5,
                                  store_frac=0.0, branch_frac=0.01,
                                  dependent_load_frac=0.0)
        trace = build_trace(profile, instructions=500)
        loads = [u.addr for u in trace if u.is_load]
        assert len(loads) == len(set(loads))


class TestBarrierEdgeCases:
    def test_zero_barriers(self):
        profile = WorkloadProfile(name="nb", barriers=0)
        workload = build_workload(profile, num_threads=2,
                                  instructions_per_thread=200)
        for trace in workload.traces:
            assert trace.count(OpClass.BARRIER) == 0

    def test_many_barriers_still_consistent(self):
        profile = WorkloadProfile(name="mb", barriers=10)
        workload = build_workload(profile, num_threads=3,
                                  instructions_per_thread=100)
        counts = {trace.count(OpClass.BARRIER)
                  for trace in workload.traces}
        assert len(counts) == 1

    def test_barrier_ids_ascend(self):
        profile = WorkloadProfile(name="ids", barriers=4)
        trace = build_workload(profile, num_threads=2,
                               instructions_per_thread=400).traces[0]
        ids = [u.barrier_id for u in trace
               if u.opclass is OpClass.BARRIER]
        assert ids == sorted(ids) == list(range(len(ids)))


class TestCriticalSections:
    def test_lock_sections_balance(self):
        profile = WorkloadProfile(name="locks", lock_frac=0.05,
                                  cs_length=4)
        trace = build_workload(profile, num_threads=2,
                               instructions_per_thread=1000).traces[0]
        atomics = trace.count(OpClass.ATOMIC)
        lock_stores = sum(1 for u in trace
                          if u.is_store and u.addr is not None
                          and u.addr >= 0x5000_0000)
        # releases may be one short if the trace ends inside a section
        assert atomics - 1 <= lock_stores <= atomics

    def test_locks_only_in_multithreaded_builds(self):
        profile = WorkloadProfile(name="locks", lock_frac=0.5)
        trace = build_trace(profile, num_threads=1, instructions=500)
        assert trace.count(OpClass.ATOMIC) == 0


class TestDependenceStructure:
    def test_deps_always_older(self):
        profile = WorkloadProfile(name="deps", dependent_load_frac=0.5)
        trace = build_trace(profile, instructions=2000)
        for uop in trace:
            for dep in uop.deps + uop.data_deps:
                assert dep < uop.index

    def test_store_data_deps_present(self):
        profile = WorkloadProfile(name="st")
        trace = build_trace(profile, instructions=2000)
        stores = [u for u in trace if u.is_store and u.addr < 0x5000_0000]
        assert any(s.data_deps for s in stores)

    @settings(max_examples=20, deadline=None)
    @given(instructions=st.integers(min_value=1, max_value=300),
           seed=st.integers(min_value=0, max_value=1000))
    def test_arbitrary_sizes_build_valid_traces(self, instructions, seed):
        profile = WorkloadProfile(name="any", barriers=2, lock_frac=0.01)
        workload = build_workload(profile, num_threads=2, seed=seed,
                                  instructions_per_thread=instructions)
        for trace in workload.traces:
            assert len(trace) >= instructions
