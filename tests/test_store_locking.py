"""ResultStore concurrent-writer safety: two processes hammering the
same keys in one store directory must never corrupt or quarantine a
good entry (advisory ``flock`` serializes mutations; readers rely on
atomic renames)."""

import multiprocessing
import os

from repro.common.params import SystemConfig
from repro.sim.executor import ResultStore
from repro.sim.runner import run_simulation
from repro.workloads import spec17_workload

KEYS = [f"{index:02d}" + "ab" * 31 for index in range(8)]
ROUNDS = 25


def _hammer(store_dir, result_doc, barrier):
    """Repeatedly put/get every key, racing the sibling process."""
    from repro.sim.results import SimResult
    store = ResultStore(store_dir)
    result = SimResult.from_dict(result_doc)
    barrier.wait()
    for _ in range(ROUNDS):
        for key in KEYS:
            store.put(key, result)
            fetched = store.get(key)
            # None is fine mid-race (sibling holds the write lock during
            # its replace); a *different* result is not
            assert fetched is None \
                or fetched.to_dict() == result_doc


def test_two_process_put_get_hammer(tmp_path):
    workload = spec17_workload("mcf_r", instructions=300)
    result = run_simulation(SystemConfig(), workload)
    doc = result.to_dict()
    store_dir = str(tmp_path / "store")

    ctx = multiprocessing.get_context("fork")
    barrier = ctx.Barrier(2)
    procs = [ctx.Process(target=_hammer,
                         args=(store_dir, doc, barrier))
             for _ in range(2)]
    for proc in procs:
        proc.start()
    for proc in procs:
        proc.join(timeout=120)
        assert proc.exitcode == 0

    # every entry is intact and no good entry was quarantined
    store = ResultStore(store_dir)
    for key in KEYS:
        fetched = store.get(key)
        assert fetched is not None
        assert fetched.to_dict() == doc
    quarantine = os.path.join(store_dir, "quarantine")
    assert not os.path.isdir(quarantine) or not os.listdir(quarantine)


def test_quarantine_revalidates_under_lock(tmp_path):
    """A corrupt entry is quarantined; a valid entry that *looks* stale
    to one reader but was just rewritten by another process survives
    (the quarantine path re-validates under the write lock)."""
    workload = spec17_workload("mcf_r", instructions=300)
    result = run_simulation(SystemConfig(), workload)
    store = ResultStore(str(tmp_path / "store"))
    store.put("deadbeef" * 8, result)

    path = store._path("deadbeef" * 8)
    with open(path, "w", encoding="utf-8") as fh:
        fh.write('{"truncated": ')
    assert store.get("deadbeef" * 8) is None  # corrupt -> quarantined
    assert not os.path.exists(path)

    # after quarantine, a fresh put makes the key healthy again
    store.put("deadbeef" * 8, result)
    assert store.get("deadbeef" * 8).to_dict() == result.to_dict()
