"""System assembly, the run loop, the experiment runner, and caching."""

import pytest

from repro.common.errors import ConfigError, DeadlockError
from repro.common.params import (DefenseKind, PinningMode, SystemConfig,
                                 ThreatModel)
from repro.isa.trace import Trace, Workload
from repro.isa.uops import MicroOp, OpClass
from repro.sim.runner import ExperimentCache, run_simulation, scheme_grid
from repro.sim.system import BarrierManager, System
from repro.workloads import parallel_workload, spec17_workload


class TestBarrierManager:
    def test_releases_when_all_arrive(self):
        barriers = BarrierManager(num_cores=3)
        barriers.arrive(0, 0)
        barriers.arrive(0, 1)
        assert not barriers.released(0)
        barriers.arrive(0, 2)
        assert barriers.released(0)

    def test_barrier_ids_independent(self):
        barriers = BarrierManager(num_cores=1)
        barriers.arrive(0, 0)
        assert barriers.released(0)
        assert not barriers.released(1)

    def test_duplicate_arrivals_idempotent(self):
        barriers = BarrierManager(num_cores=2)
        barriers.arrive(0, 0)
        barriers.arrive(0, 0)
        assert not barriers.released(0)


class TestSystem:
    def test_thread_core_mismatch_rejected(self):
        workload = spec17_workload("namd_r", instructions=50)
        with pytest.raises(ConfigError):
            System(SystemConfig(num_cores=2), workload)

    def test_run_returns_cycles_and_retires_everything(self):
        workload = spec17_workload("namd_r", instructions=300)
        system = System(SystemConfig(), workload)
        cycles = system.run()
        assert cycles > 0
        assert system.total_retired == 300

    def test_max_cycles_guard(self):
        workload = spec17_workload("namd_r", instructions=5000)
        system = System(SystemConfig(), workload)
        with pytest.raises(DeadlockError):
            system.run(max_cycles=10)

    def test_multicore_completion(self):
        workload = parallel_workload("blackscholes", num_threads=8,
                                     instructions_per_thread=200)
        system = System(SystemConfig(num_cores=8), workload)
        system.run()
        assert all(core.done for core in system.cores)


class TestRunSimulation:
    def test_result_fields_populated(self):
        workload = spec17_workload("povray_r", instructions=400)
        result = run_simulation(SystemConfig(), workload)
        assert result.instructions == 400
        assert result.cycles > 0
        assert result.cpi > 0
        assert 0 in result.core_stats
        assert "loads" in result.mem_stats
        assert result.workload_name == "povray_r"

    def test_determinism(self):
        workload = spec17_workload("povray_r", instructions=400)
        a = run_simulation(SystemConfig(), workload)
        b = run_simulation(SystemConfig(), workload)
        assert a.cycles == b.cycles
        assert a.mem_stats == b.mem_stats

    def test_warm_reduces_cycles(self):
        workload = spec17_workload("povray_r", instructions=400)
        cold = run_simulation(SystemConfig(), workload, warm=False)
        warm = run_simulation(SystemConfig(), workload, warm=True)
        assert warm.cycles < cold.cycles

    def test_normalized_cpi_requires_same_workload(self):
        a = run_simulation(SystemConfig(),
                           spec17_workload("povray_r", instructions=200))
        b = run_simulation(SystemConfig(),
                           spec17_workload("namd_r", instructions=200))
        with pytest.raises(ValueError):
            a.normalized_cpi(b)

    def test_per_million_insns(self):
        workload = spec17_workload("povray_r", instructions=1000)
        result = run_simulation(SystemConfig(), workload)
        assert result.per_million_insns(5) == pytest.approx(5000)

    def test_describe_mentions_configuration(self):
        workload = spec17_workload("povray_r", instructions=200)
        config = SystemConfig().with_defense(DefenseKind.DOM,
                                             pinning_mode=PinningMode.LATE)
        result = run_simulation(config, workload)
        text = result.describe()
        assert "dom" in text and "lp" in text


class TestExperimentCache:
    def test_identical_runs_are_cached(self):
        cache = ExperimentCache()
        workload = spec17_workload("povray_r", instructions=200)
        a = cache.run(SystemConfig(), workload)
        b = cache.run(SystemConfig(), workload)
        assert a is b

    def test_different_configs_not_conflated(self):
        cache = ExperimentCache()
        workload = spec17_workload("povray_r", instructions=200)
        a = cache.run(SystemConfig(), workload)
        b = cache.run(SystemConfig().with_defense(DefenseKind.FENCE),
                      workload)
        assert a is not b

    def test_clear(self):
        cache = ExperimentCache()
        workload = spec17_workload("povray_r", instructions=200)
        a = cache.run(SystemConfig(), workload)
        cache.clear()
        assert cache.run(SystemConfig(), workload) is not a


class TestSchemeGrid:
    def test_grid_covers_tables_2_and_3(self):
        grid = scheme_grid()
        assert len(grid) == 12   # 3 schemes x 4 extensions
        for scheme in ("fence", "dom", "stt"):
            for ext in ("comp", "lp", "ep", "spectre"):
                assert f"{scheme}-{ext}" in grid

    def test_grid_cells_are_valid_configs(self):
        base = SystemConfig()
        for defense, threat, pinning in scheme_grid().values():
            base.with_defense(defense, threat, pinning).validate()

    def test_spectre_cells_use_ctrl_model(self):
        grid = scheme_grid()
        for scheme in ("fence", "dom", "stt"):
            _, threat, pinning = grid[f"{scheme}-spectre"]
            assert threat is ThreatModel.CTRL
            assert pinning is PinningMode.NONE
