"""Cache arrays, replacement (with pinned-victim denial), MSHRs, write
buffer — the structures underpinning §5.1.3 and §5.1.2."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.common.params import CacheParams
from repro.mem.cache import CacheArray, LineState, MSHRFile
from repro.mem.replacement import LRUSet
from repro.mem.writebuffer import WriteBuffer


class TestLRUSet:
    def test_insert_and_lookup(self):
        s = LRUSet(ways=2)
        s.insert(1, "a")
        assert 1 in s and s.get(1) == "a"

    def test_insert_beyond_ways_rejected(self):
        s = LRUSet(ways=1)
        s.insert(1, "a")
        with pytest.raises(ValueError):
            s.insert(2, "b")

    def test_victim_is_least_recently_used(self):
        s = LRUSet(ways=3)
        for line in (1, 2, 3):
            s.insert(line, None)
        s.touch(1)
        assert s.pick_victim() == 2

    def test_pinned_victims_are_skipped(self):
        s = LRUSet(ways=3)
        for line in (1, 2, 3):
            s.insert(line, None)
        assert s.pick_victim(evictable=lambda l: l != 1) == 2

    def test_all_pinned_returns_none(self):
        s = LRUSet(ways=2)
        s.insert(1, None)
        s.insert(2, None)
        assert s.pick_victim(evictable=lambda l: False) is None

    def test_skipped_pinned_line_promoted_to_mru(self):
        # paper §5.1.3: denied evictions refresh the victim's recency
        s = LRUSet(ways=3)
        for line in (1, 2, 3):
            s.insert(line, None)
        s.pick_victim(evictable=lambda l: l != 1)   # skips pinned 1
        assert s.pick_victim() == 2   # 1 is now more recent than 2, 3

    @given(st.lists(st.integers(min_value=0, max_value=9), min_size=1,
                    max_size=60))
    def test_matches_reference_lru_model(self, accesses):
        ways = 4
        s = LRUSet(ways=ways)
        model = []
        for line in accesses:
            if line in s:
                s.touch(line)
                model.remove(line)
                model.append(line)
            else:
                if s.full:
                    victim = s.pick_victim()
                    assert victim == model.pop(0)
                    s.remove(victim)
                s.insert(line, None)
                model.append(line)
        assert list(s.lines()) == model


class TestCacheArray:
    def _small(self):
        # 4 sets x 2 ways
        return CacheArray(CacheParams(size_bytes=4 * 2 * 64, ways=2,
                                      latency=1))

    def test_miss_then_fill_then_hit(self):
        cache = self._small()
        assert cache.lookup(5) is None
        cache.fill(5, LineState.SHARED)
        assert cache.lookup(5) is LineState.SHARED

    def test_set_state_requires_residency(self):
        cache = self._small()
        with pytest.raises(KeyError):
            cache.set_state(5, LineState.MODIFIED)

    def test_invalidate(self):
        cache = self._small()
        cache.fill(5, LineState.EXCLUSIVE)
        assert cache.invalidate(5)
        assert not cache.invalidate(5)
        assert cache.lookup(5) is None

    def test_needs_victim_when_set_full(self):
        cache = self._small()
        cache.fill(0, LineState.SHARED)    # set 0
        cache.fill(4, LineState.SHARED)    # set 0 (4 % 4 == 0)
        assert cache.needs_victim(8)       # set 0
        assert not cache.needs_victim(1)   # set 1 empty

    def test_victim_respects_pin_filter(self):
        cache = self._small()
        cache.fill(0, LineState.SHARED)
        cache.fill(4, LineState.SHARED)
        assert cache.pick_victim(8, evictable=lambda l: l != 0) == 4

    def test_lines_map_to_expected_sets(self):
        cache = self._small()
        assert cache.set_of(0) == cache.set_of(4) == 0
        assert cache.set_of(3) == 3

    def test_occupancy(self):
        cache = self._small()
        cache.fill(0, LineState.SHARED)
        cache.fill(1, LineState.SHARED)
        assert cache.occupancy() == 2

    def test_writable_states(self):
        assert LineState.MODIFIED.writable
        assert LineState.EXCLUSIVE.writable
        assert not LineState.SHARED.writable


class TestMSHRFile:
    def test_allocate_and_merge(self):
        mshrs = MSHRFile()
        entry = mshrs.allocate(7, cycle=10)
        entry.callbacks.append(lambda c: None)
        assert mshrs.outstanding(7) is entry
        assert len(mshrs) == 1

    def test_double_allocate_rejected(self):
        mshrs = MSHRFile()
        mshrs.allocate(7, cycle=10)
        with pytest.raises(ValueError):
            mshrs.allocate(7, cycle=11)

    def test_retire_removes(self):
        mshrs = MSHRFile()
        mshrs.allocate(7, cycle=10)
        mshrs.retire(7)
        assert mshrs.outstanding(7) is None


class TestWriteBuffer:
    def test_fifo_order(self):
        wb = WriteBuffer(capacity=4)
        wb.push(1)
        wb.push(2)
        assert wb.head().line == 1
        wb.pop()
        assert wb.head().line == 2

    def test_capacity_enforced(self):
        wb = WriteBuffer(capacity=1)
        wb.push(1)
        assert wb.full
        with pytest.raises(OverflowError):
            wb.push(2)

    def test_free_tracks_occupancy(self):
        wb = WriteBuffer(capacity=3)
        assert wb.free == 3
        wb.push(1)
        assert wb.free == 2

    def test_rejects_zero_capacity(self):
        with pytest.raises(ValueError):
            WriteBuffer(capacity=0)

    def test_empty_head_is_none(self):
        assert WriteBuffer(capacity=2).head() is None
