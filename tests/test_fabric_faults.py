"""The deterministic network-fault proxy, and the supervisor's
degradation-ladder recovery probed *through* it: a partition heals and
the service climbs back to ``full`` without a restart (the fabric
analogue of the chaos campaign's fault-free-equivalence checks)."""

import random
import threading

import pytest

from repro.common.errors import RejectingError
from repro.service.client import ServiceClient
from repro.service.fabric.faults import FaultProxy
from repro.service.jobs import JobSpec
from repro.service.server import ServiceServer
from repro.service.supervisor import Supervisor


@pytest.fixture()
def service(tmp_path):
    """A live in-process service with aggressive ladder timings, plus
    its (supervisor, port); the worker is started."""
    supervisor = Supervisor(str(tmp_path / "service"), jobs=1,
                            fsync=False, heartbeat_s=0.02,
                            degrade_after=1, recover_after=1,
                            probe_after_s=1.0)
    server = ServiceServer(("127.0.0.1", 0), supervisor)
    thread = threading.Thread(target=server.serve_forever,
                              kwargs={"poll_interval": 0.05},
                              daemon=True)
    thread.start()
    supervisor.start()
    try:
        yield supervisor, server.server_address[1]
    finally:
        server.shutdown()
        server.server_close()
        supervisor.drain(wait=True, timeout_s=10.0)
        supervisor.close()


class TestFaultProxy:
    def test_transparent_relay(self, service):
        _supervisor, port = service
        with FaultProxy(upstream_port=port) as proxy:
            client = ServiceClient(proxy.url, retries=1,
                                   backoff_s=0.01)
            assert client.healthz() == {"ok": True}
            assert proxy.counters["accepted"] >= 1
            assert proxy.counters["dropped"] == 0

    def test_seeded_drop_sequence_is_deterministic(self):
        """The proxy's per-connection fault decisions replay exactly
        from the seed (the network-side analogue of chaos seeds)."""
        def decisions(seed, n=32, prob=0.4):
            rng = random.Random(seed)
            return [rng.random() < prob for _ in range(n)]

        # the proxy draws drop decisions from random.Random(seed) in
        # accept order; two proxies with one seed share the sequence
        assert decisions(7) == decisions(7)
        assert decisions(7) != decisions(8)

    def test_drops_surface_as_connection_errors(self, service):
        _supervisor, port = service
        with FaultProxy(upstream_port=port, seed=1,
                        drop_prob=1.0) as proxy:
            client = ServiceClient(proxy.url, retries=1,
                                   backoff_s=0.01)
            with pytest.raises(ConnectionError):
                client.healthz()
            assert proxy.counters["dropped"] >= 1

    def test_partition_refuses_then_heals(self, service):
        _supervisor, port = service
        with FaultProxy(upstream_port=port) as proxy:
            client = ServiceClient(proxy.url, retries=0,
                                   backoff_s=0.01, timeout_s=5.0)
            assert client.healthz() == {"ok": True}
            proxy.partition()
            with pytest.raises(ConnectionError):
                client.healthz()
            assert proxy.counters["refused"] >= 1
            proxy.heal()
            assert client.healthz() == {"ok": True}

    def test_dead_upstream_looks_like_partition(self, tmp_path):
        # nothing listens on the upstream port: the client must see
        # the exact failure shape a partition produces
        with FaultProxy(upstream_port=1) as proxy:
            client = ServiceClient(proxy.url, retries=0,
                                   backoff_s=0.01, timeout_s=5.0)
            with pytest.raises(ConnectionError):
                client.healthz()
            assert proxy.counters["upstream_unreachable"] >= 1


class TestLadderRecoveryThroughPartition:
    def test_partition_heals_and_ladder_climbs_to_full(self, service):
        """Satellite contract: degrade to reject-only, partition the
        network, heal it — the reject-level probe timer plus real jobs
        arriving through the healed proxy climb the ladder back to
        ``full`` with no restart."""
        supervisor, port = service
        with FaultProxy(upstream_port=port, seed=3) as proxy:
            client = ServiceClient(proxy.url, retries=3,
                                   backoff_s=0.01, timeout_s=10.0)
            # walk the ladder to the bottom (degrade_after=1: one
            # failure per rung)
            with supervisor._lock:
                for _ in range(3):
                    supervisor._note_failure("timeout")
            assert supervisor.level == "reject"
            # no retries here: a retry would outwait the probe timer
            # and see the recovered service instead of the rejection
            blunt = ServiceClient(proxy.url, retries=0, timeout_s=10.0)
            with pytest.raises(RejectingError):
                blunt.submit(JobSpec(workload="mcf_r",
                                     instructions=200, threads=1))

            proxy.partition()
            with pytest.raises(ConnectionError):
                client.healthz()

            proxy.heal()
            # the reject-level probe fires after probe_after_s and
            # lifts the service to serial; successful jobs through the
            # healed proxy (recover_after=1) do the rest
            for instructions in (210, 220, 230):
                spec = JobSpec(workload="mcf_r",
                               instructions=instructions, threads=1)
                result = client.run(spec, timeout_s=60.0)
                assert result.cycles > 0
            assert supervisor.level == "full"
            assert supervisor.counters["recoveries"] >= 3
            # the proxy relayed real traffic both sides of the fault
            assert proxy.counters["accepted"] >= 4
            assert proxy.counters["partitions"] == 1