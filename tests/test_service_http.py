"""HTTP surface + client: routes, the wire error taxonomy, and
backpressure, against an in-process ``ServiceServer`` on an ephemeral
port."""

import threading

import pytest

from repro.common.errors import (BadRequestError, DrainingError,
                                 JobNotFoundError, QueueFullError,
                                 ServiceError)
from repro.service.client import ServiceClient
from repro.service.jobs import JobSpec
from repro.service.server import ServiceServer
from repro.service.supervisor import Supervisor

SPEC = JobSpec(workload="mcf_r", scheme="unsafe", instructions=300,
               threads=1)


@pytest.fixture()
def service(tmp_path):
    """(supervisor, client) around a live server; worker started."""
    supervisor = Supervisor(str(tmp_path / "service"), jobs=1,
                            fsync=False, heartbeat_s=0.02)
    server = ServiceServer(("127.0.0.1", 0), supervisor)
    thread = threading.Thread(target=server.serve_forever,
                              kwargs={"poll_interval": 0.05},
                              daemon=True)
    thread.start()
    supervisor.start()
    client = ServiceClient(f"http://127.0.0.1:{server.server_address[1]}",
                           retries=2, backoff_s=0.01, timeout_s=10.0)
    try:
        yield supervisor, client
    finally:
        server.shutdown()
        server.server_close()
        supervisor.drain(wait=True, timeout_s=10.0)
        supervisor.close()


def test_health_and_readiness(service):
    supervisor, client = service
    assert client.healthz() == {"ok": True}
    ready = client.readyz()
    assert ready["ready"] is True
    assert ready["level"] == "full"


def test_submit_wait_and_idempotent_resubmit(service):
    supervisor, client = service
    result = client.run(SPEC, timeout_s=60.0)
    assert result.cycles > 0
    assert result.workload_name == "mcf_r"
    # resubmission: 200 done immediately, result embedded on GET
    doc = client.submit(SPEC)
    assert doc["status"] == "done"
    full = client.job(doc["job"])
    assert full["result"]["cycles"] == result.cycles
    assert supervisor.counters["idempotent_hits"] >= 1


def test_error_taxonomy_crosses_the_wire(service):
    _supervisor, client = service
    with pytest.raises(BadRequestError) as bad:
        client.submit(JobSpec(workload="nosuch_r"))
    assert bad.value.code == "invalid-request"
    with pytest.raises(JobNotFoundError) as missing:
        client.job("0" * 64)
    assert missing.value.code == "not-found"
    with pytest.raises(JobNotFoundError):
        client.job("")  # routes to GET /jobs/ -> no such route
    # malformed JSON body -> 400 with a structured error doc
    with pytest.raises(BadRequestError):
        client._request_once("POST", "/jobs", None)


def test_unknown_spec_field_rejected(service):
    _supervisor, client = service
    import json
    import urllib.request
    request = urllib.request.Request(
        client.base_url + "/jobs",
        data=json.dumps({"workload": "mcf_r", "wat": 1}).encode(),
        method="POST", headers={"Content-Type": "application/json"})
    with pytest.raises(Exception) as excinfo:
        urllib.request.urlopen(request, timeout=10.0)
    assert excinfo.value.code == 400


def test_queue_full_is_429_with_retry_after(tmp_path):
    # worker never started, capacity 1: the second distinct job trips
    # admission control
    supervisor = Supervisor(str(tmp_path / "svc"), jobs=1,
                            queue_capacity=1, fsync=False)
    server = ServiceServer(("127.0.0.1", 0), supervisor)
    thread = threading.Thread(target=server.serve_forever,
                              kwargs={"poll_interval": 0.05},
                              daemon=True)
    thread.start()
    client = ServiceClient(f"http://127.0.0.1:{server.server_address[1]}",
                           retries=0, timeout_s=10.0)
    try:
        client.submit(SPEC)
        other = JobSpec(workload="mcf_r", scheme="unsafe",
                        instructions=301, threads=1)
        with pytest.raises(QueueFullError) as excinfo:
            client.submit(other)
        assert excinfo.value.code == "queue-full"
        assert excinfo.value.retry_after_s >= 1
    finally:
        server.shutdown()
        server.server_close()
        supervisor.close()


def test_drain_flips_readiness_and_refuses_jobs(service):
    supervisor, client = service
    assert client.drain() == {"draining": True}
    supervisor.drain(wait=True, timeout_s=10.0)  # join the async drain
    with pytest.raises(DrainingError) as not_ready:
        client._request_once("GET", "/readyz", None)
    assert not_ready.value.code == "draining"
    with pytest.raises(DrainingError):
        client._request_once("POST", "/jobs", SPEC.to_doc())
    assert client.healthz() == {"ok": True}  # alive, just not ready


def test_stats_endpoint(service):
    supervisor, client = service
    stats = client.stats()
    assert stats["level"] == "full"
    assert stats["queue_capacity"] == 64
    assert "counters" in stats


def test_client_backoff_honors_retry_after():
    client = ServiceClient("http://127.0.0.1:1", retries=0,
                           backoff_s=0.1, backoff_cap_s=5.0)
    assert client._delay(0, None) <= 0.1
    assert client._delay(0, 2.5) >= 2.5  # server hint is a floor
    assert client._delay(20, None) <= 5.0  # cap beats exponent
    # deterministic jitter: same seed, same schedule
    a = ServiceClient("http://x", jitter_seed=7)
    b = ServiceClient("http://x", jitter_seed=7)
    assert [a._delay(i, None) for i in range(5)] \
        == [b._delay(i, None) for i in range(5)]


def test_wire_error_doc_roundtrip():
    err = QueueFullError("full up", retry_after_s=3.25)
    clone = ServiceError.from_doc(err.to_doc())
    assert isinstance(clone, QueueFullError)
    assert clone.retry_after_s == 3.25
    assert str(clone) == "full up"
    fallback = ServiceError.from_doc({"code": "never-heard-of-it",
                                      "message": "?"})
    assert type(fallback) is ServiceError
