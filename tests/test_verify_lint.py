"""The determinism/idiom lint: each rule fires on a minimal repro, stays
quiet on the idiomatic fix, and the shipped sources are clean."""

from pathlib import Path

from repro.verify.lint import Finding, lint_paths, lint_source


def rules_of(findings):
    return [finding.rule for finding in findings]


class TestWallClock:
    def test_time_time_flagged(self):
        findings = lint_source("import time\nstart = time.time()\n")
        assert rules_of(findings) == ["wall-clock"]

    def test_perf_counter_flagged(self):
        findings = lint_source("import time\nt = time.perf_counter()\n")
        assert rules_of(findings) == ["wall-clock"]

    def test_datetime_now_flagged(self):
        findings = lint_source(
            "import datetime\nd = datetime.datetime.now()\n")
        assert rules_of(findings) == ["wall-clock"]

    def test_simulated_time_ok(self):
        assert lint_source("now = events.now\n") == []


class TestGlobalRandom:
    def test_module_level_draw_flagged(self):
        findings = lint_source("import random\nx = random.randint(0, 9)\n")
        assert rules_of(findings) == ["global-random"]

    def test_seeded_generator_ok(self):
        source = ("import random\n"
                  "rng = random.Random(1234)\n"
                  "x = rng.randint(0, 9)\n")
        assert lint_source(source) == []


class TestSetIteration:
    def test_for_over_set_literal_flagged(self):
        findings = lint_source("for x in {3, 1, 2}:\n    print(x)\n")
        assert rules_of(findings) == ["set-iteration"]

    def test_for_over_set_difference_flagged(self):
        # `others` is inferred through the BinOp with a set operand
        findings = lint_source("holders = set()\n"
                               "others = holders - {0}\n"
                               "for other in others:\n    pass\n")
        assert rules_of(findings) == ["set-iteration"]

    def test_comprehension_over_set_flagged(self):
        findings = lint_source("xs = [x for x in {1, 2}]\n")
        assert rules_of(findings) == ["set-iteration"]

    def test_annotated_attribute_flagged(self):
        source = ("from typing import Set\n"
                  "class C:\n"
                  "    def __init__(self):\n"
                  "        self.members: Set[int] = set()\n"
                  "    def walk(self):\n"
                  "        for m in self.members:\n"
                  "            print(m)\n")
        assert "set-iteration" in rules_of(lint_source(source))

    def test_set_returning_method_flagged(self):
        source = ("from typing import Set\n"
                  "class D:\n"
                  "    def holders(self) -> Set[int]:\n"
                  "        return set()\n"
                  "entry = D()\n"
                  "for h in entry.holders():\n"
                  "    print(h)\n")
        assert "set-iteration" in rules_of(lint_source(source))

    def test_sorted_wrapping_ok(self):
        assert lint_source("for x in sorted({3, 1, 2}):\n    pass\n") == []

    def test_order_insensitive_reductions_ok(self):
        assert lint_source("total = sum(x for x in {1, 2, 3})\n") == []
        assert lint_source("biggest = max({1, 2, 3})\n") == []

    def test_building_a_set_from_a_set_ok(self):
        assert lint_source("ys = {y + 1 for y in {1, 2}}\n") == []

    def test_conflicting_attribute_annotations_dropped(self):
        """An attribute name that is a set in one class but an ordered
        container in another must not be flagged: sorting an LRU order
        would be a *worse* bug than the one the rule hunts."""
        source = ("from typing import Set\n"
                  "from collections import OrderedDict\n"
                  "class CPT:\n"
                  "    def __init__(self):\n"
                  "        self._lines: Set[int] = set()\n"
                  "class LRU:\n"
                  "    def __init__(self):\n"
                  "        self._lines: 'OrderedDict[int, object]' = "
                  "OrderedDict()\n"
                  "    def victim(self):\n"
                  "        for line in self._lines:\n"
                  "            return line\n")
        assert lint_source(source) == []


class TestImplicitOptional:
    def test_parameter_default_none_flagged(self):
        findings = lint_source(
            "def f(writer: int = None) -> None:\n    pass\n")
        assert rules_of(findings) == ["implicit-optional"]
        assert "writer" in findings[0].message

    def test_keyword_only_parameter_flagged(self):
        findings = lint_source(
            "def f(*, kind: str = None) -> None:\n    pass\n")
        assert rules_of(findings) == ["implicit-optional"]

    def test_optional_annotation_ok(self):
        source = ("from typing import Optional\n"
                  "def f(writer: Optional[int] = None) -> None:\n"
                  "    pass\n")
        assert lint_source(source) == []

    def test_pep604_union_ok(self):
        assert lint_source(
            "def f(writer: 'int | None' = None) -> None:\n    pass\n") == []

    def test_annotated_assignment_flagged(self):
        findings = lint_source("limit: int = None\n")
        assert rules_of(findings) == ["implicit-optional"]


class TestHotPathSlots:
    HOT = "src/repro/core/pipeline.py"
    COLD = "src/repro/analysis/tables.py"

    def test_slotless_class_on_hot_path_flagged(self):
        findings = lint_source("class Entry:\n    pass\n", path=self.HOT)
        assert rules_of(findings) == ["hot-path-slots"]
        assert "Entry" in findings[0].message

    def test_mem_package_is_hot(self):
        findings = lint_source("class MSHR:\n    pass\n",
                               path="src/repro/mem/cache.py")
        assert rules_of(findings) == ["hot-path-slots"]

    def test_slotted_class_ok(self):
        source = "class Entry:\n    __slots__ = ('a', 'b')\n"
        assert lint_source(source, path=self.HOT) == []

    def test_annotated_slots_ok(self):
        source = ("from typing import Tuple\n"
                  "class Entry:\n"
                  "    __slots__: Tuple[str, ...] = ('a',)\n")
        assert lint_source(source, path=self.HOT) == []

    def test_enum_and_error_classes_exempt(self):
        source = ("import enum\n"
                  "class Kind(enum.Enum):\n    A = 1\n"
                  "class PipelineError(Exception):\n    pass\n")
        assert lint_source(source, path=self.HOT) == []

    def test_decorated_class_exempt(self):
        # dataclasses and friends manage their own layout
        source = ("from dataclasses import dataclass\n"
                  "@dataclass\n"
                  "class Entry:\n    a: int = 0\n")
        assert lint_source(source, path=self.HOT) == []

    def test_cold_path_not_flagged(self):
        assert lint_source("class Table:\n    pass\n",
                           path=self.COLD) == []


class TestHotPathAllocation:
    def test_list_display_in_hot_function_flagged(self):
        source = ("def tick():  # repro: hot\n"
                  "    scratch = []\n"
                  "    return scratch\n")
        assert rules_of(lint_source(source)) == ["hot-path-allocation"]

    def test_comprehension_and_lambda_flagged(self):
        source = ("def scan(items):  # repro: hot\n"
                  "    picked = [x for x in items if x]\n"
                  "    key = lambda x: x.index\n"
                  "    return picked, key\n")
        assert sorted(rules_of(lint_source(source))) == \
            ["hot-path-allocation", "hot-path-allocation"]

    def test_nested_def_flagged_once(self):
        # the nested def is one finding; its body is not re-scanned
        source = ("def tick():  # repro: hot\n"
                  "    def helper():\n"
                  "        return [1, 2]\n"
                  "    return helper\n")
        findings = lint_source(source)
        assert rules_of(findings) == ["hot-path-allocation"]
        assert findings[0].line == 2

    def test_unmarked_function_not_flagged(self):
        assert lint_source("def tick():\n    return []\n") == []

    def test_calls_and_tuples_ok(self):
        # tuples and constructor calls are allowed: event args and ROB
        # entries are genuine per-event allocations, not scratch state
        source = ("def tick(entry, heap):  # repro: hot\n"
                  "    heap.append((1, 2, entry))\n"
                  "    return dict()\n")
        assert lint_source(source) == []

    def test_waivable(self):
        source = ("def tick(waiters, dep, entry):  # repro: hot\n"
                  "    waiters[dep] = [entry]"
                  "  # repro: allow-hot-path-allocation\n")
        assert lint_source(source) == []

    def test_copy_call_flagged(self):
        source = ("def tick(flags):  # repro: hot\n"
                  "    snapshot = flags.copy()\n"
                  "    return snapshot\n")
        findings = lint_source(source)
        assert rules_of(findings) == ["hot-path-allocation"]
        assert "flags.copy()" in findings[0].message

    def test_slice_copy_flagged(self):
        source = ("def tick(col, head, tail):  # repro: hot\n"
                  "    window = col[head:tail]\n"
                  "    return window\n")
        findings = lint_source(source)
        assert rules_of(findings) == ["hot-path-allocation"]
        assert "slice-copy" in findings[0].message

    def test_slice_store_and_delete_ok(self):
        # compaction writes (``wl[w:] = []``-style del) are in-place
        # mutations of the column, not per-call copies
        source = ("def tick(wl, w):  # repro: hot\n"
                  "    del wl[w:]\n"
                  "    wl[0] = 1\n")
        assert lint_source(source) == []

    def test_dict_view_iteration_flagged(self):
        source = ("def tick(waiters):  # repro: hot\n"
                  "    for dep, entries in waiters.items():\n"
                  "        entries.clear()\n")
        findings = lint_source(source)
        assert rules_of(findings) == ["hot-path-allocation"]
        assert "slot map" in findings[0].message

    def test_dict_attr_iteration_flagged(self):
        # the attribute is known to be a dict from its annotation
        # elsewhere in the linted tree
        source = ("from typing import Dict, List\n"
                  "class Core:\n"
                  "    def __init__(self):\n"
                  "        self._waiters: Dict[int, List[int]] = {}\n"
                  "    def tick(self):  # repro: hot\n"
                  "        for dep in self._waiters:\n"
                  "            pass\n")
        findings = lint_source(source)
        assert rules_of(findings) == ["hot-path-allocation"]
        assert "_waiters" in findings[0].message

    def test_ring_iteration_ok(self):
        # list/ring walks are the supported layout; no dict in sight
        source = ("def tick(ring, qmask, head, tail):  # repro: hot\n"
                  "    for pos in range(head, tail):\n"
                  "        entry = ring[pos & qmask]\n")
        assert lint_source(source) == []

    def test_copy_and_dict_iteration_waivable(self):
        source = ("def tick(flags, waiters):  # repro: hot\n"
                  "    snap = flags.copy()"
                  "  # repro: allow-hot-path-allocation\n"
                  "    for dep in waiters.items():"
                  "  # repro: allow-hot-path-allocation\n"
                  "        pass\n"
                  "    return snap\n")
        assert lint_source(source) == []


class TestWaivers:
    def test_waiver_suppresses_rule_on_its_line(self):
        source = ("import time\n"
                  "t = time.perf_counter()  # repro: allow-wall-clock\n")
        assert lint_source(source) == []

    def test_waiver_is_rule_specific(self):
        source = ("import time\n"
                  "t = time.perf_counter()  # repro: allow-global-random\n")
        assert rules_of(lint_source(source)) == ["wall-clock"]

    def test_waiver_is_line_specific(self):
        source = ("import time\n"
                  "a = time.time()  # repro: allow-wall-clock\n"
                  "b = time.time()\n")
        findings = lint_source(source)
        assert rules_of(findings) == ["wall-clock"]
        assert findings[0].line == 3

    def test_hot_path_slots_waivable(self):
        source = ("class Scratch:  # repro: allow-hot-path-slots\n"
                  "    pass\n")
        assert lint_source(source, path="src/repro/core/x.py") == []


class TestOnTheRepository:
    def test_repro_package_is_clean(self):
        package = Path(__file__).resolve().parent.parent / "src" / "repro"
        findings = lint_paths([package])
        assert findings == [], "\n".join(str(f) for f in findings)

    def test_findings_render_with_location(self):
        finding = Finding("a.py", 3, 7, "wall-clock", "no clocks")
        assert str(finding) == "a.py:3:7: [wall-clock] no clocks"

    def test_cross_file_registry(self, tmp_path):
        (tmp_path / "defs.py").write_text(
            "from typing import Set\n"
            "class DirEntry:\n"
            "    def holders(self) -> Set[int]:\n"
            "        return set()\n")
        (tmp_path / "use.py").write_text(
            "def f(entry):\n"
            "    for h in entry.holders():\n"
            "        print(h)\n")
        findings = lint_paths([tmp_path])
        assert [f.rule for f in findings] == ["set-iteration"]
        assert findings[0].path.endswith("use.py")
