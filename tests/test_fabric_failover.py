"""Federated failover, end to end against real processes: a 3-shard
ring behind seeded fault proxies, one primary shard killed with
``SIGKILL`` mid-sweep, and the sweep must still complete via replica
failover with results bit-identical to a fault-free single-shard
baseline.  This is the acceptance contract for the fabric: the
content-addressed idempotency that makes a crash-restart bit-identical
(``test_service_crash``) is exactly what makes cross-shard
resubmission bit-identical."""

import os
import signal
import socket
import subprocess
import sys
import threading
import time
from pathlib import Path

import pytest

from repro.common.errors import ShardUnavailableError
from repro.service.client import ServiceClient
from repro.service.fabric import FaultProxy, FederatedClient
from repro.service.jobs import JobSpec
from repro.service.server import ServiceServer
from repro.service.supervisor import Supervisor

REPO_SRC = str(Path(__file__).resolve().parents[1] / "src")

#: Long enough (~2s of simulation) that SIGKILL reliably lands while
#: the job is running on its primary.
LONG = JobSpec(workload="mcf_r", scheme="unsafe", instructions=60000,
               threads=1)
SWEEP = [
    LONG,
    JobSpec(workload="mcf_r", scheme="unsafe", instructions=1500,
            threads=1),
    JobSpec(workload="mcf_r", scheme="fence-lp", instructions=1600,
            threads=1),
    JobSpec(workload="radix", scheme="unsafe", instructions=1700,
            threads=1),
]


def free_port():
    with socket.socket() as sock:
        sock.bind(("127.0.0.1", 0))
        return sock.getsockname()[1]


def start_shard(root, port, ring=None, shard_index=None):
    env = dict(os.environ)
    env["PYTHONPATH"] = REPO_SRC + os.pathsep + env.get("PYTHONPATH", "")
    argv = [sys.executable, "-m", "repro", "serve", "--root", str(root),
            "--port", str(port), "--jobs", "1", "--no-fsync"]
    if ring is not None:
        argv += ["--ring", ",".join(ring),
                 "--shard-index", str(shard_index)]
    proc = subprocess.Popen(argv, env=env, stdout=subprocess.DEVNULL,
                            stderr=subprocess.DEVNULL)
    # health-check on the shard's real port, bypassing any proxy
    probe = ServiceClient(f"http://127.0.0.1:{port}", retries=0,
                          timeout_s=5.0)
    deadline = time.monotonic() + 30.0
    while time.monotonic() < deadline:
        try:
            probe.healthz()
            return proc
        except (ConnectionError, OSError):
            if proc.poll() is not None:
                raise AssertionError(
                    f"repro serve exited early with {proc.returncode}")
            time.sleep(0.05)
    proc.kill()
    raise AssertionError("shard never became healthy")


def stop(proc):
    if proc.poll() is None:
        proc.kill()
        proc.wait(timeout=10)


def wait_running(client, job_id, timeout_s=30.0):
    deadline = time.monotonic() + timeout_s
    while time.monotonic() < deadline:
        status = client.job(job_id)["status"]
        if status == "running":
            return
        if status in ("done", "failed"):
            raise AssertionError(f"job finished ({status}) before the "
                                 f"kill could land; raise LONG")
        time.sleep(0.02)
    raise AssertionError("job never started running on its primary")


@pytest.mark.slow
def test_kill9_primary_mid_sweep_is_bit_identical(tmp_path):
    # -- fault-free single-shard baseline ------------------------------
    port = free_port()
    proc = start_shard(tmp_path / "baseline", port)
    try:
        solo = ServiceClient(f"http://127.0.0.1:{port}", retries=3,
                             backoff_s=0.05, timeout_s=10.0)
        baseline = {spec.job_id(): solo.run(spec,
                                            timeout_s=120.0).to_dict()
                    for spec in SWEEP}
    finally:
        stop(proc)

    # -- 3-shard ring, every shard behind a seeded fault proxy ---------
    ports = [free_port() for _ in range(3)]
    proxies = [FaultProxy(upstream_port=p, seed=11 + i,
                          latency_prob=0.3, latency_s=0.02)
               for i, p in enumerate(ports)]
    for proxy in proxies:
        proxy.start()
    ring = [proxy.url for proxy in proxies]
    procs = []
    try:
        for index, port in enumerate(ports):
            procs.append(start_shard(tmp_path / f"shard{index}", port,
                                     ring=ring, shard_index=index))

        fabric = FederatedClient(ring, retries=2, backoff_s=0.05,
                                 jitter_seed=5, timeout_s=10.0)
        long_id = LONG.job_id()
        victim_url = fabric.ring.primary(long_id)
        victim = ring.index(victim_url)

        # shards agree with the client about the ring they form
        survivor_url = next(u for u in ring if u != victim_url)
        ring_doc = fabric.client(survivor_url)._request("GET", "/ring")
        assert ring_doc["ring"] == ring

        fabric.submit_all(SWEEP)
        wait_running(fabric.client(victim_url), long_id)
        os.kill(procs[victim].pid, signal.SIGKILL)  # no drain, no goodbye
        procs[victim].wait(timeout=10)
        assert procs[victim].poll() is not None

        results = fabric.gather(SWEEP, timeout_s=300.0)

        # the sweep completed via failover, not via luck
        assert fabric.counters["failovers"] >= 1
        assert fabric.counters["shard_errors"] >= 1
        # and the long job's replica really is where it was served
        assert fabric.ring.route(long_id)[1] != victim_url

        # bit-identical to the fault-free single-shard run
        assert {job_id: result.to_dict()
                for job_id, result in results.items()} == baseline

        stats = fabric.stats()
        assert stats["shards"][victim_url].get("unreachable")
    finally:
        for proc in procs:
            stop(proc)
        for proxy in proxies:
            proxy.stop()


def test_run_fabric_sweep_records_cells(tmp_path):
    """The bench-side wrapper: a sweep through the fabric comes back as
    one record with per-cell cycles and the fabric's own stats."""
    from repro.sim.bench import run_fabric_sweep
    supervisor = Supervisor(str(tmp_path / "svc"), jobs=1, fsync=False)
    server = ServiceServer(("127.0.0.1", 0), supervisor)
    thread = threading.Thread(target=server.serve_forever,
                              kwargs={"poll_interval": 0.05},
                              daemon=True)
    thread.start()
    supervisor.start()
    try:
        url = f"http://127.0.0.1:{server.server_address[1]}"
        doc = run_fabric_sweep([url], apps=["mcf_r"],
                               schemes=["unsafe", "fence-lp"],
                               instructions=500, timeout_s=120.0)
        assert doc["bench"] == "fabric-sweep"
        assert set(doc["cells"]) == {"mcf_r/unsafe", "mcf_r/fence-lp"}
        assert all(cell["cycles"] > 0 for cell in doc["cells"].values())
        assert doc["fabric"]["counters"]["requests"] >= 2
        assert doc["fabric"]["ring"]["nodes"] == [url]
    finally:
        server.shutdown()
        server.server_close()
        supervisor.drain(wait=True, timeout_s=10.0)
        supervisor.close()


def test_whole_route_down_raises_shard_unavailable(tmp_path):
    """When every replica in a job's route is unreachable, the fabric
    surfaces the documented 503 ``shard-unavailable`` taxonomy error
    instead of a raw socket error."""
    supervisor = Supervisor(str(tmp_path / "svc"), jobs=1, fsync=False)
    server = ServiceServer(("127.0.0.1", 0), supervisor)
    thread = threading.Thread(target=server.serve_forever,
                              kwargs={"poll_interval": 0.05},
                              daemon=True)
    thread.start()
    try:
        with FaultProxy(upstream_port=server.server_address[1]) as proxy:
            fabric = FederatedClient([proxy.url], retries=0,
                                     backoff_s=0.01, timeout_s=5.0)
            proxy.partition()
            with pytest.raises(ShardUnavailableError) as excinfo:
                fabric.submit(SWEEP[1])
            assert excinfo.value.code == "shard-unavailable"
            assert excinfo.value.http_status == 503
            assert fabric.counters["shard_errors"] == 1
    finally:
        server.shutdown()
        server.server_close()
        supervisor.close()
