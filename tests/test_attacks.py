"""The adversarial attack suite: generator determinism, the leakage
oracle's verdicts against the expected table, the mutant self-tests
(an oracle that cannot detect a weakened defense is theater), and the
campaign's bit-identity across seeds, ``--jobs``, and service routing.
"""

import threading

import pytest

from repro.common.errors import BadRequestError
from repro.security.attacks import (ATTACK_CLASSES, attack_cell,
                                    attack_cores, attack_workload)
from repro.security.campaign import (all_scheme_names, expected_verdict,
                                     format_report, matrix_artifact,
                                     run_campaign)
from repro.security.oracle import CHANNELS, leakage_probe
from repro.service.jobs import JobSpec, build_cell
from repro.sim.executor import cache_key


class TestAttackGenerator:
    def test_unknown_inputs_are_rejected(self):
        with pytest.raises(ValueError, match="unknown attack class"):
            attack_workload("rowhammer", 0)
        with pytest.raises(ValueError, match="secret must be"):
            attack_workload("prime_probe", 2)
        with pytest.raises(ValueError, match="seed must be"):
            attack_workload("prime_probe", 0, seed=-1)
        with pytest.raises(ValueError, match="unknown scheme"):
            attack_cell("prime_probe", 0, 0, "nosuch")

    def test_generation_is_a_pure_function_of_its_name(self):
        for attack in ATTACK_CLASSES:
            a = attack_workload(attack, 1, seed=3)
            b = attack_workload(attack, 1, seed=3)
            assert a.fingerprint == b.fingerprint

    def test_pair_variants_share_name_but_not_content(self):
        """The two variants of a pair differ only through the secret:
        same display name (directly comparable result documents), a
        different content fingerprint (distinct cache identities)."""
        for attack in ATTACK_CLASSES:
            v0 = attack_workload(attack, 0, seed=0)
            v1 = attack_workload(attack, 1, seed=0)
            assert v0.name == v1.name
            assert v0.fingerprint != v1.fingerprint

    def test_seeds_randomize_addresses(self):
        assert attack_workload("prime_probe", 0, seed=0).fingerprint \
            != attack_workload("prime_probe", 0, seed=1).fingerprint

    def test_core_counts(self):
        assert attack_cores("xcore_covert") == 2
        assert attack_cores("prime_probe") == 1
        tx_rx = attack_workload("xcore_covert", 0)
        assert len(tx_rx.traces) == 2

    def test_probe_marks_survive_into_traces(self):
        workload = attack_workload("lru_probe", 0)
        (trace,) = workload.traces
        assert len(trace.probe_indices) == 3
        assert all(trace[i].probe for i in trace.probe_indices)


class TestProbeTiming:
    def test_unsafe_run_reports_probe_records(self):
        config, workload = attack_cell("prime_probe", 1, 0, "unsafe")
        from repro.sim.runner import run_simulation
        result = run_simulation(config, workload)
        assert result.probes is not None
        records = result.probes[0]
        assert len(records) == 2
        for record in records:
            assert record["complete"] > record["dispatch"] >= 0

    def test_non_attack_runs_have_no_probe_channel(self):
        config, workload = build_cell("mcf_r", 300, 1, "unsafe")
        from repro.sim.runner import run_simulation
        result = run_simulation(config, workload)
        assert result.probes is None


class TestOracleVerdicts:
    """Key cells of the verdict table, each the subject of a rationale
    paragraph in ``docs/security.md``."""

    def test_unsafe_leaks_every_class(self):
        for attack in ATTACK_CLASSES:
            report = leakage_probe(attack, "unsafe")
            assert report["verdict"] == "leaks", attack
            assert report["leaked_bits"] == 1
            assert "probe_timing" in report["leaking_channels"]

    def test_fence_blocks_every_class(self):
        for attack in ATTACK_CLASSES:
            report = leakage_probe(attack, "fence-comp")
            assert report["verdict"] == "blocks", attack
            assert report["leaking_channels"] == []

    def test_stt_residual_channel_is_the_untainted_register(self):
        # tainted transient address: STT stalls it
        assert leakage_probe("prime_probe", "stt-comp")["verdict"] \
            == "blocks"
        # pure-register transient address: STT has nothing to stall
        assert leakage_probe("secret_reg", "stt-comp")["verdict"] \
            == "leaks"

    def test_dom_residual_channel_is_the_lru_hit(self):
        # cold transient access: DOM stalls the miss
        assert leakage_probe("prime_probe", "dom-comp")["verdict"] \
            == "blocks"
        # resident transient access: DOM permits the hit, LRU reorders
        report = leakage_probe("lru_probe", "dom-comp")
        assert report["verdict"] == "leaks"
        assert "probe_timing" in report["leaking_channels"]
        # by construction the hit/miss *counts* stay symmetric — only
        # timing-shaped channels see the reordered victim choice
        assert "cache_state" not in report["leaking_channels"]

    def test_verdicts_are_seed_stable(self):
        for seed in range(3):
            assert leakage_probe("lru_probe", "dom-comp",
                                 seed=seed)["verdict"] == "leaks"
            assert leakage_probe("lru_probe", "stt-comp",
                                 seed=seed)["verdict"] == "blocks"

    def test_mutants_flip_their_cells(self):
        """The oracle self-test primitive: a weakened defense must be
        observed leaking where the intact one blocks."""
        assert leakage_probe("prime_probe", "dom-comp",
                             mutation="dom-leaky-miss")["verdict"] \
            == "leaks"
        assert leakage_probe("prime_probe", "stt-comp",
                             mutation="stt-blind-taint")["verdict"] \
            == "leaks"


class TestCampaign:
    SCHEMES = ["unsafe", "fence-comp", "dom-comp", "stt-comp"]

    def test_expected_verdict_table_shape(self):
        schemes = all_scheme_names()
        assert len(schemes) == 13
        for attack in ATTACK_CLASSES:
            assert expected_verdict(attack, "unsafe") == "leaks"
            for scheme in schemes:
                if scheme.startswith("fence"):
                    assert expected_verdict(attack, scheme) == "blocks"

    def test_campaign_passes_and_reports_the_matrix(self):
        report = run_campaign(scheme_names=self.SCHEMES,
                              attack_names=list(ATTACK_CLASSES),
                              seeds=1, jobs=1)
        assert report["passed"], report["failures"]
        assert report["channels"] == list(CHANNELS)
        artifact = matrix_artifact(report)
        assert artifact["matrix"] == artifact["expected"]
        assert artifact["matrix"]["secret_reg"]["stt-comp"] == "leaks"
        assert artifact["matrix"]["lru_probe"]["dom-comp"] == "leaks"
        checks = {c["mutation"]: c for c in report["self_test"]}
        assert checks["dom-leaky-miss"]["detected"]
        assert checks["stt-blind-taint"]["detected"]
        text = format_report(report)
        assert "PASS" in text and "oracle has teeth" in text

    def test_campaign_is_jobs_invariant(self):
        kwargs = dict(scheme_names=["unsafe", "dom-comp"],
                      attack_names=["lru_probe"], seeds=2,
                      self_test=False)
        serial = run_campaign(jobs=1, **kwargs)
        parallel = run_campaign(jobs=4, **kwargs)
        assert serial["cells"] == parallel["cells"]
        assert matrix_artifact(serial) == matrix_artifact(parallel)

    def test_campaign_rejects_bad_inputs(self):
        with pytest.raises(ValueError, match="unknown scheme"):
            run_campaign(scheme_names=["nosuch"], seeds=1)
        with pytest.raises(ValueError, match="unknown attack"):
            run_campaign(attack_names=["nosuch"], seeds=1)
        with pytest.raises(ValueError, match="seeds"):
            run_campaign(seeds=0)


class TestAttackCheckpointRoundTrip:
    """Format-5 checkpoints restore the transient machinery: a run of
    an adversarial trace snapshotted mid-flight finishes bit-identical
    to an uninterrupted one (twin uops are persistent ids in the
    externalized immutable graph)."""

    def test_snapshot_mid_transient_restores_bit_identical(self):
        from repro.sim.checkpoint import restore_system, snapshot_system
        from repro.sim.runner import collect_result
        from repro.sim.system import System
        config, workload = attack_cell("prime_probe", 1, 0, "unsafe")
        straight = System(config, workload)
        straight.mem.warm(workload)
        straight.run()
        expected = collect_result(straight).to_dict()
        paused = System(config, workload)
        paused.mem.warm(workload)
        paused.run(stop_cycle=60)  # inside the speculation window
        assert not paused.done
        resumed = restore_system(snapshot_system(paused))
        resumed.run()
        assert collect_result(resumed).to_dict() == expected


class TestServiceCellNames:
    def test_build_cell_resolves_attack_names(self):
        config, workload = build_cell("attack:lru_probe:s1:seed2",
                                      1, 1, "dom-comp")
        direct_config, direct = attack_cell("lru_probe", 1, 2, "dom-comp")
        assert workload.fingerprint == direct.fingerprint
        assert cache_key(config, workload) \
            == cache_key(direct_config, direct)

    def test_instructions_and_threads_do_not_change_identity(self):
        spec_a = JobSpec(workload="attack:prime_probe:s0:seed0",
                         scheme="unsafe", instructions=100, threads=1)
        spec_b = JobSpec(workload="attack:prime_probe:s0:seed0",
                         scheme="unsafe", instructions=9000, threads=4)
        assert spec_a.job_id() == spec_b.job_id()

    def test_malformed_attack_names_are_bad_requests(self):
        for name in ("attack:prime_probe", "attack:prime_probe:s2:seed0",
                     "attack:prime_probe:sX:seed0",
                     "attack:prime_probe:s0:seedX",
                     "attack:nosuch:s0:seed0"):
            with pytest.raises(BadRequestError):
                build_cell(name, 1, 1, "unsafe")
        with pytest.raises(BadRequestError, match="unknown scheme"):
            build_cell("attack:prime_probe:s0:seed0", 1, 1, "nosuch")


class TestServiceRoutedCampaign:
    """Satellite: oracle cells routed through a live ``repro serve``
    shard are content-addressed — the same campaign resubmitted hits
    the supervisor's idempotency path instead of re-simulating."""

    @pytest.fixture()
    def service(self, tmp_path):
        from repro.service.client import ServiceClient
        from repro.service.server import ServiceServer
        from repro.service.supervisor import Supervisor
        supervisor = Supervisor(str(tmp_path / "service"), jobs=1,
                                fsync=False, heartbeat_s=0.02)
        server = ServiceServer(("127.0.0.1", 0), supervisor)
        thread = threading.Thread(target=server.serve_forever,
                                  kwargs={"poll_interval": 0.05},
                                  daemon=True)
        thread.start()
        supervisor.start()
        url = f"http://127.0.0.1:{server.server_address[1]}"
        try:
            yield supervisor, url
        finally:
            server.shutdown()
            server.server_close()
            supervisor.drain(wait=True, timeout_s=10.0)
            supervisor.close()

    def test_service_routed_cells_match_and_cache(self, service):
        supervisor, url = service
        kwargs = dict(scheme_names=["unsafe", "stt-comp"],
                      attack_names=["secret_reg"], seeds=1)
        routed = run_campaign(service_url=url, **kwargs)
        assert routed["passed"], routed["failures"]
        assert routed["service_url"] == url
        local = run_campaign(**kwargs)
        assert matrix_artifact(routed) == matrix_artifact(local)
        # resubmission of the identical campaign: every cell is already
        # journaled + stored, so the service answers from its result
        # store without running a single new simulation
        before = supervisor.counters["idempotent_hits"]
        again = run_campaign(service_url=url, **kwargs)
        assert again["passed"]
        assert supervisor.counters["idempotent_hits"] >= before + 4
