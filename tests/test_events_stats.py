"""Event kernel and statistics containers."""

import math

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.common.events import EventQueue
from repro.common.stats import StatSet, geomean, normalized, overhead_pct


class TestEventQueue:
    def test_events_fire_in_time_order(self):
        q = EventQueue()
        fired = []
        q.schedule(5, lambda: fired.append(5))
        q.schedule(2, lambda: fired.append(2))
        q.schedule(9, lambda: fired.append(9))
        q.run_until(10)
        assert fired == [2, 5, 9]

    def test_ties_fire_in_fifo_order(self):
        q = EventQueue()
        fired = []
        for tag in "abc":
            q.schedule(3, lambda t=tag: fired.append(t))
        q.run_until(3)
        assert fired == ["a", "b", "c"]

    def test_run_until_only_fires_due_events(self):
        q = EventQueue()
        fired = []
        q.schedule(4, lambda: fired.append(4))
        q.schedule(8, lambda: fired.append(8))
        q.run_until(5)
        assert fired == [4]
        assert len(q) == 1

    def test_now_advances_to_run_until_target(self):
        q = EventQueue()
        q.run_until(42)
        assert q.now == 42

    def test_schedule_in_past_rejected(self):
        q = EventQueue()
        q.run_until(10)
        with pytest.raises(ValueError):
            q.schedule(5, lambda: None)

    def test_schedule_after_is_relative_to_now(self):
        q = EventQueue()
        q.run_until(10)
        fired = []
        q.schedule_after(3, lambda: fired.append(q.now))
        q.run_until(13)
        assert fired == [13]

    def test_callback_may_schedule_followup(self):
        q = EventQueue()
        fired = []

        def first():
            fired.append("first")
            q.schedule_after(2, lambda: fired.append("second"))

        q.schedule(1, first)
        q.run_until(5)
        assert fired == ["first", "second"]

    def test_next_time_peeks_earliest(self):
        q = EventQueue()
        assert q.next_time() is None
        q.schedule(7, lambda: None)
        q.schedule(3, lambda: None)
        assert q.next_time() == 3


class TestStatSet:
    def test_counters_default_to_zero(self):
        stats = StatSet()
        assert stats["anything"] == 0

    def test_bump_accumulates(self):
        stats = StatSet()
        stats.bump("x")
        stats.bump("x", 2)
        assert stats["x"] == 3

    def test_set_overrides(self):
        stats = StatSet()
        stats.bump("x", 5)
        stats.set("x", 1)
        assert stats["x"] == 1

    def test_merge_sums_counters(self):
        a, b = StatSet(), StatSet()
        a.bump("x", 1)
        b.bump("x", 2)
        b.bump("y", 3)
        a.merge(b)
        assert a["x"] == 3 and a["y"] == 3

    def test_contains_reflects_touched_keys(self):
        stats = StatSet()
        assert "x" not in stats
        stats.bump("x", 0)
        assert "x" in stats


class TestAggregates:
    def test_geomean_of_equal_values(self):
        assert geomean([2.0, 2.0, 2.0]) == pytest.approx(2.0)

    def test_geomean_known_value(self):
        assert geomean([1.0, 4.0]) == pytest.approx(2.0)

    def test_geomean_rejects_empty(self):
        with pytest.raises(ValueError):
            geomean([])

    def test_geomean_rejects_nonpositive(self):
        with pytest.raises(ValueError):
            geomean([1.0, 0.0])

    @given(st.lists(st.floats(min_value=0.1, max_value=10.0), min_size=1,
                    max_size=20))
    def test_geomean_bounded_by_min_and_max(self, values):
        mean = geomean(values)
        assert min(values) - 1e-9 <= mean <= max(values) + 1e-9

    @given(st.lists(st.floats(min_value=0.1, max_value=10.0), min_size=1,
                    max_size=10),
           st.floats(min_value=0.1, max_value=10.0))
    def test_geomean_scales_multiplicatively(self, values, factor):
        scaled = geomean([v * factor for v in values])
        assert scaled == pytest.approx(geomean(values) * factor, rel=1e-6)

    def test_overhead_pct(self):
        assert overhead_pct(2.126) == pytest.approx(112.6)

    def test_normalized(self):
        norm = normalized({"unsafe": 100, "fence": 212}, "unsafe")
        assert norm["fence"] == pytest.approx(2.12)
        assert norm["unsafe"] == 1.0

    def test_normalized_rejects_zero_baseline(self):
        with pytest.raises(ValueError):
            normalized({"unsafe": 0, "x": 5}, "unsafe")

    def test_geomean_matches_log_definition(self):
        values = [1.5, 2.5, 3.5]
        expected = math.exp(sum(math.log(v) for v in values) / 3)
        assert geomean(values) == pytest.approx(expected)
