"""Configuration dataclasses: defaults, validation, derived values."""

import pytest

from repro.common.errors import ConfigError
from repro.common.params import (COMPREHENSIVE, SPECTRE, CacheParams,
                                 CoreParams, DefenseKind, NetworkParams,
                                 PinnedLoadsParams, PinningMode,
                                 SystemConfig, ThreatModel)


class TestThreatModel:
    def test_levels_are_cumulatively_ordered(self):
        assert (ThreatModel.CTRL.level < ThreatModel.ALIAS.level
                < ThreatModel.EXCEPT.level < ThreatModel.MCV.level)

    def test_aliases_match_paper_vocabulary(self):
        assert SPECTRE is ThreatModel.CTRL
        assert COMPREHENSIVE is ThreatModel.MCV


class TestCoreParams:
    def test_defaults_match_table1(self):
        core = CoreParams()
        assert core.width == 8
        assert core.rob_entries == 192
        assert core.load_queue_entries == 62
        assert core.store_queue_entries == 32

    def test_rejects_zero_width(self):
        with pytest.raises(ConfigError):
            CoreParams(width=0).validate()

    def test_rejects_tiny_rob(self):
        with pytest.raises(ConfigError):
            CoreParams(width=8, rob_entries=4).validate()

    def test_rejects_empty_queues(self):
        with pytest.raises(ConfigError):
            CoreParams(load_queue_entries=0).validate()


class TestCacheParams:
    def test_l1_geometry_matches_table1(self):
        l1 = SystemConfig().l1d
        assert l1.size_bytes == 32 * 1024
        assert l1.ways == 8
        assert l1.sets == 64

    def test_llc_slice_geometry_matches_table1(self):
        llc = SystemConfig().llc_slice
        assert llc.size_bytes == 2 * 1024 * 1024
        assert llc.ways == 16
        assert llc.sets == 2048

    def test_rejects_non_power_of_two_sets(self):
        with pytest.raises(ConfigError):
            CacheParams(size_bytes=3 * 64 * 4, ways=4, latency=1).validate()

    def test_rejects_indivisible_size(self):
        with pytest.raises(ConfigError):
            CacheParams(size_bytes=1000, ways=3, latency=1).validate()


class TestNetworkParams:
    def test_default_mesh_is_4x2(self):
        net = NetworkParams()
        assert net.node_count == 8


class TestPinnedLoadsParams:
    def test_defaults_match_table1(self):
        params = PinnedLoadsParams()
        assert (params.l1_cst_entries, params.l1_cst_records) == (12, 8)
        assert (params.dir_cst_entries, params.dir_cst_records) == (40, 2)
        assert params.w_d == 2
        assert params.cpt_entries == 4
        assert params.lq_id_tag_bits == 24

    def test_rejects_zero_wd(self):
        with pytest.raises(ConfigError):
            PinnedLoadsParams(w_d=0).validate()


class TestSystemConfig:
    def test_default_validates(self):
        SystemConfig().validate()

    def test_eight_core_validates(self):
        SystemConfig(num_cores=8).validate()

    def test_rejects_more_cores_than_mesh_nodes(self):
        with pytest.raises(ConfigError):
            SystemConfig(num_cores=9).validate()

    def test_rejects_pinning_under_spectre(self):
        config = SystemConfig(
            threat_model=SPECTRE,
            pinning=PinnedLoadsParams(mode=PinningMode.EARLY))
        with pytest.raises(ConfigError):
            config.validate()

    def test_with_defense_builds_table3_cell(self):
        config = SystemConfig().with_defense(
            DefenseKind.STT, pinning_mode=PinningMode.EARLY)
        assert config.defense is DefenseKind.STT
        assert config.threat_model is COMPREHENSIVE
        assert config.pinning.mode is PinningMode.EARLY
        config.validate()

    def test_with_defense_preserves_other_fields(self):
        base = SystemConfig(num_cores=8, dram_latency=77)
        derived = base.with_defense(DefenseKind.FENCE)
        assert derived.num_cores == 8
        assert derived.dram_latency == 77

    def test_config_is_hashable_for_experiment_caching(self):
        a = SystemConfig().with_defense(DefenseKind.DOM)
        b = SystemConfig().with_defense(DefenseKind.DOM)
        assert a == b
        assert hash(a) == hash(b)

    def test_num_slices_tracks_mesh(self):
        assert SystemConfig().num_slices == 8
