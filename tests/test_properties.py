"""Property-based end-to-end invariants over randomized workloads.

These drive the full simulator with hypothesis-generated profiles and
check the properties that must hold for *every* workload and configuration:
completion, determinism, pinned-load safety, and the security orderings the
paper's design arguments rest on.
"""

import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.common.params import (DefenseKind, PinnedLoadsParams,
                                 PinningMode, SystemConfig, ThreatModel)
from repro.sim.runner import run_simulation
from repro.workloads import WorkloadProfile, build_workload

PROFILES = st.builds(
    WorkloadProfile,
    name=st.just("prop"),
    load_frac=st.floats(min_value=0.1, max_value=0.35),
    store_frac=st.floats(min_value=0.02, max_value=0.15),
    branch_frac=st.floats(min_value=0.02, max_value=0.25),
    fp_frac=st.floats(min_value=0.0, max_value=0.9),
    mispredict_rate=st.floats(min_value=0.0, max_value=0.15),
    warm_frac=st.floats(min_value=0.0, max_value=0.3),
    stream_frac=st.floats(min_value=0.0, max_value=0.2),
    dependent_load_frac=st.floats(min_value=0.0, max_value=0.5),
    hot_lines=st.integers(min_value=16, max_value=512),
    warm_lines=st.integers(min_value=512, max_value=4096),
)

SLOW = settings(max_examples=12, deadline=None,
                suppress_health_check=[HealthCheck.too_slow])

MODES = st.sampled_from([PinningMode.NONE, PinningMode.LATE,
                         PinningMode.EARLY])
DEFENSES = st.sampled_from([DefenseKind.FENCE, DefenseKind.DOM,
                            DefenseKind.STT])


def config_for(defense, mode):
    return SystemConfig(
        defense=defense, threat_model=ThreatModel.MCV,
        pinning=PinnedLoadsParams(mode=mode))


class TestCompletionAndDeterminism:
    @SLOW
    @given(profile=PROFILES, seed=st.integers(min_value=1, max_value=50),
           defense=DEFENSES, mode=MODES)
    def test_every_configuration_completes(self, profile, seed, defense,
                                           mode):
        workload = build_workload(profile, seed=seed,
                                  instructions_per_thread=300)
        result = run_simulation(config_for(defense, mode), workload)
        assert result.core_stats[0]["retired"] == 300
        assert result.cycles > 0

    @SLOW
    @given(profile=PROFILES, seed=st.integers(min_value=1, max_value=50))
    def test_runs_are_deterministic(self, profile, seed):
        workload = build_workload(profile, seed=seed,
                                  instructions_per_thread=250)
        config = config_for(DefenseKind.FENCE, PinningMode.EARLY)
        assert run_simulation(config, workload).cycles \
            == run_simulation(config, workload).cycles


class TestSecurityInvariants:
    @SLOW
    @given(profile=PROFILES, seed=st.integers(min_value=1, max_value=50),
           mode=st.sampled_from([PinningMode.LATE, PinningMode.EARLY]))
    def test_pinned_loads_never_squashed(self, profile, seed, mode):
        """Paper §4: once pinned, retirement is guaranteed."""
        workload = build_workload(profile, seed=seed,
                                  instructions_per_thread=300)
        result = run_simulation(config_for(DefenseKind.STT, mode), workload)
        squashed_pins = sum(s.get("pinned_squashed", 0)
                            for s in result.pinning_stats.values())
        assert squashed_pins == 0

    @SLOW
    @given(profile=PROFILES, seed=st.integers(min_value=1, max_value=50))
    def test_defended_runs_cost_at_least_unsafe(self, profile, seed):
        """No defense may beat the unsafe machine on the same trace."""
        workload = build_workload(profile, seed=seed,
                                  instructions_per_thread=300)
        unsafe = run_simulation(SystemConfig(), workload)
        fence = run_simulation(config_for(DefenseKind.FENCE,
                                          PinningMode.NONE), workload)
        assert fence.cycles >= unsafe.cycles * 0.98

    @SLOW
    @given(profile=PROFILES, seed=st.integers(min_value=1, max_value=50))
    def test_pinning_never_hurts_fence_comprehensive(self, profile, seed):
        """Pinning only accelerates VP progress; EP/LP should not slow the
        Comp baseline down (small tolerance for timing noise)."""
        workload = build_workload(profile, seed=seed,
                                  instructions_per_thread=300)
        comp = run_simulation(config_for(DefenseKind.FENCE,
                                         PinningMode.NONE), workload)
        ep = run_simulation(config_for(DefenseKind.FENCE,
                                       PinningMode.EARLY), workload)
        assert ep.cycles <= comp.cycles * 1.05

    @SLOW
    @given(profile=PROFILES, seed=st.integers(min_value=1, max_value=50))
    def test_threat_levels_monotone(self, profile, seed):
        """More squash sources to wait for can only delay the VP."""
        workload = build_workload(profile, seed=seed,
                                  instructions_per_thread=300)
        spectre = run_simulation(
            SystemConfig().with_defense(DefenseKind.FENCE,
                                        ThreatModel.CTRL), workload)
        comp = run_simulation(
            SystemConfig().with_defense(DefenseKind.FENCE,
                                        ThreatModel.MCV), workload)
        assert comp.cycles >= spectre.cycles * 0.98


class TestMulticoreProperties:
    @settings(max_examples=6, deadline=None,
              suppress_health_check=[HealthCheck.too_slow])
    @given(seed=st.integers(min_value=1, max_value=30),
           shared=st.floats(min_value=0.0, max_value=0.2),
           mode=MODES)
    def test_shared_memory_runs_complete(self, seed, shared, mode):
        profile = WorkloadProfile(
            name="mt", read_shared_frac=shared,
            write_shared_frac=shared / 2, lock_frac=0.002, barriers=2)
        workload = build_workload(profile, num_threads=4, seed=seed,
                                  instructions_per_thread=200)
        config = SystemConfig(
            num_cores=4, defense=DefenseKind.DOM,
            threat_model=ThreatModel.MCV,
            pinning=PinnedLoadsParams(mode=mode))
        result = run_simulation(config, workload)
        for core_id in range(4):
            assert result.core_stats[core_id]["retired"] == \
                len(workload.traces[core_id])
