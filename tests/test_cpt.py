"""Cannot-Pin Table behaviour (§5.1.5, §6.3)."""

import pytest

from repro.pinning.cpt import CannotPinTable


class TestCannotPinTable:
    def test_insert_and_membership(self):
        cpt = CannotPinTable(capacity=4)
        assert cpt.insert(10)
        assert 10 in cpt
        assert 11 not in cpt

    def test_remove_on_clear_message(self):
        cpt = CannotPinTable(capacity=4)
        cpt.insert(10)
        cpt.remove(10)
        assert 10 not in cpt

    def test_duplicate_insert_is_idempotent(self):
        cpt = CannotPinTable(capacity=1)
        assert cpt.insert(10)
        assert cpt.insert(10)     # same line: no overflow
        assert len(cpt) == 1
        assert not cpt.pinning_blocked

    def test_overflow_refuses_and_blocks_pinning(self):
        cpt = CannotPinTable(capacity=2)
        cpt.insert(1)
        cpt.insert(2)
        assert not cpt.insert(3)
        assert cpt.pinning_blocked
        assert cpt.stats["overflows"] == 1

    def test_blocked_until_half_empty(self):
        """§6.3: after overflow the core stops pinning until the CPT is
        half empty."""
        cpt = CannotPinTable(capacity=4)
        for line in range(4):
            cpt.insert(line)
        assert not cpt.insert(99)
        assert cpt.pinning_blocked
        cpt.remove(0)
        assert cpt.pinning_blocked      # 3 > 4 // 2
        cpt.remove(1)
        assert not cpt.pinning_blocked  # 2 == 4 // 2

    def test_ideal_cpt_never_overflows(self):
        cpt = CannotPinTable(capacity=1, ideal=True)
        for line in range(100):
            assert cpt.insert(line)
        assert not cpt.pinning_blocked
        assert cpt.max_occupancy == 100

    def test_occupancy_statistics(self):
        cpt = CannotPinTable(capacity=4)
        cpt.insert(1)
        cpt.insert(2)
        assert cpt.max_occupancy == 2
        assert 0 < cpt.mean_occupancy <= 2

    def test_overflow_rate(self):
        cpt = CannotPinTable(capacity=1)
        cpt.insert(1)
        cpt.insert(2)   # overflow
        assert cpt.overflow_rate == pytest.approx(0.5)

    def test_rejects_zero_capacity(self):
        with pytest.raises(ValueError):
            CannotPinTable(capacity=0)

    def test_remove_absent_is_noop(self):
        cpt = CannotPinTable(capacity=2)
        cpt.remove(5)
        assert len(cpt) == 0
