"""Address arithmetic and the LazyMinSet order tracker."""

from hypothesis import given
from hypothesis import strategies as st

from repro.common.addr import (line_addr, line_of, offset_in_line, set_index,
                               slice_of)
from repro.common.params import LINE_BYTES
from repro.core.tracking import LazyMinSet


class TestAddr:
    def test_line_of_strips_offset(self):
        assert line_of(0) == 0
        assert line_of(LINE_BYTES - 1) == 0
        assert line_of(LINE_BYTES) == 1

    @given(st.integers(min_value=0, max_value=2**48))
    def test_line_roundtrip(self, addr):
        line = line_of(addr)
        assert line_addr(line) <= addr < line_addr(line + 1)

    @given(st.integers(min_value=0, max_value=2**40))
    def test_offset_bounded(self, addr):
        assert 0 <= offset_in_line(addr) < LINE_BYTES

    @given(st.integers(min_value=0, max_value=2**40))
    def test_set_index_in_range(self, line):
        assert 0 <= set_index(line, 64) < 64

    def test_set_index_uses_low_bits(self):
        assert set_index(0b101_0110, 16) == 0b0110

    @given(st.integers(min_value=0, max_value=2**40))
    def test_slice_in_range(self, line):
        assert 0 <= slice_of(line, 8) < 8

    def test_slice_spreads_consecutive_lines(self):
        slices = {slice_of(line, 8) for line in range(64)}
        assert len(slices) == 8   # hash must not alias a strided walk

    def test_slice_is_deterministic(self):
        assert slice_of(12345, 8) == slice_of(12345, 8)


class TestLazyMinSet:
    def test_empty_min_is_none(self):
        tracker = LazyMinSet()
        assert tracker.min() is None
        assert tracker.none_below(0)

    def test_min_tracks_insertions(self):
        tracker = LazyMinSet()
        tracker.add(5)
        tracker.add(3)
        tracker.add(9)
        assert tracker.min() == 3

    def test_discard_reveals_next_min(self):
        tracker = LazyMinSet()
        for v in (4, 7, 2):
            tracker.add(v)
        tracker.discard(2)
        assert tracker.min() == 4

    def test_none_below_semantics(self):
        tracker = LazyMinSet()
        tracker.add(10)
        assert tracker.none_below(10)      # own index does not count
        assert tracker.none_below(5)
        assert not tracker.none_below(11)

    def test_duplicate_add_is_idempotent(self):
        tracker = LazyMinSet()
        tracker.add(3)
        tracker.add(3)
        tracker.discard(3)
        assert tracker.min() is None

    def test_discard_absent_is_noop(self):
        tracker = LazyMinSet()
        tracker.add(1)
        tracker.discard(99)
        assert tracker.min() == 1

    def test_clear(self):
        tracker = LazyMinSet()
        tracker.add(1)
        tracker.clear()
        assert tracker.min() is None
        assert len(tracker) == 0

    @given(st.lists(st.tuples(st.booleans(),
                              st.integers(min_value=0, max_value=50)),
                    max_size=200))
    def test_matches_reference_set_model(self, operations):
        tracker = LazyMinSet()
        model = set()
        for is_add, value in operations:
            if is_add:
                tracker.add(value)
                model.add(value)
            else:
                tracker.discard(value)
                model.discard(value)
            assert tracker.min() == (min(model) if model else None)
            assert len(tracker) == len(model)

    def test_readd_after_discard(self):
        tracker = LazyMinSet()
        tracker.add(5)
        tracker.discard(5)
        tracker.add(5)
        assert tracker.min() == 5
