"""Checkpoint/resume: a run paused at any cycle boundary, serialized,
restored, and resumed must finish with *bit-identical* results.

The contracts under test:

* round-trip equivalence holds for every scheme — unsafe, InvisiSpec,
  and Fence/DOM/STT each under Late and Early Pinning — and with the
  chaos engine's RNG/backoff state in the checkpoint;
* ``System.run(stop_cycle=...)`` pauses at a clean boundary and resumes
  from ``self.cycles``;
* checkpoints are refused (``CheckpointError``) for sanitized systems,
  corrupt blobs, and format-version mismatches — never silently wrong;
* ``run_with_checkpoints`` leaves a rolling checkpoint that a fresh
  process can resume to the same statistics.
"""

import dataclasses
import os
import pickle

import pytest

from repro.common.errors import CheckpointError
from repro.common.params import (COMPREHENSIVE, ChaosConfig, DefenseKind,
                                 PinningMode, SystemConfig)
from repro.sim.checkpoint import (CHECKPOINT_FORMAT_VERSION, load_checkpoint,
                                  restore_system, run_with_checkpoints,
                                  save_checkpoint, snapshot_system)
from repro.sim.runner import collect_result
from repro.sim.system import System
from repro.workloads import parallel_workload, spec17_workload

BASE = SystemConfig()

#: Every scheme of the paper's evaluation: the unprotected baseline,
#: the InvisiSpec-class comparison point, and each delay-based defense
#: under both pinning flavors.
SCHEMES = {
    "unsafe": BASE,
    "invisi": BASE.with_defense(DefenseKind.INVISI, COMPREHENSIVE,
                                PinningMode.NONE),
    "fence-lp": BASE.with_defense(DefenseKind.FENCE, COMPREHENSIVE,
                                  PinningMode.LATE),
    "fence-ep": BASE.with_defense(DefenseKind.FENCE, COMPREHENSIVE,
                                  PinningMode.EARLY),
    "dom-lp": BASE.with_defense(DefenseKind.DOM, COMPREHENSIVE,
                                PinningMode.LATE),
    "dom-ep": BASE.with_defense(DefenseKind.DOM, COMPREHENSIVE,
                                PinningMode.EARLY),
    "stt-lp": BASE.with_defense(DefenseKind.STT, COMPREHENSIVE,
                                PinningMode.LATE),
    "stt-ep": BASE.with_defense(DefenseKind.STT, COMPREHENSIVE,
                                PinningMode.EARLY),
}


def small_workload(instructions=300):
    return spec17_workload("mcf_r", instructions=instructions)


def _run_fresh(config, workload):
    system = System(config, workload)
    system.mem.warm(workload)
    system.run()
    return system


class TestRoundTripEveryScheme:
    @pytest.mark.parametrize("scheme", sorted(SCHEMES), ids=sorted(SCHEMES))
    def test_resume_is_bit_identical(self, scheme):
        config = SCHEMES[scheme]
        workload = small_workload()
        reference = _run_fresh(config, workload)
        expected = collect_result(reference).to_dict()

        paused = System(config, workload)
        paused.mem.warm(workload)
        stop = max(1, reference.cycles // 2)
        paused.run(stop_cycle=stop)
        assert not paused.done
        assert paused.cycles == stop
        resumed = restore_system(snapshot_system(paused))
        resumed.run()
        assert resumed.done
        assert collect_result(resumed).to_dict() == expected

    def test_resume_with_chaos_state(self):
        """RNG state, NACK backoff counters, and pending chaos events all
        live in the checkpoint: the resumed chaos run must replay the
        exact fault schedule of an uninterrupted one."""
        workload = small_workload(500)
        config = dataclasses.replace(
            SCHEMES["fence-ep"],
            chaos=ChaosConfig(seed=7, wb_spike_interval=200))
        reference = _run_fresh(config, workload)
        expected = collect_result(reference).to_dict()
        paused = System(config, workload)
        paused.mem.warm(workload)
        paused.run(stop_cycle=max(1, reference.cycles // 3))
        resumed = restore_system(snapshot_system(paused))
        resumed.run()
        assert collect_result(resumed).to_dict() == expected

    @pytest.mark.parametrize("scheme", sorted(SCHEMES), ids=sorted(SCHEMES))
    def test_chaos_resume_is_bit_identical(self, scheme):
        """The chaos round trip must hold per scheme, not just on one
        cell: each defense family checkpoints different column state
        (taint roots, pin tables, invisible buffers), and all of it has
        to coexist with the chaos RNG/backoff state in the v4 format."""
        workload = small_workload(500)
        config = dataclasses.replace(
            SCHEMES[scheme],
            chaos=ChaosConfig(seed=11, wb_spike_interval=150))
        reference = _run_fresh(config, workload)
        expected = collect_result(reference).to_dict()
        paused = System(config, workload)
        paused.mem.warm(workload)
        paused.run(stop_cycle=max(1, reference.cycles // 3))
        assert not paused.done
        resumed = restore_system(snapshot_system(paused))
        resumed.run()
        assert resumed.done
        assert collect_result(resumed).to_dict() == expected

    def test_multithreaded_round_trip(self):
        workload = parallel_workload("radix", num_threads=2,
                                     instructions_per_thread=250)
        config = SystemConfig(num_cores=2).with_defense(
            DefenseKind.FENCE, COMPREHENSIVE, PinningMode.EARLY)
        reference = _run_fresh(config, workload)
        expected = collect_result(reference).to_dict()
        paused = System(config, workload)
        paused.mem.warm(workload)
        paused.run(stop_cycle=max(1, reference.cycles // 2))
        resumed = restore_system(snapshot_system(paused))
        resumed.run()
        assert collect_result(resumed).to_dict() == expected


class TestStopCycle:
    def test_pause_then_resume_in_place(self):
        """Resuming the *same* object (no serialization) also matches."""
        workload = small_workload()
        config = SCHEMES["fence-lp"]
        reference = _run_fresh(config, workload)
        system = System(config, workload)
        system.mem.warm(workload)
        for stop in (50, 150, 400):
            system.run(stop_cycle=stop)
            if system.done:
                break
            assert system.cycles == stop
        system.run()
        assert system.cycles == reference.cycles

    def test_stop_past_completion_is_harmless(self):
        workload = small_workload()
        reference = _run_fresh(BASE, workload)
        system = System(BASE, workload)
        system.mem.warm(workload)
        system.run(stop_cycle=reference.cycles * 10)
        assert system.done
        assert system.cycles == reference.cycles


class TestCheckpointFiles:
    def test_save_load_round_trip(self, tmp_path):
        workload = small_workload()
        config = SCHEMES["dom-ep"]
        reference = _run_fresh(config, workload)
        expected = collect_result(reference).to_dict()
        system = System(config, workload)
        system.mem.warm(workload)
        system.run(stop_cycle=max(1, reference.cycles // 2))
        path = str(tmp_path / "run.ckpt")
        save_checkpoint(system, path)
        resumed = load_checkpoint(path)
        resumed.run()
        assert collect_result(resumed).to_dict() == expected

    def test_run_with_checkpoints_matches_plain_run(self, tmp_path):
        workload = small_workload()
        config = SCHEMES["stt-ep"]
        reference = _run_fresh(config, workload)
        system = System(config, workload)
        system.mem.warm(workload)
        path = str(tmp_path / "rolling.ckpt")
        cycles = run_with_checkpoints(system, path, interval=100)
        assert cycles == reference.cycles
        # the rolling checkpoint from mid-run is itself resumable
        assert os.path.exists(path)
        resumed = load_checkpoint(path)
        assert not resumed.done
        resumed.run()
        assert collect_result(resumed).to_dict() \
            == collect_result(reference).to_dict()

    def test_sanitized_system_is_refused(self):
        workload = small_workload()
        config = dataclasses.replace(SCHEMES["fence-ep"], sanitize=True)
        system = System(config, workload)
        with pytest.raises(CheckpointError):
            snapshot_system(system)

    def test_corrupt_blob_is_refused(self, tmp_path):
        path = str(tmp_path / "bad.ckpt")
        with open(path, "wb") as fh:
            fh.write(b"not a pickle")
        with pytest.raises(CheckpointError):
            load_checkpoint(path)

    def test_format_mismatch_is_refused(self):
        blob = pickle.dumps({"format": CHECKPOINT_FORMAT_VERSION + 1,
                             "cycle": 0, "system": None})
        with pytest.raises(CheckpointError):
            restore_system(blob)

    def test_v3_blob_is_refused_with_versions_named(self):
        """A pre-column (format 3) checkpoint is refused outright — no
        silent migration of per-uop handle state into columns — and the
        error names both versions so the operator knows it is a format
        gap, not corruption."""
        blob = pickle.dumps({"format": 3, "cycle": 120, "system": None})
        with pytest.raises(CheckpointError) as excinfo:
            restore_system(blob)
        message = str(excinfo.value)
        assert "3" in message
        assert str(CHECKPOINT_FORMAT_VERSION) in message

    def test_v3_file_is_refused(self, tmp_path):
        path = str(tmp_path / "old-format.ckpt")
        with open(path, "wb") as fh:
            fh.write(pickle.dumps({"format": 3, "cycle": 120,
                                   "system": None}))
        with pytest.raises(CheckpointError, match="format"):
            load_checkpoint(path)

    def test_missing_file_is_refused(self, tmp_path):
        with pytest.raises(CheckpointError):
            load_checkpoint(str(tmp_path / "absent.ckpt"))
