"""Mesh network geometry and SimResult accessors."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.common.params import NetworkParams, SystemConfig
from repro.mem.network import MeshNetwork
from repro.sim.runner import run_simulation
from repro.workloads import spec17_workload


class TestMeshGeometry:
    def setup_method(self):
        self.net = MeshNetwork(NetworkParams(mesh_cols=4, mesh_rows=2,
                                             hop_latency=1))

    def test_self_distance_zero(self):
        for node in range(8):
            assert self.net.hops(node, node) == 0

    def test_neighbours_one_hop(self):
        assert self.net.hops(0, 1) == 1
        assert self.net.hops(0, 4) == 1    # vertically adjacent (row 2)

    def test_manhattan_corner_to_corner(self):
        assert self.net.hops(0, 7) == 4    # (0,0) -> (3,1)

    @given(st.integers(min_value=0, max_value=7),
           st.integers(min_value=0, max_value=7))
    def test_symmetry(self, a, b):
        assert self.net.hops(a, b) == self.net.hops(b, a)

    @given(st.integers(min_value=0, max_value=7),
           st.integers(min_value=0, max_value=7),
           st.integers(min_value=0, max_value=7))
    def test_triangle_inequality(self, a, b, c):
        assert self.net.hops(a, c) <= self.net.hops(a, b) \
            + self.net.hops(b, c)

    def test_hop_latency_scales(self):
        fast = MeshNetwork(NetworkParams(hop_latency=1))
        slow = MeshNetwork(NetworkParams(hop_latency=3))
        assert slow.latency(0, 7) == 3 * fast.latency(0, 7)

    def test_send_accounts_messages_and_cycles(self):
        lat = self.net.send(0, 7, "getS")
        assert lat == 4
        assert self.net.message_count() == 1
        assert self.net.message_count("getS") == 1
        assert self.net.stats["hop_cycles"] == 4


class TestSimResultAccessors:
    @pytest.fixture(scope="class")
    def result(self):
        workload = spec17_workload("povray_r", instructions=600)
        return run_simulation(SystemConfig(), workload)

    def test_cpi_positive(self, result):
        assert result.cpi > 0

    def test_total_sums_cores(self, result):
        assert result.total("retired") == 600

    def test_total_of_missing_stat_is_zero(self, result):
        assert result.total("not_a_stat") == 0

    def test_squash_summary_keys(self, result):
        summary = result.squash_summary()
        assert set(summary) == {"branch", "alias", "mcv_inval",
                                "mcv_evict"}

    def test_normalized_cpi_identity(self, result):
        assert result.normalized_cpi(result) == pytest.approx(1.0)

    def test_describe_is_one_line(self, result):
        assert "\n" not in result.describe()
        assert "povray_r" in result.describe()
