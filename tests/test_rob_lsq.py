"""Reorder buffer, load queue, and store queue unit behaviour."""

import pytest

from repro.core.lsq import LoadQueue, StoreQueue
from repro.core.rob import ReorderBuffer, ROBEntry
from repro.isa.uops import MicroOp, OpClass


def load_entry(index, addr=0x40, deps=()):
    return ROBEntry(MicroOp(index, OpClass.LOAD, deps=deps, addr=addr),
                    pending_deps=len(deps), dispatch_cycle=0)


def store_entry(index, addr=0x40):
    return ROBEntry(MicroOp(index, OpClass.STORE, addr=addr),
                    pending_deps=0, dispatch_cycle=0)


class TestROBEntry:
    def test_line_derived_from_address(self):
        assert load_entry(0, addr=0x83).line == 2

    def test_non_memory_has_no_line(self):
        entry = ROBEntry(MicroOp(0, OpClass.INT_ALU), 0, 0)
        assert entry.line is None

    def test_deps_ready(self):
        entry = load_entry(1, deps=(0,))
        assert not entry.deps_ready
        entry.pending_deps = 0
        assert entry.deps_ready


class TestReorderBuffer:
    def test_fifo_head_tail(self):
        rob = ReorderBuffer(capacity=4)
        a, b = load_entry(0), load_entry(1)
        rob.push(a)
        rob.push(b)
        assert rob.head() is a and rob.tail() is b
        assert rob.is_head(a) and not rob.is_head(b)

    def test_capacity(self):
        rob = ReorderBuffer(capacity=1)
        rob.push(load_entry(0))
        assert rob.full
        with pytest.raises(OverflowError):
            rob.push(load_entry(1))

    def test_find_by_index(self):
        rob = ReorderBuffer(capacity=4)
        entry = load_entry(5)
        rob.push(entry)
        assert rob.find(5) is entry
        assert rob.find(6) is None

    def test_pop_head_and_tail_maintain_index(self):
        rob = ReorderBuffer(capacity=4)
        for i in range(3):
            rob.push(load_entry(i))
        assert rob.pop_head().index == 0
        assert rob.pop_tail().index == 2
        assert rob.find(0) is None and rob.find(2) is None
        assert rob.find(1) is not None


class TestLoadQueue:
    def test_release_head_enforces_order(self):
        lq = LoadQueue(capacity=4)
        a, b = load_entry(0), load_entry(1)
        lq.allocate(a)
        lq.allocate(b)
        with pytest.raises(ValueError):
            lq.release_head(b)
        lq.release_head(a)
        assert lq.oldest() is b

    def test_capacity(self):
        lq = LoadQueue(capacity=1)
        lq.allocate(load_entry(0))
        with pytest.raises(OverflowError):
            lq.allocate(load_entry(1))

    def test_squash_younger_or_equal(self):
        lq = LoadQueue(capacity=8)
        entries = [load_entry(i) for i in range(4)]
        for e in entries:
            lq.allocate(e)
        dropped = lq.squash_younger_or_equal(2)
        assert [e.index for e in dropped] == [2, 3]
        assert [e.index for e in lq] == [0, 1]

    def test_performed_unretired_filters(self):
        lq = LoadQueue(capacity=8)
        performed = load_entry(0, addr=0x40)
        performed.performed = True
        pending = load_entry(1, addr=0x40)
        forwarded = load_entry(2, addr=0x40)
        forwarded.performed = True
        forwarded.forwarded = True
        other_line = load_entry(3, addr=0x100)
        other_line.performed = True
        for e in (performed, pending, forwarded, other_line):
            lq.allocate(e)
        vulnerable = lq.performed_unretired(line=1)
        assert vulnerable == [performed]

    def test_snoop_pinned(self):
        lq = LoadQueue(capacity=4)
        entry = load_entry(0, addr=0x40)
        lq.allocate(entry)
        assert not lq.snoop_pinned(1)
        entry.pinned = True
        assert lq.snoop_pinned(1)
        assert not lq.snoop_pinned(2)


class TestStoreQueue:
    def test_forwarding_picks_youngest_older_known_store(self):
        sq = StoreQueue(capacity=8)
        s0 = store_entry(0, addr=0x40)
        s0.addr_ready = True
        s1 = store_entry(2, addr=0x40)
        s1.addr_ready = True
        s_unknown = store_entry(4, addr=0x40)   # address not generated yet
        for s in (s0, s1, s_unknown):
            sq.allocate(s)
        load = load_entry(6, addr=0x60)         # same line as 0x40
        assert sq.forwarding_store(load) is s1

    def test_no_forwarding_from_younger_store(self):
        sq = StoreQueue(capacity=8)
        s = store_entry(5, addr=0x40)
        s.addr_ready = True
        sq.allocate(s)
        load = load_entry(2, addr=0x40)
        assert sq.forwarding_store(load) is None

    def test_no_forwarding_across_lines(self):
        sq = StoreQueue(capacity=8)
        s = store_entry(0, addr=0x100)
        s.addr_ready = True
        sq.allocate(s)
        assert sq.forwarding_store(load_entry(2, addr=0x40)) is None

    def test_older_unknown_address_window(self):
        sq = StoreQueue(capacity=8)
        s = store_entry(3)
        sq.allocate(s)
        assert sq.older_unknown_address(load_index=5)
        assert not sq.older_unknown_address(load_index=2)
        s.addr_ready = True
        assert not sq.older_unknown_address(load_index=5)

    def test_release_head_enforces_order(self):
        sq = StoreQueue(capacity=4)
        a, b = store_entry(0), store_entry(1)
        sq.allocate(a)
        sq.allocate(b)
        with pytest.raises(ValueError):
            sq.release_head(b)
        sq.release_head(a)
